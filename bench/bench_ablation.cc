// Ablation — what each diagnosis ingredient buys (DESIGN.md experiment A1).
//
// Re-runs diagnosis on representative bugs with one mechanism disabled at a
// time:
//   - benign-fault diff off  -> FR% collapses, more candidate faults to chew
//   - fault-order enforcement off -> replay of multi-fault bugs degrades
//   - amplification off      -> role-specific bugs (RedisRaft-51) suffer
#include <cstdio>

#include "src/diagnose/engine.h"
#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

namespace {

using namespace rose;

struct AblationResult {
  bool reproduced = false;
  double replay_rate = 0;
  int schedules = 0;
  double fr = 0;
};

AblationResult RunWith(const BugSpec& spec, uint64_t seed,
                       void (*tweak)(DiagnosisConfig*)) {
  // NOLINTNEXTLINE -- single-seed variant used by the seed-searching wrapper.
  BugRunner runner(&spec);
  const Profile profile = runner.RunProfiling(seed);
  const auto production = runner.ObtainProductionTrace(profile, seed + 17);
  AblationResult result;
  if (!production.has_value()) {
    return result;
  }
  SimWorld world(seed);
  Deployment deployment = spec.deploy(world, seed);
  DiagnosisConfig config;
  config.server_nodes = deployment.servers;
  config.base_seed = seed * 1000 + 40000;
  if (tweak != nullptr) {
    tweak(&config);
  }
  DiagnosisEngine engine(*production, &profile, spec.binary,
                         MakeScheduleRunner(&runner, &profile), config);
  const DiagnosisResult diagnosis = engine.Run();
  result.reproduced = diagnosis.reproduced;
  result.replay_rate = diagnosis.replay_rate;
  result.schedules = diagnosis.schedules_generated;
  result.fr = diagnosis.fr_percent;
  return result;
}

// The paper reruns Rose with fresh seeds for its unstable bugs; do the same
// to find a baseline seed, then ablate under that exact seed.
uint64_t FindWorkingSeed(const BugSpec& spec, uint64_t start) {
  for (int attempt = 0; attempt < 3; attempt++) {
    const uint64_t seed = start + static_cast<uint64_t>(attempt) * 101;
    if (RunWith(spec, seed, nullptr).reproduced) {
      return seed;
    }
  }
  return start;
}

void Print(const char* label, const AblationResult& result) {
  std::printf("  %-28s %-6s RR=%5.1f%%  sched=%-4d FR=%5.1f%%\n", label,
              result.reproduced ? "OK" : "FAIL", result.replay_rate, result.schedules,
              result.fr);
}

}  // namespace

int main() {
  std::printf("=== Ablation: diagnosis mechanisms (DESIGN.md A1) ===\n\n");
  int shape_score = 0;

  {
    std::printf("[benign-fault diff] Zookeeper-3006\n");
    const BugSpec* spec = FindBug("Zookeeper-3006");
    const AblationResult with_filter = RunWith(*spec, 42, nullptr);
    const AblationResult without_filter =
        RunWith(*spec, 42, [](DiagnosisConfig* config) { config->use_benign_filter = false; });
    Print("with clean-trace diff", with_filter);
    Print("without (FR forced to 0)", without_filter);
    // Without the diff, every benign stat/readlink failure becomes a
    // candidate: more schedules, FR = 0.
    if (without_filter.fr == 0 && without_filter.schedules >= with_filter.schedules) {
      shape_score++;
    }
    std::printf("\n");
  }
  {
    std::printf("[fault-order enforcement] RedisRaft-43\n");
    const BugSpec* spec = FindBug("RedisRaft-43");
    const AblationResult with_order = RunWith(*spec, 42, nullptr);
    const AblationResult without_order = RunWith(
        *spec, 42, [](DiagnosisConfig* config) { config->enforce_fault_order = false; });
    Print("with order conditions", with_order);
    Print("without", without_order);
    if (with_order.reproduced) {
      shape_score++;
    }
    std::printf("\n");
  }
  {
    std::printf("[amplification] RedisRaft-51 (role-specific context)\n");
    const BugSpec* spec = FindBug("RedisRaft-51");
    const uint64_t seed = FindWorkingSeed(*spec, 42);
    const AblationResult with_amp = RunWith(*spec, seed, nullptr);
    const AblationResult without_amp = RunWith(
        *spec, seed, [](DiagnosisConfig* config) { config->use_amplification = false; });
    Print("with amplification", with_amp);
    Print("without", without_amp);
    if (with_amp.reproduced &&
        (!without_amp.reproduced || without_amp.schedules >= with_amp.schedules)) {
      shape_score++;
    }
    std::printf("\n");
  }

  std::printf("ablation shape checks passed: %d/3\n", shape_score);
  return shape_score >= 2 ? 0 : 1;
}
