// rose::causal cost/benefit (google-benchmark).
//
// Two question sets:
//
//  1. BM_CausalGraphBuild — how fast does the happens-before graph build?
//     Synthetic multi-node traces (SCF runs over shared fds, network
//     deliveries, crash/restart pairs) at 1k/10k/100k events; items/sec is
//     events/sec. The graph is a single pass plus one vector-clock merge per
//     event.
//
//  2. BM_DiagnoseCausal* — what does static analysis buy the engine? Each
//     row runs the full three-level diagnosis for one multi-fault catalogue
//     bug. Arg 0 is the naive baseline: no causal analysis at all (TB301
//     infeasible rejection off AND TB304 commutation dedup off, so Level-1
//     order enumeration replays raw permutations). Arg 1 is the default
//     engine. The `schedules` counter is candidates replayed; the acceptance
//     bar is arg 1 showing >= 15% fewer than arg 0 on the multi-fault bugs,
//     with the `reproduced` counter matching within each pair.
//
//     Seeds are chosen per bug so the Level-1 production-order replay fails
//     and order enumeration — the phase static pruning targets — actually
//     runs; at seeds where Level 1 confirms immediately both modes replay
//     the same single candidate and there is nothing to measure. HDFS-15032
//     is included as the honest lower bound: a 2-fault schedule has exactly
//     one alternative order, so pruning it saves one replay (~8%), below
//     the bar by construction.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/causal/causal_graph.h"
#include "src/common/rng.h"
#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"
#include "src/trace/event.h"

namespace rose {
namespace {

// --- graph-build throughput -------------------------------------------------

// Deterministic multi-node trace: 4 nodes, a few pids each, SCFs over a small
// fd set (so fd-order edges appear), periodic cross-node deliveries (so
// send/receive edges appear once the ip map is learned), and occasional
// crash/restart pairs that retire the crashed pid (keeping the trace
// TB303-consistent).
Trace MakeSyntheticTrace(size_t total_events) {
  constexpr int kNodes = 4;
  Trace trace;
  Rng rng(0x9e3779b97f4a7c15ull);
  std::vector<Pid> next_pid(kNodes);
  std::vector<std::vector<Pid>> pids(kNodes);
  for (int node = 0; node < kNodes; node++) {
    next_pid[node] = static_cast<Pid>(100 + node * 1000);
    for (int i = 0; i < 3; i++) pids[node].push_back(next_pid[node]++);
  }
  std::vector<StrId> ips(kNodes);
  for (int node = 0; node < kNodes; node++) {
    ips[node] = trace.Intern("10.0.0." + std::to_string(node));
  }
  const StrId path = trace.Intern("/data/wal");
  SimTime ts = 0;
  while (trace.size() < total_events) {
    ts += 1 + static_cast<SimTime>(rng.NextBelow(5));
    const int node = static_cast<int>(rng.NextBelow(kNodes));
    const uint64_t roll = rng.NextBelow(100);
    TraceEvent event;
    event.ts = ts;
    event.node = node;
    if (roll < 88) {
      // SCF on a shared fd: same (node, fd) pairs across pids create
      // fd-order edges.
      const Pid pid = pids[node][rng.NextBelow(pids[node].size())];
      const int32_t fd = static_cast<int32_t>(3 + rng.NextBelow(4));
      event.type = EventType::kSCF;
      event.info = ScfInfo{pid, Sys::kWrite, fd, path,
                           rng.NextBelow(10) == 0 ? Err::kEIO : Err::kOk};
    } else if (roll < 96) {
      // Delivery observed at `node`, attributed to a random peer.
      int src = static_cast<int>(rng.NextBelow(kNodes));
      if (src == node) src = (src + 1) % kNodes;
      event.type = EventType::kND;
      event.info = NdInfo{ips[src], ips[node],
                          /*duration=*/1 + static_cast<SimTime>(rng.NextBelow(3)),
                          /*packet_count=*/7};
    } else {
      // Crash the oldest pid and immediately fork a replacement so later
      // events never land on a dead pid.
      const Pid victim = pids[node].front();
      pids[node].erase(pids[node].begin());
      pids[node].push_back(next_pid[node]++);
      event.type = EventType::kPS;
      event.info = PsInfo{victim, ProcState::kCrashed, 0};
    }
    trace.Append(event);
  }
  return trace;
}

void BM_CausalGraphBuild(benchmark::State& state) {
  const size_t total = static_cast<size_t>(state.range(0));
  const Trace trace = MakeSyntheticTrace(total);
  const TraceView view(trace);
  size_t edges = 0;
  for (auto _ : state) {
    const CausalGraph graph(view);
    benchmark::DoNotOptimize(graph.HappensBefore(0, total - 1));
    edges = graph.edges().size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total));
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_CausalGraphBuild)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// --- diagnosis with causal analysis vs the naive baseline -------------------

// Profiling run + production trace, computed once per (bug, seed) and shared
// by both modes (the engine never mutates either). Seed derivation mirrors
// ReproduceBug: profiling at `seed`, production at `seed + 17`, diagnosis
// base seed `seed * 1000 + 40000`.
struct DiagnosisInputs {
  const BugSpec* spec = nullptr;
  Profile profile;
  Trace production;
  std::vector<NodeId> server_nodes;
};

const DiagnosisInputs& InputsFor(const std::string& bug_id, uint64_t seed) {
  static std::map<std::string, DiagnosisInputs> cache;
  const std::string key = bug_id + "@" + std::to_string(seed);
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  DiagnosisInputs inputs;
  inputs.spec = FindBug(bug_id);
  if (inputs.spec == nullptr) {
    std::fprintf(stderr, "unknown bug: %s\n", bug_id.c_str());
    std::abort();
  }
  BugRunner runner(inputs.spec);
  inputs.profile = runner.RunProfiling(seed);
  const std::optional<Trace> production =
      runner.ObtainProductionTrace(inputs.profile, seed + 17);
  if (!production.has_value()) {
    std::fprintf(stderr, "no production trace for %s\n", bug_id.c_str());
    std::abort();
  }
  inputs.production = *production;
  SimWorld world(seed);
  Deployment deployment = inputs.spec->deploy(world, seed);
  inputs.server_nodes = deployment.servers;
  return cache.emplace(key, std::move(inputs)).first->second;
}

void RunCausalDiagnosisBench(benchmark::State& state, const std::string& bug_id,
                             uint64_t seed) {
  const bool causal = state.range(0) != 0;
  const DiagnosisInputs& inputs = InputsFor(bug_id, seed);
  BugRunner runner(inputs.spec);

  DiagnosisConfig config;
  config.server_nodes = inputs.server_nodes;
  config.base_seed = seed * 1000 + 40000;
  config.use_causal_pruning = causal;
  config.level1_dedup_commuted = causal;

  DiagnosisResult result;
  for (auto _ : state) {
    DiagnosisEngine engine(inputs.production, &inputs.profile,
                           inputs.spec->binary,
                           MakeScheduleRunner(&runner, &inputs.profile),
                           config);
    result = engine.Run();
    benchmark::DoNotOptimize(result);
  }
  // `schedules` is the acceptance metric: candidates actually replayed.
  state.counters["schedules"] = result.schedules_generated;
  state.counters["sim_runs"] = result.total_runs;
  state.counters["pruned_infeasible"] = result.schedules_pruned_infeasible;
  state.counters["pruned_commuted"] = result.schedules_pruned_commuted;
  state.counters["reproduced"] = result.reproduced ? 1 : 0;
}

#define ROSE_CAUSAL_BENCH(fn, bug, seed)                            \
  void fn(benchmark::State& state) {                                \
    RunCausalDiagnosisBench(state, bug, seed);                      \
  }                                                                 \
  BENCHMARK(fn)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime()

ROSE_CAUSAL_BENCH(BM_DiagnoseCausalRedisRaft43, "RedisRaft-43", 1);
ROSE_CAUSAL_BENCH(BM_DiagnoseCausalRedisRaft51, "RedisRaft-51", 5);
ROSE_CAUSAL_BENCH(BM_DiagnoseCausalRedisRaftNEW, "RedisRaft-NEW", 9);
ROSE_CAUSAL_BENCH(BM_DiagnoseCausalRedisRaftNEW2, "RedisRaft-NEW2", 18);
ROSE_CAUSAL_BENCH(BM_DiagnoseCausalRedpanda3003, "Redpanda-3003", 26);
ROSE_CAUSAL_BENCH(BM_DiagnoseCausalMongoDb243, "MongoDB-2.4.3", 27);
ROSE_CAUSAL_BENCH(BM_DiagnoseCausalHdfs15032, "HDFS-15032", 1);

#undef ROSE_CAUSAL_BENCH

}  // namespace
}  // namespace rose

BENCHMARK_MAIN();
