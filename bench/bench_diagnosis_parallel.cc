// Diagnosis wall-time vs. parallelism (google-benchmark).
//
// Measures DiagnosisEngine::Run() host time on two registered level-2 bugs
// (SCF nth-sweeps are the widest wave-fronts the engine batches) at
// parallelism 1/2/4/8. Profiling and the production trace are produced once
// per bug outside the timed region; every timed iteration runs the complete
// three-level diagnosis. The engine guarantees identical DiagnosisResult at
// every parallelism level, so the counters reported alongside the times
// double as a determinism check: schedules/runs must not vary across args.
//
// Speedup is hardware-dependent: on a single-core host all parallelism
// levels cost about the same (the pool adds only scheduling overhead); the
// >= 2x target at parallelism 4 needs >= 4 real cores.
#include <benchmark/benchmark.h>

#include <map>
#include <optional>
#include <string>

#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

namespace rose {
namespace {

// Profiling run + production trace, computed once per bug and shared by all
// parallelism levels (the engine never mutates either).
struct DiagnosisInputs {
  const BugSpec* spec = nullptr;
  Profile profile;
  Trace production;
  std::vector<NodeId> server_nodes;
};

const DiagnosisInputs& InputsFor(const std::string& bug_id) {
  static std::map<std::string, DiagnosisInputs> cache;
  auto it = cache.find(bug_id);
  if (it != cache.end()) {
    return it->second;
  }
  DiagnosisInputs inputs;
  inputs.spec = FindBug(bug_id);
  if (inputs.spec == nullptr) {
    std::fprintf(stderr, "unknown bug: %s\n", bug_id.c_str());
    std::abort();
  }
  const uint64_t seed = 5;
  BugRunner runner(inputs.spec);
  inputs.profile = runner.RunProfiling(seed);
  const std::optional<Trace> production =
      runner.ObtainProductionTrace(inputs.profile, seed + 17);
  if (!production.has_value()) {
    std::fprintf(stderr, "no production trace for %s\n", bug_id.c_str());
    std::abort();
  }
  inputs.production = *production;
  SimWorld world(seed);
  Deployment deployment = inputs.spec->deploy(world, seed);
  inputs.server_nodes = deployment.servers;
  return cache.emplace(bug_id, std::move(inputs)).first->second;
}

void RunDiagnosisBench(benchmark::State& state, const std::string& bug_id) {
  const DiagnosisInputs& inputs = InputsFor(bug_id);
  BugRunner runner(inputs.spec);

  DiagnosisConfig config;
  config.parallelism = static_cast<int>(state.range(0));
  config.server_nodes = inputs.server_nodes;
  config.base_seed = 45'000;

  DiagnosisResult result;
  for (auto _ : state) {
    DiagnosisEngine engine(inputs.production, &inputs.profile, inputs.spec->binary,
                           MakeScheduleRunner(&runner, &inputs.profile), config);
    result = engine.Run();
    benchmark::DoNotOptimize(result);
  }
  // Identical across parallelism levels by construction; exported so a
  // regression shows up right in the bench output.
  state.counters["reproduced"] = result.reproduced ? 1 : 0;
  state.counters["schedules"] = result.schedules_generated;
  state.counters["sim_runs"] = result.total_runs;
}

void BM_DiagnoseZookeeper2247(benchmark::State& state) {
  RunDiagnosisBench(state, "Zookeeper-2247");
}
BENCHMARK(BM_DiagnoseZookeeper2247)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DiagnoseZookeeper4203(benchmark::State& state) {
  RunDiagnosisBench(state, "Zookeeper-4203");
}
BENCHMARK(BM_DiagnoseZookeeper4203)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace rose

BENCHMARK_MAIN();
