// Figure 2 / §6.5 discussion — distribution of bugs across diagnosis levels.
//
// Reruns the full pipeline on all 20 bugs and reports how many were
// reproduced at Level 1 (fault order/inputs only), Level 2 (invocation
// sweeps and function chains), and Level 3 (intra-function offsets), plus
// the per-level replay-rate statistics the paper discusses.
#include <cstdio>
#include <map>
#include <vector>

#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

int main() {
  std::printf("=== Figure 2 / Discussion: diagnosis level distribution ===\n\n");
  std::map<int, std::vector<const rose::BugSpec*>> by_level;
  std::map<int, double> rate_sum;
  int failed = 0;

  for (const rose::BugSpec* spec : rose::AllBugs()) {
    rose::RoseConfig config;
    config.seed = 42;
    const rose::RoseReport report = rose::ReproduceBugRobust(*spec, config);
    if (!report.reproduced()) {
      failed++;
      continue;
    }
    by_level[report.diagnosis.level].push_back(spec);
    rate_sum[report.diagnosis.level] += report.replay_rate();
  }

  for (int level = 1; level <= 3; level++) {
    const auto& bugs = by_level[level];
    std::printf("Level %d: %zu bugs", level, bugs.size());
    if (!bugs.empty()) {
      std::printf(" (mean RR %.0f%%):", rate_sum[level] / static_cast<double>(bugs.size()));
      for (const rose::BugSpec* spec : bugs) {
        std::printf(" %s", spec->id.c_str());
      }
    }
    std::printf("\n");
  }
  if (failed > 0) {
    std::printf("not reproduced: %d\n", failed);
  }
  std::printf("\npaper: Level 1 = 10 bugs (6 order-only, 4 syscall-input), Level 2 = 9 bugs\n"
              "       (7 nth-invocation, 2 function chains), Level 3 = 1 bug.\n");
  const bool shape = by_level[1].size() >= by_level[2].size() && by_level[3].size() <= 2 &&
                     failed == 0;
  std::printf("\nshape (most bugs at L1, few at L2, ~1 at L3): %s\n",
              shape ? "HOLDS" : "VIOLATED");
  return shape ? 0 : 1;
}
