// Flat vs. context-indexed SCF targeting (DESIGN.md §14), over the full bug
// catalogue.
//
// Runs every catalogue bug through the Rose pipeline twice — once with the
// historical flat nth-invocation counters (--indexing=flat) and once with
// execution-indexed addresses (--indexing=context) — and reports the two
// numbers the refactor is accountable for:
//
//   replay%        context targeting must match or beat flat targeting on
//                  every bug: the indexed aim only ever adds sharper
//                  candidates ahead of the flat plan (which is retained as
//                  the fallback), so a regression is a bug;
//   sweep width    the Level-2 SCF funnel each mode poses per candidate,
//                  from the engine's static plan: flat grinds up to
//                  max_scf_sweep nth values, the indexed mode probes the
//                  residual same-context window (2*radius+1). `scf_sweeps`
//                  counts the sweeps a run actually had to execute.
//
// With a file argument, also writes the rows as JSON (BENCH_indexing.json —
// see tools/run_bench.sh).
#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

namespace {

struct ModeRow {
  bool reproduced = false;
  double replay_rate = 0;
  int level = 0;
  int schedules = 0;
  int runs = 0;
  int scf_sweeps = 0;
  int scf_sweep_width = 0;
  std::vector<int> planned_widths;
  double mean_planned_width() const {
    if (planned_widths.empty()) {
      return 0.0;
    }
    double total = 0;
    for (const int w : planned_widths) {
      total += w;
    }
    return total / static_cast<double>(planned_widths.size());
  }
};

ModeRow RunMode(const rose::BugSpec& spec, rose::DiagnosisConfig::IndexingMode mode) {
  rose::RoseConfig config;
  config.seed = 42;
  config.diagnosis.indexing = mode;
  const rose::RoseReport report = rose::ReproduceBugRobust(spec, config);
  ModeRow row;
  row.reproduced = report.reproduced();
  row.replay_rate = report.replay_rate();
  row.level = report.diagnosis.level;
  row.schedules = report.schedules();
  row.runs = report.runs();
  row.scf_sweeps = report.diagnosis.scf_sweeps;
  row.scf_sweep_width = report.diagnosis.scf_sweep_width;
  row.planned_widths = report.diagnosis.planned_scf_sweep_widths;
  return row;
}

std::string ModeJson(const ModeRow& row) {
  std::string widths;
  for (size_t i = 0; i < row.planned_widths.size(); i++) {
    widths += (i == 0 ? "" : ", ") + std::to_string(row.planned_widths[i]);
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"reproduced\": %s, \"replay_percent\": %.1f, \"level\": %d, "
                "\"schedules\": %d, \"runs\": %d, \"scf_sweeps\": %d, "
                "\"executed_sweep_width\": %d, \"planned_sweep_widths\": [%s], "
                "\"mean_planned_width\": %.2f}",
                row.reproduced ? "true" : "false", row.replay_rate, row.level,
                row.schedules, row.runs, row.scf_sweeps, row.scf_sweep_width,
                widths.c_str(), row.mean_planned_width());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = argc > 1 ? argv[1] : "";
  std::printf("=== SCF targeting: flat nth counters vs execution-indexed addresses ===\n\n");
  std::printf("%-16s | %8s %8s | %9s %9s | %11s %11s\n", "Bug", "flat RR%", "ctx RR%",
              "flat swp", "ctx swp", "flat width", "ctx width");
  std::printf("-----------------+-------------------+---------------------+------------------"
              "-------\n");

  std::string rows_json;
  int replay_regressions = 0;
  int sweep_bugs = 0;
  int sweep_wins = 0;
  for (const rose::BugSpec* spec : rose::AllBugs()) {
    const ModeRow flat = RunMode(*spec, rose::DiagnosisConfig::IndexingMode::kFlat);
    const ModeRow ctx = RunMode(*spec, rose::DiagnosisConfig::IndexingMode::kContext);
    if (ctx.replay_rate + 1e-9 < flat.replay_rate) {
      replay_regressions++;
    }
    if (!flat.planned_widths.empty()) {
      sweep_bugs++;
      if (ctx.mean_planned_width() < flat.mean_planned_width()) {
        sweep_wins++;
      }
    }
    std::printf("%-16s | %8.0f %8.0f | %9d %9d | %11.1f %11.1f\n", spec->id.c_str(),
                flat.replay_rate, ctx.replay_rate, flat.scf_sweeps, ctx.scf_sweeps,
                flat.mean_planned_width(), ctx.mean_planned_width());
    rows_json += (rows_json.empty() ? "" : ",\n");
    rows_json += "  {\"bug\": \"" + spec->id + "\",\n   \"flat\": " + ModeJson(flat) +
                 ",\n   \"context\": " + ModeJson(ctx) + "}";
  }

  std::printf("\nsummary: %d replay regressions under context mode (must be 0); "
              "context funnel narrower on %d of %d SCF-sweep-posing bugs\n",
              replay_regressions, sweep_wins, sweep_bugs);

  if (!json_out.empty()) {
    std::string json = "{\n \"bugs\": [\n" + rows_json + "\n ],\n";
    char buf[1200];
    std::snprintf(
        buf, sizeof(buf),
        " \"summary\": {\"replay_regressions\": %d, \"sweep_posing_bugs\": %d, "
        "\"context_narrower_on\": %d},\n"
        " \"notes\": ["
        "\"replay_percent: context must be >= flat on every bug; the indexed aim only "
        "adds candidates ahead of the retained flat fallback, so a regression means the "
        "fallback failed to engage\", "
        "\"planned_sweep_widths: the Level-2 funnel each extracted SCF candidate would "
        "pose, from the engine's static plan — flat grinds up to max_scf_sweep nth "
        "values, context probes the residual same-context window "
        "(2*index_sweep_radius+1, clamped at seq >= 1)\", "
        "\"scf_sweeps / executed_sweep_width: sweeps a run actually executed; 0 means "
        "diagnosis confirmed before reaching a Level-2 SCF sweep\"]\n}\n",
        replay_regressions, sweep_bugs, sweep_wins);
    json += buf;
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_out.c_str());
  }
  return replay_regressions == 0 ? 0 : 1;
}
