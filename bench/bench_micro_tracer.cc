// Microbenchmarks (google-benchmark) for the tracer hot path: ring-buffer
// pushes, syscall-exit probes in each tracer mode, uprobe hits, event
// serialization, and YAML round trips. These are host-time measurements of
// the library itself (not the simulated cost model).
#include <benchmark/benchmark.h>

#include "src/harness/world.h"
#include "src/schedule/fault_schedule.h"
#include "src/trace/ring_buffer.h"
#include "src/trace/tracer.h"

namespace rose {
namespace {

void BM_RingBufferPush(benchmark::State& state) {
  RingBuffer<TraceEvent> ring(static_cast<size_t>(state.range(0)));
  TraceEvent event;
  event.type = EventType::kAF;
  event.info = AfInfo{100, 7};
  for (auto _ : state) {
    event.ts++;
    ring.Push(event);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingBufferPush)->Arg(1024)->Arg(1 << 20);

void BM_RingBufferSnapshot(benchmark::State& state) {
  RingBuffer<int> ring(static_cast<size_t>(state.range(0)));
  for (int i = 0; i < state.range(0) * 2; i++) {
    ring.Push(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Snapshot());
  }
}
BENCHMARK(BM_RingBufferSnapshot)->Arg(1024)->Arg(65536);

struct TracedWorld {
  explicit TracedWorld(TracerMode mode) : world(1) {
    world.kernel.RegisterNode(0, "10.0.0.1");
    pid = world.kernel.Spawn(0, "bench");
    TracerConfig config;
    config.mode = mode;
    config.monitored_functions = {7};
    tracer.emplace(&world.kernel, nullptr, config);
    tracer->Attach();
    SimKernel::OpenFlags flags;
    flags.create = true;
    fd = static_cast<int32_t>(world.kernel.Open(pid, "/bench", flags).value);
  }
  SimWorld world;
  Pid pid = kNoPid;
  int32_t fd = -1;
  std::optional<Tracer> tracer;
};

void BM_SyscallExitProbeRoseMode(benchmark::State& state) {
  TracedWorld traced(TracerMode::kRose);
  const std::string payload(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(traced.world.kernel.Write(traced.pid, traced.fd, payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyscallExitProbeRoseMode);

void BM_SyscallExitProbeFullMode(benchmark::State& state) {
  TracedWorld traced(TracerMode::kFull);
  const std::string payload(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(traced.world.kernel.Write(traced.pid, traced.fd, payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyscallExitProbeFullMode);

void BM_FailedSyscallRecord(benchmark::State& state) {
  TracedWorld traced(TracerMode::kRose);
  for (auto _ : state) {
    benchmark::DoNotOptimize(traced.world.kernel.Stat(traced.pid, "/missing"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailedSyscallRecord);

void BM_UprobeHit(benchmark::State& state) {
  TracedWorld traced(TracerMode::kRose);
  for (auto _ : state) {
    traced.world.kernel.FunctionEnter(traced.pid, 7);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UprobeHit);

void BM_TraceEventSerialize(benchmark::State& state) {
  StringPool pool;
  TraceEvent event;
  event.ts = 123456789;
  event.node = 2;
  event.type = EventType::kSCF;
  event.info = ScfInfo{101, Sys::kOpenAt, 5, pool.Intern("/data/edits.new"), Err::kEIO};
  for (auto _ : state) {
    benchmark::DoNotOptimize(event.ToLine(pool));
  }
}
BENCHMARK(BM_TraceEventSerialize);

void BM_TraceEventParse(benchmark::State& state) {
  StringPool pool;
  TraceEvent event;
  event.ts = 123456789;
  event.node = 2;
  event.type = EventType::kSCF;
  event.info = ScfInfo{101, Sys::kOpenAt, 5, pool.Intern("/data/edits.new"), Err::kEIO};
  const std::string line = event.ToLine(pool);
  StringPool parse_pool;
  TraceEvent parsed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TraceEvent::FromLine(line, &parse_pool, &parsed));
  }
}
BENCHMARK(BM_TraceEventParse);

void BM_ScheduleYamlRoundTrip(benchmark::State& state) {
  FaultSchedule schedule;
  schedule.name = "bench";
  for (int i = 0; i < 5; i++) {
    ScheduledFault fault;
    fault.kind = FaultKind::kProcessCrash;
    fault.target_node = i;
    fault.conditions.push_back(Condition::AtTime(Seconds(i)));
    if (i > 0) {
      fault.conditions.push_back(Condition::AfterFault(i - 1));
    }
    schedule.faults.push_back(fault);
  }
  for (auto _ : state) {
    FaultSchedule parsed;
    benchmark::DoNotOptimize(FaultSchedule::FromYaml(schedule.ToYaml(), &parsed));
  }
}
BENCHMARK(BM_ScheduleYamlRoundTrip);

}  // namespace
}  // namespace rose

BENCHMARK_MAIN();
