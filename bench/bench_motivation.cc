// §3 motivation — why naive replay fails on RedisRaft-43.
//
// The paper's preliminary experiment: replaying the last faults before the
// crash at their recorded times yields ~1% replay rate; Rose's contextualized
// schedule (crash conditioned on RaftLogCreate) replays reliably. This bench
// measures both schedules over many runs.
#include <cstdio>

#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

namespace {

using namespace rose;

double SuccessRate(BugRunner* runner, const Profile* profile, const FaultSchedule& schedule,
                   int runs, uint64_t base_seed) {
  int hits = 0;
  for (int i = 0; i < runs; i++) {
    RunOptions options;
    options.seed = base_seed + static_cast<uint64_t>(i);
    options.duration = runner->spec().run_duration;
    options.schedule = &schedule;
    options.profile = profile;
    if (runner->RunOnce(options).bug) {
      hits++;
    }
  }
  return 100.0 * hits / runs;
}

}  // namespace

int main() {
  std::printf("=== Motivation (paper §3): naive time-based replay vs Rose, RedisRaft-43 ===\n\n");
  const BugSpec* spec = FindBug("RedisRaft-43");
  if (spec == nullptr) {
    return 2;
  }
  BugRunner runner(spec);
  const Profile profile = runner.RunProfiling(42);

  // The "manual" schedule a developer would build from the Jepsen history:
  // the last faults replayed at their recorded relative times — including
  // the final crash as a plain timed crash (no function context).
  FaultSchedule naive;
  naive.name = "naive-timed-replay";
  {
    ScheduledFault crash;
    crash.kind = FaultKind::kProcessCrash;
    crash.target_node = 1;
    crash.conditions = {Condition::AtTime(Seconds(4))};
    naive.faults.push_back(crash);
  }
  {
    ScheduledFault partition;
    partition.kind = FaultKind::kNetworkPartition;
    partition.target_node = 4;
    partition.network.group_a = {"10.0.0.5"};
    partition.network.group_b = {"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"};
    partition.network.duration = Seconds(6);
    partition.conditions = {Condition::AtTime(Seconds(8))};
    naive.faults.push_back(partition);
  }
  {
    // The final crash at its recorded relative time (~6.2 s), with no
    // knowledge that it must land inside RaftLogCreate.
    ScheduledFault crash;
    crash.kind = FaultKind::kProcessCrash;
    crash.target_node = 1;
    crash.conditions = {Condition::AtTime(Millis(6200))};
    naive.faults.push_back(crash);
  }

  const int kRuns = 100;
  const double naive_rate = SuccessRate(&runner, &profile, naive, kRuns, 10'000);
  std::printf("naive timed replay:        %5.1f%% over %d runs   (paper: ~1%%)\n", naive_rate,
              kRuns);

  // Rose's schedule from the full pipeline.
  RoseConfig config;
  config.seed = 42;
  const RoseReport report = ReproduceBugRobust(*spec, config);
  if (!report.reproduced()) {
    std::printf("Rose failed to reproduce — cannot compare\n");
    return 1;
  }
  const double rose_rate =
      SuccessRate(&runner, &profile, report.diagnosis.schedule, kRuns, 20'000);
  std::printf("Rose contextualized:       %5.1f%% over %d runs   (paper: 100%%)\n", rose_rate,
              kRuns);
  std::printf("\nshape (Rose >> naive): %s\n",
              rose_rate > naive_rate + 30.0 ? "HOLDS" : "VIOLATED");
  return rose_rate > naive_rate + 30.0 ? 0 : 1;
}
