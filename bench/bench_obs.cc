// Microbenchmarks (google-benchmark) for rose::obs — the cost of the
// instrumentation itself. tools/run_bench.sh runs this binary twice, once
// from the default tree (ROSE_OBS=ON) and once from a -DROSE_OBS=OFF tree,
// and merges both into BENCH_obs.json; the ON/OFF delta on the workload
// benchmarks is the observability tax, budgeted at < 3%.
//
//  - BM_CounterInc / BM_HistogramRecord / BM_ScopedTimer: unit cost of the
//    primitives (relaxed atomics; compiled to no-ops when OFF).
//  - BM_TracedSyscallExit: the tracer's real hot path — one simulated write()
//    through the syscall-exit probe, which bumps tracer.* metrics per event.
//  - BM_RegistrySnapshot: cold-path cost of snapshotting a populated
//    registry (what --stats-out and the serve STATS reply pay).
#include <benchmark/benchmark.h>

#include <string>

#include "src/harness/world.h"
#include "src/obs/metrics.h"
#include "src/trace/tracer.h"

namespace rose {
namespace {

void BM_CounterInc(benchmark::State& state) {
  Counter counter;
  for (auto _ : state) {
    counter.Inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
  state.counters["obs_enabled"] = ROSE_OBS_ENABLED;
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram hist;
  uint64_t v = 1;
  for (auto _ : state) {
    hist.Record(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // splitmix-style walk
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(state.iterations());
  state.counters["obs_enabled"] = ROSE_OBS_ENABLED;
}
BENCHMARK(BM_HistogramRecord);

void BM_ScopedTimer(benchmark::State& state) {
  Histogram hist;
  for (auto _ : state) {
    ScopedTimer timer(&hist);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["obs_enabled"] = ROSE_OBS_ENABLED;
}
BENCHMARK(BM_ScopedTimer);

// Same traced-world shape as bench_micro_tracer's syscall-exit benchmark, so
// the ON/OFF delta isolates what the tracer.* instrumentation costs on the
// path the paper's Table 2 overhead numbers come from.
struct TracedWorld {
  TracedWorld() : world(1) {
    world.kernel.RegisterNode(0, "10.0.0.1");
    pid = world.kernel.Spawn(0, "bench");
    TracerConfig config;
    config.mode = TracerMode::kRose;
    config.monitored_functions = {7};
    tracer.emplace(&world.kernel, nullptr, config);
    tracer->Attach();
    SimKernel::OpenFlags flags;
    flags.create = true;
    fd = static_cast<int32_t>(world.kernel.Open(pid, "/bench", flags).value);
  }
  SimWorld world;
  Pid pid = kNoPid;
  int32_t fd = -1;
  std::optional<Tracer> tracer;
};

void BM_TracedSyscallExit(benchmark::State& state) {
  TracedWorld traced;
  const std::string payload(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(traced.world.kernel.Write(traced.pid, traced.fd, payload));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["obs_enabled"] = ROSE_OBS_ENABLED;
}
BENCHMARK(BM_TracedSyscallExit);

void BM_RegistrySnapshot(benchmark::State& state) {
  MetricRegistry registry;
  for (int i = 0; i < 64; i++) {
    registry.GetCounter("bench.counter." + std::to_string(i))->Inc(i);
    registry.GetHistogram("bench.hist." + std::to_string(i))->Record(i * 1000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Snapshot().ToYaml());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["obs_enabled"] = ROSE_OBS_ENABLED;
}
BENCHMARK(BM_RegistrySnapshot);

}  // namespace
}  // namespace rose

BENCHMARK_MAIN();
