// Serve daemon throughput & latency (google-benchmark).
//
// Measures the diagnosis service end to end — submit over the in-process
// wire, validate, queue, diagnose, stream the result back — at 1/4/16
// concurrent clients, each submitting one distinct production dump per
// iteration. Two modes:
//
//   BM_ServeCold      fresh service every iteration: every job runs a real
//                     diagnosis. items_per_second is jobs/sec; the p50_ms /
//                     p99_ms counters are submit-to-schedule latency.
//   BM_ServeCacheHit  one warmed service: the same dumps resubmitted, every
//                     job answered from the canonical-hash cache with zero
//                     engine runs — the protocol + cache overhead floor.
//
// The service runs 4 jobs concurrently with single-threaded diagnosis per
// job, so cold throughput scales with client count until the 4 worker slots
// saturate: the acceptance bar is >= 2x jobs/sec at 4 clients vs 1 (needs
// >= 4 real cores; a 1-core host shows flat numbers). Cache-hit throughput
// should sit orders of magnitude above cold at every client count.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "src/harness/bug_registry.h"
#include "src/harness/runner.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/service.h"

namespace rose {
namespace {

constexpr int kMaxClients = 16;
constexpr int kServiceConcurrency = 4;

struct Dump {
  Profile profile;
  Trace trace;
  uint64_t seed = 0;
};

// One production dump, produced once and shared by every benchmark. Clients
// submit it under distinct diagnosis seeds, so every submission has its own
// cache key (no coalescing, no accidental hits) while the per-job engine
// work stays comparable — which is what makes the 1-vs-4-client throughput
// ratio meaningful.
const Dump& TheDump() {
  static const Dump* dump = [] {
    auto* out = new Dump();
    const BugSpec* spec = FindBug("RedisRaft-42");
    if (spec == nullptr) {
      std::abort();
    }
    out->seed = 100;
    BugRunner runner(spec);
    out->profile = runner.RunProfiling(out->seed);
    std::optional<Trace> trace = runner.ObtainProductionTrace(out->profile, out->seed + 17);
    if (!trace.has_value()) {
      std::abort();
    }
    out->trace = std::move(*trace);
    return out;
  }();
  return *dump;
}

SubmitRequest RequestFor(int client_index) {
  const Dump& dump = TheDump();
  SubmitRequest request;
  request.bug_id = "RedisRaft-42";
  request.seed = dump.seed + static_cast<uint64_t>(client_index);
  request.profile = dump.profile;
  request.trace = dump.trace;
  return request;
}

ServeConfig BenchServeConfig() {
  ServeConfig config;
  config.max_concurrent_jobs = kServiceConcurrency;
  config.queue_capacity = kMaxClients;
  // Job-level concurrency only: one engine thread per job keeps the
  // 1-vs-4-client comparison about the service, not intra-job parallelism.
  config.diagnosis.parallelism = 1;
  return config;
}

// Submits one dump per client and pumps everything to completion, recording
// each job's submit-to-schedule wall latency.
void ServeRound(DiagnosisService& service, std::vector<std::unique_ptr<ServeClient>>& clients,
                int num_clients, std::vector<double>* latencies_ms) {
  using Clock = std::chrono::steady_clock;
  std::vector<uint64_t> handles(static_cast<size_t>(num_clients));
  std::vector<Clock::time_point> submitted(static_cast<size_t>(num_clients));
  std::vector<bool> recorded(static_cast<size_t>(num_clients), false);
  for (int i = 0; i < num_clients; i++) {
    submitted[static_cast<size_t>(i)] = Clock::now();
    handles[static_cast<size_t>(i)] = clients[static_cast<size_t>(i)]->Submit(RequestFor(i));
  }
  int done = 0;
  while (done < num_clients) {
    for (int i = 0; i < num_clients; i++) {
      const size_t idx = static_cast<size_t>(i);
      clients[idx]->Poll();
      if (!recorded[idx] && clients[idx]->done(handles[idx])) {
        recorded[idx] = true;
        done++;
        latencies_ms->push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - submitted[idx])
                .count());
      }
    }
    service.Poll();
  }
}

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) {
    return 0;
  }
  const size_t rank = std::min(values.size() - 1,
                               static_cast<size_t>(fraction * static_cast<double>(values.size())));
  std::nth_element(values.begin(), values.begin() + static_cast<long>(rank), values.end());
  return values[rank];
}

void BM_ServeCold(benchmark::State& state) {
  const int num_clients = static_cast<int>(state.range(0));
  TheDump();  // Materialize outside the timed region.
  std::vector<double> latencies_ms;
  int64_t jobs = 0;
  uint64_t engine_runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto service = std::make_unique<DiagnosisService>(BenchServeConfig());
    std::vector<std::unique_ptr<ServeClient>> clients;
    for (int i = 0; i < num_clients; i++) {
      auto [client_end, server_end] = MakePipePair();
      service->Attach(server_end);
      clients.push_back(std::make_unique<ServeClient>(client_end));
    }
    state.ResumeTiming();
    ServeRound(*service, clients, num_clients, &latencies_ms);
    jobs += num_clients;
    engine_runs = service->stats().engine_runs;
    state.PauseTiming();
    service.reset();  // Untimed teardown (joins the worker pool).
    state.ResumeTiming();
  }
  state.SetItemsProcessed(jobs);
  state.counters["p50_ms"] = Percentile(latencies_ms, 0.50);
  state.counters["p99_ms"] = Percentile(latencies_ms, 0.99);
  state.counters["engine_runs_per_round"] = static_cast<double>(engine_runs);
}
BENCHMARK(BM_ServeCold)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServeCacheHit(benchmark::State& state) {
  const int num_clients = static_cast<int>(state.range(0));
  // One service, warmed with every dump; timed iterations are pure hits.
  DiagnosisService service(BenchServeConfig());
  std::vector<std::unique_ptr<ServeClient>> clients;
  for (int i = 0; i < num_clients; i++) {
    auto [client_end, server_end] = MakePipePair();
    service.Attach(server_end);
    clients.push_back(std::make_unique<ServeClient>(client_end));
  }
  std::vector<double> warmup_ms;
  ServeRound(service, clients, num_clients, &warmup_ms);
  const uint64_t runs_after_warmup = service.stats().engine_runs;
  // Zero-copy admission bar: a cache hit must construct no owning Trace —
  // the canonical hash streams over the raw blob, so trace_io.parse_calls
  // (ticked only by Trace::ParseBinary) must not move during timed rounds.
  Counter* parse_calls = MetricRegistry::Global().GetCounter("trace_io.parse_calls");
  const uint64_t parses_after_warmup = parse_calls->value();

  std::vector<double> latencies_ms;
  int64_t jobs = 0;
  for (auto _ : state) {
    ServeRound(service, clients, num_clients, &latencies_ms);
    jobs += num_clients;
  }
  if (service.stats().engine_runs != runs_after_warmup) {
    state.SkipWithError("cache-hit round touched the engine");
    return;
  }
  if (parse_calls->value() != parses_after_warmup) {
    state.SkipWithError("cache-hit round constructed an owning Trace");
    return;
  }
  state.SetItemsProcessed(jobs);
  state.counters["p50_ms"] = Percentile(latencies_ms, 0.50);
  state.counters["p99_ms"] = Percentile(latencies_ms, 0.99);
}
BENCHMARK(BM_ServeCacheHit)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace rose

BENCHMARK_MAIN();
