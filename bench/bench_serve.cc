// Serve daemon throughput & latency (google-benchmark).
//
// Measures the diagnosis service end to end — submit over the in-process
// wire, validate, queue, diagnose, stream the result back — at 1/4/16
// concurrent clients, each submitting one distinct production dump per
// iteration. Two modes:
//
//   BM_ServeCold      fresh service every iteration: every job runs a real
//                     diagnosis. items_per_second is jobs/sec; the p50_ms /
//                     p99_ms counters are submit-to-schedule latency.
//   BM_ServeCacheHit  one warmed service: the same dumps resubmitted, every
//                     job answered from the canonical-hash cache with zero
//                     engine runs — the protocol + cache overhead floor.
//
// The service runs 4 jobs concurrently with single-threaded diagnosis per
// job, so cold throughput scales with client count until the 4 worker slots
// saturate: the acceptance bar is >= 2x jobs/sec at 4 clients vs 1 (needs
// >= 4 real cores; a 1-core host shows flat numbers). Cache-hit throughput
// should sit orders of magnitude above cold at every client count.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/router.h"
#include "src/harness/bug_registry.h"
#include "src/harness/runner.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/service.h"
#include "src/trace/trace_io.h"

namespace rose {
namespace {

constexpr int kMaxClients = 16;
constexpr int kServiceConcurrency = 4;

struct Dump {
  Profile profile;
  Trace trace;
  uint64_t seed = 0;
};

// One production dump, produced once and shared by every benchmark. Clients
// submit it under distinct diagnosis seeds, so every submission has its own
// cache key (no coalescing, no accidental hits) while the per-job engine
// work stays comparable — which is what makes the 1-vs-4-client throughput
// ratio meaningful.
const Dump& TheDump() {
  static const Dump* dump = [] {
    auto* out = new Dump();
    const BugSpec* spec = FindBug("RedisRaft-42");
    if (spec == nullptr) {
      std::abort();
    }
    out->seed = 100;
    BugRunner runner(spec);
    out->profile = runner.RunProfiling(out->seed);
    std::optional<Trace> trace = runner.ObtainProductionTrace(out->profile, out->seed + 17);
    if (!trace.has_value()) {
      std::abort();
    }
    out->trace = std::move(*trace);
    return out;
  }();
  return *dump;
}

SubmitRequest RequestFor(int client_index) {
  const Dump& dump = TheDump();
  SubmitRequest request;
  request.bug_id = "RedisRaft-42";
  request.seed = dump.seed + static_cast<uint64_t>(client_index);
  request.profile = dump.profile;
  request.trace = dump.trace;
  return request;
}

ServeConfig BenchServeConfig() {
  ServeConfig config;
  config.max_concurrent_jobs = kServiceConcurrency;
  config.queue_capacity = kMaxClients;
  // Job-level concurrency only: one engine thread per job keeps the
  // 1-vs-4-client comparison about the service, not intra-job parallelism.
  config.diagnosis.parallelism = 1;
  return config;
}

// Submits one dump per client and pumps everything to completion, recording
// each job's submit-to-schedule wall latency.
void ServeRound(DiagnosisService& service, std::vector<std::unique_ptr<ServeClient>>& clients,
                int num_clients, std::vector<double>* latencies_ms) {
  using Clock = std::chrono::steady_clock;
  std::vector<uint64_t> handles(static_cast<size_t>(num_clients));
  std::vector<Clock::time_point> submitted(static_cast<size_t>(num_clients));
  std::vector<bool> recorded(static_cast<size_t>(num_clients), false);
  for (int i = 0; i < num_clients; i++) {
    submitted[static_cast<size_t>(i)] = Clock::now();
    handles[static_cast<size_t>(i)] = clients[static_cast<size_t>(i)]->Submit(RequestFor(i));
  }
  int done = 0;
  while (done < num_clients) {
    for (int i = 0; i < num_clients; i++) {
      const size_t idx = static_cast<size_t>(i);
      clients[idx]->Poll();
      if (!recorded[idx] && clients[idx]->done(handles[idx])) {
        recorded[idx] = true;
        done++;
        latencies_ms->push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - submitted[idx])
                .count());
      }
    }
    service.Poll();
  }
}

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) {
    return 0;
  }
  const size_t rank = std::min(values.size() - 1,
                               static_cast<size_t>(fraction * static_cast<double>(values.size())));
  std::nth_element(values.begin(), values.begin() + static_cast<long>(rank), values.end());
  return values[rank];
}

void BM_ServeCold(benchmark::State& state) {
  const int num_clients = static_cast<int>(state.range(0));
  TheDump();  // Materialize outside the timed region.
  std::vector<double> latencies_ms;
  int64_t jobs = 0;
  uint64_t engine_runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto service = std::make_unique<DiagnosisService>(BenchServeConfig());
    std::vector<std::unique_ptr<ServeClient>> clients;
    for (int i = 0; i < num_clients; i++) {
      auto [client_end, server_end] = MakePipePair();
      service->Attach(server_end);
      clients.push_back(std::make_unique<ServeClient>(client_end));
    }
    state.ResumeTiming();
    ServeRound(*service, clients, num_clients, &latencies_ms);
    jobs += num_clients;
    engine_runs = service->stats().engine_runs;
    state.PauseTiming();
    service.reset();  // Untimed teardown (joins the worker pool).
    state.ResumeTiming();
  }
  state.SetItemsProcessed(jobs);
  state.counters["p50_ms"] = Percentile(latencies_ms, 0.50);
  state.counters["p99_ms"] = Percentile(latencies_ms, 0.99);
  state.counters["engine_runs_per_round"] = static_cast<double>(engine_runs);
}
BENCHMARK(BM_ServeCold)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServeCacheHit(benchmark::State& state) {
  const int num_clients = static_cast<int>(state.range(0));
  // One service, warmed with every dump; timed iterations are pure hits.
  DiagnosisService service(BenchServeConfig());
  std::vector<std::unique_ptr<ServeClient>> clients;
  for (int i = 0; i < num_clients; i++) {
    auto [client_end, server_end] = MakePipePair();
    service.Attach(server_end);
    clients.push_back(std::make_unique<ServeClient>(client_end));
  }
  std::vector<double> warmup_ms;
  ServeRound(service, clients, num_clients, &warmup_ms);
  const uint64_t runs_after_warmup = service.stats().engine_runs;
  // Zero-copy admission bar: a cache hit must construct no owning Trace —
  // the canonical hash streams over the raw blob, so trace_io.parse_calls
  // (ticked only by Trace::ParseBinary) must not move during timed rounds.
  Counter* parse_calls = MetricRegistry::Global().GetCounter("trace_io.parse_calls");
  const uint64_t parses_after_warmup = parse_calls->value();

  std::vector<double> latencies_ms;
  int64_t jobs = 0;
  for (auto _ : state) {
    ServeRound(service, clients, num_clients, &latencies_ms);
    jobs += num_clients;
  }
  if (service.stats().engine_runs != runs_after_warmup) {
    state.SkipWithError("cache-hit round touched the engine");
    return;
  }
  if (parse_calls->value() != parses_after_warmup) {
    state.SkipWithError("cache-hit round constructed an owning Trace");
    return;
  }
  state.SetItemsProcessed(jobs);
  state.counters["p50_ms"] = Percentile(latencies_ms, 0.50);
  state.counters["p99_ms"] = Percentile(latencies_ms, 0.99);
}
BENCHMARK(BM_ServeCacheHit)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Cluster mode (rose::cluster, BENCH_serve_cluster.json) ------------------
//
// The same end-to-end workload pushed through a ClusterRouter instead of a
// single daemon. Two benchmarks:
//
//   BM_ClusterCold    N shards (arg), 8 clients, each submitting a *distinct*
//                     production dump (distinct trace bytes -> distinct ring
//                     keys, so jobs spread across shards). Fresh cluster per
//                     iteration: every job is a cache miss running a real
//                     diagnosis. The acceptance bar is items_per_second at
//                     2 shards >= 1.5x the 1-shard row (needs >= 4 real
//                     cores; a 1-core host shows flat numbers).
//   BM_ClusterSkewed  2 shards, 8 clients, 6 of them submitting the same
//                     dump under distinct seeds — same trace hash, so the
//                     whole hot tenant lands on one shard while the other
//                     two jobs spread. p99_ms is the number to watch: it
//                     shows what a skewed tenant does to tail latency when
//                     placement is by content hash.

constexpr int kClusterClients = 8;
// Two engine slots per shard: 2 shards = 4 workers, so the 1-vs-2-shard
// scaling comparison fits a 4-core host (mirrors the BM_ServeCold bar).
constexpr int kClusterShardConcurrency = 2;

// Distinct production dumps (different production seeds -> different trace
// bytes -> different canonical hashes), so cluster jobs spread over the ring
// instead of all hashing onto one shard.
const std::vector<Dump>& ClusterDumps() {
  static const std::vector<Dump>* dumps = [] {
    auto* out = new std::vector<Dump>();
    const BugSpec* spec = FindBug("RedisRaft-42");
    if (spec == nullptr) {
      std::abort();
    }
    for (int i = 0; i < kClusterClients; i++) {
      Dump dump;
      dump.seed = 100 + static_cast<uint64_t>(i);
      BugRunner runner(spec);
      dump.profile = runner.RunProfiling(dump.seed);
      std::optional<Trace> trace =
          runner.ObtainProductionTrace(dump.profile, dump.seed + 17);
      if (!trace.has_value()) {
        std::abort();
      }
      dump.trace = std::move(*trace);
      out->push_back(std::move(dump));
    }
    return out;
  }();
  return *dumps;
}

struct BenchCluster {
  ClusterRouter router;  // Memory-only journal: the bench times the data plane.
  std::vector<std::unique_ptr<DiagnosisService>> shards;
  std::vector<std::unique_ptr<ServeClient>> clients;
};

std::unique_ptr<BenchCluster> MakeBenchCluster(int num_shards, int num_clients) {
  auto cluster = std::make_unique<BenchCluster>();
  for (int s = 0; s < num_shards; s++) {
    ServeConfig config;
    config.max_concurrent_jobs = kClusterShardConcurrency;
    config.queue_capacity = static_cast<size_t>(num_clients);
    config.diagnosis.parallelism = 1;
    auto service = std::make_unique<DiagnosisService>(config);
    auto [router_end, service_end] = MakePipePair();
    service->Attach(service_end);
    cluster->router.AttachShard("shard" + std::to_string(s), router_end);
    cluster->shards.push_back(std::move(service));
  }
  for (int i = 0; i < num_clients; i++) {
    auto [client_end, router_end] = MakePipePair();
    cluster->router.AttachClient(router_end);
    cluster->clients.push_back(std::make_unique<ServeClient>(client_end));
  }
  return cluster;
}

void ClusterRound(BenchCluster& cluster, const std::vector<SubmitRequest>& requests,
                  std::vector<double>* latencies_ms) {
  using Clock = std::chrono::steady_clock;
  const size_t n = requests.size();
  std::vector<uint64_t> handles(n);
  std::vector<Clock::time_point> submitted(n);
  std::vector<bool> recorded(n, false);
  for (size_t i = 0; i < n; i++) {
    submitted[i] = Clock::now();
    handles[i] = cluster.clients[i]->Submit(requests[i]);
  }
  size_t done = 0;
  while (done < n) {
    for (size_t i = 0; i < n; i++) {
      cluster.clients[i]->Poll();
      if (!recorded[i] && cluster.clients[i]->done(handles[i])) {
        recorded[i] = true;
        done++;
        latencies_ms->push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - submitted[i])
                .count());
      }
    }
    cluster.router.Poll();
    for (auto& shard : cluster.shards) {
      shard->Poll();
    }
  }
}

void BM_ClusterCold(benchmark::State& state) {
  const int num_shards = static_cast<int>(state.range(0));
  const std::vector<Dump>& dumps = ClusterDumps();  // Materialize untimed.
  std::vector<SubmitRequest> requests;
  for (int i = 0; i < kClusterClients; i++) {
    const Dump& dump = dumps[static_cast<size_t>(i)];
    SubmitRequest request;
    request.bug_id = "RedisRaft-42";
    request.seed = dump.seed;
    request.profile = dump.profile;
    request.trace = dump.trace;
    requests.push_back(std::move(request));
  }
  std::vector<double> latencies_ms;
  int64_t jobs = 0;
  uint64_t redispatches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto cluster = MakeBenchCluster(num_shards, kClusterClients);
    state.ResumeTiming();
    ClusterRound(*cluster, requests, &latencies_ms);
    jobs += kClusterClients;
    redispatches = cluster->router.stats().redispatches;
    state.PauseTiming();
    cluster.reset();  // Untimed teardown (joins every shard's worker pool).
    state.ResumeTiming();
  }
  state.SetItemsProcessed(jobs);
  state.counters["p50_ms"] = Percentile(latencies_ms, 0.50);
  state.counters["p99_ms"] = Percentile(latencies_ms, 0.99);
  state.counters["redispatches"] = static_cast<double>(redispatches);
}
BENCHMARK(BM_ClusterCold)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ClusterSkewed(benchmark::State& state) {
  const int num_shards = static_cast<int>(state.range(0));
  const std::vector<Dump>& dumps = ClusterDumps();
  // Skewed tenant mix: six submissions of one dump (same trace hash -> one
  // hot shard) under distinct seeds, two of other dumps for background load.
  std::vector<SubmitRequest> requests;
  for (int i = 0; i < kClusterClients; i++) {
    const bool hot = i < 6;
    const Dump& dump = dumps[hot ? 0 : static_cast<size_t>(i)];
    SubmitRequest request;
    request.bug_id = "RedisRaft-42";
    request.seed = dump.seed + (hot ? 1000 + static_cast<uint64_t>(i) : 0);
    request.profile = dump.profile;
    request.trace = dump.trace;
    requests.push_back(std::move(request));
  }
  std::vector<double> latencies_ms;
  int64_t jobs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto cluster = MakeBenchCluster(num_shards, kClusterClients);
    state.ResumeTiming();
    ClusterRound(*cluster, requests, &latencies_ms);
    jobs += kClusterClients;
    state.PauseTiming();
    cluster.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(jobs);
  state.counters["p50_ms"] = Percentile(latencies_ms, 0.50);
  state.counters["p99_ms"] = Percentile(latencies_ms, 0.99);
}
BENCHMARK(BM_ClusterSkewed)->Arg(2)->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Streaming ingestion (rose::stream, BENCH_stream.json) -------------------
//
// Three benchmarks behind the paper's "always-on window" latency claim:
//
//   BM_StreamIngest        pure data-plane throughput: N clients (arg) each
//                          hold one stream session and pump event frames at a
//                          16 KiB resident window, so the eviction path runs
//                          constantly. bytes_per_second is the number; the
//                          4-client row additionally asserts the per-tenant
//                          memory bound — peak resident bytes across all
//                          sessions <= clients x 2 x window (the factor 2
//                          covers the un-evictable pool plus one in-flight
//                          frame batch of transient overshoot).
//   BM_StreamOracleLatency the streamed window is already resident when the
//                          oracle fires: timed region = oracle-mark frame ->
//                          first progress frame of the diagnosis.
//   BM_DumpSubmitBaseline  the classic workflow's same interval: timed region
//                          = kSubmit (the full dump blob over the wire, with
//                          its admission hash + validation) -> first progress
//                          frame. The acceptance bar is BM_StreamOracleLatency
//                          strictly below this row — at the oracle the stream
//                          path ships an 18-byte mark where the baseline
//                          ships the whole window.
//
// Both latency rows diagnose the same window: the RedisRaft-42 dump with its
// string pool padded to a few MiB (production windows are string-heavy; the
// padding rides the wire, the CRCs, and the admission hash like any pool
// content, while the event stream — and so the diagnosis — is unchanged).
// The baseline's blob is prebuilt untimed, as if the dump file already
// existed when the oracle fired: the bar is conservative — the baseline is
// not even charged for serializing the window. Every iteration uses a
// distinct diagnosis seed, so nothing is ever answered from the cache (both
// rows pay one full cold diagnosis untimed).

// Pumps both ends until the global stream.bytes_ingested counter reaches
// `target` (i.e. the service's ingestor actually consumed the queued bytes).
void PumpUntilIngested(DiagnosisService& service,
                       std::vector<std::unique_ptr<ServeClient>>& clients,
                       uint64_t target) {
  Counter* ingested = MetricRegistry::Global().GetCounter("stream.bytes_ingested");
  while (ingested->value() < target) {
    for (auto& client : clients) {
      client->Poll();
    }
    service.Poll();
  }
}

void BM_StreamIngest(benchmark::State& state) {
  const int num_clients = static_cast<int>(state.range(0));
  const Dump& dump = TheDump();
  const std::string profile_text = SerializeProfile(dump.profile);

  ServeConfig config = BenchServeConfig();
  // A window far smaller than the pumped volume: every iteration exercises
  // decode + window eviction, not just buffer appends. No spill dir — the
  // throughput row measures the in-memory data plane (the spill ring is
  // covered by stream_test).
  config.stream_window_bytes = 16u << 10;
  DiagnosisService service(config);
  std::vector<std::unique_ptr<ServeClient>> clients;
  std::vector<uint64_t> handles;
  for (int i = 0; i < num_clients; i++) {
    auto [client_end, server_end] = MakePipePair();
    service.Attach(server_end);
    clients.push_back(std::make_unique<ServeClient>(client_end));
    handles.push_back(clients.back()->OpenStream(
        "RedisRaft-42", dump.seed + static_cast<uint64_t>(i), "bench", profile_text));
  }
  // One writer per session over the shared dump pool: re-Adding the same
  // events each iteration yields an endless well-formed stream (fresh delta
  // timestamps, no repeated header), which is what an always-on tracer
  // produces.
  std::vector<std::string> wires(static_cast<size_t>(num_clients));
  std::vector<std::unique_ptr<TraceWriter>> writers;
  for (int i = 0; i < num_clients; i++) {
    writers.push_back(std::make_unique<TraceWriter>(&wires[static_cast<size_t>(i)],
                                                    &dump.trace.pool()));
  }
  Counter* ingested = MetricRegistry::Global().GetCounter("stream.bytes_ingested");
  uint64_t target = ingested->value();

  // The dump is small; batch several copies per iteration so the timed
  // region is dominated by steady-state ingestion.
  constexpr int kBatchesPerIteration = 16;
  int64_t bytes = 0;
  for (auto _ : state) {
    for (int b = 0; b < kBatchesPerIteration; b++) {
      for (int i = 0; i < num_clients; i++) {
        const size_t idx = static_cast<size_t>(i);
        for (const TraceEvent& event : dump.trace.events()) {
          writers[idx]->Add(event);
        }
        writers[idx]->Flush();
        clients[idx]->StreamData(handles[idx], wires[idx]);
        target += wires[idx].size();
        bytes += static_cast<int64_t>(wires[idx].size());
        wires[idx].clear();
      }
      PumpUntilIngested(service, clients, target);
    }
  }
  state.SetBytesProcessed(bytes);
  state.counters["peak_resident_bytes"] =
      static_cast<double>(service.stream_peak_resident_bytes());
  double throttles = 0;
  for (auto& client : clients) {
    throttles += static_cast<double>(client->throttle_events());
  }
  state.counters["throttle_events"] = throttles;
  // The multi-tenant memory bound (ISSUE acceptance): resident footprint
  // stays proportional to sessions x window, never to bytes pumped.
  const size_t bound =
      static_cast<size_t>(num_clients) * 2 * config.stream_window_bytes;
  if (service.stream_peak_resident_bytes() > bound) {
    state.SkipWithError("stream resident bytes exceeded the per-tenant bound");
    return;
  }
  for (int i = 0; i < num_clients; i++) {
    clients[static_cast<size_t>(i)]->CloseStream(handles[static_cast<size_t>(i)]);
  }
}
BENCHMARK(BM_StreamIngest)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

// Pumps until at least one progress frame arrives for `handle` (the shared
// stop condition of the two latency rows), leaving the rest of the job to an
// untimed drain.
void PumpUntilFirstProgress(DiagnosisService& service, ServeClient& client,
                            uint64_t handle) {
  for (;;) {
    client.Poll();
    service.Poll();
    if (!client.TakeProgress(handle).empty() || client.done(handle)) {
      return;
    }
  }
}

void DrainJob(DiagnosisService& service, ServeClient& client, uint64_t handle) {
  while (!client.done(handle)) {
    client.Poll();
    service.Poll();
  }
}

// The latency rows' shared workload: the real dump with its string pool
// padded by `pad_bytes` of unique, unreferenced strings (inserted as one
// extra pool frame ahead of the container's end frame, ids continuing the
// stream order). Decoders intern the padding like any pool delta; no event
// references it, so the diagnosis stays the stock RedisRaft-42 one.
std::string PaddedBlob(const Trace& trace, size_t pad_bytes) {
  std::string blob = trace.SerializeBinary();
  constexpr size_t kPadString = 4096;
  const size_t count = (pad_bytes + kPadString - 1) / kPadString;
  std::string payload;
  PutVarint(&payload, trace.pool().size());  // first_id: continue the stream.
  PutVarint(&payload, count);
  for (size_t i = 0; i < count; i++) {
    // Unique per entry — interning must not collapse two pad strings.
    std::string filler = "pad-" + std::to_string(i) + "-";
    filler.resize(kPadString, 'x');
    PutVarint(&payload, filler.size());
    payload += filler;
  }
  std::string framed;
  AppendRtrcFrame(&framed, kFramePool, payload);
  // Splice ahead of the trailing end frame (empty payload, header only).
  blob.insert(blob.size() - kRtrcFrameHeaderSize, framed);
  return blob;
}

constexpr size_t kLatencyPadBytes = 4u << 20;

void BM_StreamOracleLatency(benchmark::State& state) {
  const Dump& dump = TheDump();
  const std::string profile_text = SerializeProfile(dump.profile);
  const std::string blob = PaddedBlob(dump.trace, kLatencyPadBytes);
  ServeConfig config = BenchServeConfig();
  // The window must hold the padded pool (pool bytes are resident cost and
  // cannot be evicted).
  config.stream_window_bytes = kLatencyPadBytes + (4u << 20);
  DiagnosisService service(config);
  auto [client_end, server_end] = MakePipePair();
  service.Attach(server_end);
  ServeClient client(client_end);

  std::string oracle_frame;
  OracleMark mark;
  mark.detail = "bench";
  AppendRtrcFrame(&oracle_frame, kFrameOracleMark, EncodeOracleMark(mark));

  uint64_t seed = 5000;  // Distinct per iteration: never a cache hit.
  for (auto _ : state) {
    state.PauseTiming();
    const uint64_t handle =
        client.OpenStream("RedisRaft-42", seed++, "bench", profile_text);
    client.StreamData(handle, blob);
    // Pre-ingest the whole window untimed — the streamed bytes are resident
    // on the server before the failure fires, which is the scenario.
    Counter* ingested = MetricRegistry::Global().GetCounter("stream.bytes_ingested");
    const uint64_t target = ingested->value() + blob.size();
    while (ingested->value() < target) {
      client.Poll();
      service.Poll();
    }
    state.ResumeTiming();

    client.StreamData(handle, oracle_frame);
    PumpUntilFirstProgress(service, client, handle);

    state.PauseTiming();
    DrainJob(service, client, handle);
    client.CloseStream(handle);
    while (service.stream_sessions() > 0) {
      client.Poll();
      service.Poll();
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_StreamOracleLatency)->Iterations(5)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DumpSubmitBaseline(benchmark::State& state) {
  const Dump& dump = TheDump();
  const std::string profile_text = SerializeProfile(dump.profile);
  // Prebuilt untimed: the dump artifact already exists when the oracle
  // fires. The baseline is charged only for shipping + admitting it.
  const std::string blob = PaddedBlob(dump.trace, kLatencyPadBytes);
  DiagnosisService service(BenchServeConfig());
  auto [client_end, server_end] = MakePipePair();
  service.Attach(server_end);
  ServeClient client(client_end);

  uint64_t seed = 6000;  // Distinct per iteration: never a cache hit.
  for (auto _ : state) {
    // Timed: what the classic workflow pays between "oracle fired" and the
    // diagnosis starting — the whole window over the wire, then admission
    // (hash + validation) on the far side.
    const uint64_t handle =
        client.SubmitBlob("RedisRaft-42", seed++, "bench", profile_text, blob);
    PumpUntilFirstProgress(service, client, handle);

    state.PauseTiming();
    DrainJob(service, client, handle);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_DumpSubmitBaseline)->Iterations(5)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace rose

BENCHMARK_MAIN();
