// Table 1 — Bugs reproduced by Rose.
//
// Runs the full Rose pipeline (profile -> production trace -> diagnose ->
// reproduce) on all 20 bugs and prints the paper's columns: faults injected,
// replay rate (RR%), schedules generated, total runs, total time (virtual
// minutes), and FR% (faults removed by the clean-trace diff), alongside the
// paper's reported values for comparison.
#include <cstdio>
#include <map>
#include <string>

#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

namespace {

struct PaperRow {
  const char* faults;
  const char* rr;
  const char* sched;
  const char* runs;
  const char* minutes;
  const char* fr;
};

const std::map<std::string, PaperRow>& PaperRows() {
  static const std::map<std::string, PaperRow> rows = {
      {"RedisRaft-42", {"PS(Crash)", "100", "1", "11", "22", "60"}},
      {"RedisRaft-43", {"PS(Crash)*3 + ND + PS(Crash)", "100", "19", "29", "58", "11"}},
      {"RedisRaft-51", {"PS(Pause)*3", "90±8", "10±1", "28±4", "56±7", "7"}},
      {"RedisRaft-NEW", {"ND + PS(Crash) + PS(Crash)", "100", "22", "32", "70", "7"}},
      {"RedisRaft-NEW2", {"ND", "100", "1", "11", "11", "25"}},
      {"Redpanda-3003", {"5*PS(Pause)", "70±14", "12±1", "81±20", "324±82", "38"}},
      {"Redpanda-3039", {"5*PS(Pause)", "70±14", "12±1", "81±20", "324±82", "38"}},
      {"Zookeeper-2247", {"SCF(write)", "100", "5", "15", "15", "80"}},
      {"Zookeeper-3006", {"SCF(read)", "100", "1", "11", "5", "60"}},
      {"Zookeeper-3157", {"SCF(read)", "100", "1", "11", "20", "82"}},
      {"Zookeeper-4203", {"SCF(accept)", "73±16", "16±3", "34±12", "34±12", "83"}},
      {"HDFS-4233", {"SCF(openat)", "100", "1", "11", "11", "82"}},
      {"HDFS-12070", {"SCF(fstat)", "100", "20", "30", "77", "83"}},
      {"HDFS-15032", {"SCF(connect)", "100", "26", "36", "57", "91"}},
      {"HDFS-16332", {"SCF(read)", "100", "1", "11", "14", "46"}},
      {"Kafka-12508", {"SCF(openat)", "100", "1", "11", "22", "83"}},
      {"HBASE-19608", {"SCF(openat)", "100", "1", "11", "11", "85"}},
      {"MongoDB-2.4.3", {"2*ND", "100", "1", "11", "22", "16"}},
      {"MongoDB-3.2.10", {"ND", "100", "1", "11", "22", "50"}},
      {"Tendermint-5839", {"SCF(openat)", "100", "1", "11", "5", "80"}},
  };
  return rows;
}

}  // namespace

int main() {
  std::printf("=== Table 1: bugs reproduced by Rose (paper-reported vs measured) ===\n\n");
  std::printf("%-16s | %-6s | %8s | %6s | %6s | %8s | %5s | %s\n", "Bug", "Status",
              "RR%%", "Sched", "#R", "Time(m)", "FR%%", "Faults injected");
  std::printf("%-16s | %-6s | %8s | %6s | %6s | %8s | %5s |   (paper row below)\n", "", "",
              "", "", "", "", "");
  std::printf("-----------------+--------+----------+--------+--------+----------+-------+----"
              "-------------------\n");

  int reproduced = 0;
  int full_rate = 0;
  int first_schedule = 0;
  for (const rose::BugSpec* spec : rose::AllBugs()) {
    rose::RoseConfig config;
    config.seed = 42;
    const rose::RoseReport report = rose::ReproduceBugRobust(*spec, config);
    const bool ok = report.reproduced();
    if (ok) {
      reproduced++;
      if (report.replay_rate() >= 99.5) {
        full_rate++;
      }
      if (report.schedules() <= 2) {  // Level 1, possibly with one retry.
        first_schedule++;
      }
    }
    std::printf("%-16s | %-6s | %8.0f | %6d | %6d | %8.1f | %5.0f | %s\n", spec->id.c_str(),
                ok ? "OK" : "FAIL", report.replay_rate(), report.schedules(), report.runs(),
                report.minutes(), report.fr_percent(),
                report.diagnosis.fault_summary.c_str());
    auto paper = PaperRows().find(spec->id);
    if (paper != PaperRows().end()) {
      std::printf("%-16s | paper  | %8s | %6s | %6s | %8s | %5s | %s\n", "", paper->second.rr,
                  paper->second.sched, paper->second.runs, paper->second.minutes,
                  paper->second.fr, paper->second.faults);
    }
  }
  std::printf("\nsummary: %d/20 reproduced (paper: 20/22 traces), %d with 100%% replay rate "
              "(paper: 16/20), %d at the first schedule (paper: 10/20)\n",
              reproduced, full_rate, first_schedule);
  return reproduced == 20 ? 0 : 1;
}
