// Table 2 — Cost of the Rose tracer versus the Full and IO-content
// alternatives.
//
// A 3-node RaftKV cluster (the mini Redis stand-in) runs a YCSB-A style
// 50/50 read/update workload for 60 virtual seconds under each tracer mode
// plus a no-tracer baseline. Reported per mode: events matching the tracer
// criteria, events saved in the window, window memory, trace processing time
// (real host seconds for the dump post-processing), and application-level
// overhead (throughput degradation vs the baseline).
#include <cstdio>

#include "src/apps/raftkv/raftkv.h"
#include "src/harness/world.h"
#include "src/trace/tracer.h"
#include "src/workload/kv_client.h"

namespace {

using namespace rose;

struct ModeResult {
  uint64_t events_seen = 0;
  uint64_t events_saved = 0;
  int64_t memory_bytes = 0;
  double processing_seconds = 0;
  uint64_t ops_completed = 0;
  uint64_t syscalls = 0;
  SimTime virtual_overhead = 0;
};

ModeResult RunMode(bool with_tracer, TracerMode mode, uint64_t seed) {
  SimWorld world(seed);
  static const BinaryInfo binary = BuildRaftKvBinary();
  ClusterConfig config;
  config.seed = seed;
  Cluster cluster(&world.kernel, &world.network, &binary, config);
  RaftKvOptions options;
  options.cluster_size = 3;
  for (int i = 0; i < options.cluster_size; i++) {
    cluster.AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<RaftKvNode>(c, id, options);
    });
  }
  KvClientOptions client_options;
  client_options.server_count = options.cluster_size;
  client_options.op_interval = Millis(10);  // YCSB-style load.
  client_options.read_fraction = 0.5;       // Workload A: 50% reads, 50% updates.
  client_options.zipfian_keys = true;       // YCSB zipfian request distribution.
  std::vector<NodeId> clients;
  for (int i = 0; i < 4; i++) {
    clients.push_back(cluster.AddNode([client_options](Cluster* c, NodeId id) {
      return std::make_unique<KvClient>(c, id, client_options);
    }));
  }

  std::optional<Tracer> tracer;
  if (with_tracer) {
    TracerConfig tracer_config;
    tracer_config.mode = mode;
    tracer.emplace(&world.kernel, &world.network, tracer_config);
    tracer->Attach();
  }
  cluster.Start();
  world.loop.RunUntil(Seconds(60));

  ModeResult result;
  for (NodeId id : clients) {
    result.ops_completed += dynamic_cast<KvClient*>(cluster.node(id))->ops_completed();
  }
  if (tracer.has_value()) {
    tracer->Dump();
    const TracerStats stats = tracer->stats();
    result.events_seen = stats.events_seen;
    result.events_saved = stats.events_saved;
    result.memory_bytes = stats.memory_bytes;
    result.processing_seconds = stats.dump_processing_seconds;
    result.syscalls = stats.syscalls_observed;
    result.virtual_overhead = stats.virtual_overhead;
  }
  return result;
}

std::string Human(int64_t bytes) {
  char buffer[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buffer, sizeof(buffer), "%.0f MB", static_cast<double>(bytes) / 1048576.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f KB", static_cast<double>(bytes) / 1024.0);
  }
  return buffer;
}

}  // namespace

int main() {
  std::printf("=== Table 2: cost of the Rose tracer vs alternatives ===\n");
  std::printf("(3-node RaftKV cluster, YCSB-A style 50/50 workload, 60 virtual seconds)\n\n");

  const uint64_t seed = 7;
  const ModeResult baseline = RunMode(false, TracerMode::kRose, seed);
  const ModeResult rose_mode = RunMode(true, TracerMode::kRose, seed);
  const ModeResult full = RunMode(true, TracerMode::kFull, seed);
  const ModeResult io_content = RunMode(true, TracerMode::kIoContent, seed);

  // The paper measures Redis throughput degradation; Redis is syscall-bound,
  // so the equivalent in the simulator is the tracer's added time relative to
  // the kernel-boundary time it instruments (the workload here is paced by
  // virtual network latency, which the tracer cannot slow down).
  auto overhead = [&](const ModeResult& result) {
    const double kernel_time =
        static_cast<double>(result.syscalls) * static_cast<double>(Micros(2));
    if (kernel_time <= 0) {
      return 0.0;
    }
    return 100.0 * static_cast<double>(result.virtual_overhead) /
           (kernel_time + static_cast<double>(result.virtual_overhead));
  };

  std::printf("%-11s | %10s | %10s | %8s | %8s | %s\n", "Approach", "Events", "Saved",
              "Memory", "Time(s)", "Overhead");
  std::printf("------------+------------+------------+----------+----------+---------\n");
  std::printf("%-11s | %10llu | %10llu | %8s | %8.3f | %5.1f%%\n", "rose",
              static_cast<unsigned long long>(rose_mode.events_seen),
              static_cast<unsigned long long>(rose_mode.events_saved),
              Human(rose_mode.memory_bytes).c_str(), rose_mode.processing_seconds,
              overhead(rose_mode));
  std::printf("%-11s | %10llu | %10llu | %8s | %8.3f | %5.1f%%\n", "full",
              static_cast<unsigned long long>(full.events_seen),
              static_cast<unsigned long long>(full.events_saved),
              Human(full.memory_bytes).c_str(), full.processing_seconds, overhead(full));
  std::printf("%-11s | %10llu | %10llu | %8s | %8.3f | %5.1f%%\n", "io-content",
              static_cast<unsigned long long>(io_content.events_seen),
              static_cast<unsigned long long>(io_content.events_saved),
              Human(io_content.memory_bytes).c_str(), io_content.processing_seconds,
              overhead(io_content));

  std::printf("\npaper:      |      5,444 |      5,444 |   712 KB |     0.06 |   2.6%%\n");
  std::printf("paper full: |        14M |  1,048,576 |   151 MB |    17    |   3.9%%\n");
  std::printf("paper io:   |         9M |  1,048,576 |   281 MB |    17    |   4.9%%\n");
  std::printf("\nbaseline throughput: %llu ops; rose %llu, full %llu, io-content %llu\n",
              static_cast<unsigned long long>(baseline.ops_completed),
              static_cast<unsigned long long>(rose_mode.ops_completed),
              static_cast<unsigned long long>(full.ops_completed),
              static_cast<unsigned long long>(io_content.ops_completed));

  // Shape checks: rose sees orders of magnitude fewer events and costs less
  // than full, which costs less than io-content.
  const bool shape_holds = rose_mode.events_seen * 10 < full.events_seen &&
                           overhead(rose_mode) < overhead(full) &&
                           overhead(full) <= overhead(io_content) + 0.5;
  std::printf("\nshape (rose << full <= io-content): %s\n", shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
