// Table 3 — Effectiveness of the function-frequency heuristic.
//
// For the bugs whose diagnosis needs application-function context, run the
// trigger scenario twice: once tracing EVERY function from the developer-
// provided files, once tracing only the functions the profiler classified as
// infrequent, and compare the number of uprobe hits (traced function
// invocations).
#include <cstdio>
#include <set>

#include "src/harness/bug_registry.h"
#include "src/harness/runner.h"

namespace {

using namespace rose;

struct Row {
  uint64_t all_functions = 0;
  uint64_t infrequent_only = 0;
};

Row Measure(const BugSpec& spec, uint64_t seed) {
  BugRunner runner(&spec);
  const Profile profile = runner.RunProfiling(seed);

  auto run_with = [&](const std::set<int32_t>& monitored) {
    RunOptions options;
    options.seed = seed + 1;
    options.duration = spec.run_duration;
    if (spec.manual_production.has_value()) {
      options.schedule = &*spec.manual_production;
    } else {
      options.with_nemesis = true;
    }
    options.tracer_config.monitored_functions = monitored;
    // Leave options.profile unset so the tracer keeps `monitored` as-is.
    const RunOutcome outcome = runner.RunOnce(options);
    (void)outcome;
    return outcome.tracer_stats.function_probe_hits;
  };

  std::set<int32_t> all;
  for (int32_t id : spec.binary->FunctionsInFiles(spec.relevant_files)) {
    all.insert(id);
  }
  Row row;
  row.all_functions = run_with(all);
  row.infrequent_only = run_with(profile.monitored_functions);
  return row;
}

}  // namespace

int main() {
  std::printf("=== Table 3: effectiveness of the function-frequency heuristic ===\n");
  std::printf("(uprobe hits while running each bug's trigger scenario)\n\n");
  std::printf("%-16s | %14s | %18s | %s\n", "Bug", "All functions", "Only infrequent",
              "Reduction");
  std::printf("-----------------+----------------+--------------------+----------\n");

  const char* bug_ids[] = {"RedisRaft-43", "RedisRaft-51", "RedisRaft-NEW", "Redpanda-3003",
                           "Redpanda-3039"};
  bool all_reduced = true;
  for (const char* id : bug_ids) {
    const BugSpec* spec = FindBug(id);
    if (spec == nullptr) {
      continue;
    }
    const Row row = Measure(*spec, 42);
    const double reduction =
        row.all_functions == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(row.infrequent_only) /
                                 static_cast<double>(row.all_functions));
    std::printf("%-16s | %14llu | %18llu | %7.1f%%\n", id,
                static_cast<unsigned long long>(row.all_functions),
                static_cast<unsigned long long>(row.infrequent_only), reduction);
    if (reduction < 50.0) {
      all_reduced = false;
    }
  }
  std::printf("\npaper: RedisRaft-43 1,699,348 -> 3,677 (99.7%%); RedisRaft-51 214,552 -> "
              "2,121 (99%%);\n       RedisRaft-NEW 3,023,112 -> 4,895 (99.8%%); "
              "Redpanda-3003/3039 1,749,429 -> 11,842 (99.3%%)\n");
  std::printf("\nshape (heuristic removes the bulk of uprobe traffic): %s\n",
              all_reduced ? "HOLDS" : "VIOLATED");
  return all_reduced ? 0 : 1;
}
