// Trace I/O benchmark: text vs binary serialization of a full production
// window (1M events, the paper's dump size). Host-time measurements plus
// byte-size counters — the binary container's acceptance bar is parse >= 2x
// faster than text and encoded size <= 50% of text.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/analyze/trace_validator.h"
#include "src/common/rng.h"
#include "src/trace/mapped_trace.h"
#include "src/trace/mmap_file.h"
#include "src/trace/trace_io.h"

namespace rose {
namespace {

constexpr int kWindowEvents = 1 << 20;  // The production ring-window size.

// A window shaped like a real dump: mostly AF events with SCF/ND/PS mixed
// in, strings drawn from a realistic working set (dozens of paths and ips,
// heavily repeated).
const Trace& Window() {
  static const Trace trace = [] {
    Rng rng(2026);
    Trace t;
    t.events().reserve(kWindowEvents);
    SimTime ts = 0;
    for (int i = 0; i < kWindowEvents; i++) {
      ts += static_cast<SimTime>(rng.NextBelow(2000));
      TraceEvent event;
      event.ts = ts;
      event.node = static_cast<NodeId>(rng.NextBelow(5));
      const uint64_t kind = rng.NextBelow(100);
      if (kind < 70) {
        event.type = EventType::kAF;
        event.info = AfInfo{static_cast<Pid>(100 + event.node),
                            static_cast<int32_t>(rng.NextBelow(48))};
      } else if (kind < 90) {
        event.type = EventType::kSCF;
        event.info = ScfInfo{static_cast<Pid>(100 + event.node), Sys::kWrite,
                             static_cast<int32_t>(rng.NextBelow(64)),
                             t.Intern("/data/store/segment." + std::to_string(rng.NextBelow(40))),
                             Err::kEIO};
      } else if (kind < 96) {
        event.type = EventType::kND;
        event.info = NdInfo{t.Intern("10.0.0." + std::to_string(1 + rng.NextBelow(5))),
                            t.Intern("10.0.0." + std::to_string(1 + rng.NextBelow(5))),
                            static_cast<SimTime>(rng.NextBelow(9'000'000)),
                            rng.NextBelow(2000)};
      } else {
        event.type = EventType::kPS;
        event.info = PsInfo{static_cast<Pid>(100 + event.node),
                            rng.NextBool(0.5) ? ProcState::kCrashed : ProcState::kPaused,
                            static_cast<SimTime>(rng.NextBelow(5'000'000))};
      }
      t.Append(event);
    }
    return t;
  }();
  return trace;
}

void BM_SerializeText(benchmark::State& state) {
  const Trace& window = Window();
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = window.Serialize();
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.SetItemsProcessed(state.iterations() * kWindowEvents);
  state.counters["encoded_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SerializeText)->Unit(benchmark::kMillisecond);

void BM_SerializeBinary(benchmark::State& state) {
  const Trace& window = Window();
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string encoded = window.SerializeBinary();
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded.data());
  }
  state.SetItemsProcessed(state.iterations() * kWindowEvents);
  state.counters["encoded_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SerializeBinary)->Unit(benchmark::kMillisecond);

void BM_ParseText(benchmark::State& state) {
  const std::string text = Window().Serialize();
  for (auto _ : state) {
    const Trace parsed = Trace::Parse(text);
    benchmark::DoNotOptimize(parsed.size());
  }
  state.SetItemsProcessed(state.iterations() * kWindowEvents);
}
BENCHMARK(BM_ParseText)->Unit(benchmark::kMillisecond);

void BM_ParseBinary(benchmark::State& state) {
  const std::string encoded = Window().SerializeBinary();
  for (auto _ : state) {
    const Trace parsed = Trace::ParseBinary(encoded);
    benchmark::DoNotOptimize(parsed.size());
  }
  state.SetItemsProcessed(state.iterations() * kWindowEvents);
}
BENCHMARK(BM_ParseBinary)->Unit(benchmark::kMillisecond);

void BM_StreamBinary(benchmark::State& state) {
  // Streaming iteration without materializing a Trace — the reader's
  // zero-copy path (frame_events_ reused per frame).
  const std::string encoded = Window().SerializeBinary();
  for (auto _ : state) {
    TraceReader reader(encoded);
    TraceEvent event;
    uint64_t count = 0;
    while (reader.Next(&event)) {
      count++;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kWindowEvents);
}
BENCHMARK(BM_StreamBinary)->Unit(benchmark::kMillisecond);

// The binary window written to disk once — the on-disk dump both load-path
// benchmarks read. Lives for the process; size printed by the first user.
const std::string& WindowFile() {
  static const std::string path = [] {
    const std::string p =
        (std::filesystem::temp_directory_path() / "rose_bench_window.trc").string();
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    const std::string encoded = Window().SerializeBinary();
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    return p;
  }();
  return path;
}

void BM_LoadFileHeap(benchmark::State& state) {
  // The pre-mmap pipeline: read the whole file into a heap buffer, then
  // ParseBinary copies every pool string again into a private arena.
  const std::string& path = WindowFile();
  for (auto _ : state) {
    std::vector<Diagnostic> diags;
    const Trace loaded = LoadTraceFile(path, &diags);
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * kWindowEvents);
}
BENCHMARK(BM_LoadFileHeap)->Unit(benchmark::kMillisecond);

void BM_LoadFileMmap(benchmark::State& state) {
  // Zero-copy pipeline: mmap + external-arena decode. Same event vector,
  // pool strings stay in the mapping. Compare against BM_LoadFileHeap.
  const std::string& path = WindowFile();
  for (auto _ : state) {
    const MappedTrace mapped = MappedTrace::OpenFile(path);
    benchmark::DoNotOptimize(mapped.event_count());
  }
  state.SetItemsProcessed(state.iterations() * kWindowEvents);
}
BENCHMARK(BM_LoadFileMmap)->Unit(benchmark::kMillisecond);

void BM_OpenToFirstEventHeap(benchmark::State& state) {
  // Latency to the FIRST usable event via the owning loader — pays the full
  // read + parse of all 1M events before event 0 is visible.
  const std::string& path = WindowFile();
  for (auto _ : state) {
    std::vector<Diagnostic> diags;
    const Trace loaded = LoadTraceFile(path, &diags);
    benchmark::DoNotOptimize(loaded[0].ts);
  }
}
BENCHMARK(BM_OpenToFirstEventHeap)->Unit(benchmark::kMillisecond);

void BM_OpenToFirstEventMmap(benchmark::State& state) {
  // Latency to the first event via mmap + streaming reader: map the file,
  // decode only the leading frames. The acceptance bar is >= 3x faster than
  // BM_OpenToFirstEventHeap (pages fault in lazily; no up-front copy).
  const std::string& path = WindowFile();
  for (auto _ : state) {
    MmapTraceFile file = MmapTraceFile::Open(path);
    TraceReader reader(file.bytes(), file.bytes().data());
    TraceEvent event;
    const bool ok = reader.Next(&event);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(event.ts);
  }
}
BENCHMARK(BM_OpenToFirstEventMmap)->Unit(benchmark::kMillisecond);

void BM_CanonicalBlobHash(benchmark::State& state) {
  // Serve admission's cache-key path: hash the raw container without
  // constructing a Trace (streams through the reusable-line fast path).
  const std::string encoded = Window().SerializeBinary();
  for (auto _ : state) {
    uint64_t hash = 0;
    CanonicalBlobHash(encoded, &hash);
    benchmark::DoNotOptimize(hash);
  }
  state.SetItemsProcessed(state.iterations() * kWindowEvents);
}
BENCHMARK(BM_CanonicalBlobHash)->Unit(benchmark::kMillisecond);

void BM_MergeRemap(benchmark::State& state) {
  // K-way merge with per-input pool remapping, 4 nodes x 64k events.
  std::vector<Trace> inputs;
  for (uint64_t node = 0; node < 4; node++) {
    Rng rng(node + 1);
    Trace t;
    SimTime ts = 0;
    for (int i = 0; i < 65536; i++) {
      ts += static_cast<SimTime>(rng.NextBelow(4000));
      TraceEvent event;
      event.ts = ts;
      event.node = static_cast<NodeId>(node);
      event.type = EventType::kSCF;
      event.info = ScfInfo{static_cast<Pid>(100 + node), Sys::kWrite, 3,
                           t.Intern("/data/f" + std::to_string(rng.NextBelow(20))), Err::kEIO};
      t.Append(event);
    }
    inputs.push_back(std::move(t));
  }
  for (auto _ : state) {
    const Trace merged = Trace::Merge(inputs);
    benchmark::DoNotOptimize(merged.size());
  }
  state.SetItemsProcessed(state.iterations() * 4 * 65536);
}
BENCHMARK(BM_MergeRemap)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rose

BENCHMARK_MAIN();
