file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_levels.dir/bench_fig2_levels.cc.o"
  "CMakeFiles/bench_fig2_levels.dir/bench_fig2_levels.cc.o.d"
  "bench_fig2_levels"
  "bench_fig2_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
