# Empty compiler generated dependencies file for bench_fig2_levels.
# This may be replaced when dependencies are built.
