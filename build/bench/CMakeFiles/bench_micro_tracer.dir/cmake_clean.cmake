file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tracer.dir/bench_micro_tracer.cc.o"
  "CMakeFiles/bench_micro_tracer.dir/bench_micro_tracer.cc.o.d"
  "bench_micro_tracer"
  "bench_micro_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
