# Empty compiler generated dependencies file for bench_micro_tracer.
# This may be replaced when dependencies are built.
