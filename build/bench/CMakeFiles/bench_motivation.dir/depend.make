# Empty dependencies file for bench_motivation.
# This may be replaced when dependencies are built.
