file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_bugs.dir/bench_table1_bugs.cc.o"
  "CMakeFiles/bench_table1_bugs.dir/bench_table1_bugs.cc.o.d"
  "bench_table1_bugs"
  "bench_table1_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
