# Empty dependencies file for bench_table1_bugs.
# This may be replaced when dependencies are built.
