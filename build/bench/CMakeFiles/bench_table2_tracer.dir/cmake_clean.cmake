file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tracer.dir/bench_table2_tracer.cc.o"
  "CMakeFiles/bench_table2_tracer.dir/bench_table2_tracer.cc.o.d"
  "bench_table2_tracer"
  "bench_table2_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
