file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_freq.dir/bench_table3_freq.cc.o"
  "CMakeFiles/bench_table3_freq.dir/bench_table3_freq.cc.o.d"
  "bench_table3_freq"
  "bench_table3_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
