# Empty dependencies file for bench_table3_freq.
# This may be replaced when dependencies are built.
