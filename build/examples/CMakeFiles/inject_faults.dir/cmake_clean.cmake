file(REMOVE_RECURSE
  "CMakeFiles/inject_faults.dir/inject_faults.cpp.o"
  "CMakeFiles/inject_faults.dir/inject_faults.cpp.o.d"
  "inject_faults"
  "inject_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inject_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
