# Empty compiler generated dependencies file for inject_faults.
# This may be replaced when dependencies are built.
