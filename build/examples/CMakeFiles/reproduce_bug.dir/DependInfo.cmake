
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/reproduce_bug.cpp" "examples/CMakeFiles/reproduce_bug.dir/reproduce_bug.cpp.o" "gcc" "examples/CMakeFiles/reproduce_bug.dir/reproduce_bug.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/rose_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/diagnose/CMakeFiles/rose_diagnose.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/rose_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/rose_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rose_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/rose_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/rose_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rose_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rose_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rose_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rose_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/rose_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rose_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
