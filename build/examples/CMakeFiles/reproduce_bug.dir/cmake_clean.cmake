file(REMOVE_RECURSE
  "CMakeFiles/reproduce_bug.dir/reproduce_bug.cpp.o"
  "CMakeFiles/reproduce_bug.dir/reproduce_bug.cpp.o.d"
  "reproduce_bug"
  "reproduce_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduce_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
