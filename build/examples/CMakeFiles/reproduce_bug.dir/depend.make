# Empty dependencies file for reproduce_bug.
# This may be replaced when dependencies are built.
