# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("os")
subdirs("net")
subdirs("trace")
subdirs("profile")
subdirs("schedule")
subdirs("exec")
subdirs("diagnose")
subdirs("apps")
subdirs("workload")
subdirs("oracle")
subdirs("harness")
