
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/framework/cluster.cc" "src/apps/CMakeFiles/rose_apps.dir/framework/cluster.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/framework/cluster.cc.o.d"
  "/root/repo/src/apps/framework/guest_node.cc" "src/apps/CMakeFiles/rose_apps.dir/framework/guest_node.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/framework/guest_node.cc.o.d"
  "/root/repo/src/apps/framework/message.cc" "src/apps/CMakeFiles/rose_apps.dir/framework/message.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/framework/message.cc.o.d"
  "/root/repo/src/apps/minibft/minibft.cc" "src/apps/CMakeFiles/rose_apps.dir/minibft/minibft.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/minibft/minibft.cc.o.d"
  "/root/repo/src/apps/minibroker/minibroker.cc" "src/apps/CMakeFiles/rose_apps.dir/minibroker/minibroker.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/minibroker/minibroker.cc.o.d"
  "/root/repo/src/apps/minidocstore/minidocstore.cc" "src/apps/CMakeFiles/rose_apps.dir/minidocstore/minidocstore.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/minidocstore/minidocstore.cc.o.d"
  "/root/repo/src/apps/minihdfs/hdfs_client.cc" "src/apps/CMakeFiles/rose_apps.dir/minihdfs/hdfs_client.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/minihdfs/hdfs_client.cc.o.d"
  "/root/repo/src/apps/minihdfs/minihdfs.cc" "src/apps/CMakeFiles/rose_apps.dir/minihdfs/minihdfs.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/minihdfs/minihdfs.cc.o.d"
  "/root/repo/src/apps/miniredpanda/miniredpanda.cc" "src/apps/CMakeFiles/rose_apps.dir/miniredpanda/miniredpanda.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/miniredpanda/miniredpanda.cc.o.d"
  "/root/repo/src/apps/miniredpanda/producer_client.cc" "src/apps/CMakeFiles/rose_apps.dir/miniredpanda/producer_client.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/miniredpanda/producer_client.cc.o.d"
  "/root/repo/src/apps/minitablestore/minitablestore.cc" "src/apps/CMakeFiles/rose_apps.dir/minitablestore/minitablestore.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/minitablestore/minitablestore.cc.o.d"
  "/root/repo/src/apps/minizk/minizk.cc" "src/apps/CMakeFiles/rose_apps.dir/minizk/minizk.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/minizk/minizk.cc.o.d"
  "/root/repo/src/apps/raftkv/raftkv.cc" "src/apps/CMakeFiles/rose_apps.dir/raftkv/raftkv.cc.o" "gcc" "src/apps/CMakeFiles/rose_apps.dir/raftkv/raftkv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/rose_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rose_net.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/rose_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rose_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rose_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rose_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
