file(REMOVE_RECURSE
  "CMakeFiles/rose_apps.dir/framework/cluster.cc.o"
  "CMakeFiles/rose_apps.dir/framework/cluster.cc.o.d"
  "CMakeFiles/rose_apps.dir/framework/guest_node.cc.o"
  "CMakeFiles/rose_apps.dir/framework/guest_node.cc.o.d"
  "CMakeFiles/rose_apps.dir/framework/message.cc.o"
  "CMakeFiles/rose_apps.dir/framework/message.cc.o.d"
  "CMakeFiles/rose_apps.dir/minibft/minibft.cc.o"
  "CMakeFiles/rose_apps.dir/minibft/minibft.cc.o.d"
  "CMakeFiles/rose_apps.dir/minibroker/minibroker.cc.o"
  "CMakeFiles/rose_apps.dir/minibroker/minibroker.cc.o.d"
  "CMakeFiles/rose_apps.dir/minidocstore/minidocstore.cc.o"
  "CMakeFiles/rose_apps.dir/minidocstore/minidocstore.cc.o.d"
  "CMakeFiles/rose_apps.dir/minihdfs/hdfs_client.cc.o"
  "CMakeFiles/rose_apps.dir/minihdfs/hdfs_client.cc.o.d"
  "CMakeFiles/rose_apps.dir/minihdfs/minihdfs.cc.o"
  "CMakeFiles/rose_apps.dir/minihdfs/minihdfs.cc.o.d"
  "CMakeFiles/rose_apps.dir/miniredpanda/miniredpanda.cc.o"
  "CMakeFiles/rose_apps.dir/miniredpanda/miniredpanda.cc.o.d"
  "CMakeFiles/rose_apps.dir/miniredpanda/producer_client.cc.o"
  "CMakeFiles/rose_apps.dir/miniredpanda/producer_client.cc.o.d"
  "CMakeFiles/rose_apps.dir/minitablestore/minitablestore.cc.o"
  "CMakeFiles/rose_apps.dir/minitablestore/minitablestore.cc.o.d"
  "CMakeFiles/rose_apps.dir/minizk/minizk.cc.o"
  "CMakeFiles/rose_apps.dir/minizk/minizk.cc.o.d"
  "CMakeFiles/rose_apps.dir/raftkv/raftkv.cc.o"
  "CMakeFiles/rose_apps.dir/raftkv/raftkv.cc.o.d"
  "librose_apps.a"
  "librose_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
