file(REMOVE_RECURSE
  "librose_apps.a"
)
