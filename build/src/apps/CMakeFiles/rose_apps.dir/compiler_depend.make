# Empty compiler generated dependencies file for rose_apps.
# This may be replaced when dependencies are built.
