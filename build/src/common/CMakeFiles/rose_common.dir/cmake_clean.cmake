file(REMOVE_RECURSE
  "CMakeFiles/rose_common.dir/rng.cc.o"
  "CMakeFiles/rose_common.dir/rng.cc.o.d"
  "CMakeFiles/rose_common.dir/strings.cc.o"
  "CMakeFiles/rose_common.dir/strings.cc.o.d"
  "librose_common.a"
  "librose_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
