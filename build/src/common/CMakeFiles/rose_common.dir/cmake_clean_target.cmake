file(REMOVE_RECURSE
  "librose_common.a"
)
