# Empty dependencies file for rose_common.
# This may be replaced when dependencies are built.
