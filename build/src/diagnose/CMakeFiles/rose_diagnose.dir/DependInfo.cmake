
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diagnose/engine.cc" "src/diagnose/CMakeFiles/rose_diagnose.dir/engine.cc.o" "gcc" "src/diagnose/CMakeFiles/rose_diagnose.dir/engine.cc.o.d"
  "/root/repo/src/diagnose/extract.cc" "src/diagnose/CMakeFiles/rose_diagnose.dir/extract.cc.o" "gcc" "src/diagnose/CMakeFiles/rose_diagnose.dir/extract.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/rose_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/rose_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/rose_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/rose_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rose_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rose_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rose_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rose_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
