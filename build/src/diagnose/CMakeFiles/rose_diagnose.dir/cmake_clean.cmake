file(REMOVE_RECURSE
  "CMakeFiles/rose_diagnose.dir/engine.cc.o"
  "CMakeFiles/rose_diagnose.dir/engine.cc.o.d"
  "CMakeFiles/rose_diagnose.dir/extract.cc.o"
  "CMakeFiles/rose_diagnose.dir/extract.cc.o.d"
  "librose_diagnose.a"
  "librose_diagnose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_diagnose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
