file(REMOVE_RECURSE
  "librose_diagnose.a"
)
