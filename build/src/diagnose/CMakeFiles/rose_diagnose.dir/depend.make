# Empty dependencies file for rose_diagnose.
# This may be replaced when dependencies are built.
