file(REMOVE_RECURSE
  "CMakeFiles/rose_exec.dir/executor.cc.o"
  "CMakeFiles/rose_exec.dir/executor.cc.o.d"
  "CMakeFiles/rose_exec.dir/pid_tracker.cc.o"
  "CMakeFiles/rose_exec.dir/pid_tracker.cc.o.d"
  "librose_exec.a"
  "librose_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
