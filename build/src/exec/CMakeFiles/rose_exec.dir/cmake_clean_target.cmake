file(REMOVE_RECURSE
  "librose_exec.a"
)
