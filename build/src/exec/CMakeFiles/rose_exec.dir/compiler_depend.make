# Empty compiler generated dependencies file for rose_exec.
# This may be replaced when dependencies are built.
