file(REMOVE_RECURSE
  "CMakeFiles/rose_harness.dir/bug_registry.cc.o"
  "CMakeFiles/rose_harness.dir/bug_registry.cc.o.d"
  "CMakeFiles/rose_harness.dir/bugs_minibft.cc.o"
  "CMakeFiles/rose_harness.dir/bugs_minibft.cc.o.d"
  "CMakeFiles/rose_harness.dir/bugs_minibroker.cc.o"
  "CMakeFiles/rose_harness.dir/bugs_minibroker.cc.o.d"
  "CMakeFiles/rose_harness.dir/bugs_minidocstore.cc.o"
  "CMakeFiles/rose_harness.dir/bugs_minidocstore.cc.o.d"
  "CMakeFiles/rose_harness.dir/bugs_minihdfs.cc.o"
  "CMakeFiles/rose_harness.dir/bugs_minihdfs.cc.o.d"
  "CMakeFiles/rose_harness.dir/bugs_miniredpanda.cc.o"
  "CMakeFiles/rose_harness.dir/bugs_miniredpanda.cc.o.d"
  "CMakeFiles/rose_harness.dir/bugs_minitablestore.cc.o"
  "CMakeFiles/rose_harness.dir/bugs_minitablestore.cc.o.d"
  "CMakeFiles/rose_harness.dir/bugs_minizk.cc.o"
  "CMakeFiles/rose_harness.dir/bugs_minizk.cc.o.d"
  "CMakeFiles/rose_harness.dir/bugs_raftkv.cc.o"
  "CMakeFiles/rose_harness.dir/bugs_raftkv.cc.o.d"
  "CMakeFiles/rose_harness.dir/rose.cc.o"
  "CMakeFiles/rose_harness.dir/rose.cc.o.d"
  "CMakeFiles/rose_harness.dir/runner.cc.o"
  "CMakeFiles/rose_harness.dir/runner.cc.o.d"
  "librose_harness.a"
  "librose_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
