file(REMOVE_RECURSE
  "librose_harness.a"
)
