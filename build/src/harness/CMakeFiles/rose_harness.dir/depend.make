# Empty dependencies file for rose_harness.
# This may be replaced when dependencies are built.
