file(REMOVE_RECURSE
  "CMakeFiles/rose_net.dir/network.cc.o"
  "CMakeFiles/rose_net.dir/network.cc.o.d"
  "librose_net.a"
  "librose_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
