file(REMOVE_RECURSE
  "librose_net.a"
)
