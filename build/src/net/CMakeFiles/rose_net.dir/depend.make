# Empty dependencies file for rose_net.
# This may be replaced when dependencies are built.
