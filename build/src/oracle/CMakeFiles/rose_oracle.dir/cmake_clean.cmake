file(REMOVE_RECURSE
  "CMakeFiles/rose_oracle.dir/oracle.cc.o"
  "CMakeFiles/rose_oracle.dir/oracle.cc.o.d"
  "librose_oracle.a"
  "librose_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
