file(REMOVE_RECURSE
  "librose_oracle.a"
)
