# Empty compiler generated dependencies file for rose_oracle.
# This may be replaced when dependencies are built.
