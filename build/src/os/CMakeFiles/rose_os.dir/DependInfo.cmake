
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/errno.cc" "src/os/CMakeFiles/rose_os.dir/errno.cc.o" "gcc" "src/os/CMakeFiles/rose_os.dir/errno.cc.o.d"
  "/root/repo/src/os/fs.cc" "src/os/CMakeFiles/rose_os.dir/fs.cc.o" "gcc" "src/os/CMakeFiles/rose_os.dir/fs.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/rose_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/rose_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/syscall.cc" "src/os/CMakeFiles/rose_os.dir/syscall.cc.o" "gcc" "src/os/CMakeFiles/rose_os.dir/syscall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rose_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rose_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
