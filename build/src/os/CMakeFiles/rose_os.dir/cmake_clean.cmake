file(REMOVE_RECURSE
  "CMakeFiles/rose_os.dir/errno.cc.o"
  "CMakeFiles/rose_os.dir/errno.cc.o.d"
  "CMakeFiles/rose_os.dir/fs.cc.o"
  "CMakeFiles/rose_os.dir/fs.cc.o.d"
  "CMakeFiles/rose_os.dir/kernel.cc.o"
  "CMakeFiles/rose_os.dir/kernel.cc.o.d"
  "CMakeFiles/rose_os.dir/syscall.cc.o"
  "CMakeFiles/rose_os.dir/syscall.cc.o.d"
  "librose_os.a"
  "librose_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
