file(REMOVE_RECURSE
  "librose_os.a"
)
