# Empty dependencies file for rose_os.
# This may be replaced when dependencies are built.
