
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/binary_info.cc" "src/profile/CMakeFiles/rose_profile.dir/binary_info.cc.o" "gcc" "src/profile/CMakeFiles/rose_profile.dir/binary_info.cc.o.d"
  "/root/repo/src/profile/profiler.cc" "src/profile/CMakeFiles/rose_profile.dir/profiler.cc.o" "gcc" "src/profile/CMakeFiles/rose_profile.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rose_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rose_os.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rose_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rose_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rose_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
