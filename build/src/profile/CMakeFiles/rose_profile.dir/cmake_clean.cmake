file(REMOVE_RECURSE
  "CMakeFiles/rose_profile.dir/binary_info.cc.o"
  "CMakeFiles/rose_profile.dir/binary_info.cc.o.d"
  "CMakeFiles/rose_profile.dir/profiler.cc.o"
  "CMakeFiles/rose_profile.dir/profiler.cc.o.d"
  "librose_profile.a"
  "librose_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
