file(REMOVE_RECURSE
  "librose_profile.a"
)
