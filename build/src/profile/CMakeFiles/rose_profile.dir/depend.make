# Empty dependencies file for rose_profile.
# This may be replaced when dependencies are built.
