file(REMOVE_RECURSE
  "CMakeFiles/rose_schedule.dir/fault_schedule.cc.o"
  "CMakeFiles/rose_schedule.dir/fault_schedule.cc.o.d"
  "librose_schedule.a"
  "librose_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
