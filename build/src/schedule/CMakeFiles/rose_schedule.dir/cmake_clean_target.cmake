file(REMOVE_RECURSE
  "librose_schedule.a"
)
