# Empty compiler generated dependencies file for rose_schedule.
# This may be replaced when dependencies are built.
