file(REMOVE_RECURSE
  "CMakeFiles/rose_sim.dir/event_loop.cc.o"
  "CMakeFiles/rose_sim.dir/event_loop.cc.o.d"
  "librose_sim.a"
  "librose_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
