file(REMOVE_RECURSE
  "librose_sim.a"
)
