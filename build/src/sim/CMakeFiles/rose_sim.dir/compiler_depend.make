# Empty compiler generated dependencies file for rose_sim.
# This may be replaced when dependencies are built.
