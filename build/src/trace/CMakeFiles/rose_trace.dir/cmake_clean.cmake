file(REMOVE_RECURSE
  "CMakeFiles/rose_trace.dir/event.cc.o"
  "CMakeFiles/rose_trace.dir/event.cc.o.d"
  "CMakeFiles/rose_trace.dir/tracer.cc.o"
  "CMakeFiles/rose_trace.dir/tracer.cc.o.d"
  "librose_trace.a"
  "librose_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
