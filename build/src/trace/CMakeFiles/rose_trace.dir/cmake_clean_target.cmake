file(REMOVE_RECURSE
  "librose_trace.a"
)
