# Empty dependencies file for rose_trace.
# This may be replaced when dependencies are built.
