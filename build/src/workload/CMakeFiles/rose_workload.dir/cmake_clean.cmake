file(REMOVE_RECURSE
  "CMakeFiles/rose_workload.dir/kv_client.cc.o"
  "CMakeFiles/rose_workload.dir/kv_client.cc.o.d"
  "CMakeFiles/rose_workload.dir/nemesis.cc.o"
  "CMakeFiles/rose_workload.dir/nemesis.cc.o.d"
  "librose_workload.a"
  "librose_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rose_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
