file(REMOVE_RECURSE
  "librose_workload.a"
)
