# Empty dependencies file for rose_workload.
# This may be replaced when dependencies are built.
