file(REMOVE_RECURSE
  "CMakeFiles/extract_test.dir/extract_test.cc.o"
  "CMakeFiles/extract_test.dir/extract_test.cc.o.d"
  "extract_test"
  "extract_test.pdb"
  "extract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
