file(REMOVE_RECURSE
  "CMakeFiles/guests_test.dir/guests_test.cc.o"
  "CMakeFiles/guests_test.dir/guests_test.cc.o.d"
  "guests_test"
  "guests_test.pdb"
  "guests_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
