# Empty dependencies file for guests_test.
# This may be replaced when dependencies are built.
