file(REMOVE_RECURSE
  "CMakeFiles/raftkv_test.dir/raftkv_test.cc.o"
  "CMakeFiles/raftkv_test.dir/raftkv_test.cc.o.d"
  "raftkv_test"
  "raftkv_test.pdb"
  "raftkv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raftkv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
