# Empty dependencies file for raftkv_test.
# This may be replaced when dependencies are built.
