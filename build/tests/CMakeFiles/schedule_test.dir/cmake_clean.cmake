file(REMOVE_RECURSE
  "CMakeFiles/schedule_test.dir/schedule_test.cc.o"
  "CMakeFiles/schedule_test.dir/schedule_test.cc.o.d"
  "schedule_test"
  "schedule_test.pdb"
  "schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
