file(REMOVE_RECURSE
  "CMakeFiles/tracer_test.dir/tracer_test.cc.o"
  "CMakeFiles/tracer_test.dir/tracer_test.cc.o.d"
  "tracer_test"
  "tracer_test.pdb"
  "tracer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
