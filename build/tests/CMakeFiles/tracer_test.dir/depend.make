# Empty dependencies file for tracer_test.
# This may be replaced when dependencies are built.
