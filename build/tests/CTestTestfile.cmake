# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/tracer_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/raftkv_test[1]_include.cmake")
include("/root/repo/build/tests/guests_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
