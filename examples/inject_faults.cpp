// inject_faults — hand-author a YAML fault schedule and execute it.
//
// Shows the executor half of Rose in isolation: a schedule written as YAML
// (the format the analyzer emits) is parsed and injected with precision into
// a live MiniZk cluster. The schedule crashes the leader exactly when it
// enters takeSnapshot — a condition no amount of timing luck can replicate.
//
// Usage: ./build/examples/inject_faults
#include <cstdio>

#include "src/apps/minizk/minizk.h"
#include "src/common/strings.h"
#include "src/exec/executor.h"
#include "src/harness/world.h"
#include "src/workload/kv_client.h"

int main() {
  using namespace rose;

  const BinaryInfo binary = BuildMiniZkBinary();
  const int32_t take_snapshot = binary.FindByName("takeSnapshot")->id;

  // A schedule as the analyzer would emit it. Fault 0 fails the 3rd write to
  // the txn log; fault 1 crashes node 0 at its next takeSnapshot entry, but
  // only after fault 0 was injected (production fault order).
  const std::string yaml = StrFormat(R"(schedule:
  name: hand-authored-demo
  faults:
    - kind: syscall
      node: 1
      sys: write
      errno: EIO
      path: /data/txnlog
      nth: 3
      persistent: false
    - kind: crash
      node: 0
      conditions:
        - type: after_fault
          fault: 0
        - type: function
          fid: %d
)",
                                     take_snapshot);
  FaultSchedule schedule;
  if (!FaultSchedule::FromYaml(yaml, &schedule)) {
    std::fprintf(stderr, "failed to parse schedule\n");
    return 1;
  }
  std::printf("parsed schedule '%s': %s\n\n", schedule.name.c_str(),
              schedule.Summary().c_str());

  SimWorld world(99);
  ClusterConfig config;
  config.seed = 99;
  Cluster cluster(&world.kernel, &world.network, &binary, config);
  MiniZkOptions options;
  for (int i = 0; i < options.cluster_size; i++) {
    cluster.AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<MiniZkNode>(c, id, options);
    });
  }
  KvClientOptions client_options;
  client_options.server_count = options.cluster_size;
  for (int i = 0; i < 2; i++) {
    cluster.AddNode([client_options](Cluster* c, NodeId id) {
      return std::make_unique<KvClient>(c, id, client_options);
    });
  }

  Executor executor(&world.kernel, &world.network, schedule);
  executor.Attach();
  cluster.Start();
  world.loop.RunUntil(Seconds(20));

  const ExecutionFeedback feedback = executor.Feedback();
  for (size_t i = 0; i < feedback.outcomes.size(); i++) {
    const FaultOutcome& outcome = feedback.outcomes[i];
    std::printf("fault %zu (%s): %s", i, schedule.faults[i].Label().c_str(),
                outcome.injected ? "injected" : "NOT injected");
    if (outcome.injected) {
      std::printf(" at t=%.6fs", ToSeconds(outcome.injected_at));
    }
    std::printf("\n");
  }
  std::printf("\ncluster log tail:\n");
  const auto& log = cluster.LogsOf(0);
  for (size_t i = log.size() > 6 ? log.size() - 6 : 0; i < log.size(); i++) {
    std::printf("  %s\n", log[i].c_str());
  }
  return feedback.AllInjected() ? 0 : 1;
}
