// lint_schedule — static schedule linting from the command line.
//
// Reads a fault schedule in Rose's YAML form and runs rose::analyze's
// ScheduleLinter over it: unsatisfiable condition chains, order cycles,
// shadowed faults, degenerate field values. Prints each diagnostic with its
// stable code plus the schedule's canonical form and equivalence hash.
//
// Usage:
//   ./build/examples/lint_schedule schedule.yaml
//   ./build/examples/lint_schedule --demo          # lint a deliberately broken schedule
//   ./build/examples/lint_schedule --trace FILE    # validate a saved trace instead
//   cat schedule.yaml | ./build/examples/lint_schedule
//
// --trace runs rose::analyze's TraceValidator over a trace dump (binary or
// text, auto-detected); load-time diagnostics (bad magic, corrupt frames)
// count as findings too.
//
// Exit codes: 0 clean (warnings allowed), 1 error-severity findings,
// 2 unreadable/unparseable input.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/analyze/schedule_linter.h"
#include "src/analyze/trace_validator.h"
#include "src/common/strings.h"
#include "src/obs/trace_report.h"
#include "src/trace/trace_io.h"

namespace {

// Canonical --help text, diffed verbatim against docs/cli.md by the
// docs_drift ctest (tools/check_docs.sh); keep the two in sync.
constexpr char kHelp[] =
    R"(usage: lint_schedule [schedule.yaml|-]
       lint_schedule --demo
       lint_schedule --trace FILE

Static analysis from the command line (rose::analyze). Reads a fault
schedule in Rose's YAML form and runs the ScheduleLinter over it:
unsatisfiable condition chains, order cycles, shadowed faults, degenerate
field values. Prints each diagnostic with its stable code plus the
schedule's canonical form and equivalence hash. Reads stdin when no file
is given (or the file is -).

flags:
  --demo         lint a deliberately broken built-in schedule
  --trace FILE   validate a saved trace dump instead (binary or text,
                 auto-detected) with the TraceValidator; window statistics
                 are rendered from the rose::obs registry, and load-time
                 diagnostics (bad magic, corrupt frames) count as findings
  --help         show this help and exit

exit status: 0 clean (warnings allowed), 1 error-severity findings,
2 unreadable/unparseable input.
)";

rose::FaultSchedule DemoSchedule() {
  using rose::Condition;
  rose::FaultSchedule schedule;
  schedule.name = "demo-broken";
  {
    // Persistent write failure with no path filter: shadows fault #2.
    rose::ScheduledFault fault;
    fault.kind = rose::FaultKind::kSyscallFailure;
    fault.target_node = 0;
    fault.syscall.sys = rose::Sys::kWrite;
    fault.syscall.err = rose::Err::kEIO;
    fault.syscall.persistent = true;
    schedule.faults.push_back(fault);
  }
  {
    // Crash waiting on itself — an after_fault cycle.
    rose::ScheduledFault fault;
    fault.kind = rose::FaultKind::kProcessCrash;
    fault.target_node = 1;
    fault.conditions.push_back(Condition::AfterFault(1));
    schedule.faults.push_back(fault);
  }
  {
    // Shadowed write failure, nth=0 on top.
    rose::ScheduledFault fault;
    fault.kind = rose::FaultKind::kSyscallFailure;
    fault.target_node = 0;
    fault.syscall.sys = rose::Sys::kWrite;
    fault.syscall.err = rose::Err::kENOSPC;
    fault.syscall.path_filter = "/data/txnlog";
    fault.syscall.nth = 0;
    schedule.faults.push_back(fault);
  }
  {
    // Offset condition with no enclosing function-enter context.
    rose::ScheduledFault fault;
    fault.kind = rose::FaultKind::kProcessPause;
    fault.target_node = 2;
    fault.process.pause_duration = rose::Seconds(4);
    fault.conditions.push_back(Condition::FunctionOffset(12, 0x20));
    schedule.faults.push_back(fault);
  }
  return schedule;
}

int LintTrace(const char* path) {
  std::vector<rose::Diagnostic> diags;
  const rose::Trace trace = rose::LoadTraceFile(path, &diags);
  if (!rose::OfCode(diags, rose::DiagCode::kTraceFileUnreadable).empty()) {
    std::fprintf(stderr, "lint_schedule: cannot open %s\n", path);
    return 2;
  }
  std::printf("trace: %s\n", path);
  // Same rendering path as trace_explorer --stats: the rose::obs registry is
  // the one source for window statistics (no per-tool tallies).
  std::printf("%s", rose::RenderTraceStats(trace, &rose::MetricRegistry::Global(),
                                           /*with_encoded_sizes=*/false)
                        .c_str());

  const std::vector<rose::Diagnostic> validation = rose::TraceValidator().Validate(trace);
  diags.insert(diags.end(), validation.begin(), validation.end());
  if (diags.empty()) {
    std::printf("no findings: trace is well-formed.\n");
    return 0;
  }
  std::printf("%zu finding(s):\n", diags.size());
  for (const rose::Diagnostic& diag : diags) {
    std::printf("  %s\n", diag.ToString().c_str());
  }
  return rose::HasErrors(diags) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
    std::fputs(kHelp, stdout);
    return 0;
  }
  if (argc > 2 && std::strcmp(argv[1], "--trace") == 0) {
    return LintTrace(argv[2]);
  }
  rose::FaultSchedule schedule;
  if (argc > 1 && std::strcmp(argv[1], "--demo") == 0) {
    schedule = DemoSchedule();
  } else {
    std::string text;
    if (argc > 1 && std::strcmp(argv[1], "-") != 0) {
      std::ifstream in(argv[1]);
      if (!in) {
        std::fprintf(stderr, "lint_schedule: cannot open %s\n", argv[1]);
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    } else {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      text = buf.str();
    }
    if (!rose::FaultSchedule::FromYaml(text, &schedule)) {
      std::fprintf(stderr, "lint_schedule: input is not a Rose schedule YAML\n");
      return 2;
    }
  }

  std::printf("schedule: %s  (%zu faults: %s)\n",
              schedule.name.empty() ? "<unnamed>" : schedule.name.c_str(),
              schedule.size(), schedule.Summary().c_str());
  std::printf("canonical hash: %016llx\n",
              static_cast<unsigned long long>(rose::CanonicalHash(schedule)));
  std::printf("canonical form:\n");
  for (const std::string& line : rose::Split(rose::CanonicalForm(schedule), '\n')) {
    if (!line.empty()) {
      std::printf("  %s\n", line.c_str());
    }
  }

  const std::vector<rose::Diagnostic> diags = rose::ScheduleLinter().Lint(schedule);
  if (diags.empty()) {
    std::printf("\nno findings: schedule is statically satisfiable.\n");
    return 0;
  }
  std::printf("\n%zu finding(s):\n", diags.size());
  for (const rose::Diagnostic& diag : diags) {
    std::printf("  %s\n", diag.ToString().c_str());
  }
  return rose::HasErrors(diags) ? 1 : 0;
}
