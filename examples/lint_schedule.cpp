// lint_schedule — static schedule linting from the command line.
//
// Reads a fault schedule in Rose's YAML form and runs rose::analyze's
// ScheduleLinter over it: unsatisfiable condition chains, order cycles,
// shadowed faults, degenerate field values. Prints each diagnostic with its
// stable code plus the schedule's canonical form and equivalence hash.
//
// Usage:
//   ./build/examples/lint_schedule schedule.yaml
//   ./build/examples/lint_schedule --demo          # lint a deliberately broken schedule
//   ./build/examples/lint_schedule --trace FILE    # validate a saved trace instead
//   ./build/examples/lint_schedule schedule.yaml --against trace.bin
//   cat schedule.yaml | ./build/examples/lint_schedule
//
// --trace runs rose::analyze's TraceValidator over a trace dump (binary or
// text, auto-detected). --against TRACE additionally checks the schedule's
// enforced injection order against the trace's happens-before order
// (rose::causal) and prints the feasibility verdict.
//
// Exit codes: 0 clean (warnings allowed), 1 error-severity lint or
// feasibility findings, 2 input failure — unreadable or unparseable files,
// including TB2xx container damage. Scripts can rely on the distinction:
// 1 means the input was read and judged bad, 2 means it could not be judged.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/analyze/schedule_linter.h"
#include "src/analyze/trace_validator.h"
#include "src/causal/causal_graph.h"
#include "src/causal/feasibility.h"
#include "src/common/strings.h"
#include "src/obs/trace_report.h"
#include "src/trace/mapped_trace.h"
#include "src/trace/trace_io.h"

namespace {

// Canonical --help text, diffed verbatim against docs/cli.md by the
// docs_drift ctest (tools/check_docs.sh); keep the two in sync.
constexpr char kHelp[] =
    R"(usage: lint_schedule [schedule.yaml|-] [--against TRACE]
       lint_schedule --demo
       lint_schedule --trace FILE

Static analysis from the command line (rose::analyze). Reads a fault
schedule in Rose's YAML form and runs the ScheduleLinter over it:
unsatisfiable condition chains, order cycles, shadowed faults, degenerate
field values. Prints each diagnostic with its stable code plus the
schedule's canonical form and equivalence hash. Reads stdin when no file
is given (or the file is -).

flags:
  --demo          lint a deliberately broken built-in schedule
  --trace FILE    validate a saved trace dump instead (binary or text,
                  auto-detected) with the TraceValidator; window statistics
                  are rendered from the rose::obs registry
  --against TRACE additionally check the schedule's enforced injection
                  order against TRACE's happens-before order (rose::causal)
                  and print the feasibility verdict: feasible, infeasible
                  (TB301 — the trace contradicts the order), or unordered
                  (TB302 — some fault matches no trace event)
  --help          show this help and exit

exit status: 0 clean (warnings allowed), 1 error-severity lint or
feasibility findings, 2 input failure (unreadable or unparseable files,
including TB2xx container damage).
)";

rose::FaultSchedule DemoSchedule() {
  using rose::Condition;
  rose::FaultSchedule schedule;
  schedule.name = "demo-broken";
  {
    // Persistent write failure with no path filter: shadows fault #2.
    rose::ScheduledFault fault;
    fault.kind = rose::FaultKind::kSyscallFailure;
    fault.target_node = 0;
    fault.syscall.sys = rose::Sys::kWrite;
    fault.syscall.err = rose::Err::kEIO;
    fault.syscall.persistent = true;
    schedule.faults.push_back(fault);
  }
  {
    // Crash waiting on itself — an after_fault cycle.
    rose::ScheduledFault fault;
    fault.kind = rose::FaultKind::kProcessCrash;
    fault.target_node = 1;
    fault.conditions.push_back(Condition::AfterFault(1));
    schedule.faults.push_back(fault);
  }
  {
    // Shadowed write failure, nth=0 on top.
    rose::ScheduledFault fault;
    fault.kind = rose::FaultKind::kSyscallFailure;
    fault.target_node = 0;
    fault.syscall.sys = rose::Sys::kWrite;
    fault.syscall.err = rose::Err::kENOSPC;
    fault.syscall.path_filter = "/data/txnlog";
    fault.syscall.nth = 0;
    schedule.faults.push_back(fault);
  }
  {
    // Offset condition with no enclosing function-enter context.
    rose::ScheduledFault fault;
    fault.kind = rose::FaultKind::kProcessPause;
    fault.target_node = 2;
    fault.process.pause_duration = rose::Seconds(4);
    fault.conditions.push_back(Condition::FunctionOffset(12, 0x20));
    schedule.faults.push_back(fault);
  }
  return schedule;
}

int LintTrace(const char* path) {
  // Zero-copy load: the validator and the stats renderer only read, so the
  // dump is mapped and viewed in place — no owning Trace is built.
  const rose::MappedTrace mapped = rose::MappedTrace::OpenFile(path);
  const std::vector<rose::Diagnostic>& load_diags = mapped.diagnostics();
  if (!rose::OfCode(load_diags, rose::DiagCode::kTraceFileUnreadable).empty()) {
    std::fprintf(stderr, "lint_schedule: cannot open %s\n", path);
    return 2;
  }
  const rose::TraceView trace = mapped.view();
  std::printf("trace: %s\n", path);
  // Same rendering path as trace_explorer --stats: the rose::obs registry is
  // the one source for window statistics (no per-tool tallies).
  std::printf("%s", rose::RenderTraceStats(trace, &rose::MetricRegistry::Global(),
                                           /*with_encoded_sizes=*/false)
                        .c_str());

  std::vector<rose::Diagnostic> diags = load_diags;
  const std::vector<rose::Diagnostic> validation = rose::TraceValidator().Validate(trace);
  diags.insert(diags.end(), validation.begin(), validation.end());
  if (diags.empty()) {
    std::printf("no findings: trace is well-formed.\n");
    return 0;
  }
  std::printf("%zu finding(s):\n", diags.size());
  for (const rose::Diagnostic& diag : diags) {
    std::printf("  %s\n", diag.ToString().c_str());
  }
  // Container damage (TB2xx) means the input itself could not be trusted —
  // an I/O failure (2), not a lint verdict on well-read events (1).
  if (rose::HasErrors(load_diags)) {
    return 2;
  }
  return rose::HasErrors(diags) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* schedule_arg = nullptr;
  const char* against_path = nullptr;
  bool demo = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kHelp, stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      return LintTrace(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--against") == 0 && i + 1 < argc) {
      against_path = argv[++i];
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else {
      schedule_arg = argv[i];
    }
  }
  rose::FaultSchedule schedule;
  if (demo) {
    schedule = DemoSchedule();
  } else {
    std::string text;
    if (schedule_arg != nullptr && std::strcmp(schedule_arg, "-") != 0) {
      std::ifstream in(schedule_arg);
      if (!in) {
        std::fprintf(stderr, "lint_schedule: cannot open %s\n", schedule_arg);
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    } else {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      text = buf.str();
    }
    if (!rose::FaultSchedule::FromYaml(text, &schedule)) {
      std::fprintf(stderr, "lint_schedule: input is not a Rose schedule YAML\n");
      return 2;
    }
  }

  std::printf("schedule: %s  (%zu faults: %s)\n",
              schedule.name.empty() ? "<unnamed>" : schedule.name.c_str(),
              schedule.size(), schedule.Summary().c_str());
  std::printf("canonical hash: %016llx\n",
              static_cast<unsigned long long>(rose::CanonicalHash(schedule)));
  std::printf("canonical form:\n");
  for (const std::string& line : rose::Split(rose::CanonicalForm(schedule), '\n')) {
    if (!line.empty()) {
      std::printf("  %s\n", line.c_str());
    }
  }

  std::vector<rose::Diagnostic> diags = rose::ScheduleLinter().Lint(schedule);
  if (diags.empty()) {
    std::printf("\nno findings: schedule is statically satisfiable.\n");
  } else {
    std::printf("\n%zu finding(s):\n", diags.size());
    for (const rose::Diagnostic& diag : diags) {
      std::printf("  %s\n", diag.ToString().c_str());
    }
  }

  if (against_path != nullptr) {
    // Read-only feasibility check: map and view, never parse into a Trace.
    const rose::MappedTrace mapped = rose::MappedTrace::OpenFile(against_path);
    const std::vector<rose::Diagnostic>& load_diags = mapped.diagnostics();
    if (rose::HasErrors(load_diags)) {
      std::fprintf(stderr, "lint_schedule: cannot read trace %s: %s\n", against_path,
                   load_diags.front().ToString().c_str());
      return 2;
    }
    const rose::TraceView trace = mapped.view();
    const rose::CausalGraph causal(trace);
    const rose::FeasibilityChecker checker(&causal, trace);
    const rose::FeasibilityReport report = checker.Check(schedule);
    std::printf("\nfeasibility against %s (%zu events, %zu fault events): %s%s\n",
                against_path, trace.size(), causal.fault_events().size(),
                std::string(rose::FeasibilityVerdictName(report.verdict)).c_str(),
                report.canonical_order ? "" : ", non-canonical commuting order");
    for (size_t i = 0; i < report.mapped_events.size(); i++) {
      if (report.mapped_events[i] >= 0) {
        const auto event = static_cast<size_t>(report.mapped_events[i]);
        std::printf("  fault %zu -> trace event %zu: %s\n", i, event,
                    trace[event].ToLine(trace.pool()).c_str());
      } else {
        std::printf("  fault %zu -> no matching trace event\n", i);
      }
    }
    for (const rose::Diagnostic& diag : report.diagnostics) {
      std::printf("  %s\n", diag.ToString().c_str());
    }
    diags.insert(diags.end(), report.diagnostics.begin(), report.diagnostics.end());
  }
  return rose::HasErrors(diags) ? 1 : 0;
}
