// Quickstart: the full Rose workflow on one real bug.
//
// Reproduces RedisRaft-42 (a node panics on restart because log compaction
// dropped a committed entry) end to end:
//   1. profile the healthy system (function/syscall frequencies, benign faults)
//   2. run "production" under a Jepsen-style nemesis until the bug fires,
//      dumping the lightweight trace
//   3. diagnose: extract candidate faults, build fault schedules
//   4. reproduce: execute schedules with precise injection until the bug
//      replays at the target rate
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

int main() {
  const rose::BugSpec* spec = rose::FindBug("RedisRaft-42");
  if (spec == nullptr) {
    std::fprintf(stderr, "bug spec not found\n");
    return 1;
  }

  std::printf("=== Rose quickstart: %s ===\n", spec->id.c_str());
  std::printf("system: %s\n", spec->system.c_str());
  std::printf("bug: %s\n\n", spec->description.c_str());

  rose::RoseConfig config;
  config.seed = 42;
  const rose::RoseReport report = rose::ReproduceBug(*spec, config);

  std::printf("production trace obtained: %s (after %d attempt(s))\n",
              report.trace_obtained ? "yes" : "no", report.production_attempts);
  std::printf("monitored functions (infrequent): %zu\n",
              report.profile.monitored_functions.size());
  if (!report.reproduced()) {
    std::printf("bug NOT reproduced\n");
    return 1;
  }
  std::printf("\nreproduced at Level %d with replay rate %.0f%%\n", report.diagnosis.level,
              report.replay_rate());
  std::printf("faults injected: %s\n", report.diagnosis.fault_summary.c_str());
  std::printf("schedules generated: %d, total runs: %d, virtual time: %.1f min\n",
              report.schedules(), report.runs(), report.minutes());
  std::printf("faults removed by clean-trace diff (FR): %.0f%%\n", report.fr_percent());
  std::printf("\nwinning schedule (YAML):\n%s\n", report.diagnosis.schedule.ToYaml().c_str());
  return 0;
}
