// reproduce_bug — run the full Rose pipeline on any bug from the catalogue.
//
// Usage:
//   ./build/examples/reproduce_bug                 # list known bugs
//   ./build/examples/reproduce_bug RedisRaft-43    # reproduce one bug
//   ./build/examples/reproduce_bug all             # reproduce every bug
//
// Flags:
//   --parallelism=N     worker threads for candidate execution (default: the
//                       machine's hardware concurrency). Any value yields the
//                       identical report; it only changes wall-clock time.
//   --tries=N           retry with fresh seeds up to N times when a run ends
//                       without reproduction (default 3).
//   --schedule-out=FILE write the confirmed schedule's canonical YAML to FILE
//                       (single-bug mode; the same bytes `rose_served` caches
//                       and `rose_serve_cli` prints).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/common/parallel.h"
#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

namespace {

int RunOne(const rose::BugSpec& spec, uint64_t seed, int parallelism, int tries,
           bool verbose, const std::string& schedule_out) {
  rose::RoseConfig config;
  config.seed = seed;
  config.diagnosis.parallelism = parallelism;
  const rose::RoseReport report = rose::ReproduceBugRobust(spec, config, tries);
  if (!report.trace_obtained) {
    std::printf("%-18s  NO PRODUCTION TRACE (after %d attempts)\n", spec.id.c_str(),
                report.production_attempts);
    return 1;
  }
  std::printf("%-18s  %s  L%d  RR=%3.0f%%  sched=%-3d runs=%-3d time=%5.1fm  FR=%2.0f%%  [%s]\n",
              spec.id.c_str(), report.reproduced() ? "REPRODUCED " : "NOT-REPRO  ",
              report.diagnosis.level, report.replay_rate(), report.schedules(),
              report.runs(), report.minutes(), report.fr_percent(),
              report.diagnosis.fault_summary.c_str());
  if (verbose && report.reproduced()) {
    std::printf("%s\n", report.diagnosis.schedule.ToYaml().c_str());
  }
  if (!schedule_out.empty() && report.reproduced()) {
    std::ofstream out(schedule_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "reproduce_bug: cannot write %s\n", schedule_out.c_str());
      return 2;
    }
    // Byte-exact ToYaml so the file diffs cleanly against served results.
    out << report.diagnosis.schedule.ToYaml();
    std::printf("confirmed schedule written to %s\n", schedule_out.c_str());
  }
  return report.reproduced() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int parallelism = rose::WorkerPool::DefaultParallelism();
  int tries = 3;
  std::string schedule_out;
  // Peel off flags; what remains is <bug-id>|all [seed].
  const char* positional[2] = {nullptr, nullptr};
  int num_positional = 0;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--parallelism=", 14) == 0) {
      parallelism = std::atoi(argv[i] + 14);
      if (parallelism < 1) {
        std::fprintf(stderr, "--parallelism must be >= 1\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--tries=", 8) == 0) {
      tries = std::atoi(argv[i] + 8);
      if (tries < 1) {
        std::fprintf(stderr, "--tries must be >= 1\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--schedule-out=", 15) == 0) {
      schedule_out = argv[i] + 15;
    } else if (num_positional < 2) {
      positional[num_positional++] = argv[i];
    }
  }
  if (num_positional == 0) {
    std::printf("known bugs:\n");
    for (const rose::BugSpec* spec : rose::AllBugs()) {
      std::printf("  %-18s %-32s %s\n", spec->id.c_str(), spec->system.c_str(),
                  spec->description.c_str());
    }
    std::printf("\nusage: %s <bug-id>|all [seed] [--parallelism=N]\n", argv[0]);
    return 0;
  }
  const uint64_t seed =
      num_positional > 1 ? static_cast<uint64_t>(std::atoll(positional[1])) : 42;
  if (std::strcmp(positional[0], "all") == 0) {
    int failures = 0;
    for (const rose::BugSpec* spec : rose::AllBugs()) {
      failures += RunOne(*spec, seed, parallelism, tries, /*verbose=*/false,
                         /*schedule_out=*/"");
    }
    return failures == 0 ? 0 : 1;
  }
  const rose::BugSpec* spec = rose::FindBug(positional[0]);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown bug id: %s\n", positional[0]);
    return 2;
  }
  return RunOne(*spec, seed, parallelism, tries, /*verbose=*/true, schedule_out);
}
