// reproduce_bug — run the full Rose pipeline on any bug from the catalogue.
//
// Usage:
//   ./build/examples/reproduce_bug                 # list known bugs
//   ./build/examples/reproduce_bug RedisRaft-43    # reproduce one bug
//   ./build/examples/reproduce_bug all             # reproduce every bug
#include <cstdio>
#include <cstring>

#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

namespace {

int RunOne(const rose::BugSpec& spec, uint64_t seed, bool verbose) {
  rose::RoseConfig config;
  config.seed = seed;
  const rose::RoseReport report = rose::ReproduceBugRobust(spec, config);
  if (!report.trace_obtained) {
    std::printf("%-18s  NO PRODUCTION TRACE (after %d attempts)\n", spec.id.c_str(),
                report.production_attempts);
    return 1;
  }
  std::printf("%-18s  %s  L%d  RR=%3.0f%%  sched=%-3d runs=%-3d time=%5.1fm  FR=%2.0f%%  [%s]\n",
              spec.id.c_str(), report.reproduced() ? "REPRODUCED " : "NOT-REPRO  ",
              report.diagnosis.level, report.replay_rate(), report.schedules(),
              report.runs(), report.minutes(), report.fr_percent(),
              report.diagnosis.fault_summary.c_str());
  if (verbose && report.reproduced()) {
    std::printf("%s\n", report.diagnosis.schedule.ToYaml().c_str());
  }
  return report.reproduced() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("known bugs:\n");
    for (const rose::BugSpec* spec : rose::AllBugs()) {
      std::printf("  %-18s %-32s %s\n", spec->id.c_str(), spec->system.c_str(),
                  spec->description.c_str());
    }
    std::printf("\nusage: %s <bug-id>|all [seed]\n", argv[0]);
    return 0;
  }
  const uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 42;
  if (std::strcmp(argv[1], "all") == 0) {
    int failures = 0;
    for (const rose::BugSpec* spec : rose::AllBugs()) {
      failures += RunOne(*spec, seed, /*verbose=*/false);
    }
    return failures == 0 ? 0 : 1;
  }
  const rose::BugSpec* spec = rose::FindBug(argv[1]);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown bug id: %s\n", argv[1]);
    return 2;
  }
  return RunOne(*spec, seed, /*verbose=*/true);
}
