// reproduce_bug — run the full Rose pipeline on any bug from the catalogue.
//
// Usage:
//   ./build/examples/reproduce_bug                 # list known bugs
//   ./build/examples/reproduce_bug RedisRaft-43    # reproduce one bug
//   ./build/examples/reproduce_bug all             # reproduce every bug
//
// Flags:
//   --parallelism=N     worker threads for candidate execution (default: the
//                       machine's hardware concurrency). Any value yields the
//                       identical report; it only changes wall-clock time.
//   --indexing=MODE     SCF fault targeting: "flat" (nth-invocation counters,
//                       the historical default) or "context" (execution-
//                       indexed addresses recorded in the trace; DESIGN.md
//                       §14). Context mode shrinks Level-2 sweeps to the
//                       residual same-context window.
//   --tries=N           retry with fresh seeds up to N times when a run ends
//                       without reproduction (default 3).
//   --schedule-out=FILE write the confirmed schedule's canonical YAML to FILE
//                       (single-bug mode; the same bytes `rose_served` caches
//                       and `rose_serve_cli` prints).
//   --stats-out=FILE    write the rose::obs metrics snapshot (YAML) after the
//                       run; see docs/metrics.md for every metric.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/common/parallel.h"
#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"
#include "src/obs/metrics.h"

namespace {

// Canonical --help text, diffed verbatim against docs/cli.md by the
// docs_drift ctest (tools/check_docs.sh); keep the two in sync.
constexpr char kHelp[] =
    R"(usage: reproduce_bug [<bug-id>|all] [seed] [flags]

Run the full Rose pipeline: profile the healthy system, trigger the bug
under a nemesis, dump the trace window, diagnose (Levels 1-3), and confirm
the fault schedule. With no arguments, lists the bug catalogue.

positional arguments:
  <bug-id>|all        one catalogued bug (e.g. RedisRaft-43), or every bug
  seed                base RNG seed (default 42); (seed, schedule) fully
                      determines an execution

flags:
  --parallelism=N     worker threads for candidate execution (default: the
                      machine's hardware concurrency); any value yields the
                      identical report, only wall-clock time changes
  --indexing=MODE     SCF fault targeting: flat (nth-invocation counters,
                      default) or context (execution-indexed addresses from
                      the trace; shrinks Level-2 sweeps to the residual
                      same-context window — see DESIGN.md section 14)
  --tries=N           retry with fresh seeds up to N times when a run ends
                      without reproduction (default 3)
  --schedule-out=FILE write the confirmed schedule's canonical YAML to FILE
                      (single-bug mode)
  --stats-out=FILE    write the rose::obs metrics snapshot (YAML) to FILE
                      after the run (see docs/metrics.md)
  --help              show this help and exit
)";

int RunOne(const rose::BugSpec& spec, uint64_t seed, int parallelism, int tries,
           bool verbose, const std::string& schedule_out,
           rose::DiagnosisConfig::IndexingMode indexing) {
  rose::RoseConfig config;
  config.seed = seed;
  config.diagnosis.parallelism = parallelism;
  config.diagnosis.indexing = indexing;
  const rose::RoseReport report = rose::ReproduceBugRobust(spec, config, tries);
  if (!report.trace_obtained) {
    std::printf("%-18s  NO PRODUCTION TRACE (after %d attempts)\n", spec.id.c_str(),
                report.production_attempts);
    return 1;
  }
  std::printf("%-18s  %s  L%d  RR=%3.0f%%  sched=%-3d runs=%-3d time=%5.1fm  FR=%2.0f%%  [%s]\n",
              spec.id.c_str(), report.reproduced() ? "REPRODUCED " : "NOT-REPRO  ",
              report.diagnosis.level, report.replay_rate(), report.schedules(),
              report.runs(), report.minutes(), report.fr_percent(),
              report.diagnosis.fault_summary.c_str());
  if (verbose && report.reproduced()) {
    std::printf("%s\n", report.diagnosis.schedule.ToYaml().c_str());
  }
  if (!schedule_out.empty() && report.reproduced()) {
    std::ofstream out(schedule_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "reproduce_bug: cannot write %s\n", schedule_out.c_str());
      return 2;
    }
    // Byte-exact ToYaml so the file diffs cleanly against served results.
    out << report.diagnosis.schedule.ToYaml();
    std::printf("confirmed schedule written to %s\n", schedule_out.c_str());
  }
  return report.reproduced() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int parallelism = rose::WorkerPool::DefaultParallelism();
  int tries = 3;
  std::string schedule_out;
  std::string stats_out;
  rose::DiagnosisConfig::IndexingMode indexing =
      rose::DiagnosisConfig::IndexingMode::kFlat;
  // Peel off flags; what remains is <bug-id>|all [seed].
  const char* positional[2] = {nullptr, nullptr};
  int num_positional = 0;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kHelp, stdout);
      return 0;
    } else if (std::strncmp(argv[i], "--stats-out=", 12) == 0) {
      stats_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--stats-out") == 0 && i + 1 < argc) {
      stats_out = argv[++i];  // Space form, as the other CLIs accept.
    } else if (std::strncmp(argv[i], "--parallelism=", 14) == 0) {
      parallelism = std::atoi(argv[i] + 14);
      if (parallelism < 1) {
        std::fprintf(stderr, "--parallelism must be >= 1\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--tries=", 8) == 0) {
      tries = std::atoi(argv[i] + 8);
      if (tries < 1) {
        std::fprintf(stderr, "--tries must be >= 1\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--schedule-out=", 15) == 0) {
      schedule_out = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--indexing=", 11) == 0) {
      const char* mode = argv[i] + 11;
      if (std::strcmp(mode, "flat") == 0) {
        indexing = rose::DiagnosisConfig::IndexingMode::kFlat;
      } else if (std::strcmp(mode, "context") == 0) {
        indexing = rose::DiagnosisConfig::IndexingMode::kContext;
      } else {
        std::fprintf(stderr, "--indexing must be flat or context\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", argv[i]);
      return 2;
    } else if (num_positional < 2) {
      positional[num_positional++] = argv[i];
    }
  }
  if (num_positional == 0) {
    std::printf("known bugs:\n");
    for (const rose::BugSpec* spec : rose::AllBugs()) {
      std::printf("  %-18s %-32s %s\n", spec->id.c_str(), spec->system.c_str(),
                  spec->description.c_str());
    }
    std::printf("\nusage: %s <bug-id>|all [seed] [--parallelism=N]\n", argv[0]);
    return 0;
  }
  const uint64_t seed =
      num_positional > 1 ? static_cast<uint64_t>(std::atoll(positional[1])) : 42;
  const auto flush_stats = [&stats_out] {
    if (stats_out.empty()) {
      return true;
    }
    if (!rose::WriteStatsFile(stats_out)) {
      std::fprintf(stderr, "reproduce_bug: cannot write %s\n", stats_out.c_str());
      return false;
    }
    std::printf("metrics snapshot written to %s\n", stats_out.c_str());
    return true;
  };
  if (std::strcmp(positional[0], "all") == 0) {
    int failures = 0;
    for (const rose::BugSpec* spec : rose::AllBugs()) {
      failures += RunOne(*spec, seed, parallelism, tries, /*verbose=*/false,
                         /*schedule_out=*/"", indexing);
    }
    if (!flush_stats()) {
      return 2;
    }
    return failures == 0 ? 0 : 1;
  }
  const rose::BugSpec* spec = rose::FindBug(positional[0]);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown bug id: %s\n", positional[0]);
    return 2;
  }
  const int rc =
      RunOne(*spec, seed, parallelism, tries, /*verbose=*/true, schedule_out, indexing);
  if (!flush_stats()) {
    return 2;
  }
  return rc;
}
