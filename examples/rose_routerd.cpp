// rose_routerd — the serve cluster's router/coordinator daemon.
//
// Stands up N in-process rose_served backends behind one ClusterRouter and
// pushes every submission through the router: jobs shard by canonical trace
// hash onto a consistent-hash ring, dispatches are journaled (and optionally
// replicated to a follower file), and a shard crashed mid-job (--kill-shard)
// is failed over — its jobs re-dispatch to the ring successor and finish
// with byte-identical results, courtesy of engine determinism. Clients speak
// the unchanged serve protocol; nothing distinguishes the router from a
// single daemon on the wire.
//
// Usage:
//   ./build/examples/rose_routerd [flags] <bug-id>[=DUMPBASE] ...
//
// Example — two shards, one killed mid-job; the survivor finishes all jobs:
//   ./build/examples/rose_routerd --shards 2 --kill-shard shard0 \
//       RedisRaft-42 RedisRaft-43
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/journal.h"
#include "src/cluster/router.h"
#include "src/harness/bug_registry.h"
#include "src/harness/runner.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/service.h"
#include "src/trace/mapped_trace.h"
#include "src/trace/trace_io.h"

namespace {

// Canonical --help text, diffed verbatim against docs/cli.md by the
// docs_drift ctest (tools/check_docs.sh); keep the two in sync.
constexpr char kHelp[] =
    R"(usage: rose_routerd [flags] <bug-id>[=DUMPBASE] ...

The serve cluster's router/coordinator. Stands up N in-process rose_served
backends behind one ClusterRouter: submissions shard by canonical trace
hash onto a consistent-hash ring, every dispatch is journaled before it is
forwarded, and a shard killed mid-job (--kill-shard) fails over to the
ring successor with byte-identical results. Clients speak the unchanged
serve wire protocol; confirmed schedules land in --out as
<bug>-<seed>.yaml, byte-identical to a single rose_served daemon and to
offline `reproduce_bug --schedule-out` for the same seed.

flags:
  --shards N         in-process rose_served backends on the ring (default 2)
  --journal FILE     append the coordinator journal to FILE (default: memory
                     only); a restarted router replays FILE and re-poses
                     whatever never completed
  --follower FILE    replicate the journal byte-for-byte to FILE over a
                     follower link while serving
  --kill-shard NAME  crash shard NAME as soon as it starts its first job;
                     its in-flight jobs re-dispatch to the ring successor
  --cache-dir DIR    per-shard result caches in DIR/<shard-name>
  --out DIR          write confirmed schedule YAML files here (default .)
  --concurrency N    per-shard concurrent diagnosis jobs (default 2)
  --seed N           submission seed (default 42)
  --stats-out FILE   write the rose::obs metrics snapshot (YAML) to FILE
                     at shutdown (see docs/metrics.md)
  --help             show this help and exit

example (two shards, one killed mid-job; the survivor finishes all jobs):
  rose_routerd --shards 2 --kill-shard shard0 RedisRaft-42 RedisRaft-43
)";

struct Submission {
  std::string bug_id;
  std::string dump_base;  // Empty = simulate phases 1-2.
  std::unique_ptr<rose::ServeClient> client;
  uint64_t handle = 0;
  bool reported = false;
};

// One backend shard: a full DiagnosisService on its own "socket".
struct ShardProc {
  std::string name;
  std::unique_ptr<rose::DiagnosisService> service;
  std::shared_ptr<rose::Transport> service_end;
  bool alive = true;
};

// One obtained dump + baseline, ready to submit (same shape as rose_served).
struct DumpPayload {
  rose::Profile profile;
  std::string profile_text;
  rose::MappedTrace mapped;
  rose::Trace trace;
  size_t events = 0;
};

bool ObtainDump(const Submission& sub, uint64_t seed, DumpPayload* out) {
  if (!sub.dump_base.empty()) {
    out->mapped = rose::MappedTrace::OpenFile(sub.dump_base + ".trc");
    if (rose::HasErrors(out->mapped.diagnostics())) {
      for (const rose::Diagnostic& diag : out->mapped.diagnostics()) {
        std::fprintf(stderr, "  %s\n", diag.ToString().c_str());
      }
      return false;
    }
    if (!out->mapped.zero_copy()) {
      out->trace = out->mapped.Promote();
      out->mapped = rose::MappedTrace();
    }
    out->events = out->mapped.valid() ? out->mapped.event_count() : out->trace.size();
    if (!rose::ReadFileBytes(sub.dump_base + ".profile", &out->profile_text)) {
      std::fprintf(stderr, "rose_routerd: cannot open %s.profile\n", sub.dump_base.c_str());
      return false;
    }
    return rose::ParseProfile(out->profile_text, &out->profile);
  }
  const rose::BugSpec* spec = rose::FindBug(sub.bug_id);
  if (spec == nullptr) {
    std::fprintf(stderr, "rose_routerd: unknown bug id %s\n", sub.bug_id.c_str());
    return false;
  }
  rose::BugRunner runner(spec);
  out->profile = runner.RunProfiling(seed);
  std::optional<rose::Trace> production =
      runner.ObtainProductionTrace(out->profile, seed + 17);
  if (!production.has_value()) {
    std::fprintf(stderr, "rose_routerd: %s never surfaced\n", sub.bug_id.c_str());
    return false;
  }
  out->trace = std::move(*production);
  out->events = out->trace.size();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int shard_count = 2;
  rose::ServeConfig shard_config;
  rose::RouterConfig router_config;
  std::string follower_path;
  std::string kill_shard;
  std::string cache_dir;
  std::string out_dir = ".";
  std::string stats_out;
  uint64_t seed = 42;
  std::vector<Submission> submissions;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kHelp, stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      router_config.journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--follower") == 0 && i + 1 < argc) {
      follower_path = argv[++i];
    } else if (std::strcmp(argv[i], "--kill-shard") == 0 && i + 1 < argc) {
      kill_shard = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--concurrency") == 0 && i + 1 < argc) {
      shard_config.max_concurrent_jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--stats-out") == 0 && i + 1 < argc) {
      stats_out = argv[++i];
    } else {
      Submission sub;
      const char* eq = std::strchr(argv[i], '=');
      if (eq != nullptr) {
        sub.bug_id.assign(argv[i], static_cast<size_t>(eq - argv[i]));
        sub.dump_base = eq + 1;
      } else {
        sub.bug_id = argv[i];
      }
      submissions.push_back(std::move(sub));
    }
  }
  if (submissions.empty() || shard_count < 1) {
    std::fprintf(stderr,
                 "usage: %s [--shards N] [--journal FILE] [--follower FILE] "
                 "[--kill-shard NAME] [--cache-dir DIR] [--out DIR] [--concurrency N] "
                 "[--seed N] [--stats-out FILE] <bug-id>[=DUMPBASE] ...  (see --help)\n",
                 argv[0]);
    return 2;
  }
  if (!kill_shard.empty() && shard_count < 2) {
    std::fprintf(stderr, "rose_routerd: --kill-shard needs --shards >= 2 "
                         "(someone must survive to take over)\n");
    return 2;
  }
  std::filesystem::create_directories(out_dir);

  rose::ClusterRouter router(router_config);
  std::vector<ShardProc> shards(static_cast<size_t>(shard_count));
  for (size_t i = 0; i < shards.size(); i++) {
    shards[i].name = "shard" + std::to_string(i);
    rose::ServeConfig config = shard_config;
    if (!cache_dir.empty()) {
      config.cache_dir = cache_dir + "/" + shards[i].name;
    }
    shards[i].service = std::make_unique<rose::DiagnosisService>(config);
    auto [router_end, service_end] = rose::MakePipePair();
    shards[i].service_end = service_end;
    shards[i].service->Attach(service_end);
    router.AttachShard(shards[i].name, router_end);
  }
  std::unique_ptr<rose::JournalFollower> follower;
  if (!follower_path.empty()) {
    auto [leader_end, follower_end] = rose::MakePipePair();
    router.AttachJournalFollower(leader_end);
    follower = std::make_unique<rose::JournalFollower>(follower_path, follower_end);
  }
  std::printf("rose_routerd: %d shards on the ring (journal=%s epoch=%llu)\n",
              shard_count,
              router_config.journal_path.empty() ? "memory"
                                                 : router_config.journal_path.c_str(),
              static_cast<unsigned long long>(router.ring().epoch()));

  size_t client_index = 0;
  for (Submission& sub : submissions) {
    client_index++;
    DumpPayload payload;
    if (!ObtainDump(sub, seed, &payload)) {
      return 1;
    }
    auto [client_end, router_end] = rose::MakePipePair();
    router.AttachClient(router_end);
    sub.client = std::make_unique<rose::ServeClient>(client_end);
    if (payload.mapped.valid()) {
      sub.handle = sub.client->SubmitBlob(sub.bug_id, seed, sub.bug_id,
                                          payload.profile_text, payload.mapped.bytes());
    } else {
      rose::SubmitRequest request;
      request.bug_id = sub.bug_id;
      request.seed = seed;
      request.tag = sub.bug_id;
      request.profile = std::move(payload.profile);
      request.trace = std::move(payload.trace);
      sub.handle = sub.client->Submit(request);
    }
    std::printf("client %zu: submitted %s (%zu events)\n", client_index,
                sub.bug_id.c_str(), payload.events);
  }

  int failures = 0;
  bool killed = kill_shard.empty();
  for (;;) {
    bool all_done = true;
    for (Submission& sub : submissions) {
      sub.client->Poll();
      for (const rose::ProgressMsg& msg : sub.client->TakeProgress(sub.handle)) {
        std::printf("  [%s] %s\n", sub.bug_id.c_str(), msg.ToString().c_str());
      }
      if (!sub.client->done(sub.handle)) {
        all_done = false;
        continue;
      }
      if (sub.reported) {
        continue;
      }
      sub.reported = true;
      if (sub.client->failed(sub.handle)) {
        std::printf("%-18s  REJECTED: %s\n", sub.bug_id.c_str(),
                    sub.client->error_message(sub.handle).c_str());
        failures++;
        continue;
      }
      const rose::ServeJobResult& result = sub.client->result(sub.handle);
      const char* how = result.cached ? "cache" : result.coalesced ? "coalesced" : "ran";
      std::printf("%-18s  %s  L%d  RR=%3.0f%%  sched=%d runs=%d  (%s)  [%s]\n",
                  sub.bug_id.c_str(), result.reproduced ? "REPRODUCED " : "NOT-REPRO  ",
                  result.level, result.replay_rate, result.schedules, result.runs, how,
                  result.fault_summary.c_str());
      if (result.reproduced) {
        const std::string path = out_dir + "/" + sub.bug_id + "-" +
                                 std::to_string(seed) + ".yaml";
        std::ofstream out(path, std::ios::binary);
        out << result.schedule_yaml;
        std::printf("  schedule -> %s\n", path.c_str());
      } else {
        failures++;
      }
    }
    router.Poll();
    for (ShardProc& shard : shards) {
      if (!shard.alive) {
        continue;
      }
      shard.service->Poll();
      if (!killed && shard.name == kill_shard &&
          shard.service->stats().jobs_submitted > 0) {
        // Crash mid-job: stop the backend cold (its transport half-closes),
        // tell the router, and let failover re-pose whatever it owned.
        killed = true;
        shard.alive = false;
        shard.service_end->Close();
        router.DetachShard(shard.name);
        std::printf("rose_routerd: killed %s mid-job; re-dispatching to ring "
                    "successor (failovers=%llu)\n",
                    shard.name.c_str(),
                    static_cast<unsigned long long>(router.stats().failovers));
      }
    }
    if (follower != nullptr) {
      follower->Poll();
    }
    bool shards_idle = true;
    for (ShardProc& shard : shards) {
      if (shard.alive && !shard.service->idle()) {
        shards_idle = false;
      }
    }
    if (all_done && shards_idle && router.idle()) {
      break;
    }
  }

  std::printf("\nstats: %s\n", router.BuildStats().ToString().c_str());
  std::printf("cluster: routed=%llu completed=%llu failovers=%llu redispatches=%llu "
              "journal_appends=%llu\n",
              static_cast<unsigned long long>(router.stats().jobs_routed),
              static_cast<unsigned long long>(router.stats().completions),
              static_cast<unsigned long long>(router.stats().failovers),
              static_cast<unsigned long long>(router.stats().redispatches),
              static_cast<unsigned long long>(router.journal().appends()));
  if (follower != nullptr) {
    std::printf("follower: %llu journal bytes replicated to %s\n",
                static_cast<unsigned long long>(follower->bytes_received()),
                follower->path().c_str());
  }
  if (!stats_out.empty()) {
    if (!rose::WriteStatsFile(stats_out)) {
      std::fprintf(stderr, "rose_routerd: cannot write %s\n", stats_out.c_str());
      return 2;
    }
    std::printf("metrics snapshot written to %s\n", stats_out.c_str());
  }
  return failures == 0 ? 0 : 1;
}
