// rose_serve_cli — submit a production dump to the diagnosis service.
//
// The serve daemon replaces the paper's "carry the dump to the diagnosis
// machine" step. This client obtains a dump (simulating phases 1–2, or
// loading a saved .trc + .profile pair), submits it over the serve wire
// protocol, tails the progress stream, and prints the confirmed schedule —
// byte-identical to what an offline `reproduce_bug` run would produce for
// the same (dump, profile, seed).
//
// The OS substrate is simulated, so the daemon runs in-process and the wire
// is a bounded in-memory pipe; every protocol layer (framing, CRCs,
// backpressure, resynchronization) behaves as it would over a socket.
//
// Usage:
//   ./build/examples/rose_serve_cli <bug-id> [seed] [flags]
//
// Flags:
//   --dump FILE       load the production dump from FILE instead of simulating
//   --load-mode MODE  mmap (default, zero-copy raw-blob submit) or heap
//   --profile FILE    load the profiling baseline (required with --dump)
//   --save-dump BASE  after generating, write BASE.trc + BASE.profile
//   --yaml-out FILE   write the confirmed schedule YAML to FILE
//   --cache-dir DIR   persist confirmed schedules across daemon restarts
//   --again           resubmit the identical dump; the second submission must
//                     be served from the cache with zero extra engine runs
//   --stream          replay the dump through a stream session (open / data
//                     chunks / oracle mark) instead of one kSubmit
//   --chunk N         stream chunk size in bytes (default 4096)
//   --server-stats    send a STATS request and print the server's reply
//   --quiet           suppress the progress tail
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/harness/bug_registry.h"
#include "src/harness/runner.h"
#include "src/net/transport.h"
#include "src/serve/client.h"
#include "src/serve/service.h"
#include "src/trace/mapped_trace.h"
#include "src/trace/trace_io.h"

namespace {

// Canonical --help text, diffed verbatim against docs/cli.md by the
// docs_drift ctest (tools/check_docs.sh); keep the two in sync.
constexpr char kHelp[] =
    R"(usage: rose_serve_cli <bug-id> [seed] [flags]

Submit a production dump to the diagnosis service. Obtains a dump
(simulating phases 1-2, or loading a saved .trc + .profile pair), submits
it over the serve wire protocol, tails the progress stream, and prints the
confirmed schedule -- byte-identical to what an offline `reproduce_bug`
run would produce for the same (dump, profile, seed). The daemon runs
in-process over a bounded in-memory pipe; every protocol layer (framing,
CRCs, backpressure, resynchronization) behaves as it would over a socket.

positional arguments:
  <bug-id>          one catalogued bug (e.g. RedisRaft-43)
  seed              submission seed (default 42)

flags:
  --dump FILE       load the production dump from FILE instead of simulating
  --load-mode MODE  how --dump comes in: 'mmap' (default) maps the file and
                    submits its raw container bytes zero-copy; 'heap' reads
                    and parses it into an owning trace first
  --profile FILE    load the profiling baseline (required with --dump)
  --save-dump BASE  after generating, write BASE.trc + BASE.profile
  --yaml-out FILE   write the confirmed schedule YAML to FILE
  --cache-dir DIR   persist confirmed schedules across daemon restarts
  --again           resubmit the identical dump; the second submission must
                    be served from the cache with zero extra engine runs
                    (with --stream this re-submits over the classic kSubmit
                    path, proving the streamed window materialized to the
                    same cache key)
  --stream          replay the dump through a stream session instead of one
                    kSubmit: open the session, ship the container bytes in
                    --chunk sized kStreamData frames, then append an
                    oracle-mark frame -- the daemon materializes its window
                    and diagnoses under the session id (DESIGN.md section 16)
  --chunk N         stream chunk size in bytes (default 4096)
  --server-stats    send a STATS request after the job and print the
                    server's reply (counters, queue, metrics YAML)
  --quiet           suppress the progress tail
  --help            show this help and exit
)";

// Interleaves client and service pumps until `handle` resolves.
void PumpUntilDone(rose::ServeClient& client, rose::DiagnosisService& service,
                   uint64_t handle, bool quiet) {
  while (!client.done(handle)) {
    client.Poll();
    service.Poll();
    for (const rose::ProgressMsg& msg : client.TakeProgress(handle)) {
      if (!quiet) {
        std::printf("  %s\n", msg.ToString().c_str());
      }
    }
  }
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  // One fstat-sized read, no stream-buffer double copy.
  return rose::ReadFileBytes(path, out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string bug_id;
  uint64_t seed = 42;
  std::string dump_path;
  std::string load_mode = "mmap";
  std::string profile_path;
  std::string save_dump;
  std::string yaml_out;
  std::string cache_dir;
  bool again = false;
  bool quiet = false;
  bool server_stats = false;
  bool stream = false;
  size_t chunk = 4096;
  int num_positional = 0;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kHelp, stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
      dump_path = argv[++i];
    } else if (std::strcmp(argv[i], "--load-mode") == 0 && i + 1 < argc) {
      load_mode = argv[++i];
      if (load_mode != "mmap" && load_mode != "heap") {
        std::fprintf(stderr, "rose_serve_cli: --load-mode must be mmap or heap\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--save-dump") == 0 && i + 1 < argc) {
      save_dump = argv[++i];
    } else if (std::strcmp(argv[i], "--yaml-out") == 0 && i + 1 < argc) {
      yaml_out = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--again") == 0) {
      again = true;
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      stream = true;
    } else if (std::strcmp(argv[i], "--chunk") == 0 && i + 1 < argc) {
      chunk = static_cast<size_t>(std::atoll(argv[++i]));
      if (chunk == 0) {
        std::fprintf(stderr, "rose_serve_cli: --chunk must be positive\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--server-stats") == 0) {
      server_stats = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (num_positional == 0) {
      bug_id = argv[i];
      num_positional++;
    } else {
      seed = static_cast<uint64_t>(std::atoll(argv[i]));
    }
  }
  if (bug_id.empty()) {
    std::fprintf(stderr, "usage: %s <bug-id> [seed] [--dump FILE --profile FILE] "
                         "[--save-dump BASE] [--yaml-out FILE] [--cache-dir DIR] "
                         "[--again] [--stream] [--chunk N] [--server-stats] [--quiet]"
                         "  (see --help)\n", argv[0]);
    return 2;
  }
  const rose::BugSpec* spec = rose::FindBug(bug_id);
  if (spec == nullptr) {
    std::fprintf(stderr, "rose_serve_cli: unknown bug id %s\n", bug_id.c_str());
    return 2;
  }

  // --- Obtain the dump + baseline: load a saved pair or simulate phases 1-2.
  rose::Profile profile;
  rose::Trace trace;
  // mmap mode: the dump stays a mapped, zero-copy handle; its raw container
  // bytes are shipped to the server as-is (SubmitBlob), so no owning Trace
  // exists anywhere on the submission path.
  rose::MappedTrace mapped;
  std::string profile_text;
  if (!dump_path.empty()) {
    if (profile_path.empty()) {
      std::fprintf(stderr, "rose_serve_cli: --dump requires --profile\n");
      return 2;
    }
    size_t dump_events = 0;
    if (load_mode == "mmap") {
      mapped = rose::MappedTrace::OpenFile(dump_path);
      for (const rose::Diagnostic& diag : mapped.diagnostics()) {
        std::fprintf(stderr, "  %s\n", diag.ToString().c_str());
      }
      if (rose::HasErrors(mapped.diagnostics())) {
        std::fprintf(stderr, "rose_serve_cli: dump %s is damaged\n", dump_path.c_str());
        return 1;
      }
      if (!mapped.zero_copy()) {
        // Text dump: there is no container blob to ship raw; fall back to
        // the owning path (still loaded through the mapping).
        trace = mapped.Promote();
        mapped = rose::MappedTrace();
      }
      dump_events = mapped.valid() ? mapped.event_count() : trace.size();
    } else {
      std::vector<rose::Diagnostic> diags;
      trace = rose::LoadTraceFile(dump_path, &diags);
      for (const rose::Diagnostic& diag : diags) {
        std::fprintf(stderr, "  %s\n", diag.ToString().c_str());
      }
      if (rose::HasErrors(diags)) {
        std::fprintf(stderr, "rose_serve_cli: dump %s is damaged\n", dump_path.c_str());
        return 1;
      }
      dump_events = trace.size();
    }
    if (!ReadWholeFile(profile_path, &profile_text) ||
        !rose::ParseProfile(profile_text, &profile)) {
      std::fprintf(stderr, "rose_serve_cli: cannot read profile %s\n", profile_path.c_str());
      return 2;
    }
    std::printf("loaded dump %s (%zu events, %s) + profile %s\n", dump_path.c_str(),
                dump_events, mapped.valid() ? mapped.load_mode() : "heap",
                profile_path.c_str());
  } else {
    rose::BugRunner runner(spec);
    std::printf("--- phases 1-2: profiling + production tracing (%s, seed %llu) ---\n",
                bug_id.c_str(), static_cast<unsigned long long>(seed));
    profile = runner.RunProfiling(seed);
    int attempts = 0;
    std::optional<rose::Trace> production =
        runner.ObtainProductionTrace(profile, seed + 17, &attempts);
    if (!production.has_value()) {
      std::fprintf(stderr, "rose_serve_cli: bug never surfaced (after %d attempts)\n",
                   attempts);
      return 1;
    }
    trace = std::move(*production);
    std::printf("dump window holds %zu events (%d production attempt(s))\n", trace.size(),
                attempts);
  }

  if (!save_dump.empty()) {
    const std::string trc = save_dump + ".trc";
    const std::string prof = save_dump + ".profile";
    std::ofstream prof_out(prof, std::ios::binary);
    // Copy-on-write: saving re-encodes, the one step needing an owning Trace.
    const bool saved = mapped.valid() ? rose::SaveTraceFile(trc, mapped.Promote())
                                      : rose::SaveTraceFile(trc, trace);
    if (!saved || !prof_out) {
      std::fprintf(stderr, "rose_serve_cli: cannot write %s\n", save_dump.c_str());
      return 2;
    }
    prof_out << rose::SerializeProfile(profile);
    std::printf("saved %s + %s\n", trc.c_str(), prof.c_str());
  }

  // --- Stand up the in-process daemon and connect over a bounded pipe.
  rose::ServeConfig serve_config;
  serve_config.cache_dir = cache_dir;
  rose::DiagnosisService service(serve_config);
  auto [client_end, server_end] = rose::MakePipePair();
  service.Attach(server_end);
  rose::ServeClient client(client_end);

  // mmap-loaded binary dumps ship their raw container bytes (SubmitBlob);
  // everything else encodes the owning Trace the classic way. Both forms
  // hash to the same cache key on the server.
  auto submit_job = [&]() {
    if (mapped.valid()) {
      return client.SubmitBlob(bug_id, seed, "cli", profile_text, mapped.bytes());
    }
    rose::SubmitRequest request;
    request.bug_id = bug_id;
    request.seed = seed;
    request.tag = "cli";
    request.profile = profile;
    request.trace = trace;
    return client.Submit(request);
  };

  // --stream: replay the same container bytes through a stream session. The
  // daemon's window re-canonicalizes to the identical blob a kSubmit would
  // have carried, so the result (and the cache key) must match byte for byte.
  auto stream_job = [&]() {
    const std::string blob =
        mapped.valid() ? std::string(mapped.bytes()) : trace.SerializeBinary();
    const std::string prof_text =
        profile_text.empty() ? rose::SerializeProfile(profile) : profile_text;
    const uint64_t handle = client.OpenStream(bug_id, seed, "cli", prof_text);
    for (size_t off = 0; off < blob.size(); off += chunk) {
      client.StreamData(handle, std::string_view(blob).substr(off, chunk));
      client.Poll();
      service.Poll();
    }
    // The in-band "failure fired" signal: diagnosis starts on what the
    // daemon's window holds.
    rose::OracleMark mark;
    mark.detail = "cli replay";
    std::string tail;
    rose::AppendRtrcFrame(&tail, rose::kFrameOracleMark, rose::EncodeOracleMark(mark));
    client.StreamData(handle, tail);
    return handle;
  };

  std::printf("\n--- submitting to rose_served%s ---\n",
              stream ? " (stream session)" : "");
  const uint64_t first = stream ? stream_job() : submit_job();
  PumpUntilDone(client, service, first, quiet);
  if (stream) {
    client.CloseStream(first);
    while (service.stream_sessions() > 0) {
      client.Poll();
      service.Poll();
    }
  }
  if (client.failed(first)) {
    std::fprintf(stderr, "rose_serve_cli: rejected: %s (%s)\n",
                 client.error_message(first).c_str(),
                 std::string(rose::ServeErrorName(client.error_code(first))).c_str());
    return 1;
  }
  const rose::ServeJobResult& result = client.result(first);
  std::printf("%s  %s  L%d  RR=%3.0f%%  sched=%d runs=%d  [%s]\n", bug_id.c_str(),
              result.reproduced ? "REPRODUCED " : "NOT-REPRO  ", result.level,
              result.replay_rate, result.schedules, result.runs,
              result.fault_summary.c_str());
  if (result.reproduced) {
    std::printf("%s\n", result.schedule_yaml.c_str());
  }
  if (!yaml_out.empty() && result.reproduced) {
    std::ofstream out(yaml_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "rose_serve_cli: cannot write %s\n", yaml_out.c_str());
      return 2;
    }
    out << result.schedule_yaml;
    std::printf("schedule written to %s\n", yaml_out.c_str());
  }

  if (again) {
    const uint64_t runs_before = service.stats().engine_runs;
    std::printf("\n--- resubmitting the identical dump ---\n");
    const uint64_t second = submit_job();
    PumpUntilDone(client, service, second, quiet);
    const rose::ServeJobResult& cached = client.result(second);
    const bool hit = client.accept_kind(second) == rose::AcceptKind::kCacheHit;
    const uint64_t extra_runs = service.stats().engine_runs - runs_before;
    std::printf("disposition: %s; extra engine runs: %llu; yaml identical: %s\n",
                hit ? "cache hit" : "MISS (unexpected)",
                static_cast<unsigned long long>(extra_runs),
                cached.schedule_yaml == result.schedule_yaml ? "yes" : "NO");
    if (!hit || extra_runs != 0 || cached.schedule_yaml != result.schedule_yaml) {
      return 1;
    }
  }

  if (server_stats) {
    // Exercise the STATS wire round-trip rather than peeking at the
    // in-process service object: request, pump, print the decoded reply.
    std::printf("\n--- STATS request over the wire ---\n");
    client.RequestStats();
    while (!client.stats_available()) {
      client.Poll();
      service.Poll();
    }
    const rose::StatsMsg& remote = client.stats();
    std::printf("server: %s\n", remote.ToString().c_str());
    if (!quiet && !remote.metrics_yaml.empty()) {
      std::printf("%s", remote.metrics_yaml.c_str());
    }
  }

  // Same formatter as the daemon's periodic heartbeat and the STATS reply.
  std::printf("\nserver stats: %s\n", service.BuildStats().ToString().c_str());
  return result.reproduced ? 0 : 1;
}
