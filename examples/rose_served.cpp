// rose_served — the diagnosis daemon, serving several clients at once.
//
// Stands up a DiagnosisService listening on a simulated Unix socket, connects
// one client per requested job, and pumps everything until the queue drains.
// Each submission is either a saved dump pair (bug=BASE loads BASE.trc +
// BASE.profile) or generated on the fly by simulating phases 1–2 for the
// named bug. Confirmed schedules land in --out as <bug>-<seed>.yaml —
// byte-identical to offline `reproduce_bug --schedule-out` for the same seed.
//
// With --cache-dir the result store persists: restart the daemon on the same
// directory and resubmissions are answered from disk without an engine run.
//
// Usage:
//   ./build/examples/rose_served [flags] <bug-id>[=DUMPBASE] ...
//
// Flags:
//   --cache-dir DIR    persist confirmed schedules across restarts
//   --out DIR          write confirmed schedule YAML files here (default ".")
//   --concurrency N    diagnosis jobs running at once (default 2)
//   --queue N          queued-job bound; overflow is rejected with kQueueFull
//   --seed N           submission seed (default 42)
//
// Example — three bugs, two of them identical (the duplicate coalesces):
//   ./build/examples/rose_served RedisRaft-43 MiniZK-1058 RedisRaft-43
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/bug_registry.h"
#include "src/harness/runner.h"
#include "src/net/transport.h"
#include "src/serve/client.h"
#include "src/serve/service.h"
#include "src/trace/trace_io.h"

namespace {

struct Submission {
  std::string bug_id;
  std::string dump_base;  // Empty = simulate phases 1-2.
  std::unique_ptr<rose::ServeClient> client;
  uint64_t handle = 0;
  bool reported = false;
};

bool ObtainDump(const Submission& sub, uint64_t seed, rose::Profile* profile,
                rose::Trace* trace) {
  if (!sub.dump_base.empty()) {
    std::vector<rose::Diagnostic> diags;
    *trace = rose::LoadTraceFile(sub.dump_base + ".trc", &diags);
    if (rose::HasErrors(diags)) {
      for (const rose::Diagnostic& diag : diags) {
        std::fprintf(stderr, "  %s\n", diag.ToString().c_str());
      }
      return false;
    }
    std::ifstream prof_in(sub.dump_base + ".profile", std::ios::binary);
    if (!prof_in) {
      std::fprintf(stderr, "rose_served: cannot open %s.profile\n", sub.dump_base.c_str());
      return false;
    }
    std::ostringstream buf;
    buf << prof_in.rdbuf();
    return rose::ParseProfile(buf.str(), profile);
  }
  const rose::BugSpec* spec = rose::FindBug(sub.bug_id);
  if (spec == nullptr) {
    std::fprintf(stderr, "rose_served: unknown bug id %s\n", sub.bug_id.c_str());
    return false;
  }
  rose::BugRunner runner(spec);
  *profile = runner.RunProfiling(seed);
  std::optional<rose::Trace> production = runner.ObtainProductionTrace(*profile, seed + 17);
  if (!production.has_value()) {
    std::fprintf(stderr, "rose_served: %s never surfaced\n", sub.bug_id.c_str());
    return false;
  }
  *trace = std::move(*production);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  rose::ServeConfig config;
  std::string out_dir = ".";
  uint64_t seed = 42;
  std::vector<Submission> submissions;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc) {
      config.cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--concurrency") == 0 && i + 1 < argc) {
      config.max_concurrent_jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      config.queue_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      Submission sub;
      const char* eq = std::strchr(argv[i], '=');
      if (eq != nullptr) {
        sub.bug_id.assign(argv[i], static_cast<size_t>(eq - argv[i]));
        sub.dump_base = eq + 1;
      } else {
        sub.bug_id = argv[i];
      }
      submissions.push_back(std::move(sub));
    }
  }
  if (submissions.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--cache-dir DIR] [--out DIR] [--concurrency N] [--queue N] "
                 "[--seed N] <bug-id>[=DUMPBASE] ...\n", argv[0]);
    return 2;
  }
  std::filesystem::create_directories(out_dir);

  rose::DiagnosisService service(config);
  rose::SimSocketSpace sockets;
  sockets.Listen("/run/rose_served.sock");
  std::printf("rose_served: listening (concurrency=%d queue=%zu cache=%s)\n",
              config.max_concurrent_jobs, config.queue_capacity,
              config.cache_dir.empty() ? "memory" : config.cache_dir.c_str());

  // One connection per submission — the daemon's per-client fairness and
  // duplicate coalescing are visible with several tenants.
  size_t client_index = 0;
  for (Submission& sub : submissions) {
    client_index++;
    rose::Profile profile;
    rose::Trace trace;
    if (!ObtainDump(sub, seed, &profile, &trace)) {
      return 1;
    }
    std::shared_ptr<rose::Transport> end = sockets.Connect("/run/rose_served.sock");
    service.Attach(sockets.Accept("/run/rose_served.sock"));
    sub.client = std::make_unique<rose::ServeClient>(end);
    rose::SubmitRequest request;
    request.bug_id = sub.bug_id;
    request.seed = seed;
    request.tag = sub.bug_id;
    request.profile = std::move(profile);
    request.trace = std::move(trace);
    sub.handle = sub.client->Submit(request);
    std::printf("client %zu: submitted %s (%zu events)\n", client_index,
                sub.bug_id.c_str(), request.trace.size());
  }

  int failures = 0;
  for (;;) {
    bool all_done = true;
    for (Submission& sub : submissions) {
      sub.client->Poll();
      for (const rose::ProgressMsg& msg : sub.client->TakeProgress(sub.handle)) {
        std::printf("  [%s] %s\n", sub.bug_id.c_str(), msg.ToString().c_str());
      }
      if (!sub.client->done(sub.handle)) {
        all_done = false;
        continue;
      }
      if (sub.reported) {
        continue;
      }
      sub.reported = true;
      if (sub.client->failed(sub.handle)) {
        std::printf("%-18s  REJECTED: %s\n", sub.bug_id.c_str(),
                    sub.client->error_message(sub.handle).c_str());
        failures++;
        continue;
      }
      const rose::ServeJobResult& result = sub.client->result(sub.handle);
      const char* how = result.cached ? "cache" : result.coalesced ? "coalesced" : "ran";
      std::printf("%-18s  %s  L%d  RR=%3.0f%%  sched=%d runs=%d  (%s)  [%s]\n",
                  sub.bug_id.c_str(), result.reproduced ? "REPRODUCED " : "NOT-REPRO  ",
                  result.level, result.replay_rate, result.schedules, result.runs, how,
                  result.fault_summary.c_str());
      if (result.reproduced) {
        const std::string path = out_dir + "/" + sub.bug_id + "-" +
                                 std::to_string(seed) + ".yaml";
        std::ofstream out(path, std::ios::binary);
        out << result.schedule_yaml;
        std::printf("  schedule -> %s\n", path.c_str());
      } else {
        failures++;
      }
    }
    service.Poll();
    if (all_done && service.idle()) {
      break;
    }
  }

  const rose::ServeStats& stats = service.stats();
  std::printf("\nstats: submitted=%llu completed=%llu cache_hits=%llu coalesced=%llu "
              "rejected_full=%llu invalid=%llu corrupt_frames=%llu engine_runs=%llu\n",
              static_cast<unsigned long long>(stats.jobs_submitted),
              static_cast<unsigned long long>(stats.jobs_completed),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.rejected_queue_full),
              static_cast<unsigned long long>(stats.rejected_invalid),
              static_cast<unsigned long long>(stats.corrupt_frames),
              static_cast<unsigned long long>(stats.engine_runs));
  return failures == 0 ? 0 : 1;
}
