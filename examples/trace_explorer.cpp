// trace_explorer — watch Rose's production tracer at work.
//
// Runs a 5-node RaftKV cluster under a Jepsen-style nemesis with the
// lightweight tracer attached, dumps the sliding window, prints the raw
// events grouped by type, and shows what the diagnosis front-end extracts
// from them (candidate faults, benign-fault reduction).
//
// Usage: ./build/examples/trace_explorer [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/analyze/trace_validator.h"
#include "src/diagnose/extract.h"
#include "src/harness/bug_registry.h"
#include "src/harness/runner.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 1234;

  // Borrow the RedisRaft-42 deployment (any guest works; this one crashes
  // nodes often enough to make an interesting trace).
  const rose::BugSpec* spec = rose::FindBug("RedisRaft-42");
  if (spec == nullptr) {
    return 1;
  }
  rose::BugRunner runner(spec);

  std::printf("--- phase 1: profiling (failure-free run) ---\n");
  const rose::Profile profile = runner.RunProfiling(seed);
  std::printf("monitored (infrequent) functions: %zu\n", profile.monitored_functions.size());
  for (int32_t fid : profile.monitored_functions) {
    std::printf("  uprobe site: %s\n", spec->binary->NameOf(fid).c_str());
  }
  std::printf("benign fault signatures learned: %zu\n\n",
              profile.benign_scf_signatures.size());

  std::printf("--- phase 2: production run under nemesis ---\n");
  rose::RunOptions options;
  options.seed = seed;
  options.duration = spec->run_duration;
  options.profile = &profile;
  options.with_nemesis = true;
  const rose::RunOutcome outcome = runner.RunOnce(options);
  std::printf("bug manifested: %s; trace window holds %zu events\n\n",
              outcome.bug ? "yes" : "no", outcome.trace.size());

  std::map<rose::EventType, int> counts;
  for (const rose::TraceEvent& event : outcome.trace.events()) {
    counts[event.type]++;
  }
  std::printf("event mix: SCF=%d AF=%d ND=%d PS=%d\n", counts[rose::EventType::kSCF],
              counts[rose::EventType::kAF], counts[rose::EventType::kND],
              counts[rose::EventType::kPS]);
  std::printf("last 12 events of the window:\n");
  const auto& events = outcome.trace.events();
  for (size_t i = events.size() > 12 ? events.size() - 12 : 0; i < events.size(); i++) {
    std::printf("  %s\n", events[i].ToLine().c_str());
  }

  std::printf("\n--- phase 2b: static trace validation (rose::analyze) ---\n");
  rose::TraceValidateOptions validate_options;
  validate_options.profile = &profile;
  const std::vector<rose::Diagnostic> trace_diags =
      rose::TraceValidator(validate_options).Validate(outcome.trace);
  if (trace_diags.empty()) {
    std::printf("trace passes validation: timestamps monotonic, pids attributed, "
                "SCF errnos real, AF ids profiled.\n");
  } else {
    std::printf("%zu diagnostic(s):\n", trace_diags.size());
    for (const rose::Diagnostic& diag : trace_diags) {
      std::printf("  %s\n", diag.ToString().c_str());
    }
  }

  std::printf("\n--- phase 3: fault extraction (diagnosis front-end) ---\n");
  const rose::ExtractionResult extraction = rose::ExtractFaults(outcome.trace, profile);
  std::printf("%d raw fault events; %d removed as benign (FR=%.0f%%); %zu candidates:\n",
              extraction.total_fault_events, extraction.removed_benign,
              extraction.fr_percent, extraction.faults.size());
  for (const rose::CandidateFault& fault : extraction.faults) {
    std::printf("  t=%.3fs  %s\n", rose::ToSeconds(fault.ts), fault.Label().c_str());
  }
  return 0;
}
