// trace_explorer — watch Rose's production tracer at work.
//
// Runs a 5-node RaftKV cluster under a Jepsen-style nemesis with the
// lightweight tracer attached, dumps the sliding window, prints the raw
// events grouped by type, and shows what the diagnosis front-end extracts
// from them (candidate faults, benign-fault reduction).
//
// Usage:
//   ./build/examples/trace_explorer [seed] [--save FILE] [--stats]
//   ./build/examples/trace_explorer --load FILE [--stats]
//   ./build/examples/trace_explorer --merge A B [C...] [--save FILE] [--stats]
//
//   --save FILE   write the dumped window to FILE — binary container unless
//                 FILE ends in .txt (then the one-event-per-line text form)
//   --load FILE   skip the simulated run and explore a saved trace instead;
//                 binary vs text is auto-detected from the file's magic
//   --merge ...   k-way merge saved per-node traces (Trace::Merge):
//                 timestamp-ordered, stable for ties, strings re-interned
//                 into one pool; combine with --save to persist the result
//   --stats       print window statistics (events by type and node, string
//                 pool size, window time span, encoded sizes) — rendered
//                 from the rose::obs registry (src/obs/trace_report.h)
//   --index-stats also print execution-index quality rows (implies --stats):
//                 indexed-SCF coverage, digest-collision count, and the
//                 context seq-depth histogram (DESIGN.md §14)
//   --stats-out FILE  write the rose::obs metrics snapshot (YAML) to FILE
//
// Exit status: 0 on success; 1 when a loaded file carries error-severity
// container diagnostics (TB2xx — truncation, CRC damage, unreadable file),
// even if intact frames still produced events.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/analyze/trace_validator.h"
#include "src/causal/causal_graph.h"
#include "src/causal/feasibility.h"
#include "src/diagnose/extract.h"
#include "src/harness/bug_registry.h"
#include "src/harness/runner.h"
#include "src/obs/trace_report.h"
#include "src/trace/mapped_trace.h"
#include "src/trace/trace_io.h"

namespace {

// Canonical --help text, diffed verbatim against docs/cli.md by the
// docs_drift ctest (tools/check_docs.sh); keep the two in sync.
constexpr char kHelp[] =
    R"(usage: trace_explorer [seed] [flags]
       trace_explorer --load FILE [flags]
       trace_explorer --merge A B [C...] [flags]

Watch Rose's production tracer at work: run a RaftKV cluster under a
nemesis with the tracer attached, dump the sliding window, print the raw
events, and show the diagnosis front-end's fault extraction. Or explore a
saved dump instead of running the simulation.

positional arguments:
  seed              simulation seed for the live run (default 1234)

flags:
  --save FILE       write the dumped window to FILE (binary container, or
                    one-event-per-line text when FILE ends in .txt)
  --load FILE       explore a saved trace instead of running; binary vs
                    text is auto-detected from the file's magic
  --load-mode MODE  how --load brings the file in: 'mmap' (default) maps it
                    and decodes zero-copy — pool strings resolve into the
                    mapped bytes; 'heap' reads and parses the owning way
  --merge A B ...   k-way merge saved per-node traces (timestamp-ordered,
                    stable for ties); combine with --save to persist
  --stats           print window statistics from the rose::obs registry
                    (events by kind and node, occupancy, pool, sizes);
                    loaded traces add load_mode and mapped-bytes rows
  --index-stats     add execution-index quality rows to the statistics
                    (implies --stats): indexed-SCF coverage, digest
                    collisions, context seq-depth histogram
  --stats-out FILE  write the rose::obs metrics snapshot (YAML) to FILE
                    (see docs/metrics.md)
  --causal          print the happens-before analysis (rose::causal): chain
                    and edge statistics, the fault-event order matrix
                    ('<' row happens-before column, '>' the converse, '.'
                    concurrent), commutative fault pairs, and any TB303
                    causal-consistency findings
  --help            show this help and exit

exit status: 0 on success; 1 when a loaded file carries error-severity
container diagnostics (TB2xx), even if intact frames produced events.
)";

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1234;
  std::string save_path;
  std::string load_path;
  std::string load_mode = "mmap";
  std::string stats_out;
  std::vector<std::string> merge_paths;
  bool merging = false;
  bool want_stats = false;
  bool want_index_stats = false;
  bool want_causal = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kHelp, stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_path = argv[++i];
      merging = false;
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      load_path = argv[++i];
      merging = false;
    } else if (std::strcmp(argv[i], "--load-mode") == 0 && i + 1 < argc) {
      load_mode = argv[++i];
      merging = false;
      if (load_mode != "mmap" && load_mode != "heap") {
        std::fprintf(stderr, "trace_explorer: --load-mode must be mmap or heap\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--merge") == 0) {
      merging = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
      merging = false;
    } else if (std::strcmp(argv[i], "--index-stats") == 0) {
      want_stats = true;
      want_index_stats = true;
      merging = false;
    } else if (std::strcmp(argv[i], "--causal") == 0) {
      want_causal = true;
      merging = false;
    } else if (std::strcmp(argv[i], "--stats-out") == 0 && i + 1 < argc) {
      stats_out = argv[++i];
      merging = false;
    } else if (merging) {
      merge_paths.push_back(argv[i]);
    } else {
      seed = static_cast<uint64_t>(std::atoll(argv[i]));
    }
  }

  rose::Trace trace;
  // Zero-copy handle for --load in mmap mode; `view` below reads through it
  // without ever building an owning Trace (promotion happens only if --save
  // needs to re-encode).
  rose::MappedTrace mapped;
  rose::Profile profile;
  const rose::Profile* profile_for_extract = nullptr;
  // Set when a loaded file carried error diagnostics; the tool keeps going
  // (intact frames are still worth exploring) but exits nonzero.
  bool load_damaged = false;

  if (!merge_paths.empty()) {
    if (merge_paths.size() < 2) {
      std::fprintf(stderr, "trace_explorer: --merge needs at least two files\n");
      return 2;
    }
    std::vector<rose::Trace> inputs;
    for (const std::string& path : merge_paths) {
      std::vector<rose::Diagnostic> diags;
      rose::Trace input = rose::LoadTraceFile(path, &diags);
      std::printf("--- loaded %s: %zu events ---\n", path.c_str(), input.size());
      for (const rose::Diagnostic& diag : diags) {
        std::printf("  %s\n", diag.ToString().c_str());
      }
      if (rose::HasErrors(diags)) {
        load_damaged = true;
      }
      inputs.push_back(std::move(input));
    }
    trace = rose::Trace::Merge(inputs);
    std::printf("--- merged %zu traces: %zu events ---\n", inputs.size(), trace.size());
  } else if (!load_path.empty()) {
    std::vector<rose::Diagnostic> diags;
    size_t loaded_events = 0;
    if (load_mode == "mmap") {
      mapped = rose::MappedTrace::OpenFile(load_path);
      diags = mapped.diagnostics();
      loaded_events = mapped.event_count();
    } else {
      trace = rose::LoadTraceFile(load_path, &diags);
      loaded_events = trace.size();
    }
    std::printf("--- loaded %s: %zu events (%s) ---\n", load_path.c_str(),
                loaded_events, load_mode.c_str());
    for (const rose::Diagnostic& diag : diags) {
      std::printf("  %s\n", diag.ToString().c_str());
    }
    if (rose::HasErrors(diags)) {
      // Keep exploring whatever survived, but fail the invocation: scripts
      // must not mistake a truncated dump for a good one.
      load_damaged = true;
      if (loaded_events == 0) {
        return 1;
      }
    }
  } else {
    // Borrow the RedisRaft-42 deployment (any guest works; this one crashes
    // nodes often enough to make an interesting trace).
    const rose::BugSpec* spec = rose::FindBug("RedisRaft-42");
    if (spec == nullptr) {
      return 1;
    }
    rose::BugRunner runner(spec);

    std::printf("--- phase 1: profiling (failure-free run) ---\n");
    profile = runner.RunProfiling(seed);
    profile_for_extract = &profile;
    std::printf("monitored (infrequent) functions: %zu\n", profile.monitored_functions.size());
    for (int32_t fid : profile.monitored_functions) {
      std::printf("  uprobe site: %s\n", spec->binary->NameOf(fid).c_str());
    }
    std::printf("benign fault signatures learned: %zu\n\n",
                profile.benign_scf_signatures.size());

    std::printf("--- phase 2: production run under nemesis ---\n");
    rose::RunOptions options;
    options.seed = seed;
    options.duration = spec->run_duration;
    options.profile = &profile;
    options.with_nemesis = true;
    rose::RunOutcome outcome = runner.RunOnce(options);
    std::printf("bug manifested: %s; trace window holds %zu events\n\n",
                outcome.bug ? "yes" : "no", outcome.trace.size());
    trace = std::move(outcome.trace);
  }

  // Every read path below goes through a view: backed by the mapped file in
  // mmap mode, by the owning Trace otherwise.
  const rose::TraceView view = mapped.valid() ? mapped.view() : rose::TraceView(trace);

  std::map<rose::EventType, int> counts;
  for (const rose::TraceEvent& event : view) {
    counts[event.type]++;
  }
  std::printf("event mix: SCF=%d AF=%d ND=%d PS=%d\n", counts[rose::EventType::kSCF],
              counts[rose::EventType::kAF], counts[rose::EventType::kND],
              counts[rose::EventType::kPS]);
  std::printf("last 12 events of the window:\n");
  for (size_t i = view.size() > 12 ? view.size() - 12 : 0; i < view.size(); i++) {
    std::printf("  %s\n", view[i].ToLine(view.pool()).c_str());
  }

  std::printf("\n--- static trace validation (rose::analyze) ---\n");
  rose::TraceValidateOptions validate_options;
  validate_options.profile = profile_for_extract;
  const std::vector<rose::Diagnostic> trace_diags =
      rose::TraceValidator(validate_options).Validate(view);
  if (trace_diags.empty()) {
    std::printf("trace passes validation: timestamps monotonic, pids attributed, "
                "SCF errnos real, AF ids profiled.\n");
  } else {
    std::printf("%zu diagnostic(s):\n", trace_diags.size());
    for (const rose::Diagnostic& diag : trace_diags) {
      std::printf("  %s\n", diag.ToString().c_str());
    }
  }

  std::printf("\n--- fault extraction (diagnosis front-end) ---\n");
  const rose::ExtractionResult extraction =
      rose::ExtractFaults(view, profile_for_extract != nullptr ? *profile_for_extract
                                                               : rose::Profile{});
  std::printf("%d raw fault events; %d removed as benign (FR=%.0f%%); %zu candidates:\n",
              extraction.total_fault_events, extraction.removed_benign,
              extraction.fr_percent, extraction.faults.size());
  for (const rose::CandidateFault& fault : extraction.faults) {
    std::printf("  t=%.3fs  %s\n", rose::ToSeconds(fault.ts), fault.Label().c_str());
  }

  if (want_causal) {
    std::printf("\n--- happens-before analysis (rose::causal) ---\n");
    const rose::CausalGraph causal(view);
    int edge_kinds[4] = {0, 0, 0, 0};
    for (const rose::CausalEdge& edge : causal.edges()) {
      edge_kinds[static_cast<int>(edge.kind)]++;
    }
    std::printf("%zu events across %zu causal chains; %zu cross-chain edges "
                "(fd-order=%d crash-barrier=%d restart-barrier=%d send-receive=%d)\n",
                causal.size(), causal.chain_count(), causal.edges().size(), edge_kinds[0],
                edge_kinds[1], edge_kinds[2], edge_kinds[3]);
    for (const rose::Diagnostic& diag : causal.diagnostics()) {
      std::printf("  %s\n", diag.ToString().c_str());
    }

    const std::vector<uint32_t>& faults = causal.fault_events();
    // The matrix is quadratic in rows; past 16 fault events it stops being
    // readable anyway, so larger summaries are truncated with a note.
    constexpr size_t kMatrixCap = 16;
    const size_t shown = faults.size() < kMatrixCap ? faults.size() : kMatrixCap;
    std::printf("fault-event order matrix (%zu of %zu fault events; "
                "'<' row happens-before column, '>' converse, '.' concurrent):\n",
                shown, faults.size());
    for (size_t row = 0; row < shown; row++) {
      std::string cells;
      for (size_t col = 0; col < shown; col++) {
        if (row == col) {
          cells += ' ';
        } else {
          const int order = causal.FaultOrder(row, col);
          cells += order < 0 ? '<' : order > 0 ? '>' : '.';
        }
      }
      const rose::TraceEvent& event = view[faults[row]];
      std::printf("  F%-2zu |%s|  %s\n", row, cells.c_str(),
                  event.ToLine(view.pool()).c_str());
    }

    const rose::FeasibilityChecker checker(&causal, view);
    const auto pairs = checker.CommutativePairs();
    std::printf("%zu commutative pair(s) — concurrent and disjoint in scope, so "
                "either injection order explores the same class:\n", pairs.size());
    constexpr size_t kPairCap = 20;
    for (size_t i = 0; i < pairs.size() && i < kPairCap; i++) {
      std::printf("  F%u <-> F%u\n", pairs[i].first, pairs[i].second);
    }
    if (pairs.size() > kPairCap) {
      std::printf("  ... and %zu more\n", pairs.size() - kPairCap);
    }
  }

  if (want_stats) {
    // One code path for window statistics: the rose::obs registry renders the
    // report; lint_schedule --trace prints the same format.
    std::printf("%s", rose::RenderTraceStats(view, &rose::MetricRegistry::Global(),
                                             /*with_encoded_sizes=*/true, want_index_stats)
                          .c_str());
    if (!load_path.empty()) {
      // How the bytes came in. resident estimate: a mapped trace keeps only
      // the event vector plus pool index on the heap — the string payload
      // stays in the (page-cached) mapping; a heap load owns everything.
      const size_t event_bytes = view.size() * sizeof(rose::TraceEvent);
      const size_t resident = event_bytes + (mapped.zero_copy()
                                                 ? view.pool().size() * 8
                                                 : view.pool().payload_bytes());
      std::printf("load_mode: %s\n", mapped.valid() ? mapped.load_mode() : "heap");
      std::printf("mapped bytes: %zu\n", mapped.mapped_bytes());
      std::printf("resident estimate: %zu bytes\n", resident);
    }
  }

  if (!stats_out.empty()) {
    if (!rose::WriteStatsFile(stats_out)) {
      std::fprintf(stderr, "trace_explorer: cannot write %s\n", stats_out.c_str());
      return 2;
    }
    std::printf("metrics snapshot written to %s\n", stats_out.c_str());
  }

  if (!save_path.empty()) {
    const bool text = save_path.size() > 4 &&
                      save_path.compare(save_path.size() - 4, 4, ".txt") == 0;
    if (mapped.valid()) {
      // Copy-on-write: re-encoding is the one step that needs an owning
      // Trace, so the mapped handle is promoted here and nowhere else.
      trace = mapped.Promote();
    }
    if (!rose::SaveTraceFile(save_path, trace, text)) {
      std::fprintf(stderr, "trace_explorer: cannot write %s\n", save_path.c_str());
      return 2;
    }
    std::printf("\nsaved %zu events to %s (%s)\n", trace.size(), save_path.c_str(),
                text ? "text" : "binary");
  }
  return load_damaged ? 1 : 0;
}
