#include "src/analyze/diagnostic.h"

#include "src/common/strings.h"

namespace rose {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string_view DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kAfterFaultMissing:
      return "SL001";
    case DiagCode::kAfterFaultCycle:
      return "SL002";
    case DiagCode::kAfterFaultForward:
      return "SL003";
    case DiagCode::kOffsetWithoutEnter:
      return "SL004";
    case DiagCode::kDuplicateSyscallCount:
      return "SL005";
    case DiagCode::kUnknownNode:
      return "SL006";
    case DiagCode::kPersistentShadow:
      return "SL007";
    case DiagCode::kBadNth:
      return "SL008";
    case DiagCode::kBadCount:
      return "SL009";
    case DiagCode::kBadFunctionId:
      return "SL010";
    case DiagCode::kBadOffset:
      return "SL011";
    case DiagCode::kEmptyPartitionGroup:
      return "SL012";
    case DiagCode::kUnknownFunction:
      return "SL013";
    case DiagCode::kNoTargetNode:
      return "SL014";
    case DiagCode::kBadTime:
      return "SL015";
    case DiagCode::kNonMonotonicTimestamp:
      return "TV101";
    case DiagCode::kOrphanPid:
      return "TV102";
    case DiagCode::kScfWithOkErrno:
      return "TV103";
    case DiagCode::kUnknownAfFunction:
      return "TV104";
    case DiagCode::kBadTraceMagic:
      return "TB201";
    case DiagCode::kBadTraceVersion:
      return "TB202";
    case DiagCode::kTruncatedTrace:
      return "TB203";
    case DiagCode::kCorruptTraceFrame:
      return "TB204";
    case DiagCode::kMalformedTraceFrame:
      return "TB205";
    case DiagCode::kTraceFileUnreadable:
      return "TB206";
    case DiagCode::kCausalOrderViolation:
      return "TB301";
    case DiagCode::kCausalUnmatchedFault:
      return "TB302";
    case DiagCode::kCausalInconsistentTrace:
      return "TB303";
    case DiagCode::kCausalCommutedOrder:
      return "TB304";
    case DiagCode::kBadIndexSeq:
      return "TB401";
    case DiagCode::kEmptyIndexContext:
      return "TB402";
  }
  return "??";
}

std::string Diagnostic::ToString() const {
  std::string where;
  if (fault_index >= 0) {
    where = StrFormat(" fault#%d", fault_index);
  } else if (event_index >= 0) {
    where = StrFormat(" event#%d", event_index);
  }
  std::string out = StrFormat("%s %s%s: %s", std::string(DiagCodeName(code)).c_str(),
                              std::string(SeverityName(severity)).c_str(), where.c_str(),
                              message.c_str());
  if (!hint.empty()) {
    out += StrFormat(" (hint: %s)", hint.c_str());
  }
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& diag : diags) {
    if (diag.severity == Severity::kError) {
      return true;
    }
  }
  return false;
}

std::vector<Diagnostic> OfCode(const std::vector<Diagnostic>& diags, DiagCode code) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& diag : diags) {
    if (diag.code == code) {
      out.push_back(diag);
    }
  }
  return out;
}

}  // namespace rose
