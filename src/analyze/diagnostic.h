// Structured diagnostics emitted by Rose's static analysis passes.
//
// Both the schedule linter and the trace validator report findings as
// Diagnostic records: a stable machine-checkable code (asserted by tests and
// matched by the diagnosis engine's pruning logic), a severity, the index of
// the offending schedule fault or trace event, a human-readable message, and
// a hint describing how to repair the input.
//
// Severity semantics:
//   kError   — the input is statically unsatisfiable or self-contradictory;
//              executing it is guaranteed wasted work. The executor rejects
//              it and the engine prunes it without a run.
//   kWarning — suspicious but executable (e.g. a bare kFunctionOffset
//              condition, which the executor matches without requiring a
//              prior kFunctionEnter). Reported, never pruned on.
#ifndef SRC_ANALYZE_DIAGNOSTIC_H_
#define SRC_ANALYZE_DIAGNOSTIC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rose {

enum class Severity : int8_t { kWarning = 0, kError };

std::string_view SeverityName(Severity severity);

enum class DiagCode : int16_t {
  // --- Schedule lints (SL...) ---
  kAfterFaultMissing = 0,   // SL001: kAfterFault references an out-of-range fault.
  kAfterFaultCycle,         // SL002: kAfterFault dependencies form a cycle.
  kAfterFaultForward,       // SL003: kAfterFault references a later fault (order inversion).
  kOffsetWithoutEnter,      // SL004: kFunctionOffset with no prior kFunctionEnter of that fn.
  kDuplicateSyscallCount,   // SL005: identical kSyscallCount repeated in one chain.
  kUnknownNode,             // SL006: fault targets a node the cluster never spawns.
  kPersistentShadow,        // SL007: persistent SCF shadows a later SCF on same sys+path.
  kBadNth,                  // SL008: syscall.nth < 1 can never match.
  kBadCount,                // SL009: kSyscallCount count < 1 can never be satisfied.
  kBadFunctionId,           // SL010: negative function id in a function condition.
  kBadOffset,               // SL011: negative intra-function offset.
  kEmptyPartitionGroup,     // SL012: partition with an empty ip group is a no-op.
  kUnknownFunction,         // SL013: function id not present in the binary's symbols.
  kNoTargetNode,            // SL014: non-partition fault with no target node.
  kBadTime,                 // SL015: negative kAtTime can never be reached.
  // --- Trace lints (TV...) ---
  kNonMonotonicTimestamp,   // TV101: event timestamp precedes its predecessor.
  kOrphanPid,               // TV102: event from a pid the run never spawned.
  kScfWithOkErrno,          // TV103: "failure" event carrying Err::kOk.
  kUnknownAfFunction,       // TV104: AF function id absent from the profile.
  // --- Binary trace container (TB...) ---
  kBadTraceMagic,           // TB201: input lacks the binary-trace magic.
  kBadTraceVersion,         // TB202: container version newer than this reader.
  kTruncatedTrace,          // TB203: stream ends mid-frame / without an end frame.
  kCorruptTraceFrame,       // TB204: frame payload fails its CRC32.
  kMalformedTraceFrame,     // TB205: frame payload does not decode.
  kTraceFileUnreadable,     // TB206: trace file missing or not readable.
  // --- Causal feasibility (TB3xx, src/causal) ---
  kCausalOrderViolation,    // TB301: schedule order contradicts the trace's happens-before order.
  kCausalUnmatchedFault,    // TB302: schedule fault matches no fault event in the trace.
  kCausalInconsistentTrace, // TB303: trace contradicts the causal model (pid on two nodes, ...).
  kCausalCommutedOrder,     // TB304: commuting concurrent faults in non-canonical order.
  // --- Execution-index targeting (TB4xx) ---
  kBadIndexSeq,             // TB401: kExecutionIndex sequence number < 1 can never match.
  kEmptyIndexContext,       // TB402: kExecutionIndex with a zero context digest.
};

// Stable short form, e.g. "SL001" / "TV103" — what tests assert against and
// what the lint_schedule CLI prints.
std::string_view DiagCodeName(DiagCode code);

struct Diagnostic {
  DiagCode code = DiagCode::kAfterFaultMissing;
  Severity severity = Severity::kError;
  // Index of the offending fault in the schedule (schedule lints) or -1.
  int32_t fault_index = -1;
  // Index of the offending event in the trace (trace lints) or -1.
  int32_t event_index = -1;
  std::string message;
  std::string hint;

  // "SL001 error fault#2: message (hint)" — the CLI / log line form.
  std::string ToString() const;
};

// True when any diagnostic in `diags` has error severity.
bool HasErrors(const std::vector<Diagnostic>& diags);

// Diagnostics of exactly `code`, in order.
std::vector<Diagnostic> OfCode(const std::vector<Diagnostic>& diags, DiagCode code);

}  // namespace rose

#endif  // SRC_ANALYZE_DIAGNOSTIC_H_
