#include "src/analyze/schedule_linter.h"

#include <algorithm>

#include "src/common/strings.h"

namespace rose {

namespace {

Diagnostic MakeDiag(DiagCode code, Severity severity, int32_t fault_index,
                    std::string message, std::string hint) {
  Diagnostic diag;
  diag.code = code;
  diag.severity = severity;
  diag.fault_index = fault_index;
  diag.message = std::move(message);
  diag.hint = std::move(hint);
  return diag;
}

// DFS colors for AfterFault cycle detection.
enum class Color : int8_t { kWhite = 0, kGray, kBlack };

// Returns true if a cycle is reachable from `fault`; marks every fault on the
// gray path when one is found.
bool FindCycle(size_t fault, const std::vector<std::vector<size_t>>& deps,
               std::vector<Color>* colors, std::vector<bool>* in_cycle) {
  (*colors)[fault] = Color::kGray;
  bool cyclic = false;
  for (size_t dep : deps[fault]) {
    if ((*colors)[dep] == Color::kGray) {
      (*in_cycle)[dep] = true;
      (*in_cycle)[fault] = true;
      cyclic = true;
    } else if ((*colors)[dep] == Color::kWhite && FindCycle(dep, deps, colors, in_cycle)) {
      (*in_cycle)[fault] = true;
      cyclic = true;
    }
  }
  (*colors)[fault] = Color::kBlack;
  return cyclic;
}

}  // namespace

std::vector<Diagnostic> ScheduleLinter::Lint(const FaultSchedule& schedule) const {
  std::vector<Diagnostic> diags;
  const size_t n = schedule.faults.size();

  // AfterFault dependency graph over in-range references (out-of-range ones
  // are reported individually and excluded from cycle analysis).
  std::vector<std::vector<size_t>> deps(n);

  for (size_t i = 0; i < n; i++) {
    const ScheduledFault& fault = schedule.faults[i];
    const auto index = static_cast<int32_t>(i);

    // --- Target node ---------------------------------------------------------
    if (fault.target_node == kNoNode) {
      if (fault.kind != FaultKind::kNetworkPartition) {
        diags.push_back(MakeDiag(
            DiagCode::kNoTargetNode, Severity::kWarning, index,
            StrFormat("%s fault has no target node", fault.Label().c_str()),
            "set target_node to the node the fault should hit"));
      }
    } else if (!options_.known_nodes.empty() &&
               options_.known_nodes.count(fault.target_node) == 0) {
      diags.push_back(MakeDiag(
          DiagCode::kUnknownNode, Severity::kError, index,
          StrFormat("fault targets node %d, which the cluster never spawns",
                    fault.target_node),
          "target one of the deployed nodes"));
    }

    // --- Kind-specific spec fields ------------------------------------------
    if (fault.kind == FaultKind::kSyscallFailure && fault.syscall.nth < 1) {
      diags.push_back(MakeDiag(
          DiagCode::kBadNth, Severity::kError, index,
          StrFormat("syscall fault nth=%d can never match (nth is 1-based)",
                    fault.syscall.nth),
          "use nth >= 1"));
    }
    if (fault.kind == FaultKind::kNetworkPartition &&
        (fault.network.group_a.empty() || fault.network.group_b.empty())) {
      diags.push_back(MakeDiag(DiagCode::kEmptyPartitionGroup, Severity::kWarning, index,
                               "partition with an empty ip group installs no drop rules",
                               "put at least one ip on each side of the partition"));
    }

    // --- Condition chain -----------------------------------------------------
    std::set<int32_t> entered;  // Function ids with a prior kFunctionEnter.
    std::vector<const Condition*> syscall_counts;
    for (size_t c = 0; c < fault.conditions.size(); c++) {
      const Condition& cond = fault.conditions[c];
      switch (cond.kind) {
        case Condition::Kind::kAfterFault: {
          if (cond.fault_index < 0 || static_cast<size_t>(cond.fault_index) >= n) {
            diags.push_back(MakeDiag(
                DiagCode::kAfterFaultMissing, Severity::kError, index,
                StrFormat("after_fault(%d) references a fault outside the schedule "
                          "(%zu faults)",
                          cond.fault_index, n),
                "reference an existing fault index"));
            break;
          }
          deps[i].push_back(static_cast<size_t>(cond.fault_index));
          if (static_cast<size_t>(cond.fault_index) > i) {
            diags.push_back(MakeDiag(
                DiagCode::kAfterFaultForward, Severity::kWarning, index,
                StrFormat("after_fault(%d) waits on a later fault; production order "
                          "is inverted",
                          cond.fault_index),
                "order faults as they occurred in the production trace"));
          }
          break;
        }
        case Condition::Kind::kFunctionEnter:
          if (cond.function_id < 0) {
            diags.push_back(MakeDiag(DiagCode::kBadFunctionId, Severity::kError, index,
                                     StrFormat("function condition with negative id %d",
                                               cond.function_id),
                                     "use a function id from the binary's symbol table"));
          } else {
            if (options_.binary != nullptr && options_.binary->Find(cond.function_id) == nullptr) {
              diags.push_back(MakeDiag(
                  DiagCode::kUnknownFunction, Severity::kWarning, index,
                  StrFormat("function id %d is not in the binary's symbol table",
                            cond.function_id),
                  "check the profile/binary the schedule was generated against"));
            }
            entered.insert(cond.function_id);
          }
          break;
        case Condition::Kind::kFunctionOffset:
          if (cond.function_id < 0) {
            diags.push_back(MakeDiag(DiagCode::kBadFunctionId, Severity::kError, index,
                                     StrFormat("offset condition with negative id %d",
                                               cond.function_id),
                                     "use a function id from the binary's symbol table"));
          } else if (cond.offset < 0) {
            diags.push_back(MakeDiag(
                DiagCode::kBadOffset, Severity::kError, index,
                StrFormat("offset condition with negative offset %d", cond.offset),
                "use a non-negative intra-function offset"));
          } else {
            if (options_.binary != nullptr && options_.binary->Find(cond.function_id) == nullptr) {
              diags.push_back(MakeDiag(
                  DiagCode::kUnknownFunction, Severity::kWarning, index,
                  StrFormat("function id %d is not in the binary's symbol table",
                            cond.function_id),
                  "check the profile/binary the schedule was generated against"));
            }
            if (entered.count(cond.function_id) == 0) {
              diags.push_back(MakeDiag(
                  DiagCode::kOffsetWithoutEnter, Severity::kWarning, index,
                  StrFormat("offset(%d+%d) has no preceding function(%d) condition",
                            cond.function_id, cond.offset, cond.function_id),
                  "add a kFunctionEnter for the same function to tighten the context"));
            }
          }
          break;
        case Condition::Kind::kSyscallCount: {
          if (cond.count < 1) {
            diags.push_back(MakeDiag(
                DiagCode::kBadCount, Severity::kError, index,
                StrFormat("syscall_count with count=%d can never be satisfied", cond.count),
                "use count >= 1"));
          }
          for (const Condition* prev : syscall_counts) {
            if (prev->sys == cond.sys && prev->path_filter == cond.path_filter &&
                prev->count == cond.count) {
              diags.push_back(MakeDiag(
                  DiagCode::kDuplicateSyscallCount, Severity::kWarning, index,
                  StrFormat("duplicate syscall_count(%s,%s,%d) in one condition chain",
                            std::string(SysName(cond.sys)).c_str(),
                            cond.path_filter.c_str(), cond.count),
                  "merge duplicates into a single condition with a higher count"));
              break;
            }
          }
          syscall_counts.push_back(&cond);
          break;
        }
        case Condition::Kind::kAtTime:
          if (cond.at_time < 0) {
            diags.push_back(MakeDiag(
                DiagCode::kBadTime, Severity::kError, index,
                StrFormat("at_time(%lld) is before the run starts",
                          static_cast<long long>(cond.at_time)),
                "use a non-negative relative time"));
          }
          break;
        case Condition::Kind::kExecutionIndex:
          if (cond.count < 1) {
            diags.push_back(MakeDiag(
                DiagCode::kBadIndexSeq, Severity::kError, index,
                StrFormat("exec_index with seq=%d can never match (sequence numbers "
                          "are 1-based)",
                          cond.count),
                "use a sequence number >= 1 from a recorded trace event"));
          }
          if (cond.ctx_digest == 0) {
            diags.push_back(MakeDiag(
                DiagCode::kEmptyIndexContext, Severity::kError, index,
                "exec_index with a zero context digest addresses no calling context",
                "take ctx from an indexed trace event, or fall back to syscall_count"));
          }
          break;
      }
    }
  }

  // --- AfterFault cycles -----------------------------------------------------
  std::vector<Color> colors(n, Color::kWhite);
  std::vector<bool> in_cycle(n, false);
  for (size_t i = 0; i < n; i++) {
    if (colors[i] == Color::kWhite) {
      FindCycle(i, deps, &colors, &in_cycle);
    }
  }
  for (size_t i = 0; i < n; i++) {
    if (in_cycle[i]) {
      diags.push_back(MakeDiag(
          DiagCode::kAfterFaultCycle, Severity::kError, static_cast<int32_t>(i),
          "after_fault conditions form a cycle; no fault in it can ever fire",
          "break the cycle so fault order is a DAG"));
    }
  }

  // --- Persistent SCF shadowing ---------------------------------------------
  for (size_t i = 0; i < n; i++) {
    const ScheduledFault& first = schedule.faults[i];
    if (first.kind != FaultKind::kSyscallFailure || !first.syscall.persistent) {
      continue;
    }
    for (size_t j = i + 1; j < n; j++) {
      const ScheduledFault& later = schedule.faults[j];
      if (later.kind != FaultKind::kSyscallFailure || later.syscall.sys != first.syscall.sys ||
          later.target_node != first.target_node) {
        continue;
      }
      if (first.syscall.path_filter.empty() ||
          first.syscall.path_filter == later.syscall.path_filter) {
        diags.push_back(MakeDiag(
            DiagCode::kPersistentShadow, Severity::kWarning, static_cast<int32_t>(j),
            StrFormat("persistent %s fault #%zu shadows this fault on the same "
                      "syscall+path; it will never inject",
                      std::string(SysName(first.syscall.sys)).c_str(), i),
            "drop the shadowed fault or narrow the persistent fault's path filter"));
      }
    }
  }

  return diags;
}

namespace {

void AppendCondition(const Condition& cond, std::string* out) {
  switch (cond.kind) {
    case Condition::Kind::kAfterFault:
      *out += StrFormat("after(%d)", cond.fault_index);
      break;
    case Condition::Kind::kFunctionEnter:
      *out += StrFormat("enter(%d)", cond.function_id);
      break;
    case Condition::Kind::kFunctionOffset:
      *out += StrFormat("offset(%d,%d)", cond.function_id, cond.offset);
      break;
    case Condition::Kind::kSyscallCount:
      *out += StrFormat("count(%s,%s,%d)", std::string(SysName(cond.sys)).c_str(),
                        cond.path_filter.c_str(), cond.count);
      break;
    case Condition::Kind::kAtTime:
      *out += StrFormat("at(%lld)", static_cast<long long>(cond.at_time));
      break;
    case Condition::Kind::kExecutionIndex:
      *out += StrFormat("index(%s,%s,%llx,%d)", std::string(SysName(cond.sys)).c_str(),
                        cond.path_filter.c_str(),
                        static_cast<unsigned long long>(cond.ctx_digest), cond.count);
      break;
  }
}

}  // namespace

std::string CanonicalForm(const FaultSchedule& schedule) {
  std::string out;
  for (const ScheduledFault& fault : schedule.faults) {
    out += StrFormat("%s|%d|", std::string(FaultKindName(fault.kind)).c_str(),
                     fault.target_node);
    switch (fault.kind) {
      case FaultKind::kSyscallFailure:
        out += StrFormat("%s,%s,%s,%d,%d", std::string(SysName(fault.syscall.sys)).c_str(),
                         std::string(ErrName(fault.syscall.err)).c_str(),
                         fault.syscall.path_filter.c_str(), fault.syscall.nth,
                         fault.syscall.persistent ? 1 : 0);
        break;
      case FaultKind::kProcessCrash:
        break;
      case FaultKind::kProcessPause:
        out += StrFormat("%lld", static_cast<long long>(fault.process.pause_duration));
        break;
      case FaultKind::kNetworkPartition: {
        // A partition is symmetric: partition(a, b) == partition(b, a), and
        // group membership is a set. Sort within and across groups.
        std::vector<std::string> a = fault.network.group_a;
        std::vector<std::string> b = fault.network.group_b;
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        if (b < a) {
          std::swap(a, b);
        }
        out += StrFormat("%s/%s,%lld", Join(a, ",").c_str(), Join(b, ",").c_str(),
                         static_cast<long long>(fault.network.duration));
        break;
      }
    }
    out += "|";
    for (size_t c = 0; c < fault.conditions.size(); c++) {
      if (c > 0) {
        out += ";";
      }
      AppendCondition(fault.conditions[c], &out);
    }
    out += "\n";
  }
  return out;
}

uint64_t CanonicalHash(const FaultSchedule& schedule) {
  const std::string canon = CanonicalForm(schedule);
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis.
  for (const char ch : canon) {
    hash ^= static_cast<uint8_t>(ch);
    hash *= 0x100000001b3ULL;  // FNV prime.
  }
  return hash;
}

}  // namespace rose
