// Static validation of fault schedules (no execution required).
//
// Every ScheduleRunner invocation is a full simulated run, so the diagnosis
// engine lints each candidate schedule first and prunes the ones that are
// statically unsatisfiable (errors) or canonically equivalent to a schedule
// it already executed (hash match). The executor runs the same linter up
// front so a malformed schedule is rejected with diagnostics instead of
// silently never firing.
//
// Checks (codes in src/analyze/diagnostic.h):
//   - kAfterFault chains: out-of-range references, dependency cycles,
//     forward references (order inversions);
//   - kFunctionOffset conditions with no prior kFunctionEnter of the same
//     function (executable, but loose context — warning);
//   - duplicate kSyscallCount conditions inside one chain;
//   - faults targeting nodes the cluster never spawns (when the caller
//     supplies the known node set);
//   - persistent syscall faults shadowing later faults on the same
//     syscall + path filter;
//   - degenerate field values: nth/count < 1, negative function ids,
//     offsets or timestamps, empty partition groups, missing target nodes;
//   - function ids absent from the binary's symbol table (when supplied).
#ifndef SRC_ANALYZE_SCHEDULE_LINTER_H_
#define SRC_ANALYZE_SCHEDULE_LINTER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/analyze/diagnostic.h"
#include "src/profile/binary_info.h"
#include "src/schedule/fault_schedule.h"

namespace rose {

struct LintOptions {
  // Nodes the deployment actually spawns; empty disables the unknown-node
  // check (the executor lints before the cluster exists and passes none).
  std::set<NodeId> known_nodes;
  // Symbol table for function-id membership checks; null disables them.
  const BinaryInfo* binary = nullptr;
};

class ScheduleLinter {
 public:
  explicit ScheduleLinter(LintOptions options = {}) : options_(std::move(options)) {}

  std::vector<Diagnostic> Lint(const FaultSchedule& schedule) const;

 private:
  LintOptions options_;
};

// Canonical textual form of a schedule: semantic fields only (the name is
// ignored, partition groups are sorted), one fault per line. Two schedules
// with equal canonical forms are provably equivalent — the executor treats
// them identically.
std::string CanonicalForm(const FaultSchedule& schedule);

// FNV-1a hash of CanonicalForm(); the engine's duplicate-candidate filter.
uint64_t CanonicalHash(const FaultSchedule& schedule);

}  // namespace rose

#endif  // SRC_ANALYZE_SCHEDULE_LINTER_H_
