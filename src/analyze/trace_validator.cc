#include "src/analyze/trace_validator.h"

#include <string>

#include "src/common/strings.h"
#include "src/trace/trace_io.h"

namespace rose {

namespace {

Diagnostic MakeDiag(DiagCode code, Severity severity, int32_t event_index,
                    std::string message, std::string hint) {
  Diagnostic diag;
  diag.code = code;
  diag.severity = severity;
  diag.event_index = event_index;
  diag.message = std::move(message);
  diag.hint = std::move(hint);
  return diag;
}

// Pid carried by an event, or kNoPid for types without one (ND).
Pid PidOf(const TraceEvent& event) {
  switch (event.type) {
    case EventType::kSCF:
      return event.scf().pid;
    case EventType::kAF:
      return event.af().pid;
    case EventType::kPS:
      return event.ps().pid;
    case EventType::kND:
      return kNoPid;
  }
  return kNoPid;
}

}  // namespace

std::vector<Diagnostic> TraceValidator::Validate(TraceView trace) const {
  std::vector<Diagnostic> diags;
  SimTime prev_ts = 0;
  for (size_t i = 0; i < trace.size(); i++) {
    const TraceEvent& event = trace[i];
    const auto index = static_cast<int32_t>(i);

    if (event.ts < prev_ts) {
      diags.push_back(MakeDiag(
          DiagCode::kNonMonotonicTimestamp, Severity::kError, index,
          StrFormat("event at t=%lld precedes its predecessor at t=%lld",
                    static_cast<long long>(event.ts), static_cast<long long>(prev_ts)),
          "re-merge the per-node traces by timestamp"));
    }
    prev_ts = std::max(prev_ts, event.ts);

    if (event.type != EventType::kND) {
      const Pid pid = PidOf(event);
      if (pid < 0) {
        diags.push_back(MakeDiag(
            DiagCode::kOrphanPid, Severity::kError, index,
            StrFormat("%s event carries invalid pid %d",
                      std::string(EventTypeName(event.type)).c_str(), pid),
            "events must record the invoking process"));
      } else if (!options_.known_pids.empty() && options_.known_pids.count(pid) == 0) {
        diags.push_back(MakeDiag(
            DiagCode::kOrphanPid, Severity::kError, index,
            StrFormat("%s event from pid %d, which the run never spawned",
                      std::string(EventTypeName(event.type)).c_str(), pid),
            "check that per-node traces come from the same run"));
      }
    }

    if (event.type == EventType::kSCF && event.scf().err == Err::kOk) {
      diags.push_back(MakeDiag(
          DiagCode::kScfWithOkErrno, Severity::kError, index,
          StrFormat("SCF event for %s carries Err::kOk; successful syscalls are "
                    "not failures",
                    std::string(SysName(event.scf().sys)).c_str()),
          "only record syscalls whose result is an error"));
    }

    if (event.type == EventType::kAF && options_.profile != nullptr) {
      const int32_t fid = event.af().function_id;
      if (options_.profile->monitored_functions.count(fid) == 0 &&
          options_.profile->function_counts.count(fid) == 0) {
        diags.push_back(MakeDiag(
            DiagCode::kUnknownAfFunction, Severity::kWarning, index,
            StrFormat("AF event for function id %d, which the profile never saw", fid),
            "re-profile, or check the trace matches this profile"));
      }
    }
  }
  return diags;
}

namespace {

inline void FnvMixBytes(uint64_t* hash, std::string_view bytes) {
  for (char ch : bytes) {
    *hash ^= static_cast<uint8_t>(ch);
    *hash *= 0x100000001b3ULL;  // FNV prime.
  }
}

}  // namespace

uint64_t CanonicalTraceHash(TraceView trace) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis.
  std::string line;
  for (const TraceEvent& event : trace) {
    line.clear();
    event.AppendLine(&line, trace.pool());
    line.push_back('\n');
    FnvMixBytes(&hash, line);
  }
  return hash;
}

bool CanonicalBlobHash(std::string_view blob, uint64_t* hash_out,
                       std::vector<Diagnostic>* diags, size_t* event_count) {
  TraceReader reader(blob);
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis.
  size_t count = 0;
  std::string line;
  TraceEvent event;
  while (reader.Next(&event)) {
    line.clear();
    event.AppendLine(&line, reader.pool());
    line.push_back('\n');
    FnvMixBytes(&hash, line);
    count++;
  }
  if (diags != nullptr) {
    diags->insert(diags->end(), reader.diagnostics().begin(), reader.diagnostics().end());
  }
  if (event_count != nullptr) {
    *event_count = count;
  }
  if (hash_out != nullptr) {
    *hash_out = hash;
  }
  return reader.ok();
}

}  // namespace rose
