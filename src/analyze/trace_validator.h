// Static validation of merged multi-node traces.
//
// A production trace that reaches the diagnosis phase has passed through
// per-node ring buffers, a dump, and a timestamp merge; corruption at any of
// those stages silently degrades fault extraction. The validator checks the
// invariants the pipeline is supposed to maintain:
//   - timestamps are monotonically non-decreasing (merge order);
//   - every event carries a plausible pid (and, when the caller knows the
//     spawned pid set, one the run actually spawned);
//   - SCF events record a real failure, never Err::kOk;
//   - AF function ids are drawn from the profile's monitored set.
#ifndef SRC_ANALYZE_TRACE_VALIDATOR_H_
#define SRC_ANALYZE_TRACE_VALIDATOR_H_

#include <set>
#include <vector>

#include "src/analyze/diagnostic.h"
#include "src/profile/profiler.h"
#include "src/trace/event.h"

namespace rose {

struct TraceValidateOptions {
  // Profile the trace was captured under; null disables the AF-function
  // membership check.
  const Profile* profile = nullptr;
  // Pids the run spawned; empty means only structurally-invalid (negative)
  // pids are flagged.
  std::set<Pid> known_pids;
};

class TraceValidator {
 public:
  explicit TraceValidator(TraceValidateOptions options = {})
      : options_(std::move(options)) {}

  // Accepts any trace view (a Trace converts implicitly), including ones
  // backed by a binary dump loaded via Trace::Load.
  std::vector<Diagnostic> Validate(TraceView trace) const;

 private:
  TraceValidateOptions options_;
};

// Pool-independent canonical hash of a trace window: FNV-1a over every
// event's resolved one-line form. Two windows hash equal iff TraceEquals —
// interning order, pool layout, and text/binary round-trips don't matter.
// This is the dedup key the serve result cache is built on (a resubmitted
// dump, or the same dump after save/load/merge, maps to the same diagnosis).
uint64_t CanonicalTraceHash(TraceView trace);

// Streaming form of CanonicalTraceHash over a raw binary RTRC blob: decodes
// frame by frame and hashes each event's line without ever materializing an
// owning Trace (no pool-string copies, no event vector). Produces the exact
// hash CanonicalTraceHash yields for the parsed blob, so a serve cache key
// computed here matches one computed from a Trace. Binary-only by design —
// text blobs fail with kBadTraceMagic, mirroring the admission path's
// Trace::ParseBinary behavior. Returns reader.ok(); decode diagnostics are
// appended to `diags` and the event count stored in `*event_count` when
// non-null (both best-effort on failure: the intact prefix).
bool CanonicalBlobHash(std::string_view blob, uint64_t* hash_out,
                       std::vector<Diagnostic>* diags = nullptr,
                       size_t* event_count = nullptr);

}  // namespace rose

#endif  // SRC_ANALYZE_TRACE_VALIDATOR_H_
