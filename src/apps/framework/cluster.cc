#include "src/apps/framework/cluster.h"

#include "src/apps/framework/guest_node.h"
#include "src/common/strings.h"

namespace rose {

Cluster::Cluster(SimKernel* kernel, Network* network, const BinaryInfo* binary,
                 ClusterConfig config)
    : kernel_(kernel), network_(network), binary_(binary), config_(config),
      rng_(config.seed ^ 0xc1057e12ULL) {
  kernel_->AddObserver(this);
}

Cluster::~Cluster() { kernel_->RemoveObserver(this); }

NodeId Cluster::AddNode(NodeFactory factory) {
  const auto id = static_cast<NodeId>(slots_.size());
  Slot slot;
  slot.factory = std::move(factory);
  slots_.push_back(std::move(slot));
  kernel_->RegisterNode(id, StrFormat("10.0.0.%d", id + 1));
  return id;
}

void Cluster::Start() {
  started_ = true;
  for (NodeId id = 0; id < static_cast<NodeId>(slots_.size()); id++) {
    BootNode(id);
  }
}

void Cluster::BootNode(NodeId id) {
  Slot& slot = slots_[static_cast<size_t>(id)];
  slot.generation++;
  slot.guest = slot.factory(this, id);
  slot.pid = kernel_->Spawn(id, slot.guest->name());
  slot.guest->set_pid(slot.pid);
  slot.conn_fds.clear();
  slot.timers.clear();
  slot.pending_messages.clear();
  slot.pending_timers.clear();
  Dispatch(id, [](GuestNode* guest) { guest->OnStart(); });
}

GuestNode* Cluster::node(NodeId id) {
  if (id < 0 || static_cast<size_t>(id) >= slots_.size()) {
    return nullptr;
  }
  return slots_[static_cast<size_t>(id)].guest.get();
}

std::vector<std::string> Cluster::AllIps() const {
  std::vector<std::string> ips;
  for (NodeId id = 0; id < static_cast<NodeId>(slots_.size()); id++) {
    ips.push_back(kernel_->IpOf(id));
  }
  return ips;
}

bool Cluster::IsNodeAlive(NodeId id) const {
  const Slot& slot = slots_[static_cast<size_t>(id)];
  return slot.pid != kNoPid && kernel_->IsAlive(slot.pid);
}

bool Cluster::Dispatch(NodeId id, const std::function<void(GuestNode*)>& fn) {
  Slot& slot = slots_[static_cast<size_t>(id)];
  if (slot.guest == nullptr || slot.pid == kNoPid) {
    return false;
  }
  if (kernel_->StateOf(slot.pid) != ProcState::kRunning) {
    return false;
  }
  try {
    fn(slot.guest.get());
    return true;
  } catch (const ProcessInterrupted&) {
    HandleCrash(id);
    return false;
  }
}

bool Cluster::SendMessage(GuestNode* src, NodeId dst, Message msg) {
  const NodeId src_id = src->id();
  Slot& slot = slots_[static_cast<size_t>(src_id)];
  msg.from = src_id;
  msg.to = dst;

  auto fd_it = slot.conn_fds.find(dst);
  int32_t fd = -1;
  if (fd_it == slot.conn_fds.end()) {
    const SyscallResult result = kernel_->Connect(src->pid(), kernel_->IpOf(dst));
    if (!result.ok()) {
      return false;
    }
    fd = static_cast<int32_t>(result.value);
    slot.conn_fds[dst] = fd;
  } else {
    fd = fd_it->second;
  }

  const SyscallResult sent = kernel_->SendTo(src->pid(), fd, msg.ByteSize());
  if (!sent.ok()) {
    slot.conn_fds.erase(dst);
    return false;
  }

  const int64_t size = msg.ByteSize();
  network_->Send(kernel_->IpOf(src_id), kernel_->IpOf(dst), size,
                 [this, dst, msg = std::move(msg)] { Deliver(dst, msg); });
  return true;
}

void Cluster::Deliver(NodeId dst, Message msg) {
  Slot& slot = slots_[static_cast<size_t>(dst)];
  if (slot.pid == kNoPid || slot.guest == nullptr) {
    return;
  }
  const ProcState state = kernel_->StateOf(slot.pid);
  if (state == ProcState::kCrashed || state == ProcState::kExited) {
    return;
  }
  if (state == ProcState::kPaused) {
    slot.pending_messages.push_back(std::move(msg));
    return;
  }
  Dispatch(dst, [&msg](GuestNode* guest) { guest->OnMessage(msg); });
}

void Cluster::SetTimer(GuestNode* node, const std::string& name, SimTime delay) {
  Slot& slot = slots_[static_cast<size_t>(node->id())];
  auto existing = slot.timers.find(name);
  if (existing != slot.timers.end()) {
    loop().Cancel(existing->second);
  }
  const NodeId id = node->id();
  const uint64_t generation = slot.generation;
  slot.timers[name] = loop().ScheduleAfter(
      delay, [this, id, generation, name] { TimerFired(id, generation, name); });
}

void Cluster::CancelTimer(GuestNode* node, const std::string& name) {
  Slot& slot = slots_[static_cast<size_t>(node->id())];
  auto it = slot.timers.find(name);
  if (it != slot.timers.end()) {
    loop().Cancel(it->second);
    slot.timers.erase(it);
  }
}

void Cluster::TimerFired(NodeId id, uint64_t generation, const std::string& name) {
  Slot& slot = slots_[static_cast<size_t>(id)];
  if (slot.generation != generation || slot.guest == nullptr || slot.pid == kNoPid) {
    return;  // Timer belongs to a previous incarnation.
  }
  slot.timers.erase(name);
  const ProcState state = kernel_->StateOf(slot.pid);
  if (state == ProcState::kCrashed || state == ProcState::kExited) {
    return;
  }
  if (state == ProcState::kPaused) {
    slot.pending_timers.push_back(name);
    return;
  }
  Dispatch(id, [&name](GuestNode* guest) { guest->OnTimer(name); });
}

void Cluster::AppendLog(NodeId id, const std::string& line) {
  Slot& slot = slots_[static_cast<size_t>(id)];
  slot.log.push_back(StrFormat("[%9.3fs n%d] ", ToSeconds(kernel_->now()), id) + line);
}

void Cluster::Panic(GuestNode* node, const std::string& reason) {
  AppendLog(node->id(), "PANIC: " + reason);
  kernel_->Kill(node->pid());
  // Kill marks the interrupt pending; deliver it immediately so the caller
  // unwinds without executing another instruction.
  kernel_->CheckInterrupt(node->pid());
  // CheckInterrupt always throws here; this is unreachable.
  throw ProcessInterrupted{node->pid()};
}

void Cluster::HandleCrash(NodeId id) {
  Slot& slot = slots_[static_cast<size_t>(id)];
  AppendLog(id, "process crashed");
  slot.guest = nullptr;
  slot.conn_fds.clear();
  if (!config_.auto_restart || slot.permanently_down) {
    return;
  }
  slot.restarts++;
  if (slot.restarts > config_.max_restarts_per_node) {
    slot.permanently_down = true;
    AppendLog(id, "node gave up restarting (crash loop)");
    return;
  }
  const uint64_t generation = slot.generation;
  loop().ScheduleAfter(config_.restart_delay, [this, id, generation] {
    Slot& current = slots_[static_cast<size_t>(id)];
    if (current.generation != generation) {
      return;
    }
    AppendLog(id, "restarting node");
    BootNode(id);
  });
}

void Cluster::FlushPending(NodeId id) {
  Slot& slot = slots_[static_cast<size_t>(id)];
  // Re-enqueue through the loop so handlers run outside the resume path.
  while (!slot.pending_timers.empty()) {
    const std::string name = slot.pending_timers.front();
    slot.pending_timers.pop_front();
    const uint64_t generation = slot.generation;
    loop().ScheduleAfter(0, [this, id, generation, name] { TimerFired(id, generation, name); });
  }
  while (!slot.pending_messages.empty()) {
    Message msg = std::move(slot.pending_messages.front());
    slot.pending_messages.pop_front();
    loop().ScheduleAfter(0, [this, id, msg = std::move(msg)] { Deliver(id, msg); });
  }
}

void Cluster::OnProcessStateChange(SimTime /*now*/, Pid pid, ProcState from, ProcState to) {
  if (from != ProcState::kPaused || to != ProcState::kRunning) {
    // A crash initiated outside a dispatch (e.g. a timer-less executor
    // injection against an idle process) still needs supervision. Detect it
    // by matching the pid to a slot.
    if (to == ProcState::kCrashed) {
      for (NodeId id = 0; id < static_cast<NodeId>(slots_.size()); id++) {
        Slot& slot = slots_[static_cast<size_t>(id)];
        if (slot.pid == pid && slot.guest != nullptr) {
          // Defer: if this crash happened mid-dispatch the unwind handler
          // will supervise; the marker below makes the deferred check cheap.
          const uint64_t generation = slot.generation;
          loop().ScheduleAfter(0, [this, id, generation] {
            Slot& current = slots_[static_cast<size_t>(id)];
            if (current.generation == generation && current.guest != nullptr) {
              HandleCrash(id);
            }
          });
          break;
        }
      }
    }
    return;
  }
  for (NodeId id = 0; id < static_cast<NodeId>(slots_.size()); id++) {
    if (slots_[static_cast<size_t>(id)].pid == pid) {
      FlushPending(id);
      break;
    }
  }
}

const std::vector<std::string>& Cluster::LogsOf(NodeId id) const {
  return slots_[static_cast<size_t>(id)].log;
}

std::string Cluster::AllLogText() const {
  std::string out;
  for (const Slot& slot : slots_) {
    for (const std::string& line : slot.log) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

int Cluster::restarts_of(NodeId id) const {
  return slots_[static_cast<size_t>(id)].restarts;
}

}  // namespace rose
