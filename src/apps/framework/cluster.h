// Guest cluster runtime: node lifecycle, message dispatch, timers, logs.
//
// One Cluster hosts the nodes of a guest system (plus workload clients) on
// top of the simulated kernel and network. It plays the role of the
// container/deployment layer in the paper's testbed:
//   - spawns one main process per node and registers its IP;
//   - routes messages through real connect()/send() syscalls so network
//     faults surface exactly where Rose expects them;
//   - supervises crashes: a crashed node is restarted after a delay with a
//     fresh pid and a fresh guest object that must recover from its disk;
//   - freezes event delivery to paused processes and flushes on resume.
#ifndef SRC_APPS_FRAMEWORK_CLUSTER_H_
#define SRC_APPS_FRAMEWORK_CLUSTER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/framework/message.h"
#include "src/common/rng.h"
#include "src/net/network.h"
#include "src/os/kernel.h"
#include "src/profile/binary_info.h"

namespace rose {

class GuestNode;

struct ClusterConfig {
  uint64_t seed = 1;
  SimTime restart_delay = Seconds(2);
  bool auto_restart = true;
  int max_restarts_per_node = 25;
};

class Cluster : public KernelObserver {
 public:
  using NodeFactory = std::function<std::unique_ptr<GuestNode>(Cluster*, NodeId)>;

  Cluster(SimKernel* kernel, Network* network, const BinaryInfo* binary,
          ClusterConfig config);
  ~Cluster() override;

  // Registers a node before Start(). Returns the node id (dense, from 0).
  NodeId AddNode(NodeFactory factory);

  // Spawns processes and boots every node.
  void Start();

  SimKernel& kernel() { return *kernel_; }
  Network& network() { return *network_; }
  EventLoop& loop() { return kernel_->loop(); }
  const BinaryInfo* binary() const { return binary_; }
  Rng& rng() { return rng_; }

  GuestNode* node(NodeId id);
  int node_count() const { return static_cast<int>(slots_.size()); }
  std::string IpOf(NodeId id) const { return kernel_->IpOf(id); }
  std::vector<std::string> AllIps() const;
  bool IsNodeAlive(NodeId id) const;

  // --- Services used by GuestNode --------------------------------------------
  bool SendMessage(GuestNode* src, NodeId dst, Message msg);
  void SetTimer(GuestNode* node, const std::string& name, SimTime delay);
  void CancelTimer(GuestNode* node, const std::string& name);
  void AppendLog(NodeId id, const std::string& line);
  // Deliberate self-crash (panic); unwinds via ProcessInterrupted.
  [[noreturn]] void Panic(GuestNode* node, const std::string& reason);

  // --- Logs (consumed by oracles) ----------------------------------------------
  const std::vector<std::string>& LogsOf(NodeId id) const;
  std::string AllLogText() const;
  int restarts_of(NodeId id) const;

  // --- KernelObserver: pause/resume bookkeeping -------------------------------
  void OnProcessStateChange(SimTime now, Pid pid, ProcState from, ProcState to) override;

 private:
  friend class GuestNode;

  struct Slot {
    NodeFactory factory;
    std::unique_ptr<GuestNode> guest;
    Pid pid = kNoPid;
    uint64_t generation = 0;
    int restarts = 0;
    bool permanently_down = false;
    std::deque<Message> pending_messages;
    std::deque<std::string> pending_timers;
    std::map<std::string, TimerId> timers;
    std::map<NodeId, int32_t> conn_fds;
    std::vector<std::string> log;
  };

  void BootNode(NodeId id);
  void Deliver(NodeId dst, Message msg);
  // Runs `fn` against the current guest of `id`, converting a crash unwind
  // into supervision. Returns false if the node was not runnable.
  bool Dispatch(NodeId id, const std::function<void(GuestNode*)>& fn);
  void HandleCrash(NodeId id);
  void FlushPending(NodeId id);
  void TimerFired(NodeId id, uint64_t generation, const std::string& name);

  SimKernel* kernel_;
  Network* network_;
  const BinaryInfo* binary_;
  ClusterConfig config_;
  Rng rng_;
  std::vector<Slot> slots_;
  bool started_ = false;
};

}  // namespace rose

#endif  // SRC_APPS_FRAMEWORK_CLUSTER_H_
