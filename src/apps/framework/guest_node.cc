#include "src/apps/framework/guest_node.h"

namespace rose {

GuestNode::GuestNode(Cluster* cluster, NodeId id, std::string name)
    : cluster_(cluster), id_(id), name_(std::move(name)) {}

void GuestNode::Broadcast(const Message& msg, int node_count) {
  for (NodeId peer = 0; peer < node_count; peer++) {
    if (peer != id_) {
      Message copy = msg;
      Send(peer, std::move(copy));
    }
  }
}

void GuestNode::Assert(bool condition, const std::string& message) {
  if (!condition) {
    Log("ASSERTION FAILED: " + message);
    Panic("assertion: " + message);
  }
}

void GuestNode::EnterFunction(const char* function_name) {
  const FunctionInfo* info = cluster_->binary()->FindByName(function_name);
  if (info != nullptr) {
    kernel().FunctionEnter(pid_, info->id);
  }
}

void GuestNode::AtOffset(const char* function_name, int32_t offset) {
  const FunctionInfo* info = cluster_->binary()->FindByName(function_name);
  if (info != nullptr) {
    kernel().FunctionOffset(pid_, info->id, offset);
  }
}

SyscallResult GuestNode::Open(const std::string& path, SimKernel::OpenFlags flags) {
  return kernel().Open(pid_, path, flags);
}

SyscallResult GuestNode::OpenAt(const std::string& path, SimKernel::OpenFlags flags) {
  return kernel().OpenAt(pid_, path, flags);
}

SyscallResult GuestNode::Close(int32_t fd) { return kernel().Close(pid_, fd); }

SyscallResult GuestNode::ReadFd(int32_t fd, int64_t count, std::string* out) {
  return kernel().Read(pid_, fd, count, out);
}

SyscallResult GuestNode::WriteFd(int32_t fd, std::string_view data) {
  return kernel().Write(pid_, fd, data);
}

SyscallResult GuestNode::Fsync(int32_t fd) { return kernel().Fsync(pid_, fd); }

SyscallResult GuestNode::StatPath(const std::string& path, FileStat* out) {
  return kernel().Stat(pid_, path, out);
}

SyscallResult GuestNode::FstatFd(int32_t fd, FileStat* out) {
  return kernel().Fstat(pid_, fd, out);
}

SyscallResult GuestNode::UnlinkPath(const std::string& path) {
  return kernel().Unlink(pid_, path);
}

SyscallResult GuestNode::RenamePath(const std::string& from, const std::string& to) {
  return kernel().Rename(pid_, from, to);
}

SyscallResult GuestNode::ReadlinkPath(const std::string& path) {
  return kernel().Readlink(pid_, path);
}

SyscallResult GuestNode::ConnectTo(const std::string& ip) {
  return kernel().Connect(pid_, ip);
}

SyscallResult GuestNode::AcceptFrom(const std::string& ip) {
  return kernel().Accept(pid_, ip);
}

Err GuestNode::WriteFileDurably(const std::string& path, std::string_view data) {
  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.truncate = true;
  const SyscallResult opened = Open(path, flags);
  if (!opened.ok()) {
    return opened.err;
  }
  const auto fd = static_cast<int32_t>(opened.value);
  const SyscallResult written = WriteFd(fd, data);
  if (!written.ok()) {
    Close(fd);
    return written.err;
  }
  const SyscallResult synced = Fsync(fd);
  Close(fd);
  return synced.err;
}

std::optional<std::string> GuestNode::ReadWholeFile(const std::string& path) {
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  const SyscallResult opened = Open(path, flags);
  if (!opened.ok()) {
    return std::nullopt;
  }
  const auto fd = static_cast<int32_t>(opened.value);
  std::string contents;
  while (true) {
    std::string chunk;
    const SyscallResult got = ReadFd(fd, 4096, &chunk);
    if (!got.ok()) {
      Close(fd);
      return std::nullopt;
    }
    if (got.value == 0) {
      break;
    }
    contents += chunk;
  }
  Close(fd);
  return contents;
}

}  // namespace rose
