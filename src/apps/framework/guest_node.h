// Base class for guest-system nodes.
//
// Subclasses implement OnStart / OnMessage / OnTimer and interact with the
// world exclusively through the protected helpers, all of which cross the
// simulated kernel boundary (and can therefore be observed and manipulated
// by Rose). EnterFunction/AtOffset are the uprobe announcement points: real
// binaries expose symbols and offsets; guests announce them explicitly.
//
// Any helper that crosses the kernel may throw ProcessInterrupted when the
// executor crashes this process at that exact point. Subclasses must let the
// exception propagate (the cluster catches it at the dispatch boundary) so
// that on-disk state stays exactly as durable as the syscalls already made.
#ifndef SRC_APPS_FRAMEWORK_GUEST_NODE_H_
#define SRC_APPS_FRAMEWORK_GUEST_NODE_H_

#include <string>

#include "src/apps/framework/cluster.h"
#include "src/apps/framework/message.h"

namespace rose {

class GuestNode {
 public:
  GuestNode(Cluster* cluster, NodeId id, std::string name);
  virtual ~GuestNode() = default;

  NodeId id() const { return id_; }
  Pid pid() const { return pid_; }
  const std::string& name() const { return name_; }

  // Boot (first start or post-crash restart). Recover state from disk here.
  virtual void OnStart() = 0;
  virtual void OnMessage(const Message& msg) = 0;
  virtual void OnTimer(const std::string& /*name*/) {}

  void set_pid(Pid pid) { pid_ = pid; }

 protected:
  Cluster& cluster() { return *cluster_; }
  SimKernel& kernel() { return cluster_->kernel(); }
  InMemoryFileSystem& disk() { return kernel().DiskOf(id_); }
  SimTime now() const { return cluster_->kernel().now(); }
  Rng& rng() { return cluster_->rng(); }

  // --- Communication ---------------------------------------------------------
  bool Send(NodeId dst, Message msg) { return cluster_->SendMessage(this, dst, std::move(msg)); }
  void Broadcast(const Message& msg, int node_count);

  // --- Timers ------------------------------------------------------------------
  void SetTimer(const std::string& name, SimTime delay) { cluster_->SetTimer(this, name, delay); }
  void CancelTimer(const std::string& name) { cluster_->CancelTimer(this, name); }

  // --- Observability ------------------------------------------------------------
  void Log(const std::string& line) { cluster_->AppendLog(id_, line); }
  // Failed assertion: logs "ASSERTION FAILED: <msg>" and panics the process.
  void Assert(bool condition, const std::string& message);
  [[noreturn]] void Panic(const std::string& reason) { cluster_->Panic(this, reason); }

  // --- Uprobe announcements -------------------------------------------------------
  // Announce entry into a named function (must be registered in the guest's
  // BinaryInfo). The executor may crash/pause this process right here.
  void EnterFunction(const char* function_name);
  // Announce reaching a specific offset within a function.
  void AtOffset(const char* function_name, int32_t offset);

  // --- Syscall shorthand (all trace-visible, all injectable) ----------------------
  SyscallResult Open(const std::string& path, SimKernel::OpenFlags flags = {});
  SyscallResult OpenAt(const std::string& path, SimKernel::OpenFlags flags = {});
  SyscallResult Close(int32_t fd);
  SyscallResult ReadFd(int32_t fd, int64_t count, std::string* out = nullptr);
  SyscallResult WriteFd(int32_t fd, std::string_view data);
  SyscallResult Fsync(int32_t fd);
  SyscallResult StatPath(const std::string& path, FileStat* out = nullptr);
  SyscallResult FstatFd(int32_t fd, FileStat* out = nullptr);
  SyscallResult UnlinkPath(const std::string& path);
  SyscallResult RenamePath(const std::string& from, const std::string& to);
  SyscallResult ReadlinkPath(const std::string& path);
  SyscallResult ConnectTo(const std::string& ip);
  SyscallResult AcceptFrom(const std::string& ip);

  // Convenience: durable whole-file write via open/write/fsync/close; returns
  // the first failing errno (kOk on success). Crash-interruptible at every
  // syscall.
  Err WriteFileDurably(const std::string& path, std::string_view data);
  // Reads the whole file through read syscalls; empty optional on failure.
  std::optional<std::string> ReadWholeFile(const std::string& path);

 private:
  Cluster* cluster_;
  NodeId id_;
  std::string name_;
  Pid pid_ = kNoPid;
};

}  // namespace rose

#endif  // SRC_APPS_FRAMEWORK_GUEST_NODE_H_
