#include "src/apps/framework/message.h"

#include "src/common/strings.h"

namespace rose {

int64_t Message::IntField(const std::string& key, int64_t fallback) const {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return fallback;
  }
  int64_t value = 0;
  return ParseInt64(it->second, &value) ? value : fallback;
}

std::string Message::StrField(const std::string& key, const std::string& fallback) const {
  auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

int64_t Message::ByteSize() const {
  int64_t size = static_cast<int64_t>(type.size()) + 8;
  for (const auto& [key, value] : fields) {
    size += static_cast<int64_t>(key.size() + value.size()) + 2;
  }
  return size;
}

std::string Message::DebugString() const {
  std::string out = StrFormat("%s(%d->%d", type.c_str(), from, to);
  for (const auto& [key, value] : fields) {
    out += StrFormat(" %s=%s", key.c_str(), value.c_str());
  }
  out += ")";
  return out;
}

}  // namespace rose
