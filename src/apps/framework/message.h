// Inter-node messages for the guest systems.
//
// Messages are typed key/value records — rich enough for consensus, block
// reports, and client traffic, while staying printable for debugging. The
// fabric only sees byte sizes; payloads ride alongside in the delivery
// closure.
#ifndef SRC_APPS_FRAMEWORK_MESSAGE_H_
#define SRC_APPS_FRAMEWORK_MESSAGE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/os/process.h"

namespace rose {

struct Message {
  std::string type;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::map<std::string, std::string> fields;

  Message() = default;
  Message(std::string type_name, NodeId from_node, NodeId to_node)
      : type(std::move(type_name)), from(from_node), to(to_node) {}

  void SetInt(const std::string& key, int64_t value) { fields[key] = std::to_string(value); }
  void SetStr(const std::string& key, std::string value) { fields[key] = std::move(value); }

  int64_t IntField(const std::string& key, int64_t fallback = 0) const;
  std::string StrField(const std::string& key, const std::string& fallback = "") const;
  bool HasField(const std::string& key) const { return fields.count(key) != 0; }

  // Approximate wire size (drives the tracer's packet accounting).
  int64_t ByteSize() const;

  std::string DebugString() const;
};

}  // namespace rose

#endif  // SRC_APPS_FRAMEWORK_MESSAGE_H_
