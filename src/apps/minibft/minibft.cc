#include "src/apps/minibft/minibft.h"

#include "src/common/strings.h"

namespace rose {

namespace {
constexpr char kPrivKeyPath[] = "/data/priv_validator_key.json";
}  // namespace

BinaryInfo BuildMiniBftBinary() {
  BinaryInfo binary;
  binary.RegisterFunction("loadPrivValidator", "privval.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpenAt},
                           {0x14, OffsetKind::kSyscallCallSite, Sys::kRead}});
  binary.RegisterFunction("proposeBlock", "consensus.c", {{0x08, OffsetKind::kOther}});
  binary.RegisterFunction("verifyVote", "consensus.c", {{0x08, OffsetKind::kOther}});
  return binary;
}

MiniBftNode::MiniBftNode(Cluster* cluster, NodeId id, MiniBftOptions options)
    : GuestNode(cluster, id, StrFormat("bft-%d", id)), options_(options) {}

void MiniBftNode::OnStart() {
  Log("bft validator booting");
  StatPath("/data/config.toml.new");  // Benign probe.
  // The genesis key for validator i is "vk<i>"; every node knows every
  // validator's public key.
  for (NodeId peer = 0; peer < options_.cluster_size; peer++) {
    known_keys_[peer] = StrFormat("vk%d", peer);
  }
  if (!disk().Exists(kPrivKeyPath)) {
    disk().WriteAll(kPrivKeyPath, StrFormat("vk%d", id()));
  }
  LoadPrivValidator(/*initial=*/true);
  SetTimer("round", options_.round_interval);
  SetTimer("reload", options_.key_reload_interval);
  SetTimer("maint", Seconds(1));
}

void MiniBftNode::LoadPrivValidator(bool initial) {
  EnterFunction("loadPrivValidator");
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  AtOffset("loadPrivValidator", 0x08);
  const SyscallResult opened = OpenAt(kPrivKeyPath, flags);
  if (!opened.ok()) {
    if (options_.bug5839) {
      // Tendermint-5839: file permissions are not validated; a fresh key is
      // generated silently and consensus continues under a new identity.
      signing_key_ = StrFormat("regen-%d-%lld", id(), static_cast<long long>(now()));
      Log("private validator key regenerated silently");
      return;
    }
    if (initial) {
      Panic("cannot read private validator key");
    }
    Log("key reload failed; keeping current key");
    return;
  }
  std::string key;
  AtOffset("loadPrivValidator", 0x14);
  const SyscallResult got = ReadFd(static_cast<int32_t>(opened.value), 64, &key);
  Close(static_cast<int32_t>(opened.value));
  if (got.ok() && !key.empty()) {
    signing_key_ = key;
  }
}

void MiniBftNode::ProposeBlock() {
  EnterFunction("proposeBlock");
  Message msg("BftPropose", id(), kNoNode);
  msg.SetInt("height", height_ + 1);
  msg.SetStr("sig", signing_key_);
  Broadcast(msg, options_.cluster_size);
}

void MiniBftNode::OnTimer(const std::string& name) {
  if (name == "round") {
    round_++;
    if (round_ % options_.cluster_size == id()) {
      ProposeBlock();
    }
    SetTimer("round", options_.round_interval);
  } else if (name == "reload") {
    LoadPrivValidator(/*initial=*/false);
    SetTimer("reload", options_.key_reload_interval);
  } else if (name == "maint") {
    StatPath("/data/config.toml.new");
    ReadlinkPath("/data/data");
    SetTimer("maint", Seconds(1));
  }
}

void MiniBftNode::OnMessage(const Message& msg) {
  if (msg.type == "BftPropose") {
    EnterFunction("verifyVote");
    const std::string expected = known_keys_[msg.from];
    if (msg.StrField("sig") != expected) {
      Log(StrFormat("ERROR: unexpected validator key change for v%d "
                    "(file permissions were not validated)", msg.from));
      return;
    }
    height_ = std::max(height_, msg.IntField("height"));
    Message vote("BftVote", id(), msg.from);
    vote.SetInt("height", msg.IntField("height"));
    vote.SetStr("sig", signing_key_);
    Send(msg.from, std::move(vote));
  } else if (msg.type == "BftVote") {
    EnterFunction("verifyVote");
    const std::string expected = known_keys_[msg.from];
    if (msg.StrField("sig") != expected) {
      Log(StrFormat("ERROR: unexpected validator key change for v%d "
                    "(file permissions were not validated)", msg.from));
    }
  }
}

}  // namespace rose
