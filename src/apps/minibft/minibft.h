// MiniBft — a miniature Tendermint validator set: a round-robin proposer
// broadcasts blocks, validators sign votes with the key loaded from their
// private validator file, and peers verify vote signatures against the known
// validator set.
//
//   bug5839 (Tendermint-5839) — the private-key loader does not validate
//   file access permissions: on EACCES it silently generates a fresh key and
//   keeps signing, so the validator's identity changes mid-consensus.
#ifndef SRC_APPS_MINIBFT_MINIBFT_H_
#define SRC_APPS_MINIBFT_MINIBFT_H_

#include <map>
#include <string>

#include "src/apps/framework/guest_node.h"
#include "src/profile/binary_info.h"

namespace rose {

struct MiniBftOptions {
  int cluster_size = 4;
  bool bug5839 = false;
  SimTime round_interval = Millis(500);
  SimTime key_reload_interval = Seconds(4);  // Config-watcher cadence.
};

BinaryInfo BuildMiniBftBinary();

class MiniBftNode : public GuestNode {
 public:
  MiniBftNode(Cluster* cluster, NodeId id, MiniBftOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

  int64_t height() const { return height_; }

 private:
  void LoadPrivValidator(bool initial);
  void ProposeBlock();

  MiniBftOptions options_;
  std::string signing_key_;
  std::map<NodeId, std::string> known_keys_;
  int64_t height_ = 0;
  int64_t round_ = 0;
};

}  // namespace rose

#endif  // SRC_APPS_MINIBFT_MINIBFT_H_
