#include "src/apps/minibroker/minibroker.h"

#include "src/common/strings.h"

namespace rose {

namespace {
constexpr char kChangelogPath[] = "/data/changelog";
}  // namespace

BinaryInfo BuildMiniBrokerBinary() {
  BinaryInfo binary;
  binary.RegisterFunction("restoreState", "streams.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpenAt},
                           {0x14, OffsetKind::kSyscallCallSite, Sys::kRead}});
  binary.RegisterFunction("processRecord", "streams.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x10, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  binary.RegisterFunction("emitChange", "streams.c", {{0x08, OffsetKind::kOther}});
  return binary;
}

MiniBrokerNode::MiniBrokerNode(Cluster* cluster, NodeId id, MiniBrokerOptions options)
    : GuestNode(cluster, id, StrFormat("broker-%d", id)), options_(options) {}

void MiniBrokerNode::OnStart() {
  Log("streams node booting");
  StatPath("/data/kafka-streams.lock");  // Benign probe.
  if (id() == kBrokerStreams) {
    SetTimer("restore", options_.restore_interval);
  } else {
    SetTimer("produce", Millis(100));
  }
  SetTimer("maint", Seconds(1));
}

void MiniBrokerNode::RestoreState() {
  EnterFunction("restoreState");
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  AtOffset("restoreState", 0x08);
  const SyscallResult opened = OpenAt(kChangelogPath, flags);
  if (!opened.ok()) {
    if (opened.err == Err::kENOENT) {
      return;  // Nothing persisted yet.
    }
    if (options_.bug12508) {
      // KAFKA-12508: the restore error is swallowed; the task continues with
      // an empty table and emit-on-change drops the next updates.
      table_.clear();
      Log("ERROR: state restore failed; continuing with empty state "
          "(emit-on-change updates lost)");
      return;
    }
    Panic("cannot restore state store from changelog");
  }
  const auto fd = static_cast<int32_t>(opened.value);
  std::string contents;
  while (true) {
    std::string chunk;
    AtOffset("restoreState", 0x14);
    const SyscallResult got = ReadFd(fd, 4096, &chunk);
    if (!got.ok() || got.value == 0) {
      break;
    }
    contents += chunk;
  }
  Close(fd);
  table_.clear();
  for (const std::string& line : Split(contents, '\n')) {
    const size_t eq = line.find('=');
    if (eq != std::string::npos) {
      table_[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }
}

void MiniBrokerNode::ProcessRecord(const std::string& key, const std::string& value) {
  EnterFunction("processRecord");
  auto it = table_.find(key);
  const bool changed = it == table_.end() || it->second != value;
  table_[key] = value;

  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.append = true;
  const SyscallResult opened = Open(kChangelogPath, flags);
  if (opened.ok()) {
    WriteFd(static_cast<int32_t>(opened.value), key + "=" + value + "\n");
    Close(static_cast<int32_t>(opened.value));
  }
  if (changed) {
    EnterFunction("emitChange");
    emitted_++;
  }
}

void MiniBrokerNode::OnTimer(const std::string& name) {
  if (name == "restore") {
    RestoreState();
    SetTimer("restore", options_.restore_interval);
  } else if (name == "produce") {
    Message msg("SourceRecord", id(), kBrokerStreams);
    msg.SetStr("key", StrFormat("k%llu", static_cast<unsigned long long>(
                                             source_counter_ % 7)));
    msg.SetStr("val", StrFormat("v%llu", static_cast<unsigned long long>(source_counter_)));
    source_counter_++;
    Send(kBrokerStreams, std::move(msg));
    SetTimer("produce", Millis(100));
  } else if (name == "maint") {
    StatPath("/data/kafka-streams.lock");
    ReadlinkPath("/data/state-dir");
    SetTimer("maint", Seconds(1));
  }
}

void MiniBrokerNode::OnMessage(const Message& msg) {
  if (msg.type == "SourceRecord" && id() == kBrokerStreams) {
    ProcessRecord(msg.StrField("key"), msg.StrField("val"));
  }
}

}  // namespace rose
