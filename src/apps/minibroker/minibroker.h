// MiniBroker — a miniature Kafka Streams node: consumes records from a
// source, maintains an emit-on-change table backed by a changelog file, and
// periodically restores table state from the changelog (the rebalance path).
//
//   bug12508 (KAFKA-12508) — when the changelog cannot be opened during
//   restore, the task continues with an EMPTY table instead of failing.
//   Emit-on-change then suppresses updates whose values differ only from the
//   lost state: updates are silently dropped on error or restart.
#ifndef SRC_APPS_MINIBROKER_MINIBROKER_H_
#define SRC_APPS_MINIBROKER_MINIBROKER_H_

#include <map>
#include <string>

#include "src/apps/framework/guest_node.h"
#include "src/profile/binary_info.h"

namespace rose {

struct MiniBrokerOptions {
  bool bug12508 = false;
  SimTime restore_interval = Seconds(5);  // Rebalance cadence.
};

// Node 0 runs the streams task; node 1 produces source records.
inline constexpr NodeId kBrokerStreams = 0;
inline constexpr NodeId kBrokerSource = 1;

BinaryInfo BuildMiniBrokerBinary();

class MiniBrokerNode : public GuestNode {
 public:
  MiniBrokerNode(Cluster* cluster, NodeId id, MiniBrokerOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

  uint64_t emitted() const { return emitted_; }

 private:
  void RestoreState();
  void ProcessRecord(const std::string& key, const std::string& value);

  MiniBrokerOptions options_;
  std::map<std::string, std::string> table_;
  uint64_t emitted_ = 0;
  uint64_t source_counter_ = 0;
};

}  // namespace rose

#endif  // SRC_APPS_MINIBROKER_MINIBROKER_H_
