#include "src/apps/minidocstore/minidocstore.h"

#include "src/common/strings.h"

namespace rose {

namespace {
constexpr char kOplogPath[] = "/data/oplog";
}  // namespace

BinaryInfo BuildMiniDocStoreBinary() {
  BinaryInfo binary;
  binary.RegisterFunction("becomePrimary", "repl.c", {{0x10, OffsetKind::kCallSite}});
  binary.RegisterFunction("stepDown", "repl.c", {{0x10, OffsetKind::kCallSite}});
  binary.RegisterFunction("rollbackDivergent", "repl.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kUnlink}});
  binary.RegisterFunction("applyWrite", "storage.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  binary.RegisterFunction("electionLockout", "repl.c", {{0x08, OffsetKind::kOther}});
  return binary;
}

MiniDocStoreNode::MiniDocStoreNode(Cluster* cluster, NodeId id, MiniDocStoreOptions options)
    : GuestNode(cluster, id, StrFormat("docstore-%d", id)), options_(options) {}

void MiniDocStoreNode::OnStart() {
  Log("docstore booting");
  StatPath("/data/mongod.lock");  // Benign probe.
  last_primary_seen_ = now();
  SetTimer("hb", options_.heartbeat_interval);
  SetTimer("watchdog", Seconds(2));
  SetTimer("maint", Seconds(1));
}

void MiniDocStoreNode::BecomePrimary() {
  EnterFunction("becomePrimary");
  primary_ = id();
  epoch_++;
  last_primary_seen_ = now();
  Log(StrFormat("became primary (epoch %lld)", static_cast<long long>(epoch_)));
  // Announce immediately so peers don't also self-elect.
  Message msg("DsHeartbeat", id(), kNoNode);
  msg.SetInt("epoch", epoch_);
  Broadcast(msg, options_.cluster_size);
}

void MiniDocStoreNode::StepDown(NodeId new_primary, int64_t new_epoch) {
  EnterFunction("stepDown");
  const bool was_primary = primary_ == id();
  primary_ = new_primary;
  epoch_ = new_epoch;
  if (was_primary && oplog_.size() > replicated_prefix_) {
    EnterFunction("rollbackDivergent");
    if (options_.bug_dataloss) {
      // MongoDB 2.4.3: the divergent suffix — all of it acknowledged to
      // clients — is discarded with no rollback file.
      const size_t dropped = oplog_.size() - replicated_prefix_;
      oplog_.resize(replicated_prefix_);
      UnlinkPath("/data/oplog.divergent");
      Log(StrFormat("discarded %zu divergent oplog entries on step-down", dropped));
    } else {
      // Correct behavior: preserve the divergent suffix in a rollback file
      // for operator replay.
      std::string rollback;
      for (size_t i = replicated_prefix_; i < oplog_.size(); i++) {
        rollback += oplog_[i] + "\n";
      }
      WriteFileDurably("/data/rollback", rollback);
      oplog_.resize(replicated_prefix_);
      Log("divergent entries preserved in rollback file");
    }
  }
}

void MiniDocStoreNode::PersistOplogEntry(const std::string& op) {
  EnterFunction("applyWrite");
  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.append = true;
  const SyscallResult opened = Open(kOplogPath, flags);
  if (opened.ok()) {
    WriteFd(static_cast<int32_t>(opened.value), op + "\n");
    Close(static_cast<int32_t>(opened.value));
  }
}

void MiniDocStoreNode::HandleClientPut(const Message& msg) {
  if (primary_ != id()) {
    Message reply("ClientRedirect", id(), msg.from);
    reply.SetStr("op", msg.StrField("op"));
    reply.SetInt("leader", primary_);
    Send(msg.from, std::move(reply));
    return;
  }
  const std::string op = msg.StrField("op");
  kv_[msg.StrField("key")] = msg.StrField("val");
  oplog_.push_back(op);
  PersistOplogEntry(op);

  // w=1: acknowledge immediately, replicate asynchronously.
  Message reply("ClientPutOk", id(), msg.from);
  reply.SetStr("op", op);
  Send(msg.from, std::move(reply));

  Message rep("DsReplicate", id(), kNoNode);
  rep.SetStr("op", op);
  rep.SetStr("key", msg.StrField("key"));
  rep.SetStr("val", msg.StrField("val"));
  rep.SetInt("epoch", epoch_);
  rep.SetInt("idx", static_cast<int64_t>(oplog_.size()) - 1);
  Broadcast(rep, options_.cluster_size);
}

void MiniDocStoreNode::OnTimer(const std::string& name) {
  if (name == "hb") {
    if (primary_ == id()) {
      Message msg("DsHeartbeat", id(), kNoNode);
      msg.SetInt("epoch", epoch_);
      Broadcast(msg, options_.cluster_size);
    } else {
      const SimTime stale = now() - last_primary_seen_;
      if (stale >= options_.lease_timeout + Millis(250) * id()) {
        if (options_.bug_unavail && primary_ != kNoNode && primary_ != id()) {
          // MongoDB 3.2.10: the priority token held by the unreachable old
          // primary blocks the election, and the lockout never expires.
          EnterFunction("electionLockout");
          Log("cannot elect: priority token held by unreachable member");
        } else {
          BecomePrimary();
        }
      }
    }
    SetTimer("hb", options_.heartbeat_interval);
    return;
  }
  if (name == "watchdog") {
    if (now() - last_primary_seen_ > Seconds(10) && primary_ != id() && !unavail_logged_) {
      unavail_logged_ = true;
      Log("ERROR: replica set has no primary (election deadlock)");
    }
    SetTimer("watchdog", Seconds(2));
    return;
  }
  if (name == "maint") {
    StatPath("/data/mongod.lock");
    ReadlinkPath("/data/journal");
    SetTimer("maint", Seconds(1));
    return;
  }
}

void MiniDocStoreNode::OnMessage(const Message& msg) {
  if (msg.type == "DsHeartbeat") {
    const int64_t epoch = msg.IntField("epoch");
    const bool tie_break = epoch == epoch_ && msg.from < id();  // Lower id wins.
    if (epoch > epoch_ || (epoch == epoch_ && msg.from == primary_) || tie_break ||
        (epoch == epoch_ && primary_ == kNoNode)) {
      if (primary_ == id() && msg.from != id() && (epoch > epoch_ || tie_break)) {
        StepDown(msg.from, std::max(epoch, epoch_));
      } else {
        primary_ = msg.from;
        epoch_ = std::max(epoch, epoch_);
      }
      last_primary_seen_ = now();
    }
  } else if (msg.type == "DsReplicate") {
    if (msg.IntField("epoch") < epoch_) {
      return;
    }
    const auto idx = static_cast<size_t>(msg.IntField("idx"));
    kv_[msg.StrField("key")] = msg.StrField("val");
    if (idx >= oplog_.size()) {
      oplog_.resize(idx + 1);
    }
    oplog_[idx] = msg.StrField("op");
    PersistOplogEntry(msg.StrField("op"));
    Message ack("DsRepAck", id(), msg.from);
    ack.SetInt("idx", msg.IntField("idx"));
    Send(msg.from, std::move(ack));
  } else if (msg.type == "DsRepAck") {
    if (primary_ == id()) {
      const auto idx = static_cast<size_t>(msg.IntField("idx"));
      replicated_prefix_ = std::max(replicated_prefix_, idx + 1);
    }
  } else if (msg.type == "ClientPut") {
    HandleClientPut(msg);
  } else if (msg.type == "ClientGet") {
    Message reply("ClientGetOk", id(), msg.from);
    reply.SetStr("op", msg.StrField("op"));
    auto it = kv_.find(msg.StrField("key"));
    reply.SetStr("val", it == kv_.end() ? "" : it->second);
    Send(msg.from, std::move(reply));
  }
}

}  // namespace rose
