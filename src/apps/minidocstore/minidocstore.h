// MiniDocStore — a miniature MongoDB replica set: a primary elected by
// heartbeat lease, asynchronous oplog replication, and w=1 write concern
// (acknowledge on local apply).
//
// Two seeded EFIBs reproduce the paper's MongoDB Jepsen rows:
//
//   bug_dataloss (MongoDB 2.4.3) — writes are acknowledged before
//          replication; a partitioned primary keeps acknowledging, and on
//          rejoin its divergent oplog suffix is discarded without a rollback
//          file: acknowledged writes are silently lost.
//   bug_unavail (MongoDB 3.2.10) — secondaries refuse to elect while the
//          "priority token" holder (the old primary) is unreachable, and the
//          lockout never expires: the replica set has no primary for the
//          whole partition.
#ifndef SRC_APPS_MINIDOCSTORE_MINIDOCSTORE_H_
#define SRC_APPS_MINIDOCSTORE_MINIDOCSTORE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/apps/framework/guest_node.h"
#include "src/profile/binary_info.h"

namespace rose {

struct MiniDocStoreOptions {
  int cluster_size = 3;
  bool bug_dataloss = false;
  bool bug_unavail = false;
  SimTime heartbeat_interval = Millis(300);
  SimTime lease_timeout = Millis(1200);
};

BinaryInfo BuildMiniDocStoreBinary();

class MiniDocStoreNode : public GuestNode {
 public:
  MiniDocStoreNode(Cluster* cluster, NodeId id, MiniDocStoreOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

  bool is_primary() const { return primary_ == id(); }
  int64_t epoch() const { return epoch_; }
  // Applied operation ids, in apply order.
  const std::vector<std::string>& oplog() const { return oplog_; }

 private:
  void BecomePrimary();
  void StepDown(NodeId new_primary, int64_t new_epoch);
  void HandleClientPut(const Message& msg);
  void PersistOplogEntry(const std::string& op);

  MiniDocStoreOptions options_;
  NodeId primary_ = kNoNode;
  int64_t epoch_ = 0;
  SimTime last_primary_seen_ = 0;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> oplog_;
  // Index into oplog_ below which entries are known replicated to a peer.
  size_t replicated_prefix_ = 0;
  bool unavail_logged_ = false;
};

}  // namespace rose

#endif  // SRC_APPS_MINIDOCSTORE_MINIDOCSTORE_H_
