#include "src/apps/minihdfs/hdfs_client.h"

#include "src/apps/minihdfs/minihdfs.h"
#include <algorithm>
#include "src/common/strings.h"

namespace rose {

HdfsClient::HdfsClient(Cluster* cluster, NodeId id, HdfsClientOptions options)
    : GuestNode(cluster, id, StrFormat("hdfsclient-%d", id)), options_(options) {}

void HdfsClient::OnStart() { SetTimer("tick", options_.op_interval); }

void HdfsClient::StartNextOp() {
  if (!completed_blocks_.empty() && rng().NextBool(options_.read_fraction)) {
    phase_ = Phase::kReading;
    // Reads favor the oldest ("hot") blocks, like popular files in a real
    // cluster; this keeps re-read traffic on a stable working set.
    const size_t working_set = std::min<size_t>(completed_blocks_.size(), 10);
    const auto& [block, dn] = completed_blocks_[rng().NextBelow(working_set)];
    current_block_ = block;
    current_dn_ = dn;
  } else {
    phase_ = Phase::kCreating;
    current_file_ = StrFormat("/user/data/file-%d-%llu", id(),
                              static_cast<unsigned long long>(file_counter_++));
  }
  retries_ = 0;
  phase_since_ = now();
  SendPhase();
}

void HdfsClient::SendPhase() {
  switch (phase_) {
    case Phase::kCreating: {
      Message msg("CreateFile", id(), kHdfsNameNode);
      msg.SetStr("name", current_file_);
      Send(kHdfsNameNode, std::move(msg));
      break;
    }
    case Phase::kWriting: {
      Message msg("WriteBlock", id(), current_dn_);
      msg.SetStr("block", current_block_);
      msg.SetStr("data", std::string(256, 'x'));
      msg.SetStr("op", current_file_);
      Send(current_dn_, std::move(msg));
      break;
    }
    case Phase::kCompleting: {
      Message msg("CompleteFile", id(), kHdfsNameNode);
      msg.SetStr("name", current_file_);
      msg.SetStr("block", current_block_);
      Send(kHdfsNameNode, std::move(msg));
      break;
    }
    case Phase::kReading: {
      Message msg("ReadBlock", id(), current_dn_);
      msg.SetStr("block", current_block_);
      Send(current_dn_, std::move(msg));
      break;
    }
    case Phase::kIdle:
      break;
  }
}

void HdfsClient::OnTimer(const std::string& name) {
  if (name != "tick") {
    return;
  }
  if (phase_ == Phase::kIdle) {
    StartNextOp();
  } else if (now() - phase_since_ >= options_.retry_timeout) {
    retries_++;
    // Reads retry much longer (the HDFS-16332 "slow read" comes from the
    // client patiently retrying against a poisoned token).
    const int limit = phase_ == Phase::kReading ? 15 : options_.max_write_retries;
    if (retries_ > limit) {
      phase_ = Phase::kIdle;  // Abandon this file (the lease stays at the NN).
    } else {
      phase_since_ = now();
      SendPhase();
    }
  }
  SetTimer("tick", options_.op_interval);
}

void HdfsClient::OnMessage(const Message& msg) {
  if (msg.type == "CreateOk" && phase_ == Phase::kCreating) {
    current_block_ = msg.StrField("block");
    current_dn_ = static_cast<NodeId>(msg.IntField("dn"));
    phase_ = Phase::kWriting;
    phase_since_ = now();
    retries_ = 0;
    SendPhase();
  } else if (msg.type == "BlockOk" && phase_ == Phase::kWriting) {
    phase_ = Phase::kCompleting;
    phase_since_ = now();
    retries_ = 0;
    SendPhase();
  } else if (msg.type == "BlockRetry" && phase_ == Phase::kWriting) {
    phase_since_ = now();
    SendPhase();
  } else if (msg.type == "CompleteOk" && phase_ == Phase::kCompleting) {
    completed_blocks_.push_back({current_block_, current_dn_});
    files_completed_++;
    phase_ = Phase::kIdle;
  } else if (msg.type == "ReadOk" && phase_ == Phase::kReading) {
    reads_completed_++;
    phase_ = Phase::kIdle;
  } else if (msg.type == "ReadRetry" && phase_ == Phase::kReading) {
    // Keep retrying the read (bounded by the tick-based retry counter).
    phase_since_ = now() - options_.retry_timeout + Millis(200);
  }
}

}  // namespace rose
