// File-writing workload client for MiniHdfs: create -> write block -> complete,
// with bounded retries, plus periodic reads of completed blocks.
#ifndef SRC_APPS_MINIHDFS_HDFS_CLIENT_H_
#define SRC_APPS_MINIHDFS_HDFS_CLIENT_H_

#include <string>
#include <vector>

#include "src/apps/framework/guest_node.h"

namespace rose {

struct HdfsClientOptions {
  SimTime op_interval = Millis(200);
  SimTime retry_timeout = Seconds(1);
  int max_write_retries = 3;
  double read_fraction = 0.4;
};

class HdfsClient : public GuestNode {
 public:
  HdfsClient(Cluster* cluster, NodeId id, HdfsClientOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

  uint64_t files_completed() const { return files_completed_; }
  uint64_t reads_completed() const { return reads_completed_; }

 private:
  enum class Phase { kIdle, kCreating, kWriting, kCompleting, kReading };

  void StartNextOp();
  void SendPhase();

  HdfsClientOptions options_;
  Phase phase_ = Phase::kIdle;
  SimTime phase_since_ = 0;
  int retries_ = 0;
  uint64_t file_counter_ = 0;
  std::string current_file_;
  std::string current_block_;
  NodeId current_dn_ = kNoNode;
  std::vector<std::pair<std::string, NodeId>> completed_blocks_;
  uint64_t files_completed_ = 0;
  uint64_t reads_completed_ = 0;
};

}  // namespace rose

#endif  // SRC_APPS_MINIHDFS_HDFS_CLIENT_H_
