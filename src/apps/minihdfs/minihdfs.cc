#include "src/apps/minihdfs/minihdfs.h"

#include "src/common/strings.h"

namespace rose {

namespace {

constexpr char kEditsCurrent[] = "/data/edits.current";
constexpr char kEditsNew[] = "/data/edits.new";

std::string BlockPath(const std::string& block) { return "/data/blocks/" + block; }

}  // namespace

BinaryInfo BuildMiniHdfsBinary() {
  BinaryInfo binary;
  // namenode.c
  binary.RegisterFunction("rollEditLog", "namenode.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpenAt},
                           {0x14, OffsetKind::kSyscallCallSite, Sys::kRename}});
  binary.RegisterFunction("leaseMonitor", "namenode.c", {{0x10, OffsetKind::kCallSite}});
  binary.RegisterFunction("assignBlocks", "namenode.c", {{0x10, OffsetKind::kCallSite}});
  binary.RegisterFunction("completeFile", "namenode.c", {{0x10, OffsetKind::kCallSite}});
  // datanode.c
  binary.RegisterFunction("writeBlock", "datanode.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x10, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  binary.RegisterFunction("finalizeBlock", "datanode.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kFstat}});
  binary.RegisterFunction("readBlock", "datanode.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kRead}});
  binary.RegisterFunction("recoverBlock", "datanode.c", {{0x10, OffsetKind::kCallSite}});
  // balancer.c
  binary.RegisterFunction("balancerIteration", "balancer.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kConnect}});
  binary.RegisterFunction("getBlocks", "balancer.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kConnect}});
  return binary;
}

MiniHdfsNode::MiniHdfsNode(Cluster* cluster, NodeId id, MiniHdfsOptions options)
    : GuestNode(cluster, id, StrFormat("minihdfs-%d", id)), options_(options) {}

void MiniHdfsNode::OnStart() {
  Log("minihdfs node booting");
  StatPath("/data/hdfs-site.override");  // Benign probe.
  ReadlinkPath("/data/current");
  if (IsNameNode()) {
    SimKernel::OpenFlags flags;
    flags.create = true;
    Open(kEditsCurrent, flags);
    SetTimer("roll", options_.edit_roll_interval);
    SetTimer("leases", Seconds(2));
  } else if (IsBalancer()) {
    SetTimer("balance", options_.balancer_interval);
  }
  SetTimer("maint", Seconds(1));
}

// ---------------------------------------------------------------------------
// Namenode
// ---------------------------------------------------------------------------

void MiniHdfsNode::RollEditLog() {
  EnterFunction("rollEditLog");
  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.truncate = true;
  AtOffset("rollEditLog", 0x08);
  const SyscallResult opened = OpenAt(kEditsNew, flags);
  if (!opened.ok()) {
    if (options_.bug4233) {
      // HDFS-4233: rolling fails, every journal is closed, and the namenode
      // keeps accepting edits anyway.
      journals_active_ = false;
      Log("ERROR: no journals started while rolling edit; namenode keeps serving");
      return;
    }
    Panic("cannot roll edit log: no journals available");
  }
  const auto fd = static_cast<int32_t>(opened.value);
  WriteFd(fd, StrFormat("ROLL %lld\n", static_cast<long long>(now())));
  Close(fd);
  AtOffset("rollEditLog", 0x14);
  RenamePath(kEditsNew, kEditsCurrent);
}

void MiniHdfsNode::LeaseMonitor() {
  EnterFunction("leaseMonitor");
  for (auto& [file, lease] : leases_) {
    if (now() - lease.created < options_.lease_limit) {
      continue;
    }
    if (options_.bug12070) {
      if (!lease.reported) {
        lease.reported = true;
        Log(StrFormat("ERROR: file %s remains open indefinitely: block recovery failed, "
                      "lease never released", file.c_str()));
      }
      continue;
    }
    // Correct behavior: ask the datanode to recover, then force-close.
    Message msg("RecoverBlock", id(), kHdfsDataNode1);
    msg.SetStr("block", lease.block);
    Send(kHdfsDataNode1, std::move(msg));
    Log(StrFormat("lease on %s recovered by force-close", file.c_str()));
    lease.created = now();  // Reset so we don't spam while recovery completes.
  }
}

void MiniHdfsNode::HandleCreateFile(const Message& msg) {
  EnterFunction("assignBlocks");
  if (!journals_active_) {
    // HDFS-4233 manifestation: edits accepted with no journal backing them.
    Log("WARNING: accepting create with zero active journals (edits will be lost)");
  }
  const std::string block = StrFormat("blk_%d", next_block_++);
  const NodeId dn = (next_block_ % 2 == 0) ? kHdfsDataNode1 : kHdfsDataNode2;
  Lease lease;
  lease.created = now();
  lease.client = msg.from;
  lease.block = block;
  leases_[msg.StrField("name")] = lease;

  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.append = true;
  const SyscallResult opened = Open(kEditsCurrent, flags);
  if (opened.ok()) {
    WriteFd(static_cast<int32_t>(opened.value),
            StrFormat("CREATE %s %s\n", msg.StrField("name").c_str(), block.c_str()));
    Close(static_cast<int32_t>(opened.value));
  }

  Message reply("CreateOk", id(), msg.from);
  reply.SetStr("name", msg.StrField("name"));
  reply.SetStr("block", block);
  reply.SetInt("dn", dn);
  Send(msg.from, std::move(reply));
}

void MiniHdfsNode::HandleCompleteFile(const Message& msg) {
  EnterFunction("completeFile");
  leases_.erase(msg.StrField("name"));
  Message reply("CompleteOk", id(), msg.from);
  reply.SetStr("name", msg.StrField("name"));
  Send(msg.from, std::move(reply));
}

// ---------------------------------------------------------------------------
// Datanode
// ---------------------------------------------------------------------------

void MiniHdfsNode::HandleWriteBlock(const Message& msg) {
  EnterFunction("writeBlock");
  const std::string block = msg.StrField("block");
  if (unrecoverable_blocks_.count(block) != 0) {
    return;  // HDFS-12070: the block can never be finalized; stay silent.
  }
  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.truncate = true;
  const SyscallResult opened = Open(BlockPath(block), flags);
  if (!opened.ok()) {
    return;
  }
  const auto fd = static_cast<int32_t>(opened.value);
  WriteFd(fd, msg.StrField("data"));
  Close(fd);
  FinalizeBlock(block, msg.from, msg.StrField("op"));
}

void MiniHdfsNode::FinalizeBlock(const std::string& block, NodeId client,
                                 const std::string& op) {
  EnterFunction("finalizeBlock");
  AtOffset("finalizeBlock", 0x08);
  // Finalization stats the block file to validate its on-disk length.
  FileStat stat;
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  const SyscallResult opened = Open(BlockPath(block), flags);
  if (!opened.ok()) {
    return;
  }
  const auto fd = static_cast<int32_t>(opened.value);
  const SyscallResult stat_result = FstatFd(fd, &stat);
  Close(fd);
  if (!stat_result.ok()) {
    if (options_.bug12070) {
      // HDFS-12070: the recovery path gives up and marks the replica
      // unrecoverable; nobody tells the namenode or the client.
      unrecoverable_blocks_.insert(block);
      Log(StrFormat("block %s finalization failed; replica abandoned", block.c_str()));
      return;
    }
    // Correct behavior: tell the client to rewrite the block.
    Message retry("BlockRetry", id(), client);
    retry.SetStr("block", block);
    retry.SetStr("op", op);
    Send(client, std::move(retry));
    return;
  }
  Message reply("BlockOk", id(), client);
  reply.SetStr("block", block);
  reply.SetStr("op", op);
  Send(client, std::move(reply));
}

void MiniHdfsNode::HandleReadBlock(const Message& msg) {
  EnterFunction("readBlock");
  const std::string block = msg.StrField("block");
  if (poisoned_tokens_.count(block) != 0) {
    // HDFS-16332: the cached token is expired and never refreshed.
    read_retries_[block]++;
    if (read_retries_[block] >= 10 && !slow_read_logged_) {
      slow_read_logged_ = true;
      Log(StrFormat("ERROR: slow read on %s: expired block token never refreshed",
                    block.c_str()));
    }
    Message retry("ReadRetry", id(), msg.from);
    retry.SetStr("block", block);
    Send(msg.from, std::move(retry));
    return;
  }
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  const SyscallResult opened = Open(BlockPath(block), flags);
  if (!opened.ok()) {
    Message retry("ReadRetry", id(), msg.from);
    retry.SetStr("block", block);
    Send(msg.from, std::move(retry));
    return;
  }
  const auto fd = static_cast<int32_t>(opened.value);
  std::string data;
  const SyscallResult got = ReadFd(fd, 4096, &data);
  Close(fd);
  if (!got.ok()) {
    if (options_.bug16332 && got.err == Err::kEACCES) {
      poisoned_tokens_.insert(block);
    } else {
      // Correct behavior: refresh the token; the next read succeeds.
      Log(StrFormat("refreshing block token for %s", block.c_str()));
    }
    Message retry("ReadRetry", id(), msg.from);
    retry.SetStr("block", block);
    Send(msg.from, std::move(retry));
    return;
  }
  Message reply("ReadOk", id(), msg.from);
  reply.SetStr("block", block);
  Send(msg.from, std::move(reply));
}

void MiniHdfsNode::HandleRecoverBlock(const Message& msg) {
  EnterFunction("recoverBlock");
  unrecoverable_blocks_.erase(msg.StrField("block"));
}

// ---------------------------------------------------------------------------
// Balancer
// ---------------------------------------------------------------------------

void MiniHdfsNode::BalancerIteration() {
  EnterFunction("balancerIteration");
  const std::string nn_ip = cluster().IpOf(kHdfsNameNode);
  for (int i = 0; i < options_.balancer_report_connects; i++) {
    const SyscallResult conn = ConnectTo(nn_ip);
    if (!conn.ok()) {
      // Report connects are guarded: log and continue.
      Log("datanode report fetch failed; will retry");
      continue;
    }
    Close(static_cast<int32_t>(conn.value));
  }
  EnterFunction("getBlocks");
  AtOffset("getBlocks", 0x08);
  const SyscallResult conn = ConnectTo(nn_ip);
  if (!conn.ok()) {
    if (options_.bug15032) {
      // HDFS-15032: this call path has no try/catch.
      Panic("Balancer crashed: failed to contact unavailable namenode (getBlocks)");
    }
    Log("getBlocks failed; skipping iteration");
    return;
  }
  Close(static_cast<int32_t>(conn.value));
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

void MiniHdfsNode::OnTimer(const std::string& name) {
  if (name == "roll") {
    RollEditLog();
    SetTimer("roll", options_.edit_roll_interval);
  } else if (name == "leases") {
    LeaseMonitor();
    SetTimer("leases", Seconds(2));
  } else if (name == "balance") {
    BalancerIteration();
    SetTimer("balance", options_.balancer_interval);
  } else if (name == "maint") {
    StatPath("/data/hdfs-site.override");
    ReadlinkPath("/data/current");
    SetTimer("maint", Seconds(1));
  }
}

void MiniHdfsNode::OnMessage(const Message& msg) {
  if (msg.type == "CreateFile") {
    HandleCreateFile(msg);
  } else if (msg.type == "CompleteFile") {
    HandleCompleteFile(msg);
  } else if (msg.type == "WriteBlock") {
    HandleWriteBlock(msg);
  } else if (msg.type == "ReadBlock") {
    HandleReadBlock(msg);
  } else if (msg.type == "RecoverBlock") {
    HandleRecoverBlock(msg);
  }
}

}  // namespace rose
