// MiniHdfs — a miniature HDFS: a namenode (metadata, leases, edit log), two
// datanodes (block storage), and a balancer daemon, driven by file-writing
// clients.
//
// Four HDFS EFIBs from the paper (source "A") are seeded behind options:
//
//   bug4233  (HDFS-4233)  — the periodic edit-log roll fails at openat; the
//           namenode keeps serving with zero active journals.
//   bug12070 (HDFS-12070) — a failed fstat during block finalization marks
//           the block unrecoverable; the file's lease is never released and
//           the file remains open indefinitely.
//   bug15032 (HDFS-15032) — one specific connect() in the balancer loop
//           (getBlocks) has no error handling; the balancer crashes when the
//           namenode is unreachable at exactly that call.
//   bug16332 (HDFS-16332) — a read failing with EACCES (expired block
//           token) permanently poisons the token cache; the client retries
//           forever (slow read) because the token is never refreshed.
#ifndef SRC_APPS_MINIHDFS_MINIHDFS_H_
#define SRC_APPS_MINIHDFS_MINIHDFS_H_

#include <map>
#include <set>
#include <string>

#include "src/apps/framework/guest_node.h"
#include "src/profile/binary_info.h"

namespace rose {

struct MiniHdfsOptions {
  bool bug4233 = false;
  bool bug12070 = false;
  bool bug15032 = false;
  bool bug16332 = false;

  SimTime edit_roll_interval = Seconds(5);
  SimTime lease_limit = Seconds(8);
  SimTime balancer_interval = Seconds(3);
  int balancer_report_connects = 8;  // Tolerated connects before getBlocks.
};

// Topology: node 0 = namenode, nodes 1..2 = datanodes, node 3 = balancer.
inline constexpr NodeId kHdfsNameNode = 0;
inline constexpr NodeId kHdfsDataNode1 = 1;
inline constexpr NodeId kHdfsDataNode2 = 2;
inline constexpr NodeId kHdfsBalancer = 3;
inline constexpr int kHdfsServerCount = 4;

BinaryInfo BuildMiniHdfsBinary();

class MiniHdfsNode : public GuestNode {
 public:
  MiniHdfsNode(Cluster* cluster, NodeId id, MiniHdfsOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

 private:
  bool IsNameNode() const { return id() == kHdfsNameNode; }
  bool IsBalancer() const { return id() == kHdfsBalancer; }

  // Namenode.
  void RollEditLog();
  void LeaseMonitor();
  void HandleCreateFile(const Message& msg);
  void HandleCompleteFile(const Message& msg);

  // Datanode.
  void HandleWriteBlock(const Message& msg);
  void FinalizeBlock(const std::string& block, NodeId client, const std::string& op);
  void HandleReadBlock(const Message& msg);
  void HandleRecoverBlock(const Message& msg);

  // Balancer.
  void BalancerIteration();

  MiniHdfsOptions options_;

  // Namenode state.
  struct Lease {
    SimTime created = 0;
    NodeId client = kNoNode;
    std::string block;
    bool reported = false;
  };
  std::map<std::string, Lease> leases_;  // file -> lease
  bool journals_active_ = true;
  int next_block_ = 1;

  // Datanode state.
  std::set<std::string> unrecoverable_blocks_;
  std::set<std::string> poisoned_tokens_;
  std::map<std::string, int> read_retries_;
  bool slow_read_logged_ = false;
};

}  // namespace rose

#endif  // SRC_APPS_MINIHDFS_MINIHDFS_H_
