#include "src/apps/miniredpanda/miniredpanda.h"

#include "src/common/strings.h"

namespace rose {

namespace {
constexpr char kLogPath[] = "/data/segment.log";
}  // namespace

BinaryInfo BuildMiniRedpandaBinary() {
  BinaryInfo binary;
  binary.RegisterFunction("takeLeadership", "leadership.c", {{0x10, OffsetKind::kCallSite}});
  binary.RegisterFunction("rebuildDedupSessions", "leadership.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kRead}});
  binary.RegisterFunction("appendBatch", "log.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x10, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  binary.RegisterFunction("flushAcks", "log.c", {{0x08, OffsetKind::kOther}});
  binary.RegisterFunction("replicateEntry", "log.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  return binary;
}

MiniRedpandaNode::MiniRedpandaNode(Cluster* cluster, NodeId id, MiniRedpandaOptions options)
    : GuestNode(cluster, id, StrFormat("redpanda-%d", id)), options_(options) {}

void MiniRedpandaNode::OnStart() {
  Log("redpanda broker booting");
  StatPath("/data/redpanda.yaml.lock");  // Benign probe.
  last_lease_seen_ = now();
  SetTimer("lease", options_.lease_interval);
  SetTimer("acks", options_.ack_batch_interval);
  SetTimer("repl", options_.replication_interval);
  SetTimer("maint", Seconds(1));
}

void MiniRedpandaNode::MaybeTakeLeadership() {
  if (leader_ == id()) {
    Message lease("Lease", id(), kNoNode);
    Broadcast(lease, options_.cluster_size);
    return;
  }
  // Lease expired: brokers take over in id order (staggered), so the lowest
  // responsive broker wins.
  const SimTime stale = now() - last_lease_seen_;
  if (stale >= options_.lease_timeout + Millis(200) * id()) {
    BecomeLeader();
    Message lease("Lease", id(), kNoNode);
    Broadcast(lease, options_.cluster_size);
  }
}

void MiniRedpandaNode::BecomeLeader() {
  EnterFunction("takeLeadership");
  leader_ = id();
  Log("took partition leadership");
  if (!options_.bug_dedup) {
    // Correct behavior: rebuild the idempotence sessions from the log so
    // retried batches are recognized.
    RebuildDedupSessions();
  }
  // Redpanda-3003: sessions_ keeps whatever this broker had in memory
  // (usually nothing), so producer retries are not recognized as duplicates.
}

void MiniRedpandaNode::RebuildDedupSessions() {
  EnterFunction("rebuildDedupSessions");
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  const SyscallResult opened = Open(kLogPath, flags);
  if (opened.ok()) {
    std::string chunk;
    ReadFd(static_cast<int32_t>(opened.value), 4096, &chunk);
    Close(static_cast<int32_t>(opened.value));
  }
  sessions_.clear();
  for (const auto& [offset, entry] : log_) {
    int64_t& last = sessions_[entry.producer];
    last = std::max(last, entry.seq);
  }
}

void MiniRedpandaNode::AppendBatch(const Message& msg) {
  EnterFunction("appendBatch");
  const std::string producer = msg.StrField("producer");
  const int64_t seq = msg.IntField("seq");
  auto session = sessions_.find(producer);
  if (session != sessions_.end() && seq <= session->second) {
    // Duplicate batch: ack without appending.
    pending_acks_.push_back({msg.from, msg.StrField("op")});
    return;
  }
  BrokerLogEntry entry;
  entry.producer = producer;
  entry.seq = seq;
  entry.op_id = msg.StrField("op");

  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.append = true;
  AtOffset("appendBatch", 0x08);
  const SyscallResult opened = Open(kLogPath, flags);
  if (opened.ok()) {
    AtOffset("appendBatch", 0x10);
    WriteFd(static_cast<int32_t>(opened.value),
            StrFormat("%s|%lld|%s\n", producer.c_str(), static_cast<long long>(seq),
                      entry.op_id.c_str()));
    Close(static_cast<int32_t>(opened.value));
  }
  const int64_t offset = next_offset_++;
  log_[offset] = entry;
  sessions_[producer] = seq;
  // Replication and acks are batched (linger) and flushed by timers; a
  // leader that stops between append and flush leaves this entry local-only.
  unreplicated_.push_back(offset);
  pending_acks_.push_back({msg.from, entry.op_id});
}

void MiniRedpandaNode::FlushReplication() {
  if (unreplicated_.empty()) {
    return;
  }
  EnterFunction("replicateEntry");
  for (int64_t offset : unreplicated_) {
    auto it = log_.find(offset);
    if (it == log_.end()) {
      continue;
    }
    Message rep("RpReplicate", id(), kNoNode);
    rep.SetStr("producer", it->second.producer);
    rep.SetInt("seq", it->second.seq);
    rep.SetStr("op", it->second.op_id);
    rep.SetInt("off", offset);
    Broadcast(rep, options_.cluster_size);
  }
  unreplicated_.clear();
}

void MiniRedpandaNode::FlushAcks() {
  if (pending_acks_.empty()) {
    return;
  }
  EnterFunction("flushAcks");
  for (const auto& [client, op] : pending_acks_) {
    Message reply("ClientPutOk", id(), client);
    reply.SetStr("op", op);
    Send(client, std::move(reply));
  }
  pending_acks_.clear();
}

void MiniRedpandaNode::OnTimer(const std::string& name) {
  if (name == "lease") {
    MaybeTakeLeadership();
    SetTimer("lease", options_.lease_interval);
  } else if (name == "acks") {
    if (leader_ == id()) {
      FlushAcks();
    }
    SetTimer("acks", options_.ack_batch_interval);
  } else if (name == "repl") {
    if (leader_ == id()) {
      FlushReplication();
    }
    SetTimer("repl", options_.replication_interval);
  } else if (name == "maint") {
    StatPath("/data/redpanda.yaml.lock");
    ReadlinkPath("/data/wasm");
    SetTimer("maint", Seconds(1));
  }
}

void MiniRedpandaNode::OnMessage(const Message& msg) {
  if (msg.type == "Lease") {
    if (msg.from <= id() || leader_ == kNoNode) {
      leader_ = msg.from;
      last_lease_seen_ = now();
    }
  } else if (msg.type == "Produce") {
    if (leader_ != id()) {
      Message reply("ClientRedirect", id(), msg.from);
      reply.SetStr("op", msg.StrField("op"));
      reply.SetInt("leader", leader_);
      Send(msg.from, std::move(reply));
      return;
    }
    AppendBatch(msg);
  } else if (msg.type == "RpReplicate") {
    const int64_t offset = msg.IntField("off");
    if (log_.count(offset) != 0) {
      // A conflicting entry already sits at this offset. Nobody reconciles
      // logs after leadership changes — first write wins, divergence stays.
      return;
    }
    BrokerLogEntry entry;
    entry.producer = msg.StrField("producer");
    entry.seq = msg.IntField("seq");
    entry.op_id = msg.StrField("op");
    SimKernel::OpenFlags flags;
    flags.create = true;
    flags.append = true;
    const SyscallResult opened = Open(kLogPath, flags);
    if (opened.ok()) {
      WriteFd(static_cast<int32_t>(opened.value),
              StrFormat("%s|%lld|%s\n", entry.producer.c_str(),
                        static_cast<long long>(entry.seq), entry.op_id.c_str()));
      Close(static_cast<int32_t>(opened.value));
    }
    log_[offset] = entry;
    next_offset_ = std::max(next_offset_, offset + 1);
  }
}

}  // namespace rose
