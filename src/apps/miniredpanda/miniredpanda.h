// MiniRedpanda — a miniature Redpanda/Kafka-compatible log broker: lease-based
// leadership, a replicated append-only log with batched acknowledgements, and
// idempotent-producer deduplication.
//
// One seeded defect produces both Table-1 Redpanda rows:
//   bug_dedup (Redpanda-3003 / Redpanda-3039) — the leader's producer
//   dedup sessions live only in memory and are NOT rehydrated from the log
//   on leadership change. A leader paused mid-batch loses its ack window;
//   the producer retries against the new leader, which appends the batch
//   again: duplicates in the log (3003) and divergent offsets between
//   brokers (3039, because nobody reconciles logs after leadership moves).
#ifndef SRC_APPS_MINIREDPANDA_MINIREDPANDA_H_
#define SRC_APPS_MINIREDPANDA_MINIREDPANDA_H_

#include <map>
#include <string>
#include <vector>

#include "src/apps/framework/guest_node.h"
#include "src/profile/binary_info.h"

namespace rose {

struct MiniRedpandaOptions {
  int cluster_size = 3;
  bool bug_dedup = false;
  SimTime lease_interval = Millis(400);
  SimTime lease_timeout = Millis(1500);
  SimTime ack_batch_interval = Millis(200);
  SimTime replication_interval = Millis(150);
};

BinaryInfo BuildMiniRedpandaBinary();

struct BrokerLogEntry {
  std::string producer;
  int64_t seq = 0;
  std::string op_id;
};

class MiniRedpandaNode : public GuestNode {
 public:
  MiniRedpandaNode(Cluster* cluster, NodeId id, MiniRedpandaOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

  bool is_leader() const { return leader_ == id(); }
  NodeId leader() const { return leader_; }
  // Offset -> entry; replication places entries at the leader's offsets so
  // per-broker logs are positionally comparable.
  const std::map<int64_t, BrokerLogEntry>& log() const { return log_; }

 private:
  void MaybeTakeLeadership();
  void BecomeLeader();
  void RebuildDedupSessions();
  void AppendBatch(const Message& msg);
  void FlushAcks();
  void FlushReplication();

  MiniRedpandaOptions options_;
  NodeId leader_ = kNoNode;
  SimTime last_lease_seen_ = 0;
  std::map<int64_t, BrokerLogEntry> log_;
  int64_t next_offset_ = 0;
  // Offsets appended locally but not yet shipped to followers.
  std::vector<int64_t> unreplicated_;
  // producer -> highest appended sequence (the idempotence session).
  std::map<std::string, int64_t> sessions_;
  // Acks held until the batch flush: (client, op_id).
  std::vector<std::pair<NodeId, std::string>> pending_acks_;
};

}  // namespace rose

#endif  // SRC_APPS_MINIREDPANDA_MINIREDPANDA_H_
