#include "src/apps/miniredpanda/producer_client.h"

#include "src/common/strings.h"

namespace rose {

ProducerClient::ProducerClient(Cluster* cluster, NodeId id, ProducerOptions options)
    : GuestNode(cluster, id, StrFormat("producer-%d", id)), options_(options),
      producer_id_(StrFormat("p%d", id)) {}

void ProducerClient::OnStart() {
  target_ = 0;
  SetTimer("tick", options_.produce_interval);
}

void ProducerClient::SendCurrent() {
  Message msg("Produce", id(), target_);
  msg.SetStr("producer", producer_id_);
  msg.SetInt("seq", seq_);
  msg.SetStr("op", StrFormat("%s-%lld", producer_id_.c_str(), static_cast<long long>(seq_)));
  sent_at_ = now();
  Send(target_, std::move(msg));
}

void ProducerClient::OnTimer(const std::string& name) {
  if (name != "tick") {
    return;
  }
  if (!in_flight_) {
    seq_++;
    in_flight_ = true;
    SendCurrent();
  } else if (now() - sent_at_ >= options_.retry_timeout) {
    // At-least-once: retry the SAME sequence against the next broker.
    target_ = static_cast<NodeId>((target_ + 1) % options_.broker_count);
    SendCurrent();
  }
  SetTimer("tick", options_.produce_interval);
}

void ProducerClient::OnMessage(const Message& msg) {
  const std::string current_op =
      StrFormat("%s-%lld", producer_id_.c_str(), static_cast<long long>(seq_));
  if (msg.type == "ClientPutOk") {
    if (in_flight_ && msg.StrField("op") == current_op) {
      acked_.push_back(current_op);
      in_flight_ = false;
    }
  } else if (msg.type == "ClientRedirect") {
    const auto leader = static_cast<NodeId>(msg.IntField("leader", kNoNode));
    if (leader >= 0 && leader < options_.broker_count) {
      target_ = leader;
      if (in_flight_ && msg.StrField("op") == current_op) {
        SendCurrent();
      }
    } else {
      // No leader known: rotate, but let the tick-based retry pace resends.
      target_ = static_cast<NodeId>((target_ + 1) % options_.broker_count);
      if (in_flight_) {
        sent_at_ = now() - options_.retry_timeout + Millis(300);
      }
    }
  }
}

}  // namespace rose
