// Idempotent producer workload for MiniRedpanda: monotonically increasing
// sequence numbers, at-least-once retries of unacknowledged batches (same
// sequence, possibly against a different broker) — the client half of the
// idempotence contract the bug_dedup defect breaks.
#ifndef SRC_APPS_MINIREDPANDA_PRODUCER_CLIENT_H_
#define SRC_APPS_MINIREDPANDA_PRODUCER_CLIENT_H_

#include <string>
#include <vector>

#include "src/apps/framework/guest_node.h"

namespace rose {

struct ProducerOptions {
  int broker_count = 3;
  SimTime produce_interval = Millis(100);
  SimTime retry_timeout = Millis(1500);
};

class ProducerClient : public GuestNode {
 public:
  ProducerClient(Cluster* cluster, NodeId id, ProducerOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

  // Acknowledged operation ids, in ack order (the Elle-lite input).
  const std::vector<std::string>& acked_ops() const { return acked_; }
  const std::string& producer_id() const { return producer_id_; }

 private:
  void SendCurrent();

  ProducerOptions options_;
  std::string producer_id_;
  int64_t seq_ = 0;
  bool in_flight_ = false;
  SimTime sent_at_ = 0;
  NodeId target_ = 0;
  std::vector<std::string> acked_;
};

}  // namespace rose

#endif  // SRC_APPS_MINIREDPANDA_PRODUCER_CLIENT_H_
