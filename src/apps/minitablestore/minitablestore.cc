#include "src/apps/minitablestore/minitablestore.h"

#include "src/common/strings.h"

namespace rose {

namespace {
constexpr char kProcWalPath[] = "/data/procs.wal";
}  // namespace

BinaryInfo BuildMiniTableStoreBinary() {
  BinaryInfo binary;
  binary.RegisterFunction("submitProcedure", "master.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x10, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  binary.RegisterFunction("getProcedureResult", "master.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpenAt},
                           {0x14, OffsetKind::kSyscallCallSite, Sys::kRead}});
  binary.RegisterFunction("finishProcedure", "master.c", {{0x08, OffsetKind::kOther}});
  return binary;
}

MiniTableStoreNode::MiniTableStoreNode(Cluster* cluster, NodeId id,
                                       MiniTableStoreOptions options)
    : GuestNode(cluster, id, StrFormat("tablestore-%d", id)), options_(options) {}

void MiniTableStoreNode::OnStart() {
  Log("tablestore node booting");
  StatPath("/data/hbase-site.override");  // Benign probe.
  if (id() == kTableClient) {
    SetTimer("submit", Seconds(2));
  }
  SetTimer("maint", Seconds(1));
}

void MiniTableStoreNode::SubmitProcedure(const std::string& proc, NodeId client) {
  EnterFunction("submitProcedure");
  // HBASE-19608: no check whether the procedure is already running — the
  // race window the original issue describes. (The correct master rejects
  // duplicate submissions.)
  if (!options_.bug19608 && (running_.count(proc) != 0 || done_.count(proc) != 0)) {
    Message reply("ProcSubmitted", id(), client);
    reply.SetStr("proc", proc);
    Send(client, std::move(reply));
    return;
  }
  running_.insert(proc);
  executions_[proc]++;
  if (executions_[proc] > 1) {
    Log(StrFormat("ERROR: duplicate procedure execution detected for %s "
                  "(race in MasterRpcServices.getProcedureResult)", proc.c_str()));
  }
  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.append = true;
  const SyscallResult opened = Open(kProcWalPath, flags);
  if (opened.ok()) {
    WriteFd(static_cast<int32_t>(opened.value), "SUBMIT " + proc + "\n");
    Close(static_cast<int32_t>(opened.value));
  }
  SetTimer("exec:" + proc, options_.procedure_latency);
  Message reply("ProcSubmitted", id(), client);
  reply.SetStr("proc", proc);
  Send(client, std::move(reply));
}

void MiniTableStoreNode::GetProcedureResult(const std::string& proc, NodeId client) {
  EnterFunction("getProcedureResult");
  Message reply("ProcResult", id(), client);
  reply.SetStr("proc", proc);
  AtOffset("getProcedureResult", 0x08);
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  const SyscallResult opened = OpenAt(kProcWalPath, flags);
  if (!opened.ok()) {
    if (options_.bug19608) {
      // HBASE-19608: the I/O error is indistinguishable from "no such
      // procedure" in the reply.
      reply.SetStr("status", "NOT_FOUND");
      Send(client, std::move(reply));
      return;
    }
    reply.SetStr("status", "RETRY");
    Send(client, std::move(reply));
    return;
  }
  std::string contents;
  AtOffset("getProcedureResult", 0x14);
  ReadFd(static_cast<int32_t>(opened.value), 4096, &contents);
  Close(static_cast<int32_t>(opened.value));
  if (done_.count(proc) != 0) {
    reply.SetStr("status", "DONE");
  } else if (running_.count(proc) != 0) {
    reply.SetStr("status", "RUNNING");
  } else {
    reply.SetStr("status", "NOT_FOUND");
  }
  Send(client, std::move(reply));
}

void MiniTableStoreNode::OnTimer(const std::string& name) {
  if (StartsWith(name, "exec:")) {
    const std::string proc = name.substr(5);
    EnterFunction("finishProcedure");
    running_.erase(proc);
    done_.insert(proc);
    return;
  }
  if (name == "submit" && id() == kTableClient) {
    if (!waiting_) {
      current_proc_ = StrFormat("create-table-%llu",
                                static_cast<unsigned long long>(proc_counter_++));
      waiting_ = true;
      Message msg("SubmitProc", id(), kTableMaster);
      msg.SetStr("proc", current_proc_);
      Send(kTableMaster, std::move(msg));
    }
    SetTimer("submit", Seconds(2));
    return;
  }
  if (name == "poll" && id() == kTableClient) {
    if (waiting_) {
      Message msg("GetProcResult", id(), kTableMaster);
      msg.SetStr("proc", current_proc_);
      Send(kTableMaster, std::move(msg));
    }
    return;
  }
  if (name == "maint") {
    StatPath("/data/hbase-site.override");
    ReadlinkPath("/data/WALs");
    SetTimer("maint", Seconds(1));
    return;
  }
}

void MiniTableStoreNode::OnMessage(const Message& msg) {
  if (id() == kTableMaster) {
    if (msg.type == "SubmitProc") {
      SubmitProcedure(msg.StrField("proc"), msg.from);
    } else if (msg.type == "GetProcResult") {
      GetProcedureResult(msg.StrField("proc"), msg.from);
    }
    return;
  }
  if (id() == kTableClient) {
    if (msg.type == "ProcSubmitted") {
      SetTimer("poll", Millis(300));
    } else if (msg.type == "ProcResult") {
      const std::string status = msg.StrField("status");
      if (status == "DONE") {
        waiting_ = false;
      } else if (status == "NOT_FOUND") {
        // The master says it has never heard of our procedure: resubmit.
        Message resubmit("SubmitProc", id(), kTableMaster);
        resubmit.SetStr("proc", msg.StrField("proc"));
        Send(kTableMaster, std::move(resubmit));
      } else {
        SetTimer("poll", Millis(300));
      }
    }
  }
}

}  // namespace rose
