// MiniTableStore — a miniature HBase master with a procedure store: clients
// submit DDL procedures, the master executes them asynchronously and records
// them in a write-ahead log, and clients poll getProcedureResult.
//
//   bug19608 (HBASE-19608) — getProcedureResult treats an I/O error while
//   consulting the procedure WAL as "procedure not found". The client
//   resubmits, the master runs the procedure a second time concurrently:
//   the classic MasterRpcServices.getProcedureResult race.
#ifndef SRC_APPS_MINITABLESTORE_MINITABLESTORE_H_
#define SRC_APPS_MINITABLESTORE_MINITABLESTORE_H_

#include <map>
#include <set>
#include <string>

#include "src/apps/framework/guest_node.h"
#include "src/profile/binary_info.h"

namespace rose {

struct MiniTableStoreOptions {
  bool bug19608 = false;
  SimTime procedure_latency = Millis(800);
};

// Node 0 = master, node 1 = regionserver, node 2 = DDL client.
inline constexpr NodeId kTableMaster = 0;
inline constexpr NodeId kTableRegionServer = 1;
inline constexpr NodeId kTableClient = 2;

BinaryInfo BuildMiniTableStoreBinary();

class MiniTableStoreNode : public GuestNode {
 public:
  MiniTableStoreNode(Cluster* cluster, NodeId id, MiniTableStoreOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

 private:
  void SubmitProcedure(const std::string& proc, NodeId client);
  void GetProcedureResult(const std::string& proc, NodeId client);

  MiniTableStoreOptions options_;
  std::set<std::string> running_;
  std::set<std::string> done_;
  std::map<std::string, int> executions_;
  // Client side.
  uint64_t proc_counter_ = 0;
  std::string current_proc_;
  bool waiting_ = false;
};

}  // namespace rose

#endif  // SRC_APPS_MINITABLESTORE_MINITABLESTORE_H_
