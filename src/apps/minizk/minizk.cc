#include "src/apps/minizk/minizk.h"

#include "src/common/strings.h"

namespace rose {

namespace {

constexpr char kTxnLogPath[] = "/data/txnlog";
constexpr char kSnapshotPath[] = "/data/snapshot.0";
constexpr char kSnapshotTmpPath[] = "/data/snapshot.tmp";

}  // namespace

BinaryInfo BuildMiniZkBinary() {
  BinaryInfo binary;
  // quorum.c — leader election.
  binary.RegisterFunction("startElection", "quorum.c", {{0x10, OffsetKind::kCallSite}});
  binary.RegisterFunction("handleElectMe", "quorum.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kAccept}});
  binary.RegisterFunction("receiveVote", "quorum.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kAccept},
                           {0x1c, OffsetKind::kOther}});
  binary.RegisterFunction("becomeLeader", "quorum.c", {{0x10, OffsetKind::kCallSite}});
  // txnlog.c — transaction log.
  binary.RegisterFunction("writeTxnHeader", "txnlog.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  binary.RegisterFunction("writeTxnLog", "txnlog.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x10, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  // snapshot.c — snapshots.
  binary.RegisterFunction("takeSnapshot", "snapshot.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x10, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  binary.RegisterFunction("snapshotSizeCheck", "snapshot.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x10, OffsetKind::kSyscallCallSite, Sys::kRead}});
  // session.c — client sessions.
  binary.RegisterFunction("handleClientRequest", "session.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kRead}});
  binary.RegisterFunction("openSession", "session.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kAccept}});
  return binary;
}

MiniZkNode::MiniZkNode(Cluster* cluster, NodeId id, MiniZkOptions options)
    : GuestNode(cluster, id, StrFormat("minizk-%d", id)), options_(options) {}

void MiniZkNode::OnStart() {
  Log("minizk booting");
  StatPath("/data/zoo.cfg.dynamic");  // Benign probe.
  ReadlinkPath("/data/version-2");
  last_leader_seen_ = now();
  ResetElectTimer();
  SetTimer("sizecheck", Seconds(4));
  SetTimer("watchdog", Seconds(2));
  SetTimer("maint", Seconds(1));
}

// ---------------------------------------------------------------------------
// Election
// ---------------------------------------------------------------------------

void MiniZkNode::ResetElectTimer() {
  SetTimer("elect", options_.election_timeout_base +
                        options_.election_timeout_stagger * id() +
                        static_cast<SimTime>(rng().NextBelow(
                            static_cast<uint64_t>(Millis(50)))));
}

void MiniZkNode::StartElection() {
  EnterFunction("startElection");
  campaigning_ = true;
  round_++;
  votes_.clear();
  votes_.insert(id());
  voted_round_ = round_;
  Message msg("ElectMe", id(), kNoNode);
  msg.SetInt("round", round_);
  Broadcast(msg, options_.cluster_size);
  ResetElectTimer();
}

void MiniZkNode::HandleElectMe(const Message& msg) {
  EnterFunction("handleElectMe");
  const int64_t round = msg.IntField("round");
  // Defer to lower-id candidates: reset our own timer.
  if (msg.from < id()) {
    ResetElectTimer();
  }
  if (round > round_) {
    round_ = round;
    campaigning_ = false;
  }
  if (round >= voted_round_ || voted_round_ < 0) {
    // Establish the election connection back to the candidate.
    const SyscallResult accepted = AcceptFrom(cluster().IpOf(msg.from));
    if (!accepted.ok()) {
      Log("vote connection failed; skipping this round");
      return;
    }
    voted_round_ = round;
    Message vote("Vote", id(), msg.from);
    vote.SetInt("round", round);
    Send(msg.from, std::move(vote));
    if (accepted.ok()) {
      Close(static_cast<int32_t>(accepted.value));
    }
  }
}

void MiniZkNode::HandleVote(const Message& msg) {
  EnterFunction("receiveVote");
  if (listener_dead_) {
    return;  // ZOOKEEPER-4203: the listener thread is gone; votes vanish.
  }
  // Accept the voter's connection on the election listener.
  const SyscallResult accepted = AcceptFrom(cluster().IpOf(msg.from));
  if (!accepted.ok()) {
    if (options_.bug4203) {
      // ZOOKEEPER-4203: the accept error kills the listener thread, but the
      // candidate believes it is still campaigning.
      listener_dead_ = true;
      Log("ERROR: election listener aborted on connection error");
      return;
    }
    Log("vote accept failed; voter will retry");
    return;
  }
  Close(static_cast<int32_t>(accepted.value));
  if (!campaigning_ || msg.IntField("round") != round_) {
    return;
  }
  votes_.insert(msg.from);
  if (static_cast<int>(votes_.size()) * 2 > options_.cluster_size) {
    BecomeLeader();
  }
}

void MiniZkNode::BecomeLeader() {
  EnterFunction("becomeLeader");
  campaigning_ = false;
  leader_id_ = id();
  last_leader_seen_ = now();
  service_degraded_ = false;
  Log(StrFormat("became leader for round %lld", static_cast<long long>(round_)));
  WriteTxnHeader();
  Message msg("ZkLeader", id(), kNoNode);
  msg.SetInt("round", round_);
  Broadcast(msg, options_.cluster_size);
  CancelTimer("elect");
  SetTimer("hb", options_.heartbeat_interval);
  if (options_.resign_interval > 0) {
    SetTimer("resign", options_.resign_interval);
  }
}

// ---------------------------------------------------------------------------
// Transaction log and snapshots
// ---------------------------------------------------------------------------

bool MiniZkNode::WriteTxnHeader() {
  EnterFunction("writeTxnHeader");
  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.truncate = false;
  const SyscallResult opened = Open(kTxnLogPath, flags);
  if (!opened.ok()) {
    Log("txn log header open failed; will retry");
    return false;
  }
  const auto fd = static_cast<int32_t>(opened.value);
  const SyscallResult written = WriteFd(fd, StrFormat("HDR %lld\n",
                                                      static_cast<long long>(round_)));
  Close(fd);
  if (!written.ok()) {
    // Header failures are tolerated: the log is re-initialized lazily.
    Log("txn log header write failed; will retry");
    return false;
  }
  return true;
}

bool MiniZkNode::WriteTxnLog(const std::string& entry) {
  EnterFunction("writeTxnLog");
  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.append = true;
  const SyscallResult opened = Open(kTxnLogPath, flags);
  if (!opened.ok()) {
    Log("txn log open failed");
    return false;
  }
  const auto fd = static_cast<int32_t>(opened.value);
  const SyscallResult written = WriteFd(fd, entry + "\n");
  Close(fd);
  if (!written.ok()) {
    if (options_.bug2247) {
      // ZOOKEEPER-2247: the leader keeps serving with no working journal;
      // every write is silently dropped from now on.
      service_degraded_ = true;
      Log("ERROR: txn log write failed; service unavailable (leader did not step down)");
      return false;
    }
    // Correct behavior: give up leadership so a healthy node takes over.
    Panic("txn log write failed; shutting down to protect the quorum");
  }
  return true;
}

void MiniZkNode::TakeSnapshot() {
  EnterFunction("takeSnapshot");
  std::string data;
  for (const auto& [key, value] : kv_) {
    data += key + "=" + value + "\n";
  }
  WriteFileDurably(kSnapshotTmpPath, data);
  RenamePath(kSnapshotTmpPath, kSnapshotPath);
  txns_since_snapshot_ = 0;
}

void MiniZkNode::SnapshotSizeCheck() {
  EnterFunction("snapshotSizeCheck");
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  const SyscallResult opened = Open(kSnapshotPath, flags);
  if (!opened.ok()) {
    return;  // No snapshot yet.
  }
  const auto fd = static_cast<int32_t>(opened.value);
  std::string probe;
  const SyscallResult got = ReadFd(fd, 64, &probe);
  Close(fd);
  if (!got.ok()) {
    if (options_.bug3006) {
      // ZOOKEEPER-3006: the exception is caught... and the uninitialized
      // size is dereferenced right after.
      Log("snapshot size probe failed; continuing");
      Panic("NullPointerException while computing snapshot size");
    }
    Log("snapshot size probe failed; skipping this cycle");
    return;
  }
}

// ---------------------------------------------------------------------------
// Client handling
// ---------------------------------------------------------------------------

void MiniZkNode::HandleClientPut(const Message& msg) {
  EnterFunction("handleClientRequest");
  const NodeId client = msg.from;
  auto session = sessions_.find(client);
  if (session == sessions_.end()) {
    EnterFunction("openSession");
    const SyscallResult accepted = AcceptFrom(cluster().IpOf(client));
    if (!accepted.ok()) {
      return;
    }
    session = sessions_.emplace(client, static_cast<int32_t>(accepted.value)).first;
  }
  if (session->second < 0) {
    // Poisoned session (ZOOKEEPER-3157): never answered again.
    return;
  }
  // Drain the request bytes from the session socket.
  const SyscallResult got = ReadFd(session->second, msg.ByteSize());
  if (!got.ok()) {
    if (options_.bug3157) {
      session->second = -1;
      Log(StrFormat("ERROR: connection loss causes client failure: session of "
                    "client n%d corrupted permanently", client));
      return;
    }
    // Correct behavior: drop the session; the client reconnects.
    sessions_.erase(session);
    return;
  }

  if (leader_id_ != id()) {
    Message reply("ClientRedirect", id(), client);
    reply.SetStr("op", msg.StrField("op"));
    reply.SetInt("leader", leader_id_);
    Send(client, std::move(reply));
    return;
  }
  if (service_degraded_) {
    return;  // ZOOKEEPER-2247: silently unavailable.
  }
  const int64_t txn = next_txn_++;
  if (!WriteTxnLog(StrFormat("%lld|%s|%s", static_cast<long long>(txn),
                             msg.StrField("key").c_str(), msg.StrField("val").c_str()))) {
    return;
  }
  PendingTxn pending;
  pending.client = client;
  pending.op_id = msg.StrField("op");
  pending.key = msg.StrField("key");
  pending.value = msg.StrField("val");
  pending_[txn] = pending;
  Message rep("ZkReplicate", id(), kNoNode);
  rep.SetInt("txn", txn);
  rep.SetStr("key", pending.key);
  rep.SetStr("val", pending.value);
  Broadcast(rep, options_.cluster_size);
}

void MiniZkNode::HandleClientGet(const Message& msg) {
  EnterFunction("handleClientRequest");
  Message reply("ClientGetOk", id(), msg.from);
  reply.SetStr("op", msg.StrField("op"));
  auto it = kv_.find(msg.StrField("key"));
  reply.SetStr("val", it == kv_.end() ? "" : it->second);
  Send(msg.from, std::move(reply));
}

// ---------------------------------------------------------------------------
// Event plumbing
// ---------------------------------------------------------------------------

void MiniZkNode::OnTimer(const std::string& name) {
  if (name == "elect") {
    if (leader_id_ == kNoNode || now() - last_leader_seen_ > options_.election_timeout_base) {
      leader_id_ = kNoNode;
      StartElection();
    } else {
      ResetElectTimer();
    }
    return;
  }
  if (name == "hb") {
    if (leader_id_ == id()) {
      Message msg("ZkHeartbeat", id(), kNoNode);
      msg.SetInt("round", round_);
      Broadcast(msg, options_.cluster_size);
      SetTimer("hb", options_.heartbeat_interval);
    }
    return;
  }
  if (name == "resign") {
    if (leader_id_ == id()) {
      Log("resigning leadership for rolling maintenance");
      leader_id_ = kNoNode;
      ResetElectTimer();
    }
    return;
  }
  if (name == "sizecheck") {
    SnapshotSizeCheck();
    SetTimer("sizecheck", Seconds(4));
    return;
  }
  if (name == "watchdog") {
    if (now() - last_leader_seen_ > Seconds(12) && !stuck_logged_) {
      stuck_logged_ = true;
      Log("ERROR: leader election stuck forever; no leader for 12s");
    }
    SetTimer("watchdog", Seconds(2));
    return;
  }
  if (name == "maint") {
    StatPath("/data/zoo.cfg.dynamic");
    ReadlinkPath("/data/version-2");
    SetTimer("maint", Seconds(1));
    return;
  }
}

void MiniZkNode::OnMessage(const Message& msg) {
  if (msg.type == "ElectMe") {
    HandleElectMe(msg);
  } else if (msg.type == "Vote") {
    HandleVote(msg);
  } else if (msg.type == "ZkLeader") {
    leader_id_ = msg.from;
    last_leader_seen_ = now();
    round_ = msg.IntField("round");
    campaigning_ = false;
    ResetElectTimer();
  } else if (msg.type == "ZkHeartbeat") {
    if (msg.from == leader_id_) {
      last_leader_seen_ = now();
    } else if (leader_id_ == kNoNode) {
      leader_id_ = msg.from;
      last_leader_seen_ = now();
    }
    ResetElectTimer();
  } else if (msg.type == "ZkReplicate") {
    WriteTxnLog(StrFormat("%lld|%s|%s", static_cast<long long>(msg.IntField("txn")),
                          msg.StrField("key").c_str(), msg.StrField("val").c_str()));
    kv_[msg.StrField("key")] = msg.StrField("val");
    Message ack("ZkRepAck", id(), msg.from);
    ack.SetInt("txn", msg.IntField("txn"));
    Send(msg.from, std::move(ack));
  } else if (msg.type == "ZkRepAck") {
    auto it = pending_.find(msg.IntField("txn"));
    if (it == pending_.end()) {
      return;
    }
    it->second.acks++;
    if (it->second.acks * 2 > options_.cluster_size) {
      kv_[it->second.key] = it->second.value;
      txns_since_snapshot_++;
      if (it->second.client != kNoNode) {
        Message reply("ClientPutOk", id(), it->second.client);
        reply.SetStr("op", it->second.op_id);
        Send(it->second.client, std::move(reply));
      }
      pending_.erase(it);
      if (txns_since_snapshot_ >= options_.snapshot_every) {
        TakeSnapshot();
      }
    }
  } else if (msg.type == "ClientPut") {
    HandleClientPut(msg);
  } else if (msg.type == "ClientGet") {
    HandleClientGet(msg);
  }
}

}  // namespace rose
