// MiniZk — a miniature ZooKeeper: leader election, a replicated transaction
// log, periodic snapshots, and client sessions.
//
// Four ZooKeeper EFIBs from the paper (source "A", Anduril study) are seeded
// behind option flags:
//
//   bug2247 (ZOOKEEPER-2247) — a failed write to the transaction log leaves
//          the leader serving (read-only, silently dropping writes) instead
//          of stepping down: service becomes unavailable.
//          Trigger: SCF(write) on the txn log (an append, not the header).
//   bug3006 (ZOOKEEPER-3006) — the periodic snapshot-size check catches the
//          read error but uses the uninitialized size anyway: the NPE
//          analogue crashes the node.
//          Trigger: SCF(read) on snapshot.0 (the first read — the size probe).
//   bug3157 (ZOOKEEPER-3157) — a failed read on a client session socket
//          permanently poisons the session; the client can never reconnect.
//          Trigger: SCF(read) on the client connection.
//   bug4203 (ZOOKEEPER-4203) — an accept() failure on the candidate's vote
//          listener kills the listener thread silently; the candidate keeps
//          campaigning but can never receive votes: election stuck forever.
//          Trigger: SCF(accept) during leader election.
#ifndef SRC_APPS_MINIZK_MINIZK_H_
#define SRC_APPS_MINIZK_MINIZK_H_

#include <map>
#include <set>
#include <string>

#include "src/apps/framework/guest_node.h"
#include "src/profile/binary_info.h"

namespace rose {

struct MiniZkOptions {
  int cluster_size = 3;
  bool bug2247 = false;
  bool bug3006 = false;
  bool bug3157 = false;
  bool bug4203 = false;

  SimTime heartbeat_interval = Millis(100);
  SimTime election_timeout_base = Millis(600);
  SimTime election_timeout_stagger = Millis(150);
  int snapshot_every = 20;
  // Leader voluntarily resigns periodically (rolling-maintenance mode used
  // by the election-bug scenarios); 0 disables.
  SimTime resign_interval = 0;
};

BinaryInfo BuildMiniZkBinary();

class MiniZkNode : public GuestNode {
 public:
  MiniZkNode(Cluster* cluster, NodeId id, MiniZkOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

  bool is_leader() const { return leader_id_ == id(); }
  NodeId leader_id() const { return leader_id_; }

 private:
  // Election.
  void StartElection();
  void HandleElectMe(const Message& msg);
  void HandleVote(const Message& msg);
  void BecomeLeader();
  void ResetElectTimer();

  // Transaction log / snapshots.
  bool WriteTxnHeader();
  bool WriteTxnLog(const std::string& entry);
  void TakeSnapshot();
  void SnapshotSizeCheck();

  // Clients.
  void HandleClientPut(const Message& msg);
  void HandleClientGet(const Message& msg);

  MiniZkOptions options_;
  NodeId leader_id_ = kNoNode;
  SimTime last_leader_seen_ = 0;
  int64_t round_ = 0;
  int64_t voted_round_ = -1;
  std::set<NodeId> votes_;
  bool campaigning_ = false;
  bool listener_dead_ = false;   // bug4203 manifestation state.
  bool service_degraded_ = false;  // bug2247 manifestation state.
  bool stuck_logged_ = false;

  int64_t next_txn_ = 1;
  int txns_since_snapshot_ = 0;
  std::map<std::string, std::string> kv_;
  // txn id -> (acks, client, op, key, value)
  struct PendingTxn {
    int acks = 1;
    NodeId client = kNoNode;
    std::string op_id;
    std::string key;
    std::string value;
  };
  std::map<int64_t, PendingTxn> pending_;

  // Client sessions: client node -> session socket fd (-1 = poisoned).
  std::map<NodeId, int32_t> sessions_;
};

}  // namespace rose

#endif  // SRC_APPS_MINIZK_MINIZK_H_
