#include "src/apps/raftkv/raftkv.h"

#include <algorithm>

#include "src/common/strings.h"

namespace rose {

namespace {

constexpr char kStatePath[] = "/data/state";
constexpr char kLogPath[] = "/data/raft.log";
constexpr char kSnapshotPath[] = "/data/snapshot";
constexpr char kSnapshotTmpPath[] = "/data/snapshot.tmp";
constexpr char kLogTmpPath[] = "/data/raft.log.tmp";

}  // namespace

BinaryInfo BuildRaftKvBinary() {
  BinaryInfo binary;
  // raft.c — consensus core and log management.
  binary.RegisterFunction("RaftLogOpen", "raft.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x20, OffsetKind::kCallSite},
                           {0x34, OffsetKind::kOther}});
  binary.RegisterFunction("RaftLogCreate", "raft.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x14, OffsetKind::kCallSite},  // parseLog
                           {0x28, OffsetKind::kOther}});
  binary.RegisterFunction("parseLog", "raft.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kRead},
                           {0x18, OffsetKind::kOther}});
  binary.RegisterFunction("appendLogEntry", "raft.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kWrite}});
  binary.RegisterFunction("RaftLogCurrentIdx", "raft.c", {{0x04, OffsetKind::kOther}});
  binary.RegisterFunction("startElection", "raft.c", {{0x10, OffsetKind::kCallSite}});
  binary.RegisterFunction("becomeLeader", "raft.c", {{0x10, OffsetKind::kCallSite}});
  binary.RegisterFunction("becomeFollower", "raft.c", {{0x10, OffsetKind::kCallSite}});
  // snapshot.c — snapshotting, compaction, transfer.
  binary.RegisterFunction("TakeSnapshot", "snapshot.c",
                          {{0x10, OffsetKind::kCallSite}, {0x20, OffsetKind::kCallSite}});
  binary.RegisterFunction("storeSnapshotData", "snapshot.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x10, OffsetKind::kSyscallCallSite, Sys::kWrite},
                           {0x18, OffsetKind::kSyscallCallSite, Sys::kClose}});
  binary.RegisterFunction("compactLog", "snapshot.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kOpen},
                           {0x14, OffsetKind::kSyscallCallSite, Sys::kRename}});
  binary.RegisterFunction("HandleInstallSnapshot", "snapshot.c",
                          {{0x10, OffsetKind::kCallSite},
                           {0x1c, OffsetKind::kSyscallCallSite, Sys::kUnlink},
                           {0x28, OffsetKind::kCallSite}});
  binary.RegisterFunction("BeginSnapshotTransfer", "snapshot.c",
                          {{0x10, OffsetKind::kCallSite}});
  binary.RegisterFunction("sendSnapshotChunk", "snapshot.c",
                          {{0x10, OffsetKind::kSyscallCallSite, Sys::kSend}});
  binary.RegisterFunction("loadSnapshot", "snapshot.c",
                          {{0x08, OffsetKind::kSyscallCallSite, Sys::kRead}});
  // kv.c — state machine.
  binary.RegisterFunction("applyEntry", "kv.c", {{0x08, OffsetKind::kOther}});
  binary.RegisterFunction("handleClientPut", "kv.c", {{0x08, OffsetKind::kCallSite}});
  return binary;
}

RaftKvNode::RaftKvNode(Cluster* cluster, NodeId id, RaftKvOptions options)
    : GuestNode(cluster, id, StrFormat("raftkv-%d", id)), options_(options) {}

// ---------------------------------------------------------------------------
// Persistence helpers
// ---------------------------------------------------------------------------

void RaftKvNode::PersistState() {
  WriteFileDurably(kStatePath, StrFormat("%lld %d", static_cast<long long>(term_),
                                         voted_for_));
}

std::string RaftKvNode::EncodeEntry(const LogEntry& entry) {
  return StrFormat("%lld|%lld|%s|%s|%s|%d", static_cast<long long>(entry.index),
                   static_cast<long long>(entry.term), entry.key.c_str(),
                   entry.value.c_str(), entry.op_id.c_str(), entry.client);
}

std::optional<RaftKvNode::LogEntry> RaftKvNode::DecodeEntry(const std::string& line) {
  const std::vector<std::string> parts = Split(line, '|');
  if (parts.size() != 6) {
    return std::nullopt;
  }
  LogEntry entry;
  int64_t value = 0;
  if (!ParseInt64(parts[0], &value)) {
    return std::nullopt;
  }
  entry.index = value;
  if (!ParseInt64(parts[1], &value)) {
    return std::nullopt;
  }
  entry.term = value;
  entry.key = parts[2];
  entry.value = parts[3];
  entry.op_id = parts[4];
  if (ParseInt64(parts[5], &value)) {
    entry.client = static_cast<NodeId>(value);
  }
  return entry;
}

void RaftKvNode::AppendEntryToDisk(const LogEntry& entry) {
  EnterFunction("appendLogEntry");
  SimKernel::OpenFlags flags;
  flags.create = true;
  flags.append = true;
  const SyscallResult opened = Open(kLogPath, flags);
  if (!opened.ok()) {
    Log(StrFormat("failed to open raft log for append: %s",
                  std::string(ErrName(opened.err)).c_str()));
    Panic("unable to write transaction log");
  }
  const auto fd = static_cast<int32_t>(opened.value);
  const SyscallResult written = WriteFd(fd, EncodeEntry(entry) + "\n");
  Close(fd);
  if (!written.ok()) {
    Panic("raft log append failed");
  }
}

void RaftKvNode::RewriteLogFile() {
  // Atomic rewrite: tmp + rename.
  std::string contents = StrFormat("HDR %lld\n", static_cast<long long>(
      log_.empty() ? snap_index_ + 1 : log_.front().index));
  for (const LogEntry& entry : log_) {
    contents += EncodeEntry(entry) + "\n";
  }
  WriteFileDurably(kLogTmpPath, contents);
  RenamePath(kLogTmpPath, kLogPath);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

void RaftKvNode::OnStart() {
  Log("raftkv booting");
  // Benign probes every boot (profiler learns these as benign faults).
  StatPath("/data/conf.d/override.conf");
  ReadlinkPath("/data/current");

  if (const auto state = ReadWholeFile(kStatePath); state.has_value()) {
    const std::vector<std::string> parts = Split(std::string(StripWhitespace(*state)), ' ');
    if (parts.size() == 2) {
      int64_t value = 0;
      if (ParseInt64(parts[0], &value)) {
        term_ = value;
      }
      if (ParseInt64(parts[1], &value)) {
        voted_for_ = static_cast<NodeId>(value);
      }
    }
  }
  LoadSnapshot();
  RaftLogOpen();

  role_ = Role::kFollower;
  commit_index_ = snap_index_;
  last_applied_ = snap_index_;
  ResetElectionTimer();
  SetTimer("maint", Seconds(1));
  Log(StrFormat("recovered: term=%lld snap=%lld log_last=%lld",
                static_cast<long long>(term_), static_cast<long long>(snap_index_),
                static_cast<long long>(last_log_index())));
}

void RaftKvNode::LoadSnapshot() {
  EnterFunction("loadSnapshot");
  SyscallResult stat = StatPath(kSnapshotPath);
  if (!stat.ok()) {
    return;  // No snapshot yet.
  }
  const auto contents = ReadWholeFile(kSnapshotPath);
  bool corrupt = !contents.has_value();
  int64_t idx = 0;
  int64_t term = 0;
  int64_t length = 0;
  std::string data;
  if (!corrupt) {
    const size_t newline = contents->find('\n');
    if (newline == std::string::npos) {
      corrupt = true;
    } else {
      const std::vector<std::string> header = Split(contents->substr(0, newline), ' ');
      data = contents->substr(newline + 1);
      if (header.size() != 3 || !ParseInt64(header[0], &idx) ||
          !ParseInt64(header[1], &term) || !ParseInt64(header[2], &length) ||
          static_cast<int64_t>(data.size()) != length) {
        corrupt = true;
      }
    }
  }
  if (corrupt) {
    if (options_.bug_new) {
      // RedisRaft-NEW: the in-place snapshot writer can leave a truncated
      // file; recovery trusts the snapshot blindly and dies.
      Log("snapshot file corrupt");
      Panic("corrupted snapshot file: cannot start");
    }
    Log("snapshot unreadable; ignoring and replaying log");
    return;
  }
  snap_index_ = idx;
  snap_term_ = term;
  DeserializeKv(data);
}

void RaftKvNode::RaftLogOpen() {
  EnterFunction("RaftLogOpen");
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  const SyscallResult opened = Open(kLogPath, flags);
  if (!opened.ok()) {
    if (snap_index_ > 0 && options_.bug43) {
      // RedisRaft-43: snapshot installation deleted the log before the
      // crash; recovery insists the log exists and matches the snapshot.
      Assert(false, "snapshot and log index mismatch (missing log segment)");
    }
    // Correct behavior: recreate an empty log starting after the snapshot.
    RewriteLogFile();
    return;
  }
  const auto fd = static_cast<int32_t>(opened.value);
  std::string contents;
  while (true) {
    std::string chunk;
    const SyscallResult got = ReadFd(fd, 4096, &chunk);
    if (!got.ok() || got.value == 0) {
      break;
    }
    contents += chunk;
  }
  Close(fd);

  log_.clear();
  int64_t header_first = snap_index_ + 1;
  for (const std::string& line : Split(contents, '\n')) {
    if (line.empty()) {
      continue;
    }
    if (StartsWith(line, "HDR ")) {
      int64_t value = 0;
      if (ParseInt64(line.substr(4), &value)) {
        header_first = value;
      }
      continue;
    }
    if (auto entry = DecodeEntry(line); entry.has_value()) {
      if (entry->index > snap_index_) {
        log_.push_back(std::move(*entry));
      }
    }
  }
  // Integrity: the log must cover the index right after the snapshot. A
  // compaction that dropped committed entries (RedisRaft-42) leaves a hole.
  Assert(header_first <= snap_index_ + 1,
         "snapshot and log integrity violated (log hole after compaction)");
  (void)header_first;
}

// ---------------------------------------------------------------------------
// Snapshotting
// ---------------------------------------------------------------------------

std::string RaftKvNode::SerializeKv() const {
  std::string out;
  for (const auto& [key, value] : kv_) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

void RaftKvNode::DeserializeKv(const std::string& data) {
  kv_.clear();
  for (const std::string& line : Split(data, '\n')) {
    const size_t eq = line.find('=');
    if (eq != std::string::npos) {
      kv_[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }
}

void RaftKvNode::StoreSnapshotData(int64_t snap_index, int64_t snap_term) {
  EnterFunction("storeSnapshotData");
  const std::string data = SerializeKv();
  const std::string blob = StrFormat("%lld %lld %lld\n", static_cast<long long>(snap_index),
                                     static_cast<long long>(snap_term),
                                     static_cast<long long>(data.size())) +
                           data;
  if (options_.bug_new) {
    // RedisRaft-NEW: in-place overwrite. A crash after the truncating open
    // but before the write leaves a 0-byte snapshot the recovery path
    // cannot survive.
    SimKernel::OpenFlags flags;
    flags.create = true;
    flags.truncate = true;
    AtOffset("storeSnapshotData", 0x08);
    const SyscallResult opened = Open(kSnapshotPath, flags);
    if (!opened.ok()) {
      Log("snapshot store failed at open");
      return;
    }
    const auto fd = static_cast<int32_t>(opened.value);
    AtOffset("storeSnapshotData", 0x10);
    WriteFd(fd, blob);
    AtOffset("storeSnapshotData", 0x18);
    Close(fd);
    return;
  }
  // Correct behavior: write-to-temp + rename is atomic under crashes.
  WriteFileDurably(kSnapshotTmpPath, blob);
  RenamePath(kSnapshotTmpPath, kSnapshotPath);
}

void RaftKvNode::CompactLog() {
  EnterFunction("compactLog");
  // RedisRaft-42: off-by-one keeps the log starting at snap+2, silently
  // dropping one committed entry; the recovery integrity check then fails on
  // the next restart.
  const int64_t first_kept = options_.bug42 ? snap_index_ + 2 : snap_index_ + 1;
  std::vector<LogEntry> kept;
  for (const LogEntry& entry : log_) {
    if (entry.index >= first_kept) {
      kept.push_back(entry);
    }
  }
  log_ = std::move(kept);
  std::string contents = StrFormat("HDR %lld\n", static_cast<long long>(first_kept));
  for (const LogEntry& entry : log_) {
    contents += EncodeEntry(entry) + "\n";
  }
  WriteFileDurably(kLogTmpPath, contents);
  RenamePath(kLogTmpPath, kLogPath);
}

void RaftKvNode::TakeSnapshot() {
  EnterFunction("TakeSnapshot");
  const int64_t snap_index = last_applied_;
  const int64_t snap_term = TermAt(snap_index);
  StoreSnapshotData(snap_index, snap_term);
  snap_index_ = snap_index;
  snap_term_ = snap_term;
  CompactLog();
  applied_since_snapshot_ = 0;
  Log(StrFormat("snapshot taken at %lld", static_cast<long long>(snap_index)));
}

// ---------------------------------------------------------------------------
// Snapshot transfer (leader -> lagging follower)
// ---------------------------------------------------------------------------

void RaftKvNode::BeginSnapshotTransfer(NodeId peer) {
  if (transfers_.count(peer) != 0) {
    return;
  }
  EnterFunction("BeginSnapshotTransfer");
  Transfer transfer;
  transfer.snap_index = snap_index_;
  transfer.snap_term = snap_term_;
  transfer.data = SerializeKv();
  transfer.next_chunk = 0;
  transfer.last_chunk_at = 0;
  transfers_[peer] = std::move(transfer);
  Log(StrFormat("starting snapshot transfer to n%d at idx %lld", peer,
                static_cast<long long>(snap_index_)));
  SendSnapshotChunk(peer);
}

void RaftKvNode::SendSnapshotChunk(NodeId peer) {
  auto it = transfers_.find(peer);
  if (it == transfers_.end() || role_ != Role::kLeader) {
    return;
  }
  EnterFunction("sendSnapshotChunk");
  Transfer& transfer = it->second;
  if (options_.bug51 && transfer.last_chunk_at != 0 &&
      now() - transfer.last_chunk_at > Seconds(3)) {
    // RedisRaft-51: the transfer cursor is validated against the log cache,
    // which moved on while the process was stopped.
    Assert(false, "cache index integrity violated during snapshot transfer");
  }
  const int total = options_.transfer_chunks;
  const size_t chunk_size = transfer.data.size() / static_cast<size_t>(total) + 1;
  const int seq = transfer.next_chunk;
  const size_t begin = static_cast<size_t>(seq) * chunk_size;
  const std::string piece =
      begin < transfer.data.size() ? transfer.data.substr(begin, chunk_size) : "";

  Message msg("SnapChunk", id(), peer);
  msg.SetInt("term", term_);
  msg.SetInt("idx", transfer.snap_index);
  msg.SetInt("snap_term", transfer.snap_term);
  msg.SetInt("seq", seq);
  msg.SetInt("total", total);
  msg.SetStr("data", piece);
  Send(peer, std::move(msg));

  transfer.last_chunk_at = now();
  transfer.next_chunk++;
  if (transfer.next_chunk < total) {
    SetTimer(StrFormat("xfer:%d", peer), options_.chunk_interval);
  } else {
    // All chunks out: if the follower never acks, abandon the transfer and
    // fall back to heartbeats instead of wedging the peer forever.
    SetTimer(StrFormat("xfergc:%d", peer), Seconds(5));
  }
}

void RaftKvNode::HandleInstallChunk(const Message& msg) {
  const int64_t term = msg.IntField("term");
  if (term < term_) {
    return;
  }
  if (term > term_ || role_ != Role::kFollower) {
    BecomeFollower(term);
  }
  leader_hint_ = msg.from;
  ResetElectionTimer();
  const auto seq = static_cast<int>(msg.IntField("seq"));
  const auto total = static_cast<int>(msg.IntField("total"));
  if (seq == 0) {
    incoming_chunks_.clear();
    incoming_seen_ = 0;
  }
  if (seq != incoming_seen_) {
    return;  // Out-of-order chunk; wait for retransfer.
  }
  incoming_chunks_ += msg.StrField("data");
  incoming_seen_++;
  if (incoming_seen_ == total) {
    HandleInstallSnapshot(msg.IntField("idx"), msg.IntField("snap_term"), incoming_chunks_);
    Message reply("SnapOk", id(), msg.from);
    reply.SetInt("idx", msg.IntField("idx"));
    Send(msg.from, std::move(reply));
  }
}

void RaftKvNode::HandleInstallSnapshot(int64_t snap_index, int64_t snap_term,
                                       const std::string& data) {
  EnterFunction("HandleInstallSnapshot");
  if (snap_index <= snap_index_) {
    return;
  }
  DeserializeKv(data);
  snap_index_ = snap_index;
  snap_term_ = snap_term;
  commit_index_ = std::max(commit_index_, snap_index);
  last_applied_ = snap_index;
  log_.clear();
  StoreSnapshotData(snap_index, snap_term);
  if (options_.bug43) {
    // RedisRaft-43: the old log is deleted *before* the replacement exists.
    // A crash inside RaftLogCreate leaves a snapshot with no log segment.
    AtOffset("HandleInstallSnapshot", 0x1c);
    UnlinkPath(kLogPath);
    RaftLogCreate(snap_index);
  } else {
    // Correct behavior: atomically rewrite the log (tmp + rename).
    RewriteLogFile();
  }
  Log(StrFormat("installed snapshot at %lld", static_cast<long long>(snap_index)));
}

void RaftKvNode::RaftLogCreate(int64_t snap_index) {
  EnterFunction("RaftLogCreate");
  AtOffset("RaftLogCreate", 0x08);
  WriteFileDurably(kLogPath, StrFormat("HDR %lld\n", static_cast<long long>(snap_index + 1)));
  AtOffset("RaftLogCreate", 0x14);
  ParseLog();
}

void RaftKvNode::ParseLog() {
  EnterFunction("parseLog");
  SimKernel::OpenFlags flags;
  flags.readonly = true;
  const SyscallResult opened = Open(kLogPath, flags);
  if (opened.ok()) {
    std::string chunk;
    ReadFd(static_cast<int32_t>(opened.value), 4096, &chunk);
    Close(static_cast<int32_t>(opened.value));
  }
}

// ---------------------------------------------------------------------------
// Consensus
// ---------------------------------------------------------------------------

int64_t RaftKvNode::last_log_index() const {
  return log_.empty() ? snap_index_ : log_.back().index;
}

const RaftKvNode::LogEntry* RaftKvNode::EntryAt(int64_t index) const {
  if (log_.empty() || index < log_.front().index || index > log_.back().index) {
    return nullptr;
  }
  return &log_[static_cast<size_t>(index - log_.front().index)];
}

int64_t RaftKvNode::TermAt(int64_t index) const {
  if (index == snap_index_) {
    return snap_term_;
  }
  const LogEntry* entry = EntryAt(index);
  return entry == nullptr ? -1 : entry->term;
}

void RaftKvNode::ResetElectionTimer() {
  // Timeouts are staggered by node id (plus jitter), so the lowest-id alive
  // node usually wins elections. Real deployments often behave this way too
  // (stable leadership); for Rose it means fault schedules that implicitly
  // depend on "who is leader" replay consistently across runs.
  const SimTime stagger = Millis(40) * id();
  const SimTime jitter = static_cast<SimTime>(rng().NextBelow(static_cast<uint64_t>(
      options_.election_timeout_max - options_.election_timeout_min) / 4 + 1));
  SetTimer("election", options_.election_timeout_min + stagger + jitter);
}

void RaftKvNode::StartElection() {
  EnterFunction("startElection");
  role_ = Role::kCandidate;
  term_++;
  voted_for_ = id();
  PersistState();
  votes_.clear();
  votes_.insert(id());
  Message msg("RequestVote", id(), kNoNode);
  msg.SetInt("term", term_);
  msg.SetInt("last_idx", last_log_index());
  msg.SetInt("last_term", TermAt(last_log_index()));
  Broadcast(msg, options_.cluster_size);
  ResetElectionTimer();
}

void RaftKvNode::BecomeLeader() {
  EnterFunction("becomeLeader");
  role_ = Role::kLeader;
  leader_hint_ = id();
  transfers_.clear();
  next_index_.clear();
  match_index_.clear();
  for (NodeId peer = 0; peer < options_.cluster_size; peer++) {
    if (peer != id()) {
      next_index_[peer] = last_log_index() + 1;
      match_index_[peer] = 0;
    }
  }
  Log(StrFormat("became leader for term %lld", static_cast<long long>(term_)));
  CancelTimer("election");
  SendHeartbeats();
}

void RaftKvNode::BecomeFollower(int64_t term) {
  if (term > term_) {
    EnterFunction("becomeFollower");
    term_ = term;
    voted_for_ = kNoNode;
    PersistState();
  }
  if (role_ == Role::kLeader) {
    CancelTimer("heartbeat");
    transfers_.clear();
  }
  role_ = Role::kFollower;
  ResetElectionTimer();
}

void RaftKvNode::SendHeartbeats() {
  EnterFunction("RaftLogCurrentIdx");
  for (NodeId peer = 0; peer < options_.cluster_size; peer++) {
    if (peer == id()) {
      continue;
    }
    if (transfers_.count(peer) != 0) {
      continue;  // Snapshot transfer in progress.
    }
    const int64_t next = next_index_[peer];
    if (next <= snap_index_) {
      BeginSnapshotTransfer(peer);
      continue;
    }
    Message msg("AppendEntries", id(), peer);
    msg.SetInt("term", term_);
    msg.SetInt("prev_idx", next - 1);
    msg.SetInt("prev_term", TermAt(next - 1));
    msg.SetInt("commit", commit_index_);
    int count = 0;
    for (int64_t idx = next; idx <= last_log_index() && count < 10; idx++, count++) {
      const LogEntry* entry = EntryAt(idx);
      if (entry == nullptr) {
        break;  // Compaction hole (e.g. the bug42 off-by-one): nothing to send.
      }
      msg.SetStr(StrFormat("e%d", count), EncodeEntry(*entry));
    }
    msg.SetInt("n", count);
    Send(peer, std::move(msg));
  }
  SetTimer("heartbeat", options_.heartbeat_interval);
}

void RaftKvNode::HandleRequestVote(const Message& msg) {
  const int64_t term = msg.IntField("term");
  if (term > term_) {
    BecomeFollower(term);
  }
  bool granted = false;
  if (term == term_ && (voted_for_ == kNoNode || voted_for_ == msg.from)) {
    const int64_t last_idx = msg.IntField("last_idx");
    const int64_t last_term = msg.IntField("last_term");
    const int64_t my_last_term = TermAt(last_log_index());
    const bool up_to_date = last_term > my_last_term ||
                            (last_term == my_last_term && last_idx >= last_log_index());
    if (up_to_date) {
      granted = true;
      voted_for_ = msg.from;
      PersistState();
      ResetElectionTimer();
    }
  }
  Message reply("VoteReply", id(), msg.from);
  reply.SetInt("term", term_);
  reply.SetInt("granted", granted ? 1 : 0);
  Send(msg.from, std::move(reply));
}

void RaftKvNode::HandleVoteReply(const Message& msg) {
  const int64_t term = msg.IntField("term");
  if (term > term_) {
    BecomeFollower(term);
    return;
  }
  if (role_ != Role::kCandidate || term != term_ || msg.IntField("granted") == 0) {
    return;
  }
  votes_.insert(msg.from);
  if (static_cast<int>(votes_.size()) * 2 > options_.cluster_size) {
    BecomeLeader();
  }
}

void RaftKvNode::HandleAppendEntries(const Message& msg) {
  const int64_t term = msg.IntField("term");
  Message reply("AppendReply", id(), msg.from);
  reply.SetInt("term", term_);
  if (term < term_) {
    reply.SetInt("success", 0);
    reply.SetInt("match", 0);
    Send(msg.from, std::move(reply));
    return;
  }
  BecomeFollower(term);
  leader_hint_ = msg.from;

  const int64_t prev_idx = msg.IntField("prev_idx");
  const int64_t prev_term = msg.IntField("prev_term");
  bool ok = true;
  if (prev_idx > last_log_index()) {
    ok = false;
  } else if (prev_idx > snap_index_ && TermAt(prev_idx) != prev_term) {
    // Conflict: truncate the divergent suffix. Note that with bug_new2 the
    // optimistic applications of truncated entries are NOT rolled back.
    while (!log_.empty() && log_.back().index >= prev_idx) {
      log_.pop_back();
    }
    RewriteLogFile();
    ok = false;
  }
  if (!ok) {
    reply.SetInt("term", term_);
    reply.SetInt("success", 0);
    reply.SetInt("match", std::min(prev_idx - 1, last_log_index()));
    Send(msg.from, std::move(reply));
    return;
  }

  const auto count = static_cast<int>(msg.IntField("n"));
  for (int i = 0; i < count; i++) {
    auto entry = DecodeEntry(msg.StrField(StrFormat("e%d", i)));
    if (!entry.has_value() || entry->index <= snap_index_) {
      continue;
    }
    const LogEntry* existing = EntryAt(entry->index);
    if (existing != nullptr) {
      if (existing->term == entry->term) {
        continue;
      }
      while (!log_.empty() && log_.back().index >= entry->index) {
        log_.pop_back();
      }
      RewriteLogFile();
    }
    AppendEntryToDisk(*entry);
    log_.push_back(std::move(*entry));
  }

  const int64_t leader_commit = msg.IntField("commit");
  if (leader_commit > commit_index_) {
    commit_index_ = std::min(leader_commit, last_log_index());
    ApplyCommitted();
  }
  reply.SetInt("term", term_);
  reply.SetInt("success", 1);
  reply.SetInt("match", last_log_index());
  Send(msg.from, std::move(reply));
}

void RaftKvNode::HandleAppendReply(const Message& msg) {
  const int64_t term = msg.IntField("term");
  if (term > term_) {
    BecomeFollower(term);
    return;
  }
  if (role_ != Role::kLeader) {
    return;
  }
  const NodeId peer = msg.from;
  if (msg.IntField("success") == 1) {
    match_index_[peer] = msg.IntField("match");
    next_index_[peer] = match_index_[peer] + 1;
    AdvanceCommit();
    return;
  }
  const int64_t hint = msg.IntField("match");
  next_index_[peer] = std::max<int64_t>(1, std::min(next_index_[peer] - 1, hint + 1));
  if (next_index_[peer] <= snap_index_) {
    BeginSnapshotTransfer(peer);
  }
}

void RaftKvNode::AdvanceCommit() {
  for (int64_t idx = last_log_index(); idx > commit_index_; idx--) {
    if (TermAt(idx) != term_) {
      continue;
    }
    int replicas = 1;  // Self.
    for (const auto& [peer, match] : match_index_) {
      if (match >= idx) {
        replicas++;
      }
    }
    if (replicas * 2 > options_.cluster_size) {
      commit_index_ = idx;
      ApplyCommitted();
      break;
    }
  }
}

void RaftKvNode::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    const LogEntry* entry = EntryAt(last_applied_ + 1);
    if (entry == nullptr) {
      break;
    }
    ApplyEntry(*entry, /*optimistic=*/false);
    last_applied_++;
    applied_since_snapshot_++;

    auto pending = pending_client_ops_.find(last_applied_);
    if (pending != pending_client_ops_.end()) {
      if (role_ == Role::kLeader && pending->second.first != kNoNode) {
        Message reply("ClientPutOk", id(), pending->second.first);
        reply.SetStr("op", pending->second.second);
        Send(pending->second.first, std::move(reply));
      }
      pending_client_ops_.erase(pending);
    }
  }
  if (applied_since_snapshot_ >= options_.snapshot_every) {
    TakeSnapshot();
  }
}

void RaftKvNode::ApplyEntry(const LogEntry& entry, bool optimistic) {
  EnterFunction("applyEntry");
  if (options_.bug_new2 && !optimistic) {
    auto it = applied_ops_.find(entry.op_id);
    if (it != applied_ops_.end()) {
      if (it->second == entry.index) {
        return;  // Already applied optimistically from this log slot.
      }
      // RedisRaft-NEW2: the op was applied from a log slot that has since
      // been truncated; the state machine now sees the same key twice.
      Assert(false, StrFormat("repeated key: op %s applied twice", entry.op_id.c_str()));
    }
  }
  kv_[entry.key] = entry.value;
  applied_ops_[entry.op_id] = entry.index;
}

// ---------------------------------------------------------------------------
// Client operations
// ---------------------------------------------------------------------------

void RaftKvNode::HandleClientPut(const Message& msg) {
  EnterFunction("handleClientPut");
  if (role_ != Role::kLeader) {
    Message reply("ClientRedirect", id(), msg.from);
    reply.SetStr("op", msg.StrField("op"));
    reply.SetInt("leader", leader_hint_);
    Send(msg.from, std::move(reply));
    return;
  }
  LogEntry entry;
  entry.index = last_log_index() + 1;
  entry.term = term_;
  entry.key = msg.StrField("key");
  entry.value = msg.StrField("val");
  entry.op_id = msg.StrField("op");
  entry.client = msg.from;
  AppendEntryToDisk(entry);
  log_.push_back(entry);
  pending_client_ops_[entry.index] = {msg.from, entry.op_id};
  if (options_.bug_new2) {
    // RedisRaft-NEW2: apply optimistically at append time.
    ApplyEntry(entry, /*optimistic=*/true);
  }
  AdvanceCommit();  // Single-node commit path for tiny clusters.
}

void RaftKvNode::HandleClientGet(const Message& msg) {
  Message reply("ClientGetOk", id(), msg.from);
  reply.SetStr("op", msg.StrField("op"));
  auto it = kv_.find(msg.StrField("key"));
  reply.SetStr("val", it == kv_.end() ? "" : it->second);
  reply.SetInt("leader", role_ == Role::kLeader ? 1 : 0);
  Send(msg.from, std::move(reply));
}

// ---------------------------------------------------------------------------
// Event plumbing
// ---------------------------------------------------------------------------

void RaftKvNode::MaintenanceTick() {
  // Benign failing probes, mirroring the stat/readlink noise real runtimes
  // generate (this is what the diagnosis phase's FR% removes).
  StatPath("/data/conf.d/override.conf");
  ReadlinkPath("/data/current");
  StatPath("/data/raft.lock");
  SetTimer("maint", Seconds(1));
}

void RaftKvNode::OnTimer(const std::string& name) {
  if (name == "election") {
    if (role_ != Role::kLeader) {
      StartElection();
    }
    return;
  }
  if (name == "heartbeat") {
    if (role_ == Role::kLeader) {
      SendHeartbeats();
    }
    return;
  }
  if (name == "maint") {
    MaintenanceTick();
    return;
  }
  if (StartsWith(name, "xfergc:")) {
    int64_t peer = 0;
    if (ParseInt64(name.substr(7), &peer)) {
      transfers_.erase(static_cast<NodeId>(peer));
    }
    return;
  }
  if (StartsWith(name, "xfer:")) {
    int64_t peer = 0;
    if (ParseInt64(name.substr(5), &peer)) {
      SendSnapshotChunk(static_cast<NodeId>(peer));
    }
    return;
  }
}

void RaftKvNode::OnMessage(const Message& msg) {
  if (msg.type == "RequestVote") {
    HandleRequestVote(msg);
  } else if (msg.type == "VoteReply") {
    HandleVoteReply(msg);
  } else if (msg.type == "AppendEntries") {
    HandleAppendEntries(msg);
  } else if (msg.type == "AppendReply") {
    HandleAppendReply(msg);
  } else if (msg.type == "SnapChunk") {
    HandleInstallChunk(msg);
  } else if (msg.type == "SnapOk") {
    const NodeId peer = msg.from;
    transfers_.erase(peer);
    match_index_[peer] = msg.IntField("idx");
    next_index_[peer] = match_index_[peer] + 1;
  } else if (msg.type == "ClientPut") {
    HandleClientPut(msg);
  } else if (msg.type == "ClientGet") {
    HandleClientGet(msg);
  }
}

}  // namespace rose
