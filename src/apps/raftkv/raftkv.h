// RaftKV — a miniature RedisRaft: a replicated key/value store driven by a
// Raft-style consensus core with log persistence, snapshotting, log
// compaction, snapshot transfer to lagging followers, and crash recovery.
//
// Five external-fault-induced bugs from the paper's RedisRaft study are
// seeded behind option flags (one enabled per experiment, like checking out
// the buggy version):
//
//   bug42  (RedisRaft-42)  — log compaction writes an off-by-one first-index
//          header; recovery asserts `first == snap_idx + 1`, so ANY crash
//          after a snapshot+compaction panics the node on restart.
//          Trigger class: PS(Crash), Level 1.
//   bug43  (RedisRaft-43)  — snapshot installation unlinks the old log
//          before RaftLogCreate recreates it; recovery of a node crashed at
//          RaftLogCreate entry finds a snapshot without a log and asserts.
//          Trigger class: crash *during RaftLogCreate*, Level 2.
//   bug51  (RedisRaft-51)  — a leader paused >3 s mid snapshot-transfer
//          asserts cache-index integrity when the transfer timer resumes.
//          Trigger class: pause on the *leader* in transfer, Level 2 +
//          amplification (role-specific).
//   bug_new (RedisRaft-NEW) — storeSnapshotData overwrites the snapshot
//          file in place (open(TRUNC) → write → close, meta written after);
//          a crash between open and write leaves data/meta mismatched and
//          recovery panics ("Redis itself crashes"). Trigger class: crash at
//          the write call site inside storeSnapshotData, Level 3.
//   bug_new2 (RedisRaft-NEW2) — the leader applies its own client ops
//          optimistically at append time and does not roll back on log
//          truncation; recommitting the same op at a different index asserts
//          "repeated key". Trigger class: partition isolating the leader,
//          Level 1.
#ifndef SRC_APPS_RAFTKV_RAFTKV_H_
#define SRC_APPS_RAFTKV_RAFTKV_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/apps/framework/guest_node.h"
#include "src/profile/binary_info.h"

namespace rose {

struct RaftKvOptions {
  int cluster_size = 5;
  bool bug42 = false;
  bool bug43 = false;
  bool bug51 = false;
  bool bug_new = false;
  bool bug_new2 = false;

  int snapshot_every = 8;             // Applied entries between snapshots.
  SimTime election_timeout_min = Millis(400);
  SimTime election_timeout_max = Millis(800);
  SimTime heartbeat_interval = Millis(100);
  SimTime chunk_interval = Millis(150);
  int transfer_chunks = 3;
};

// Registers RaftKV's function symbols/offsets (the guest "binary").
BinaryInfo BuildRaftKvBinary();

class RaftKvNode : public GuestNode {
 public:
  RaftKvNode(Cluster* cluster, NodeId id, RaftKvOptions options);

  void OnStart() override;
  void OnMessage(const Message& msg) override;
  void OnTimer(const std::string& name) override;

  bool is_leader() const { return role_ == Role::kLeader; }
  int64_t commit_index() const { return commit_index_; }
  int64_t last_log_index() const;
  const std::map<std::string, std::string>& kv() const { return kv_; }

 private:
  enum class Role { kFollower, kCandidate, kLeader };

  struct LogEntry {
    int64_t index = 0;
    int64_t term = 0;
    std::string key;
    std::string value;
    std::string op_id;
    NodeId client = kNoNode;
  };

  // --- Persistence -----------------------------------------------------------
  void PersistState();
  void AppendEntryToDisk(const LogEntry& entry);
  void RewriteLogFile();
  static std::string EncodeEntry(const LogEntry& entry);
  static std::optional<LogEntry> DecodeEntry(const std::string& line);

  // --- Recovery ---------------------------------------------------------------
  void RaftLogOpen();
  void LoadSnapshot();

  // --- Snapshotting ------------------------------------------------------------
  void TakeSnapshot();
  void StoreSnapshotData(int64_t snap_index, int64_t snap_term);
  void CompactLog();
  std::string SerializeKv() const;
  void DeserializeKv(const std::string& data);

  // --- Snapshot transfer ----------------------------------------------------------
  void BeginSnapshotTransfer(NodeId peer);
  void SendSnapshotChunk(NodeId peer);
  void HandleInstallChunk(const Message& msg);
  void HandleInstallSnapshot(int64_t snap_index, int64_t snap_term, const std::string& data);
  void RaftLogCreate(int64_t snap_index);
  void ParseLog();

  // --- Consensus ---------------------------------------------------------------
  void ResetElectionTimer();
  void StartElection();
  void BecomeLeader();
  void BecomeFollower(int64_t term);
  void SendHeartbeats();
  void HandleRequestVote(const Message& msg);
  void HandleVoteReply(const Message& msg);
  void HandleAppendEntries(const Message& msg);
  void HandleAppendReply(const Message& msg);
  void AdvanceCommit();
  void ApplyCommitted();
  void ApplyEntry(const LogEntry& entry, bool optimistic);

  // --- Clients ------------------------------------------------------------------
  void HandleClientPut(const Message& msg);
  void HandleClientGet(const Message& msg);

  const LogEntry* EntryAt(int64_t index) const;
  int64_t TermAt(int64_t index) const;
  void MaintenanceTick();

  RaftKvOptions options_;

  // Volatile consensus state.
  Role role_ = Role::kFollower;
  int64_t term_ = 0;
  NodeId voted_for_ = kNoNode;
  std::vector<LogEntry> log_;  // Entries after the snapshot, ascending index.
  int64_t snap_index_ = 0;
  int64_t snap_term_ = 0;
  int64_t commit_index_ = 0;
  int64_t last_applied_ = 0;
  NodeId leader_hint_ = kNoNode;
  std::set<NodeId> votes_;
  std::map<NodeId, int64_t> next_index_;
  std::map<NodeId, int64_t> match_index_;
  int applied_since_snapshot_ = 0;

  // State machine.
  std::map<std::string, std::string> kv_;
  // op_id -> log index it was applied from (bug_new2 bookkeeping).
  std::map<std::string, int64_t> applied_ops_;
  // Pending client replies: log index -> (client, op_id).
  std::map<int64_t, std::pair<NodeId, std::string>> pending_client_ops_;

  // Snapshot transfer state (leader side).
  struct Transfer {
    int next_chunk = 0;
    int64_t snap_index = 0;
    int64_t snap_term = 0;
    std::string data;
    SimTime last_chunk_at = 0;
  };
  std::map<NodeId, Transfer> transfers_;

  // Snapshot transfer state (follower side).
  std::string incoming_chunks_;
  int incoming_seen_ = 0;
};

}  // namespace rose

#endif  // SRC_APPS_RAFTKV_RAFTKV_H_
