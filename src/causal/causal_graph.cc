#include "src/causal/causal_graph.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace rose {
namespace {

// Chain key: pid for pid-carrying events, a node-tagged pseudo-chain for
// pid-less ones (ND taps). Keys never collide: pids are >= 0, node keys < 0.
int64_t ChainKeyOf(const TraceEvent& event) {
  Pid pid = kNoPid;
  switch (event.type) {
    case EventType::kSCF:
      pid = event.scf().pid;
      break;
    case EventType::kAF:
      pid = event.af().pid;
      break;
    case EventType::kPS:
      pid = event.ps().pid;
      break;
    case EventType::kND:
      break;
  }
  if (pid >= 0) {
    return pid;
  }
  return -static_cast<int64_t>(event.node) - 2;  // kNoNode (-1) maps to -1.
}

// Memory guard for the flattened clocks: past this many entries (0.5 GiB)
// the graph degrades to consistency-checking only.
constexpr size_t kMaxClockEntries = size_t{1} << 27;

}  // namespace

std::string_view CausalEdgeKindName(CausalEdge::Kind kind) {
  switch (kind) {
    case CausalEdge::Kind::kFdOrder:
      return "fd-order";
    case CausalEdge::Kind::kCrashBarrier:
      return "crash-barrier";
    case CausalEdge::Kind::kRestartBarrier:
      return "restart-barrier";
    case CausalEdge::Kind::kSendReceive:
      return "send-receive";
  }
  return "?";
}

CausalGraph::CausalGraph(TraceView trace, CausalOptions options) {
  size_ = trace.size();
  clocks_ = options.vector_clocks;
  Prescan(trace);
  if (clocks_ && size_ * chain_count_ > kMaxClockEntries) {
    clocks_ = false;
  }
  Build(trace);

  MetricRegistry& reg = MetricRegistry::Global();
  reg.GetCounter("causal.graph_builds")->Inc();
  reg.GetCounter("causal.graph_events")->Inc(size_);
  reg.GetCounter("causal.graph_edges")->Inc(edges_.size());
  reg.GetCounter("causal.graph_inconsistencies")->Inc(diagnostics_.size());
}

void CausalGraph::AddInconsistency(size_t event, std::string message, std::string hint) {
  Diagnostic diag;
  diag.code = DiagCode::kCausalInconsistentTrace;
  diag.severity = Severity::kError;
  diag.event_index = static_cast<int32_t>(event);
  diag.message = std::move(message);
  diag.hint = std::move(hint);
  diagnostics_.push_back(std::move(diag));
}

void CausalGraph::Prescan(TraceView trace) {
  chain_of_.resize(size_);
  position_.resize(size_);
  std::map<int64_t, uint32_t> chain_len;
  std::map<Pid, NodeId> pid_node;
  std::map<Pid, std::pair<uint32_t, SimTime>> crashed;  // pid -> (crash event, ts).

  for (size_t i = 0; i < size_; i++) {
    const TraceEvent& event = trace[i];
    const int64_t key = ChainKeyOf(event);
    auto [it, inserted] = chain_ids_.try_emplace(key, static_cast<uint32_t>(chain_ids_.size()));
    chain_of_[i] = it->second;
    position_[i] = ++chain_len[key];

    if (event.node != kNoNode) {
      NodeEvents& bucket = per_node_[event.node];
      bucket.ts.push_back(event.ts);
      bucket.events.push_back(static_cast<uint32_t>(i));
    }

    if (key >= 0) {  // pid-carrying event: attribution + zombie checks.
      const Pid pid = static_cast<Pid>(key);
      auto [node_it, fresh] = pid_node.try_emplace(pid, event.node);
      if (!fresh && node_it->second != event.node) {
        AddInconsistency(i,
                         StrFormat("pid %d attributed to node %d after node %d", pid, event.node,
                                   node_it->second),
                         "one process cannot run on two hosts; the merge mixed traces of "
                         "different runs");
      }
      if (auto crash = crashed.find(pid); crash != crashed.end() &&
                                          event.ts > crash->second.second) {
        AddInconsistency(i,
                         StrFormat("pid %d has events after its crash (event #%u)", pid,
                                   crash->second.first),
                         "a crashed process cannot execute; restarts spawn a new pid");
      }
      if (event.type == EventType::kPS && event.ps().state == ProcState::kCrashed) {
        crashed.try_emplace(pid, std::pair{static_cast<uint32_t>(i), event.ts});
      }
    }

    if (event.type == EventType::kND) {
      // ND events are attributed to the node of dst_ip — that teaches the
      // graph the ip->node map the tracer kernel used.
      const std::string dst(trace.str(event.nd().dst_ip));
      auto [ip_it, fresh] = ip_to_node_.try_emplace(dst, event.node);
      if (!fresh && ip_it->second != event.node) {
        AddInconsistency(
            i, StrFormat("ip %s attributed to node %d after node %d", dst.c_str(), event.node,
                         ip_it->second),
            "one address cannot belong to two hosts; the merge mixed incompatible traces");
      }
    }

    // Fault-shaped events: what extraction mines and schedules replay.
    switch (event.type) {
      case EventType::kSCF:
        if (event.scf().err != Err::kOk) {
          fault_events_.push_back(static_cast<uint32_t>(i));
        }
        break;
      case EventType::kND:
      case EventType::kPS:
        fault_events_.push_back(static_cast<uint32_t>(i));
        break;
      case EventType::kAF:
        break;
    }
  }
  chain_count_ = chain_ids_.size();
}

void CausalGraph::Build(TraceView trace) {
  if (clocks_) {
    vcs_.assign(size_ * chain_count_, 0);
  }
  // Per-chain last event (program-order predecessor), globally and per node
  // (crash-barrier sources).
  std::vector<int64_t> chain_last(chain_count_, -1);
  std::map<NodeId, std::map<uint32_t, uint32_t>> node_chain_last;
  std::map<NodeId, uint32_t> node_last_crash;
  std::map<std::pair<NodeId, int32_t>, uint32_t> fd_last;

  // Scratch list of this event's direct causal predecessors.
  std::vector<uint32_t> preds;

  for (size_t i = 0; i < size_; i++) {
    const TraceEvent& event = trace[i];
    const uint32_t chain = chain_of_[i];
    preds.clear();
    if (chain_last[chain] >= 0) {
      preds.push_back(static_cast<uint32_t>(chain_last[chain]));
    }

    // Restart barrier: the first event of a chain born on a node after a
    // crash there happens after the crash (supervisor restart).
    if (position_[i] == 1 && event.node != kNoNode) {
      if (auto it = node_last_crash.find(event.node); it != node_last_crash.end()) {
        edges_.push_back(CausalEdge{it->second, static_cast<uint32_t>(i),
                                    CausalEdge::Kind::kRestartBarrier});
        preds.push_back(it->second);
      }
    }

    switch (event.type) {
      case EventType::kSCF: {
        const int32_t fd = event.scf().fd;
        if (fd >= 0) {
          const auto key = std::pair{event.node, fd};
          if (auto it = fd_last.find(key);
              it != fd_last.end() && chain_of_[it->second] != chain) {
            edges_.push_back(
                CausalEdge{it->second, static_cast<uint32_t>(i), CausalEdge::Kind::kFdOrder});
            preds.push_back(it->second);
          }
          fd_last[key] = static_cast<uint32_t>(i);
        }
        break;
      }
      case EventType::kPS: {
        if (event.ps().state == ProcState::kCrashed && event.node != kNoNode) {
          // Crash barrier: everything the node's tracer recorded before the
          // crash precedes it.
          for (const auto& [other_chain, last] : node_chain_last[event.node]) {
            if (other_chain == chain) {
              continue;  // Program order already covers the crash's own chain.
            }
            edges_.push_back(
                CausalEdge{last, static_cast<uint32_t>(i), CausalEdge::Kind::kCrashBarrier});
            preds.push_back(last);
          }
          node_last_crash[event.node] = static_cast<uint32_t>(i);
        }
        break;
      }
      case EventType::kND: {
        const NdInfo& nd = event.nd();
        const auto src_it = ip_to_node_.find(trace.str(nd.src_ip));
        if (src_it != ip_to_node_.end() && src_it->second != event.node && nd.duration > 0) {
          // Packets flowed from the source until the silence began: the
          // sender's last event at or before silence-start precedes this
          // observation.
          const SimTime silence_start = event.ts - nd.duration;
          if (auto bucket = per_node_.find(src_it->second); bucket != per_node_.end()) {
            const auto& ts = bucket->second.ts;
            const auto upper = std::upper_bound(ts.begin(), ts.end(), silence_start);
            if (upper != ts.begin()) {
              const size_t pos = static_cast<size_t>((upper - ts.begin()) - 1);
              const uint32_t src_event = bucket->second.events[pos];
              edges_.push_back(CausalEdge{src_event, static_cast<uint32_t>(i),
                                          CausalEdge::Kind::kSendReceive});
              preds.push_back(src_event);
            }
          }
        }
        break;
      }
      case EventType::kAF:
        break;
    }

    if (clocks_) {
      uint32_t* vc = &vcs_[i * chain_count_];
      for (const uint32_t pred : preds) {
        const uint32_t* pvc = &vcs_[static_cast<size_t>(pred) * chain_count_];
        for (size_t c = 0; c < chain_count_; c++) {
          vc[c] = std::max(vc[c], pvc[c]);
        }
      }
      vc[chain] = position_[i];
    }

    chain_last[chain] = static_cast<int64_t>(i);
    if (event.node != kNoNode) {
      node_chain_last[event.node][chain] = static_cast<uint32_t>(i);
    }
  }
}

bool CausalGraph::HappensBefore(size_t a, size_t b) const {
  if (!clocks_ || a == b || a >= size_ || b >= size_) {
    return false;
  }
  return vcs_[b * chain_count_ + chain_of_[a]] >= position_[a];
}

int CausalGraph::FaultOrder(size_t fa, size_t fb) const {
  const size_t a = fault_events_[fa];
  const size_t b = fault_events_[fb];
  if (HappensBefore(a, b)) {
    return -1;
  }
  if (HappensBefore(b, a)) {
    return 1;
  }
  return 0;
}

std::vector<uint32_t> CausalGraph::ClockOf(size_t event) const {
  if (!clocks_ || event >= size_) {
    return {};
  }
  return std::vector<uint32_t>(vcs_.begin() + static_cast<int64_t>(event * chain_count_),
                               vcs_.begin() + static_cast<int64_t>((event + 1) * chain_count_));
}

}  // namespace rose
