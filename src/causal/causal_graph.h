// Happens-before analysis over merged production traces (DESIGN.md §12).
//
// A black-box RTRC trace fixes a partial order between its events even
// though Rose never instruments guest internals: every event carries the
// node-local timestamp of one tracer, and four event properties induce
// causal edges that survive re-execution:
//
//   program order  — events of one pid, in trace order: one process, one
//                    monotonic clock.
//   fd order       — SCF events on the same (node, fd): operations on one
//                    open file description are serialized by the kernel,
//                    across fork/dup sharing.
//   crash barrier  — a PS crash on node n is observed by n's tracer after
//                    everything it already recorded on n (same host, same
//                    clock), and before the first event of any process that
//                    first appears on n afterwards (the supervisor restarts
//                    the guest only once the old incarnation is gone).
//   send/receive   — an ND event is the receiver-side tap noticing silence
//                    from src_ip: packets flowed until the silence began, so
//                    the sender's last event before the silence started
//                    happens-before the observation at the receiver. These
//                    are the only cross-node edges — exactly the
//                    communication the taps actually saw.
//
// The graph is built in one pass over a timestamp-ordered TraceView (plus a
// light prescan that learns the ip->node map from ND attributions and
// buckets events per node). Each event belongs to a chain (its pid, or a
// per-node pseudo-chain for pid-less ND events) and gets a vector clock over
// chains; HappensBefore(a, b) is then one O(1) clock comparison. Fault
// events (failed SCFs, ND, PS) are indexed separately so the diagnosis
// engine's FeasibilityChecker and `trace_explorer --causal` can reason
// about the fault-only suborder without touching the full event set.
//
// Construction also cross-checks the causal model itself and reports
// contradictions as TB303 diagnostics (a pid attributed to two nodes, an ip
// resolving to two nodes, events from a pid after its crash): a trace that
// violates them cannot have come from one consistent production run, and
// the serve daemon rejects it at admission.
#ifndef SRC_CAUSAL_CAUSAL_GRAPH_H_
#define SRC_CAUSAL_CAUSAL_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analyze/diagnostic.h"
#include "src/trace/event.h"

namespace rose {

// One causal edge between event indices of the viewed trace. Program-order
// edges within a chain are implicit (consecutive chain positions); the
// edges stored here are the cross-chain ones.
struct CausalEdge {
  enum class Kind : int8_t { kFdOrder = 0, kCrashBarrier, kRestartBarrier, kSendReceive };
  uint32_t from = 0;
  uint32_t to = 0;
  Kind kind = Kind::kFdOrder;
};

std::string_view CausalEdgeKindName(CausalEdge::Kind kind);

struct CausalOptions {
  // Per-event vector clocks cost O(events * chains) memory. Consumers that
  // only need the build-time consistency checks (serve admission) switch
  // them off; HappensBefore then answers false for everything.
  bool vector_clocks = true;
};

class CausalGraph {
 public:
  CausalGraph() = default;
  explicit CausalGraph(TraceView trace, CausalOptions options = CausalOptions{});

  size_t size() const { return size_; }
  size_t chain_count() const { return chain_count_; }
  const std::vector<CausalEdge>& edges() const { return edges_; }

  // Strict happens-before between event indices: a causal path of program
  // order and stored edges leads from `a` to `b`. Irreflexive, transitive,
  // antisymmetric. False whenever the graph was built without vector clocks.
  bool HappensBefore(size_t a, size_t b) const;
  // Neither HappensBefore(a, b) nor HappensBefore(b, a).
  bool Concurrent(size_t a, size_t b) const { return !HappensBefore(a, b) && !HappensBefore(b, a); }

  // Indices of fault-shaped events (failed SCFs, ND, PS), in trace order —
  // the compressed summary the feasibility checker reasons over.
  const std::vector<uint32_t>& fault_events() const { return fault_events_; }
  // Pairwise order of fault_events()[fa] vs fault_events()[fb]:
  // -1 happens-before, +1 happens-after, 0 concurrent.
  int FaultOrder(size_t fa, size_t fb) const;

  // TB303 records for model contradictions found during the build.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool consistent() const { return !HasErrors(diagnostics_); }

  // The chain an event was assigned to and its 1-based position within it
  // (test/CLI introspection).
  uint32_t ChainOf(size_t event) const { return chain_of_[event]; }
  uint32_t PositionInChain(size_t event) const { return position_[event]; }
  // Vector clock of one event (empty when clocks are disabled).
  std::vector<uint32_t> ClockOf(size_t event) const;

 private:
  void Prescan(TraceView trace);
  void Build(TraceView trace);
  void AddInconsistency(size_t event, std::string message, std::string hint);

  size_t size_ = 0;
  size_t chain_count_ = 0;
  bool clocks_ = false;
  std::vector<CausalEdge> edges_;
  std::vector<uint32_t> fault_events_;
  std::vector<Diagnostic> diagnostics_;

  // Per-event chain id and 1-based chain position.
  std::vector<uint32_t> chain_of_;
  std::vector<uint32_t> position_;
  // Flattened per-event clocks: vcs_[event * chain_count_ + chain].
  std::vector<uint32_t> vcs_;

  // Prescan products.
  std::map<int64_t, uint32_t> chain_ids_;        // pid (>=0) / ~node (ND) -> chain.
  std::map<std::string, NodeId, std::less<>> ip_to_node_;
  struct NodeEvents {
    std::vector<SimTime> ts;       // Non-decreasing (trace order).
    std::vector<uint32_t> events;  // Parallel to `ts`.
  };
  std::map<NodeId, NodeEvents> per_node_;
};

}  // namespace rose

#endif  // SRC_CAUSAL_CAUSAL_GRAPH_H_
