#include "src/causal/feasibility.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace rose {
namespace {

bool PathMatches(std::string_view filter, std::string_view filename) {
  return filter.empty() || filename.find(filter) != std::string_view::npos;
}

// The fault's kExecutionIndex condition, or null for flat targeting.
const Condition* IndexCondition(const ScheduledFault& fault) {
  for (const Condition& cond : fault.conditions) {
    if (cond.kind == Condition::Kind::kExecutionIndex) {
      return &cond;
    }
  }
  return nullptr;
}

// Does `event` look like the production occurrence of `fault`?
bool EventMatches(const ScheduledFault& fault, const TraceEvent& event, TraceView trace) {
  switch (fault.kind) {
    case FaultKind::kSyscallFailure: {
      if (event.type != EventType::kSCF || event.scf().sys != fault.syscall.sys ||
          event.scf().err != fault.syscall.err ||
          (fault.target_node != kNoNode && event.node != fault.target_node) ||
          !PathMatches(fault.syscall.path_filter, trace.str(event.scf().filename))) {
        return false;
      }
      // An indexed fault names one exact invocation: require the recorded
      // (digest, seq) to agree when the trace carries the index. Unindexed
      // (pre-v2) events keep the loose signature match, so legacy dumps
      // behave exactly as before.
      const Condition* index = IndexCondition(fault);
      if (index != nullptr && event.scf().ctx_digest != 0 &&
          (event.scf().ctx_digest != index->ctx_digest ||
           event.scf().ctx_seq != static_cast<uint32_t>(index->count))) {
        return false;
      }
      return true;
    }
    case FaultKind::kProcessCrash:
      return event.type == EventType::kPS && event.ps().state == ProcState::kCrashed &&
             (fault.target_node == kNoNode || event.node == fault.target_node);
    case FaultKind::kProcessPause:
      return event.type == EventType::kPS && event.ps().state == ProcState::kPaused &&
             (fault.target_node == kNoNode || event.node == fault.target_node);
    case FaultKind::kNetworkPartition:
      return event.type == EventType::kND &&
             (fault.target_node == kNoNode || event.node == fault.target_node);
  }
  return false;
}

}  // namespace

std::string_view FeasibilityVerdictName(FeasibilityVerdict verdict) {
  switch (verdict) {
    case FeasibilityVerdict::kFeasible:
      return "feasible";
    case FeasibilityVerdict::kInfeasible:
      return "infeasible";
    case FeasibilityVerdict::kUnordered:
      return "unordered";
  }
  return "?";
}

int32_t FeasibilityChecker::MatchFault(const ScheduledFault& fault,
                                       std::vector<bool>* used) const {
  // A timed trigger pins the match: among matching events, prefer the one
  // whose timestamp is closest to the trigger (candidate faults carry their
  // production timestamp into kAtTime, so permuted schedules still map each
  // fault to its own event). Without one, the first unused match wins —
  // extraction dedups SCFs by signature, so that is the event it mined.
  SimTime at_time = 0;
  bool has_at_time = false;
  for (const Condition& condition : fault.conditions) {
    if (condition.kind == Condition::Kind::kAtTime) {
      at_time = condition.at_time;
      has_at_time = true;
    }
  }

  const std::vector<uint32_t>& faults = graph_->fault_events();
  int32_t best = -1;
  int64_t best_distance = std::numeric_limits<int64_t>::max();
  for (size_t f = 0; f < faults.size(); f++) {
    if ((*used)[f]) {
      continue;
    }
    const uint32_t event_index = faults[f];
    if (!EventMatches(fault, trace_[event_index], trace_)) {
      continue;
    }
    if (!has_at_time) {
      (*used)[f] = true;
      return static_cast<int32_t>(event_index);
    }
    const int64_t distance = std::llabs(trace_[event_index].ts - at_time);
    if (distance < best_distance) {
      best_distance = distance;
      best = static_cast<int32_t>(f);
    }
  }
  if (best < 0) {
    return -1;
  }
  (*used)[static_cast<size_t>(best)] = true;
  return static_cast<int32_t>(faults[static_cast<size_t>(best)]);
}

FeasibilityReport FeasibilityChecker::Check(const FaultSchedule& schedule) const {
  MetricRegistry::Global().GetCounter("causal.feasibility_checks")->Inc();
  FeasibilityReport report;
  if (graph_ == nullptr) {
    report.verdict = FeasibilityVerdict::kUnordered;
    return report;
  }
  const size_t n = schedule.faults.size();

  std::vector<bool> used(graph_->fault_events().size(), false);
  report.mapped_events.reserve(n);
  for (size_t i = 0; i < n; i++) {
    const int32_t event = MatchFault(schedule.faults[i], &used);
    report.mapped_events.push_back(event);
    if (event < 0) {
      Diagnostic diag;
      diag.code = DiagCode::kCausalUnmatchedFault;
      diag.severity = Severity::kWarning;
      diag.fault_index = static_cast<int32_t>(i);
      diag.message = StrFormat("%s fault matches no fault event in the trace",
                               schedule.faults[i].Label().c_str());
      diag.hint = "the trace cannot order this fault; feasibility is undecided";
      report.diagnostics.push_back(std::move(diag));
      report.verdict = FeasibilityVerdict::kUnordered;
    }
  }

  // Enforced injection order: the transitive closure of after_fault
  // dependencies (before[i][j] = fault j must be injected before fault i).
  std::vector<std::vector<bool>> before(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; i++) {
    for (const Condition& condition : schedule.faults[i].conditions) {
      if (condition.kind == Condition::Kind::kAfterFault && condition.fault_index >= 0 &&
          static_cast<size_t>(condition.fault_index) < n) {
        before[i][static_cast<size_t>(condition.fault_index)] = true;
      }
    }
  }
  for (size_t k = 0; k < n; k++) {
    for (size_t i = 0; i < n; i++) {
      if (before[i][k]) {
        for (size_t j = 0; j < n; j++) {
          if (before[k][j]) {
            before[i][j] = true;
          }
        }
      }
    }
  }

  // TB301: the schedule demands j-then-i while the trace proves i's event
  // happens-before j's — the production causal structure cannot be
  // recreated in that order.
  for (size_t i = 0; i < n; i++) {
    for (size_t j = 0; j < n; j++) {
      if (!before[i][j] || report.mapped_events[i] < 0 || report.mapped_events[j] < 0) {
        continue;
      }
      const auto event_i = static_cast<uint32_t>(report.mapped_events[i]);
      const auto event_j = static_cast<uint32_t>(report.mapped_events[j]);
      if (graph_->HappensBefore(event_i, event_j)) {
        Diagnostic diag;
        diag.code = DiagCode::kCausalOrderViolation;
        diag.severity = Severity::kError;
        diag.fault_index = static_cast<int32_t>(i);
        diag.message = StrFormat(
            "fault #%zu must follow fault #%zu, but its production event #%u happens-before "
            "event #%u",
            i, j, event_i, event_j);
        diag.hint = "restore the production order of these faults";
        report.diagnostics.push_back(std::move(diag));
        report.verdict = FeasibilityVerdict::kInfeasible;
      }
    }
  }

  // TB304: an enforced adjacent pair of commuting faults in inverse trace
  // order — the trace-ordered representative covers this class.
  for (size_t k = 0; k + 1 < n; k++) {
    if (!before[k + 1][k] || report.mapped_events[k] < 0 || report.mapped_events[k + 1] < 0) {
      continue;
    }
    const auto event_a = static_cast<uint32_t>(report.mapped_events[k]);
    const auto event_b = static_cast<uint32_t>(report.mapped_events[k + 1]);
    if (event_a > event_b && Commute(event_b, event_a)) {
      Diagnostic diag;
      diag.code = DiagCode::kCausalCommutedOrder;
      diag.severity = Severity::kWarning;
      diag.fault_index = static_cast<int32_t>(k);
      diag.message = StrFormat(
          "faults #%zu and #%zu commute (concurrent, disjoint scope) but are ordered against "
          "the trace",
          k, k + 1);
      diag.hint = "the trace-ordered schedule explores the same equivalence class";
      report.diagnostics.push_back(std::move(diag));
      report.canonical_order = false;
    }
  }
  return report;
}

bool FeasibilityChecker::Commute(uint32_t a, uint32_t b) const {
  if (graph_ == nullptr || !graph_->Concurrent(a, b)) {
    return false;
  }
  const TraceEvent& event_a = trace_[a];
  const TraceEvent& event_b = trace_[b];
  // Disjoint scope: different (known) nodes, and not two partitions — those
  // both mutate the shared fabric no matter which node observed them.
  if (event_a.node == kNoNode || event_b.node == kNoNode || event_a.node == event_b.node) {
    return false;
  }
  return event_a.type != EventType::kND || event_b.type != EventType::kND;
}

std::vector<std::pair<uint32_t, uint32_t>> FeasibilityChecker::CommutativePairs() const {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  if (graph_ == nullptr) {
    return pairs;
  }
  const std::vector<uint32_t>& faults = graph_->fault_events();
  for (uint32_t a = 0; a < faults.size(); a++) {
    for (uint32_t b = a + 1; b < faults.size(); b++) {
      if (Commute(faults[a], faults[b])) {
        pairs.emplace_back(a, b);
      }
    }
  }
  return pairs;
}

}  // namespace rose
