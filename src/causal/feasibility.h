// Static feasibility of fault schedules against a production trace's
// happens-before order (DESIGN.md §12).
//
// A schedule's after_fault conditions enforce an injection order. The
// production trace already fixes a partial order between the fault events a
// schedule replays (CausalGraph): an enforced order that contradicts it —
// demanding fault B fire before fault A when the trace proves A's event
// happens-before B's — can never recreate the production failure path, so
// replaying it is wasted work. The checker classifies schedules as:
//
//   feasible   — every fault maps to a trace fault event and the enforced
//                order embeds into the happens-before order;
//   infeasible — the enforced order contradicts happens-before (TB301);
//   unordered  — some fault matches no trace event (TB302), so the trace
//                neither supports nor refutes the order. Never pruned on.
//
// It also detects commutative fault pairs — concurrent in happens-before
// AND disjoint in scope (different target nodes, not both partitions) — and
// flags schedules that order such a pair against its trace order (TB304):
// the order-swapped schedule explores the same equivalence class, so
// Level-1 permutation enumeration keeps only the trace-ordered
// representative of each class (a Mazurkiewicz-trace normal form under
// adjacent commutation).
#ifndef SRC_CAUSAL_FEASIBILITY_H_
#define SRC_CAUSAL_FEASIBILITY_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "src/causal/causal_graph.h"
#include "src/schedule/fault_schedule.h"
#include "src/trace/event.h"

namespace rose {

enum class FeasibilityVerdict : int8_t { kFeasible = 0, kInfeasible, kUnordered };

std::string_view FeasibilityVerdictName(FeasibilityVerdict verdict);

struct FeasibilityReport {
  FeasibilityVerdict verdict = FeasibilityVerdict::kFeasible;
  // False when an adjacent enforced pair of commuting faults appears in the
  // inverse of its trace order — the schedule is a non-representative member
  // of its commutation class.
  bool canonical_order = true;
  // TB301 (error) order violations, TB302 (warning) unmatched faults,
  // TB304 (warning) non-canonical commuting order.
  std::vector<Diagnostic> diagnostics;
  // Per schedule fault: the trace event index it was matched to, or -1.
  std::vector<int32_t> mapped_events;
};

class FeasibilityChecker {
 public:
  FeasibilityChecker() = default;
  // Both the graph and the viewed trace must outlive the checker; the view
  // must be the one the graph was built from.
  FeasibilityChecker(const CausalGraph* graph, TraceView trace)
      : graph_(graph), trace_(trace) {}

  bool valid() const { return graph_ != nullptr; }

  // Classifies `schedule` against the graph. Pure: same schedule, same
  // report.
  FeasibilityReport Check(const FaultSchedule& schedule) const;

  // Commutative pair: concurrent in happens-before and disjoint in scope.
  // Exchanging the injection order of such a pair explores the same class
  // of executions. `a` and `b` are trace event indices.
  bool Commute(uint32_t a, uint32_t b) const;

  // All commutative pairs among the graph's fault events, as (position,
  // position) into CausalGraph::fault_events(), ordered.
  std::vector<std::pair<uint32_t, uint32_t>> CommutativePairs() const;

 private:
  // Matches one scheduled fault to an unused trace fault event; -1 if none.
  int32_t MatchFault(const ScheduledFault& fault, std::vector<bool>* used) const;

  const CausalGraph* graph_ = nullptr;
  TraceView trace_;
};

}  // namespace rose

#endif  // SRC_CAUSAL_FEASIBILITY_H_
