#include "src/cluster/hash_ring.h"

#include <algorithm>

namespace rose {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvMix(uint64_t hash, std::string_view bytes) {
  for (char ch : bytes) {
    hash ^= static_cast<uint8_t>(ch);
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; i++) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

// Finalizer spreading FNV's low-entropy high bits across the whole word
// (splitmix64's mixing rounds); ring positions must be uniform for vnode
// ownership to split evenly.
uint64_t Spread(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

uint64_t HashRing::HashKey(uint64_t key) {
  return Spread(FnvMix(kFnvOffset, key));
}

bool HashRing::AddShard(const std::string& name) {
  if (HasShard(name)) {
    return false;
  }
  shards_.push_back(name);
  epoch_++;
  Rebuild();
  return true;
}

bool HashRing::RemoveShard(const std::string& name) {
  auto it = std::find(shards_.begin(), shards_.end(), name);
  if (it == shards_.end()) {
    return false;
  }
  shards_.erase(it);
  epoch_++;
  Rebuild();
  return true;
}

bool HashRing::HasShard(const std::string& name) const {
  return std::find(shards_.begin(), shards_.end(), name) != shards_.end();
}

void HashRing::Rebuild() {
  points_.clear();
  points_.reserve(shards_.size() * static_cast<size_t>(vnodes_));
  for (size_t s = 0; s < shards_.size(); s++) {
    const uint64_t base = FnvMix(kFnvOffset, shards_[s]);
    for (int v = 0; v < vnodes_; v++) {
      points_.push_back(Point{Spread(FnvMix(base, static_cast<uint64_t>(v))), s});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    // Position ties (vanishingly rare) break on shard index so the order —
    // and therefore ownership — never depends on sort stability.
    return a.position != b.position ? a.position < b.position : a.shard < b.shard;
  });
}

std::string HashRing::OwnerOf(uint64_t key) const {
  return SuccessorOf(key, "");
}

std::string HashRing::SuccessorOf(uint64_t key, const std::string& skip) const {
  if (points_.empty()) {
    return "";
  }
  const uint64_t position = HashKey(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), position,
                             [](const Point& p, uint64_t pos) { return p.position < pos; });
  // Walk clockwise (wrapping) until a shard other than `skip` appears; at
  // most one full lap even when every point belongs to `skip`.
  for (size_t walked = 0; walked < points_.size(); walked++, ++it) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    const std::string& owner = shards_[it->shard];
    if (owner != skip) {
      return owner;
    }
  }
  return "";
}

}  // namespace rose
