// Consistent-hash ring for the serve cluster (DESIGN.md §15).
//
// The router shards diagnosis jobs across N `rose_served` backends by the
// submission's canonical trace hash. Two properties matter:
//
//   Stability: adding or removing one shard remaps only the keys that shard
//     owned (plus the slice the new shard claims) — every other key keeps
//     its owner, so shard-local result caches stay hot across membership
//     changes. Plain modulo hashing would reshuffle nearly everything.
//
//   Determinism: ring points are a pure function of (shard name, vnode
//     index), so two routers configured with the same membership route every
//     key identically — which is what makes clustered output reproducible
//     and lets a restarted router agree with its own journal.
//
// Each shard contributes `vnodes` points (FNV-mixed from name + index) so
// ownership splits evenly even with two or three shards. Membership changes
// bump `epoch()`; the router journals each epoch with its member list.
#ifndef SRC_CLUSTER_HASH_RING_H_
#define SRC_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rose {

class HashRing {
 public:
  static constexpr int kDefaultVnodes = 64;

  explicit HashRing(int vnodes = kDefaultVnodes) : vnodes_(vnodes) {}

  // False when `name` is already a member (no change, no epoch bump).
  bool AddShard(const std::string& name);
  // False when `name` is not a member.
  bool RemoveShard(const std::string& name);
  bool HasShard(const std::string& name) const;

  // Owner of `key`: the first ring point at or clockwise after hash(key).
  // Empty string when the ring has no shards.
  std::string OwnerOf(uint64_t key) const;

  // Owner of `key` with `skip` treated as dead: the next distinct shard
  // clockwise. Empty when no other shard exists. This is the failover
  // successor — deterministic, so a re-dispatch lands where a fresh routing
  // of the same key would once the dead shard is removed.
  std::string SuccessorOf(uint64_t key, const std::string& skip) const;

  // Members in insertion order (the journal's epoch record payload).
  const std::vector<std::string>& shards() const { return shards_; }
  size_t size() const { return shards_.size(); }
  uint64_t epoch() const { return epoch_; }
  // Continues epoch numbering after a journal replay (epochs stay monotonic
  // across router restarts).
  void SeedEpoch(uint64_t epoch) { epoch_ = epoch; }

  // The ring point for an arbitrary key (exposed for ownership tests).
  static uint64_t HashKey(uint64_t key);

 private:
  struct Point {
    uint64_t position;
    // Index into shards_ — names live once, points stay small.
    size_t shard;
  };

  void Rebuild();

  int vnodes_;
  uint64_t epoch_ = 0;
  std::vector<std::string> shards_;
  std::vector<Point> points_;  // Sorted by position.
};

}  // namespace rose

#endif  // SRC_CLUSTER_HASH_RING_H_
