#include "src/cluster/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "src/trace/mmap_file.h"
#include "src/trace/trace_io.h"

namespace rose {

namespace {

constexpr size_t kRecordHeaderBytes = 1 + 4 + 4;  // type | len | crc.
constexpr size_t kStreamHeaderBytes = 8;          // magic | version | reserved.

void PutU32LE(std::string* out, uint32_t v) {
  char bytes[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                   static_cast<char>((v >> 16) & 0xff),
                   static_cast<char>((v >> 24) & 0xff)};
  out->append(bytes, 4);
}

uint32_t ReadU32LE(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

void PutLengthPrefixed(std::string* out, std::string_view bytes) {
  PutVarint(out, bytes.size());
  out->append(bytes.data(), bytes.size());
}

bool GetLengthPrefixed(std::string_view* data, std::string_view* out) {
  uint64_t len = 0;
  if (!GetVarint(data, &len) || len > data->size()) {
    return false;
  }
  *out = data->substr(0, static_cast<size_t>(len));
  data->remove_prefix(static_cast<size_t>(len));
  return true;
}

std::string StreamHeader() {
  std::string out(kJournalMagic, 4);
  out.push_back(static_cast<char>(kJournalFormatVersion & 0xff));
  out.push_back(static_cast<char>(kJournalFormatVersion >> 8));
  out.append(2, '\0');
  return out;
}

}  // namespace

// --- Record codecs -----------------------------------------------------------

std::string EncodeDispatch(const DispatchRecord& record) {
  std::string out;
  PutVarint(&out, record.job_id);
  PutVarint(&out, record.key);
  PutVarint(&out, record.trace_hash);
  PutLengthPrefixed(&out, record.shard);
  PutVarint(&out, record.redispatch ? 1 : 0);
  PutLengthPrefixed(&out, record.payload);
  return out;
}

bool DecodeDispatch(std::string_view payload, DispatchRecord* out) {
  uint64_t redispatch = 0;
  std::string_view shard;
  std::string_view submit;
  if (!GetVarint(&payload, &out->job_id) || !GetVarint(&payload, &out->key) ||
      !GetVarint(&payload, &out->trace_hash) || !GetLengthPrefixed(&payload, &shard) ||
      !GetVarint(&payload, &redispatch) || !GetLengthPrefixed(&payload, &submit)) {
    return false;
  }
  out->shard = std::string(shard);
  out->redispatch = redispatch != 0;
  out->payload = std::string(submit);
  return payload.empty();
}

std::string EncodeRingEpoch(const RingEpochRecord& record) {
  std::string out;
  PutVarint(&out, record.epoch);
  PutVarint(&out, record.shards.size());
  for (const std::string& shard : record.shards) {
    PutLengthPrefixed(&out, shard);
  }
  return out;
}

bool DecodeRingEpoch(std::string_view payload, RingEpochRecord* out) {
  uint64_t count = 0;
  if (!GetVarint(&payload, &out->epoch) || !GetVarint(&payload, &count)) {
    return false;
  }
  out->shards.clear();
  for (uint64_t i = 0; i < count; i++) {
    std::string_view shard;
    if (!GetLengthPrefixed(&payload, &shard)) {
      return false;
    }
    out->shards.emplace_back(shard);
  }
  return payload.empty();
}

std::string EncodeComplete(const CompleteRecord& record) {
  std::string out;
  PutVarint(&out, record.job_id);
  PutVarint(&out, record.reproduced ? 1 : 0);
  return out;
}

bool DecodeComplete(std::string_view payload, CompleteRecord* out) {
  uint64_t reproduced = 0;
  if (!GetVarint(&payload, &out->job_id) || !GetVarint(&payload, &reproduced)) {
    return false;
  }
  out->reproduced = reproduced != 0;
  return payload.empty();
}

// --- ClusterJournal ----------------------------------------------------------

ClusterJournal::ClusterJournal(std::string path) : path_(std::move(path)) {
  Replay();
  if (!path_.empty()) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd_ >= 0) {
      // Position after the last intact record: replay truncated a torn tail
      // out of history_, and the file must agree before the next append.
      if (recovered_torn_tail_) {
        (void)::ftruncate(fd_, static_cast<off_t>(history_.size()));
      }
      (void)::lseek(fd_, static_cast<off_t>(history_.size()), SEEK_SET);
    }
  }
  if (history_.empty()) {
    const std::string header = StreamHeader();
    history_ = header;
    if (fd_ >= 0) {
      (void)!::write(fd_, header.data(), header.size());
      ::fsync(fd_);
      fsyncs_++;
      bytes_written_ += header.size();
    }
  }
}

ClusterJournal::~ClusterJournal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void ClusterJournal::Replay() {
  std::string bytes;
  if (path_.empty() || !ReadFileBytes(path_, &bytes) || bytes.empty()) {
    return;
  }
  if (bytes.size() < kStreamHeaderBytes ||
      std::memcmp(bytes.data(), kJournalMagic, 4) != 0) {
    // Not a journal: refuse to adopt it. Appends start a fresh stream at
    // offset zero (the constructor truncates).
    recovered_torn_tail_ = true;
    return;
  }
  const uint16_t version = static_cast<uint16_t>(
      static_cast<uint8_t>(bytes[4]) | static_cast<uint8_t>(bytes[5]) << 8);
  if (version != kJournalFormatVersion) {
    recovered_torn_tail_ = true;
    return;
  }
  size_t offset = kStreamHeaderBytes;
  size_t last_good = offset;
  while (bytes.size() - offset >= kRecordHeaderBytes) {
    const uint8_t type = static_cast<uint8_t>(bytes[offset]);
    const uint32_t len = ReadU32LE(bytes.data() + offset + 1);
    const uint32_t crc = ReadU32LE(bytes.data() + offset + 5);
    if (len > kMaxJournalRecordPayload ||
        bytes.size() - offset - kRecordHeaderBytes < len) {
      break;  // Torn tail (crash mid-append).
    }
    const std::string_view payload(bytes.data() + offset + kRecordHeaderBytes, len);
    if (Crc32(payload) != crc) {
      break;  // Corrupt tail; everything before it is intact.
    }
    bool decoded = true;
    switch (static_cast<JournalRecordType>(type)) {
      case JournalRecordType::kRingEpoch: {
        RingEpochRecord record;
        decoded = DecodeRingEpoch(payload, &record);
        if (decoded) {
          last_epoch_ = std::move(record);
        }
        break;
      }
      case JournalRecordType::kDispatch: {
        DispatchRecord record;
        decoded = DecodeDispatch(payload, &record);
        if (decoded) {
          if (record.job_id >= next_job_id_) {
            next_job_id_ = record.job_id + 1;
          }
          pending_[record.job_id] = std::move(record);
        }
        break;
      }
      case JournalRecordType::kComplete: {
        CompleteRecord record;
        decoded = DecodeComplete(payload, &record);
        if (decoded) {
          pending_.erase(record.job_id);
        }
        break;
      }
      default:
        // Unknown record type from a future version: skip, framing is
        // self-describing (the serve protocol's extension rule).
        break;
    }
    if (!decoded) {
      break;  // A framed-but-undecodable record is corruption, not extension.
    }
    offset += kRecordHeaderBytes + len;
    last_good = offset;
    replayed_records_++;
  }
  recovered_torn_tail_ = last_good != bytes.size();
  history_ = bytes.substr(0, last_good);
}

void ClusterJournal::Append(JournalRecordType type, std::string_view payload) {
  std::string frame;
  frame.reserve(kRecordHeaderBytes + payload.size());
  frame.push_back(static_cast<char>(type));
  PutU32LE(&frame, static_cast<uint32_t>(payload.size()));
  PutU32LE(&frame, Crc32(payload));
  frame.append(payload.data(), payload.size());
  history_ += frame;
  appends_++;
  if (fd_ >= 0) {
    size_t written = 0;
    while (written < frame.size()) {
      const ssize_t n = ::write(fd_, frame.data() + written, frame.size() - written);
      if (n <= 0) {
        break;
      }
      written += static_cast<size_t>(n);
    }
    bytes_written_ += written;
    ::fsync(fd_);
    fsyncs_++;
  }
  for (Follower& follower : followers_) {
    follower.outbox.append(frame);
  }
}

void ClusterJournal::AppendRingEpoch(const RingEpochRecord& record) {
  Append(JournalRecordType::kRingEpoch, EncodeRingEpoch(record));
  last_epoch_ = record;
}

void ClusterJournal::AppendDispatch(const DispatchRecord& record) {
  Append(JournalRecordType::kDispatch, EncodeDispatch(record));
  if (record.job_id >= next_job_id_) {
    next_job_id_ = record.job_id + 1;
  }
  pending_[record.job_id] = record;
}

void ClusterJournal::AppendComplete(const CompleteRecord& record) {
  Append(JournalRecordType::kComplete, EncodeComplete(record));
  pending_.erase(record.job_id);
}

void ClusterJournal::AttachFollower(std::shared_ptr<Transport> transport) {
  Follower follower;
  follower.transport = std::move(transport);
  follower.outbox = history_;  // Full history first, then tail.
  followers_.push_back(std::move(follower));
}

void ClusterJournal::PumpReplication() {
  for (Follower& follower : followers_) {
    if (follower.sent >= follower.outbox.size()) {
      continue;
    }
    const std::string_view rest =
        std::string_view(follower.outbox).substr(follower.sent);
    follower.sent += follower.transport->Write(rest);
    if (follower.sent >= follower.outbox.size()) {
      follower.outbox.clear();
      follower.sent = 0;
    }
  }
}

bool ClusterJournal::replication_idle() const {
  for (const Follower& follower : followers_) {
    if (follower.sent < follower.outbox.size()) {
      return false;
    }
  }
  return true;
}

// --- JournalFollower ---------------------------------------------------------

JournalFollower::JournalFollower(std::string path, std::shared_ptr<Transport> transport)
    : path_(std::move(path)), transport_(std::move(transport)) {
  if (!path_.empty()) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
}

JournalFollower::~JournalFollower() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void JournalFollower::Poll() {
  for (;;) {
    const std::string chunk = transport_->Read(16 * 1024);
    if (chunk.empty()) {
      return;
    }
    bytes_received_ += chunk.size();
    bytes_ += chunk;
    if (fd_ >= 0) {
      size_t written = 0;
      while (written < chunk.size()) {
        const ssize_t n = ::write(fd_, chunk.data() + written, chunk.size() - written);
        if (n <= 0) {
          break;
        }
        written += static_cast<size_t>(n);
      }
      ::fsync(fd_);
    }
  }
}

}  // namespace rose
