// Replicated coordinator journal for the serve cluster (DESIGN.md §15).
//
// Rose's thesis applied to Rose itself: a shard dying mid-job must be
// recoverable from a lightweight record, not luck. The router appends every
// consequential coordinator decision — ring membership epochs, job
// dispatches (including the full submit payload, so a job can be re-posed
// from the journal alone), and completions — to an append-only, CRC-framed
// log modeled on the raft write-ahead-log shape:
//
//   header:  'R' 'J' 'N' 'L' | u16 version (LE) | u16 reserved
//   record:  u8 type | u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
//   types:   1 = ring epoch, 2 = dispatch, 3 = complete
//
// Durability: each append is written and fsync'd before the router acts on
// it (dispatch-before-forward), so the journal never trails the cluster's
// observable behavior. Replay tolerates a torn tail — a crash mid-append
// leaves a truncated or CRC-broken final record, which replay drops and
// Append() then overwrites (the file is truncated back to the last good
// record), exactly the recovery the RTRC trace container practices.
//
// Replication: followers receive the journal as a byte stream over a
// Transport — the same framed bytes that hit the leader's disk, so a
// follower's file is a byte-identical prefix of the leader's and replays
// with the same code. Attach ships history from offset zero, then tails.
//
// Replay output: the pending map (dispatches without a completion) is
// exactly the set of jobs a restarted or failed-over coordinator must
// re-dispatch; the last epoch record names the membership it believed in.
#ifndef SRC_CLUSTER_JOURNAL_H_
#define SRC_CLUSTER_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/transport.h"

namespace rose {

inline constexpr char kJournalMagic[4] = {'R', 'J', 'N', 'L'};
inline constexpr uint16_t kJournalFormatVersion = 1;
// A dispatch record embeds a whole submit payload; anything beyond this is
// a corrupt length field, not a plausible record.
inline constexpr uint32_t kMaxJournalRecordPayload = 256u * 1024u * 1024u;

enum class JournalRecordType : uint8_t {
  kRingEpoch = 1,
  kDispatch = 2,
  kComplete = 3,
};

// One job dispatch (or re-dispatch) decision. `payload` is the verbatim
// serve-protocol kSubmit payload, so the job can be re-posed to any shard
// without the original client.
struct DispatchRecord {
  uint64_t job_id = 0;
  uint64_t key = 0;         // Cache/dedup key (JobKey).
  uint64_t trace_hash = 0;  // Ring key (canonical blob hash).
  std::string shard;
  bool redispatch = false;  // True when posed by failover, not admission.
  std::string payload;
};

struct RingEpochRecord {
  uint64_t epoch = 0;
  std::vector<std::string> shards;
};

struct CompleteRecord {
  uint64_t job_id = 0;
  bool reproduced = false;
};

// Record payload codecs (exposed for tests; framing is the journal's).
std::string EncodeDispatch(const DispatchRecord& record);
bool DecodeDispatch(std::string_view payload, DispatchRecord* out);
std::string EncodeRingEpoch(const RingEpochRecord& record);
bool DecodeRingEpoch(std::string_view payload, RingEpochRecord* out);
std::string EncodeComplete(const CompleteRecord& record);
bool DecodeComplete(std::string_view payload, CompleteRecord* out);

class ClusterJournal {
 public:
  // Opens (creating if missing) and replays `path`. Empty path = memory-only
  // journal: appends are framed and replicated but nothing touches disk —
  // the configuration a router without durability needs (tests, benches).
  explicit ClusterJournal(std::string path);
  ~ClusterJournal();

  ClusterJournal(const ClusterJournal&) = delete;
  ClusterJournal& operator=(const ClusterJournal&) = delete;

  // --- Appends (written + fsync'd before returning) ------------------------
  void AppendRingEpoch(const RingEpochRecord& record);
  void AppendDispatch(const DispatchRecord& record);
  void AppendComplete(const CompleteRecord& record);

  // --- Replay results -------------------------------------------------------
  // Dispatches without a completion, by job id; a re-dispatch overwrites the
  // shard of its predecessor (last writer wins, as on the wire).
  const std::map<uint64_t, DispatchRecord>& pending() const { return pending_; }
  // The last epoch record, or a default (epoch 0, no shards).
  const RingEpochRecord& last_epoch() const { return last_epoch_; }
  // One past the largest job id ever journaled (0 on a fresh journal) — the
  // restarted router's first job id, so ids never collide across restarts.
  uint64_t next_job_id() const { return next_job_id_; }
  uint64_t replayed_records() const { return replayed_records_; }
  // True when replay dropped a torn/corrupt tail (now truncated away).
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

  // --- Counters (mirrored into cluster.journal_* metrics by the owner) ------
  uint64_t appends() const { return appends_; }
  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t bytes_written() const { return bytes_written_; }

  // --- Follower replication -------------------------------------------------
  // Queues the full journal history for `transport`, then tails every new
  // append. PumpReplication() moves queued bytes out (short writes respected);
  // call it from the router's Poll().
  void AttachFollower(std::shared_ptr<Transport> transport);
  void PumpReplication();
  bool replication_idle() const;

  const std::string& path() const { return path_; }

 private:
  void Append(JournalRecordType type, std::string_view payload);
  void Replay();

  struct Follower {
    std::shared_ptr<Transport> transport;
    std::string outbox;
    size_t sent = 0;
  };

  std::string path_;
  int fd_ = -1;
  // Every byte ever framed (header + records), the replication source of
  // truth. Memory cost is bounded by the journal itself, which a dispatch-
  // heavy coordinator rotates by restarting on a fresh path.
  std::string history_;

  std::map<uint64_t, DispatchRecord> pending_;
  RingEpochRecord last_epoch_;
  uint64_t next_job_id_ = 1;
  uint64_t replayed_records_ = 0;
  bool recovered_torn_tail_ = false;

  uint64_t appends_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t bytes_written_ = 0;

  std::vector<Follower> followers_;
};

// Follower half of journal replication: drains a Transport into a local
// journal file (creating it with the leader's exact bytes). The file is a
// valid ClusterJournal — replayable with the same code, so a promoted
// follower recovers the same pending set the leader would have.
class JournalFollower {
 public:
  // Empty path keeps the received bytes in memory only (bytes() exposes
  // them); tests and benches replicate without touching disk.
  JournalFollower(std::string path, std::shared_ptr<Transport> transport);
  ~JournalFollower();

  JournalFollower(const JournalFollower&) = delete;
  JournalFollower& operator=(const JournalFollower&) = delete;

  // Reads whatever the leader sent and appends it verbatim (fsync'd).
  void Poll();

  uint64_t bytes_received() const { return bytes_received_; }
  const std::string& bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::shared_ptr<Transport> transport_;
  std::string bytes_;
  uint64_t bytes_received_ = 0;
};

}  // namespace rose

#endif  // SRC_CLUSTER_JOURNAL_H_
