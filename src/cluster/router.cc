#include "src/cluster/router.h"

#include <algorithm>
#include <utility>

#include "src/analyze/trace_validator.h"
#include "src/serve/service.h"

namespace rose {

namespace {
constexpr size_t kReadChunk = 16 * 1024;

// Ring key for a stream session: the trace hash a submit would shard by does
// not exist at open time, so the session's identity (bug, seed, client
// token) places it instead. All of one session's bytes land on one shard;
// only cross-submission cache affinity is weaker than the submit path.
uint64_t StreamShardKey(std::string_view bug_id, uint64_t seed, uint64_t token) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bug_id) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; i++) {
    h ^= (seed >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 8; i++) {
    h ^= (token >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ClusterRouter::ClusterRouter(RouterConfig config)
    : config_(std::move(config)),
      journal_(config_.journal_path),
      ring_(config_.ring_vnodes) {
  MetricRegistry& reg = MetricRegistry::Global();
  metrics_.jobs_routed = reg.GetCounter("cluster.jobs_routed");
  metrics_.completions = reg.GetCounter("cluster.completions");
  metrics_.failovers = reg.GetCounter("cluster.failovers");
  metrics_.redispatches = reg.GetCounter("cluster.redispatches");
  metrics_.recovered_jobs = reg.GetCounter("cluster.recovered_jobs");
  metrics_.rejects_invalid = reg.GetCounter("cluster.rejects_invalid");
  metrics_.corrupt_frames = reg.GetCounter("cluster.corrupt_frames");
  metrics_.journal_appends = reg.GetGauge("cluster.journal_appends");
  metrics_.journal_fsyncs = reg.GetGauge("cluster.journal_fsyncs");
  metrics_.journal_bytes = reg.GetGauge("cluster.journal_bytes");
  metrics_.ring_imbalance = reg.GetGauge("cluster.ring_imbalance");

  // Journal replay: every dispatch without a completion is a job this
  // coordinator owes an answer. Readopt them as subscriber-less jobs (the
  // original clients are gone with the old process) and re-dispatch once
  // shards attach. Job ids and ring epochs continue where the journal ends,
  // so nothing a shard or follower saw before the restart collides.
  next_job_id_ = journal_.next_job_id();
  ring_.SeedEpoch(journal_.last_epoch().epoch);
  for (const auto& [job_id, record] : journal_.pending()) {
    auto job = std::make_unique<RouterJob>();
    job->id = job_id;
    job->client = 0;
    job->key = record.key;
    job->trace_hash = record.trace_hash;
    job->payload = record.payload;
    job->redispatched = true;
    job->accept_ready = true;  // No subscriber to answer.
    job->accept_sent = true;
    stats_.recovered_jobs++;
    metrics_.recovered_jobs->Inc();
    jobs_.emplace(job_id, std::move(job));
  }
}

void ClusterRouter::AttachClient(std::shared_ptr<Transport> transport) {
  auto conn = std::make_unique<ClientConn>();
  conn->id = next_client_id_++;
  conn->transport = std::move(transport);
  AppendServeHeader(&conn->outbox);
  clients_.emplace(conn->id, std::move(conn));
}

void ClusterRouter::AttachShard(const std::string& name,
                                std::shared_ptr<Transport> transport) {
  if (shards_.count(name) != 0) {
    return;
  }
  if (ring_.AddShard(name)) {
    journal_.AppendRingEpoch(RingEpochRecord{ring_.epoch(), ring_.shards()});
  }
  auto shard = std::make_unique<Shard>();
  shard->name = name;
  shard->transport = std::move(transport);
  AppendServeHeader(&shard->outbox);  // The router is the shard's client.
  shards_.emplace(name, std::move(shard));
  DispatchStranded();
}

void ClusterRouter::DetachShard(const std::string& name) {
  if (shards_.count(name) != 0) {
    OnShardDead(name);
  }
}

void ClusterRouter::Poll() {
  for (auto& [id, conn] : clients_) {
    if (!conn->dead) {
      ReadClient(*conn);
    }
  }

  // Drain every shard before declaring any of them dead: a shard that
  // finished a job and exited cleanly has its result sitting in the
  // transport, and AtEof() only turns true once those bytes are read.
  std::vector<std::string> dead_shards;
  for (auto& [name, shard] : shards_) {
    ReadShard(*shard);
    if (shard->transport->AtEof()) {
      dead_shards.push_back(name);
    }
  }
  for (const std::string& name : dead_shards) {
    OnShardDead(name);
  }

  // Clients that hung up: their in-flight jobs keep running (the journal
  // already owns them), responses degrade to no-ops, and the connection is
  // reaped once its admission FIFO drains.
  std::vector<uint64_t> gone;
  for (auto& [id, conn] : clients_) {
    if (!conn->dead && conn->transport->AtEof()) {
      conn->dead = true;
    }
    FlushClientFifo(*conn);
    if (conn->dead && conn->accept_fifo.empty()) {
      gone.push_back(id);
    }
  }
  for (uint64_t id : gone) {
    clients_.erase(id);
  }

  FlushOutboxes();
  journal_.PumpReplication();
  UpdateDepthGauges();
}

bool ClusterRouter::idle() const {
  if (!journal_.replication_idle()) {
    return false;
  }
  for (const auto& [id, job] : jobs_) {
    // An accepted stream session at rest is idle state, not pending work —
    // it lives until the client closes it.
    if (job->is_stream && job->accept_sent) {
      continue;
    }
    return false;
  }
  for (const auto& [id, conn] : clients_) {
    if (!conn->dead && conn->outbox_sent < conn->outbox.size()) {
      return false;
    }
  }
  for (const auto& [name, shard] : shards_) {
    if (shard->outbox_sent < shard->outbox.size()) {
      return false;
    }
  }
  return true;
}

void ClusterRouter::ReadClient(ClientConn& conn) {
  for (;;) {
    const std::string chunk = conn.transport->Read(kReadChunk);
    if (chunk.empty()) {
      break;
    }
    conn.decoder.Feed(chunk);
  }
  DecodedFrame frame;
  for (;;) {
    switch (conn.decoder.Next(&frame)) {
      case FrameDecoder::Status::kNeedMore:
        return;
      case FrameDecoder::Status::kFrame:
        if (frame.kind == ServeFrame::kSubmit) {
          HandleSubmit(conn, std::move(frame.payload));
        } else if (frame.kind == ServeFrame::kStatsRequest) {
          SendToClient(conn.id, ServeFrame::kStatsReply, EncodeStats(BuildStats()));
        } else if (frame.kind == ServeFrame::kStreamOpen) {
          HandleStreamOpen(conn, frame.payload);
        } else if (frame.kind == ServeFrame::kStreamData) {
          HandleStreamData(conn, frame.payload);
        } else if (frame.kind == ServeFrame::kStreamClose) {
          HandleStreamClose(conn, frame.payload);
        }
        break;
      case FrameDecoder::Status::kCorruptFrame:
        // Same wire behavior as the daemon (kBadFrame, job id 0), but queued
        // in the admission FIFO so it cannot overtake an accept the router is
        // still waiting on from a shard.
        stats_.corrupt_frames++;
        metrics_.corrupt_frames->Inc();
        RejectSubmit(conn, ServeError::kBadFrame,
                     "frame failed its CRC32 and was skipped; resend the submission");
        break;
      case FrameDecoder::Status::kBadStream: {
        AppendServeFrame(&conn.outbox, ServeFrame::kError,
                         EncodeError(ErrorMsg{0, ServeError::kVersionMismatch,
                                              "bad stream header or unsupported "
                                              "protocol version"}));
        conn.dead = true;
        const std::string_view rest =
            std::string_view(conn.outbox).substr(conn.outbox_sent);
        conn.outbox_sent += conn.transport->Write(rest);
        conn.transport->Close();
        return;
      }
    }
  }
}

void ClusterRouter::HandleSubmit(ClientConn& conn, std::string payload) {
  SubmitEnvelope env;
  if (!DecodeSubmitEnvelope(std::move(payload), &env)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    RejectSubmit(conn, ServeError::kMalformedRequest, "submit payload does not decode");
    return;
  }
  // The router's share of admission: one streaming pass over the RTRC blob
  // yields both the ring key and the container verdict. Everything needing a
  // bug registry or a materialized trace (unknown bug, validation, causal
  // consistency) is the owner shard's job — the router stays a thin data
  // plane that never decodes the blob.
  uint64_t trace_hash = 0;
  size_t event_count = 0;
  std::vector<Diagnostic> container_diags;
  CanonicalBlobHash(env.trace_blob(), &trace_hash, &container_diags, &event_count);
  if (HasErrors(container_diags)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    RejectSubmit(conn, ServeError::kInvalidTrace,
                 "trace container damaged: " + container_diags.front().ToString());
    return;
  }
  if (event_count == 0) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    RejectSubmit(conn, ServeError::kInvalidTrace, "trace decoded to zero events");
    return;
  }

  auto job = std::make_unique<RouterJob>();
  job->id = next_job_id_++;
  job->client = conn.id;
  job->key = DiagnosisService::JobKey(trace_hash, env.bug_id(), env.seed());
  job->trace_hash = trace_hash;
  job->payload = std::string(env.payload());
  conn.accept_fifo.push_back(job->id);
  stats_.jobs_routed++;
  metrics_.jobs_routed->Inc();

  // Sharded by trace hash — not the full job key — so every submission of
  // one dump lands on the same shard regardless of bug/seed, and that
  // shard's ResultCache answers repeats byte-identically to a single daemon.
  const std::string owner = ring_.OwnerOf(trace_hash);
  RouterJob& ref = *job;
  jobs_.emplace(ref.id, std::move(job));
  if (owner.empty()) {
    // No shard alive: journal the admission (shard-less) and hold the job;
    // AttachShard re-poses it.
    journal_.AppendDispatch(DispatchRecord{ref.id, ref.key, ref.trace_hash, "",
                                           /*redispatch=*/false, ref.payload});
    return;
  }
  journal_.AppendDispatch(DispatchRecord{ref.id, ref.key, ref.trace_hash, owner,
                                         /*redispatch=*/false, ref.payload});
  DispatchTo(ref, *shards_.at(owner));
}

void ClusterRouter::HandleStreamOpen(ClientConn& conn, std::string_view payload) {
  StreamOpenMsg msg;
  if (!DecodeStreamOpen(payload, &msg)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    RejectSubmit(conn, ServeError::kMalformedRequest, "stream-open payload does not decode");
    return;
  }
  const std::string owner =
      ring_.OwnerOf(StreamShardKey(msg.bug_id, msg.seed, msg.token));
  if (owner.empty()) {
    // A stranded submit can wait for a shard; a stream cannot — its bytes
    // would pile up in the router, which deliberately holds no window.
    RejectSubmit(conn, ServeError::kQueueFull,
                 "no shards attached; retry the stream open with backoff");
    return;
  }
  auto job = std::make_unique<RouterJob>();
  job->id = next_job_id_++;
  job->client = conn.id;
  job->is_stream = true;
  conn.accept_fifo.push_back(job->id);
  stats_.jobs_routed++;
  metrics_.jobs_routed->Inc();
  Shard& shard = *shards_.at(owner);
  AppendServeFrame(&shard.outbox, ServeFrame::kStreamOpen, std::string(payload));
  shard.accept_fifo.push_back(job->id);
  job->shard = owner;
  jobs_.emplace(job->id, std::move(job));
}

void ClusterRouter::HandleStreamData(ClientConn& conn, std::string_view payload) {
  uint64_t rid = 0;
  std::string_view chunk;
  if (!DecodeStreamData(payload, &rid, &chunk)) {
    return;
  }
  auto it = jobs_.find(rid);
  if (it == jobs_.end() || !it->second->is_stream || it->second->client != conn.id ||
      it->second->backend_job_id == 0 || it->second->shard.empty()) {
    return;  // Session gone (shard died) or never accepted; bytes are moot.
  }
  auto sit = shards_.find(it->second->shard);
  if (sit == shards_.end()) {
    return;
  }
  // Rewrite the varint job-id prefix into the backend's namespace; the chunk
  // bytes are forwarded untouched.
  AppendServeFrame(&sit->second->outbox, ServeFrame::kStreamData,
                   EncodeStreamData(it->second->backend_job_id, chunk));
}

void ClusterRouter::HandleStreamClose(ClientConn& conn, std::string_view payload) {
  StreamCloseMsg msg;
  if (!DecodeStreamClose(payload, &msg)) {
    return;
  }
  auto it = jobs_.find(msg.job_id);
  if (it == jobs_.end() || !it->second->is_stream || it->second->client != conn.id) {
    return;
  }
  RouterJob& job = *it->second;
  if (auto sit = shards_.find(job.shard); sit != shards_.end()) {
    if (job.backend_job_id != 0) {
      AppendServeFrame(&sit->second->outbox, ServeFrame::kStreamClose,
                       EncodeStreamClose(StreamCloseMsg{job.backend_job_id}));
      sit->second->by_backend_id.erase(job.backend_job_id);
    }
  }
  FinishJob(msg.job_id);
}

void ClusterRouter::RejectSubmit(ClientConn& conn, ServeError code,
                                 const std::string& message) {
  auto job = std::make_unique<RouterJob>();
  job->id = next_job_id_++;
  job->client = conn.id;
  job->accept_ready = true;
  job->terminal = true;
  job->response_kind = ServeFrame::kError;
  // Job id 0 on the wire: the client correlates pre-admission rejections
  // FIFO, exactly as against a single daemon.
  job->response_payload = EncodeError(ErrorMsg{0, code, message});
  conn.accept_fifo.push_back(job->id);
  jobs_.emplace(job->id, std::move(job));
  FlushClientFifo(conn);
}

void ClusterRouter::DispatchTo(RouterJob& job, Shard& shard) {
  AppendServeFrame(&shard.outbox, ServeFrame::kSubmit, job.payload);
  shard.accept_fifo.push_back(job.id);
  shard.inflight++;
  job.shard = shard.name;
  job.backend_job_id = 0;
}

void ClusterRouter::ReadShard(Shard& shard) {
  for (;;) {
    const std::string chunk = shard.transport->Read(kReadChunk);
    if (chunk.empty()) {
      break;
    }
    shard.decoder.Feed(chunk);
  }
  DecodedFrame frame;
  for (;;) {
    switch (shard.decoder.Next(&frame)) {
      case FrameDecoder::Status::kNeedMore:
        return;
      case FrameDecoder::Status::kFrame:
        HandleShardFrame(shard, std::move(frame));
        break;
      case FrameDecoder::Status::kCorruptFrame:
        stats_.corrupt_frames++;
        metrics_.corrupt_frames->Inc();
        break;
      case FrameDecoder::Status::kBadStream:
        // A shard speaking a different protocol is as dead as a crashed one.
        shard.transport->Close();
        return;
    }
  }
}

void ClusterRouter::HandleShardFrame(Shard& shard, DecodedFrame frame) {
  switch (frame.kind) {
    case ServeFrame::kAccepted: {
      AcceptedMsg msg;
      if (!DecodeAccepted(frame.payload, &msg) || shard.accept_fifo.empty()) {
        return;
      }
      const uint64_t rid = shard.accept_fifo.front();
      shard.accept_fifo.pop_front();
      auto it = jobs_.find(rid);
      if (it == jobs_.end()) {
        return;
      }
      RouterJob& job = *it->second;
      job.backend_job_id = msg.job_id;
      shard.by_backend_id[msg.job_id] = rid;
      if (job.accept_ready || job.accept_sent) {
        // Failover duplicate: the client already has (or will get) the first
        // shard's accept; only the id mapping moves to the successor.
        return;
      }
      msg.job_id = rid;  // Rewrite into the router's id namespace.
      job.accept_ready = true;
      job.response_kind = ServeFrame::kAccepted;
      job.response_payload = EncodeAccepted(msg);
      if (auto c = clients_.find(job.client); c != clients_.end()) {
        FlushClientFifo(*c->second);
      }
      return;
    }
    case ServeFrame::kError: {
      ErrorMsg msg;
      if (!DecodeError(frame.payload, &msg)) {
        return;
      }
      uint64_t rid = 0;
      if (msg.job_id == 0) {
        // Pre-admission rejection (queue full, invalid, unknown bug):
        // answers the shard's oldest unanswered dispatch.
        if (shard.accept_fifo.empty()) {
          return;
        }
        rid = shard.accept_fifo.front();
        shard.accept_fifo.pop_front();
      } else {
        auto bit = shard.by_backend_id.find(msg.job_id);
        if (bit == shard.by_backend_id.end()) {
          return;
        }
        rid = bit->second;
        if (auto jit = jobs_.find(rid);
            jit != jobs_.end() && jit->second->is_stream) {
          // Stream-session error (oracle admission rejected, unusable
          // stream bytes): forwarded under the router's id. The mapping
          // stays — the backend may hold the session open for more data.
          msg.job_id = rid;
          SendToClient(jit->second->client, ServeFrame::kError, EncodeError(msg));
          return;
        }
        shard.by_backend_id.erase(bit);
      }
      auto it = jobs_.find(rid);
      if (it == jobs_.end()) {
        return;
      }
      RouterJob& job = *it->second;
      if (shard.inflight > 0) {
        shard.inflight--;
      }
      // A rejected job is as complete as a diagnosed one: journal it so a
      // restarted coordinator does not re-pose a submission a shard refused.
      journal_.AppendComplete(CompleteRecord{rid, false});
      if (!job.accept_sent) {
        // The error *is* the admission response; job id 0 on the wire keeps
        // the client's FIFO correlation (and its queue-full retry) intact.
        msg.job_id = 0;
        job.accept_ready = true;
        job.terminal = true;
        job.response_kind = ServeFrame::kError;
        job.response_payload = EncodeError(msg);
        if (auto c = clients_.find(job.client); c != clients_.end()) {
          FlushClientFifo(*c->second);
        }
      } else {
        msg.job_id = rid;
        SendToClient(job.client, ServeFrame::kError, EncodeError(msg));
        FinishJob(rid);
      }
      return;
    }
    case ServeFrame::kProgress: {
      ProgressMsg msg;
      if (!DecodeProgress(frame.payload, &msg)) {
        return;
      }
      auto bit = shard.by_backend_id.find(msg.job_id);
      if (bit == shard.by_backend_id.end()) {
        return;
      }
      auto it = jobs_.find(bit->second);
      if (it == jobs_.end()) {
        return;
      }
      RouterJob& job = *it->second;
      msg.job_id = job.id;
      const std::string body = EncodeProgress(msg);
      if (job.accept_sent) {
        SendToClient(job.client, ServeFrame::kProgress, body);
      } else {
        job.deferred.emplace_back(ServeFrame::kProgress, body);
      }
      return;
    }
    case ServeFrame::kResult: {
      ResultMsg msg;
      if (!DecodeResult(frame.payload, &msg)) {
        return;
      }
      auto bit = shard.by_backend_id.find(msg.job_id);
      if (bit == shard.by_backend_id.end()) {
        return;
      }
      const uint64_t rid = bit->second;
      auto it = jobs_.find(rid);
      if (it == jobs_.end()) {
        shard.by_backend_id.erase(bit);
        return;
      }
      RouterJob& job = *it->second;
      if (job.is_stream) {
        // A session's diagnosis result: forward it, keep the session — the
        // id mapping must survive (the window can fire further oracles, and
        // data/close frames still need routing). Never journaled: sessions
        // are not re-posable (see RouterJob::is_stream).
        stats_.completions++;
        metrics_.completions->Inc();
        msg.job_id = rid;
        const std::string body = EncodeResult(msg);
        if (job.accept_sent) {
          SendToClient(job.client, ServeFrame::kResult, body);
        } else {
          job.deferred.emplace_back(ServeFrame::kResult, body);
        }
        return;
      }
      shard.by_backend_id.erase(bit);
      if (shard.inflight > 0) {
        shard.inflight--;
      }
      journal_.AppendComplete(CompleteRecord{rid, msg.reproduced});
      stats_.completions++;
      metrics_.completions->Inc();
      msg.job_id = rid;
      const std::string body = EncodeResult(msg);
      job.result_seen = true;
      if (job.accept_sent) {
        SendToClient(job.client, ServeFrame::kResult, body);
        FinishJob(rid);
      } else {
        job.deferred.emplace_back(ServeFrame::kResult, body);
        if (auto c = clients_.find(job.client); c != clients_.end()) {
          FlushClientFifo(*c->second);
        }
      }
      return;
    }
    case ServeFrame::kThrottle: {
      // Backpressure toward the sender: rewrite the id and pass it through —
      // the router buffers no window, so the backend's verdict is the one
      // that matters.
      ThrottleMsg msg;
      if (!DecodeThrottle(frame.payload, &msg)) {
        return;
      }
      auto bit = shard.by_backend_id.find(msg.job_id);
      if (bit == shard.by_backend_id.end()) {
        return;
      }
      auto it = jobs_.find(bit->second);
      if (it == jobs_.end()) {
        return;
      }
      msg.job_id = bit->second;
      SendToClient(it->second->client, ServeFrame::kThrottle, EncodeThrottle(msg));
      return;
    }
    case ServeFrame::kStatsReply:
    case ServeFrame::kSubmit:
    case ServeFrame::kStatsRequest:
    default:
      return;  // Unknown / unexpected kinds: framing already advanced.
  }
}

void ClusterRouter::OnShardDead(const std::string& name) {
  auto sit = shards_.find(name);
  if (sit == shards_.end()) {
    return;
  }
  stats_.failovers++;
  metrics_.failovers->Inc();
  shards_.erase(sit);
  MetricRegistry::Global().GetGauge("cluster.shard_depth." + name)->Set(0);
  if (ring_.RemoveShard(name)) {
    journal_.AppendRingEpoch(RingEpochRecord{ring_.epoch(), ring_.shards()});
  }
  // Re-pose every job the dead shard owned. With the shard off the ring,
  // OwnerOf(trace_hash) *is* the failover successor; engine determinism
  // makes the re-run result byte-identical to the one that was lost. Jobs
  // whose accept already reached the client keep their router job id — the
  // successor's duplicate accept is swallowed in HandleShardFrame.
  std::vector<uint64_t> dead_streams;
  for (auto& [rid, job] : jobs_) {
    if (job->shard != name) {
      continue;
    }
    if (job->is_stream) {
      // The session's window died with the shard; there is nothing to
      // re-pose. The client learns its session is gone and reopens.
      ErrorMsg err{job->id, ServeError::kInvalidTrace,
                   "stream session lost: shard '" + name + "' died"};
      if (job->accept_sent) {
        SendToClient(job->client, ServeFrame::kError, EncodeError(err));
        dead_streams.push_back(rid);
      } else {
        err.job_id = 0;  // FIFO-correlated, like any pre-admission reject.
        job->accept_ready = true;
        job->terminal = true;
        job->response_kind = ServeFrame::kError;
        job->response_payload = EncodeError(err);
      }
      continue;
    }
    job->shard.clear();
    job->backend_job_id = 0;
    job->redispatched = true;
    const std::string owner = ring_.OwnerOf(job->trace_hash);
    if (owner.empty()) {
      continue;  // Stranded until a shard attaches.
    }
    stats_.redispatches++;
    metrics_.redispatches->Inc();
    journal_.AppendDispatch(DispatchRecord{job->id, job->key, job->trace_hash,
                                           owner, /*redispatch=*/true,
                                           job->payload});
    DispatchTo(*job, *shards_.at(owner));
  }
  for (uint64_t rid : dead_streams) {
    FinishJob(rid);
  }
}

void ClusterRouter::DispatchStranded() {
  for (auto& [rid, job] : jobs_) {
    if (!job->shard.empty() || job->terminal || job->is_stream) {
      continue;
    }
    const std::string owner = ring_.OwnerOf(job->trace_hash);
    if (owner.empty()) {
      return;
    }
    if (job->redispatched) {
      stats_.redispatches++;
      metrics_.redispatches->Inc();
    }
    journal_.AppendDispatch(DispatchRecord{job->id, job->key, job->trace_hash,
                                           owner, job->redispatched,
                                           job->payload});
    DispatchTo(*job, *shards_.at(owner));
  }
}

void ClusterRouter::FlushClientFifo(ClientConn& conn) {
  while (!conn.accept_fifo.empty()) {
    auto it = jobs_.find(conn.accept_fifo.front());
    if (it == jobs_.end()) {
      conn.accept_fifo.pop_front();  // Stale (job finished elsewhere).
      continue;
    }
    RouterJob& job = *it->second;
    if (!job.accept_ready) {
      return;  // Head-of-line admission still pending on its shard.
    }
    if (!job.accept_sent) {
      SendToClient(conn.id, job.response_kind, job.response_payload);
      job.accept_sent = true;
      for (auto& [kind, body] : job.deferred) {
        SendToClient(conn.id, kind, body);
      }
      job.deferred.clear();
    }
    conn.accept_fifo.pop_front();
    if (job.terminal || job.result_seen) {
      FinishJob(job.id);
    }
  }
}

void ClusterRouter::FinishJob(uint64_t job_id) {
  jobs_.erase(job_id);
}

void ClusterRouter::FlushOutboxes() {
  for (auto& [id, conn] : clients_) {
    if (conn->dead || conn->outbox_sent >= conn->outbox.size()) {
      continue;
    }
    const std::string_view rest =
        std::string_view(conn->outbox).substr(conn->outbox_sent);
    conn->outbox_sent += conn->transport->Write(rest);
    if (conn->outbox_sent >= conn->outbox.size()) {
      conn->outbox.clear();
      conn->outbox_sent = 0;
    } else if (conn->outbox_sent > 64 * 1024 &&
               conn->outbox_sent * 2 >= conn->outbox.size()) {
      conn->outbox.erase(0, conn->outbox_sent);
      conn->outbox_sent = 0;
    }
  }
  for (auto& [name, shard] : shards_) {
    if (shard->outbox_sent >= shard->outbox.size()) {
      continue;
    }
    const std::string_view rest =
        std::string_view(shard->outbox).substr(shard->outbox_sent);
    shard->outbox_sent += shard->transport->Write(rest);
    if (shard->outbox_sent >= shard->outbox.size()) {
      shard->outbox.clear();
      shard->outbox_sent = 0;
    } else if (shard->outbox_sent > 64 * 1024 &&
               shard->outbox_sent * 2 >= shard->outbox.size()) {
      shard->outbox.erase(0, shard->outbox_sent);
      shard->outbox_sent = 0;
    }
  }
}

void ClusterRouter::UpdateDepthGauges() {
  metrics_.journal_appends->Set(static_cast<int64_t>(journal_.appends()));
  metrics_.journal_fsyncs->Set(static_cast<int64_t>(journal_.fsyncs()));
  metrics_.journal_bytes->Set(static_cast<int64_t>(journal_.bytes_written()));
  size_t min_depth = 0, max_depth = 0;
  bool first = true;
  MetricRegistry& reg = MetricRegistry::Global();
  for (const auto& [name, shard] : shards_) {
    reg.GetGauge("cluster.shard_depth." + name)
        ->Set(static_cast<int64_t>(shard->inflight));
    if (first || shard->inflight < min_depth) {
      min_depth = shard->inflight;
    }
    if (first || shard->inflight > max_depth) {
      max_depth = shard->inflight;
    }
    first = false;
  }
  metrics_.ring_imbalance->Set(static_cast<int64_t>(max_depth - min_depth));
}

void ClusterRouter::SendToClient(uint64_t client_id, ServeFrame kind,
                                 const std::string& payload) {
  auto it = clients_.find(client_id);
  if (it == clients_.end() || it->second->dead) {
    return;  // Subscriber gone; the journal still completed the job.
  }
  AppendServeFrame(&it->second->outbox, kind, payload);
}

StatsMsg ClusterRouter::BuildStats() const {
  StatsMsg msg;
  msg.jobs_submitted = stats_.jobs_routed;
  msg.jobs_completed = stats_.completions;
  msg.rejected_invalid = stats_.rejected_invalid;
  msg.corrupt_frames = stats_.corrupt_frames;
  size_t dispatched = 0, stranded = 0;
  for (const auto& [rid, job] : jobs_) {
    if (job->terminal) {
      continue;
    }
    (job->shard.empty() ? stranded : dispatched)++;
  }
  msg.queued_jobs = stranded;
  msg.running_jobs = dispatched;
  msg.metrics_yaml = MetricRegistry::Global().Snapshot().ToYaml();
  return msg;
}

}  // namespace rose
