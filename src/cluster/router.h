// rose::cluster — the serve cluster's router/coordinator (DESIGN.md §15).
//
// A single rose_served daemon is one JobQueue, one ResultCache, one process
// ceiling on jobs/sec. ClusterRouter scales the same service horizontally:
// it speaks the serve wire protocol unchanged to clients, shards every
// submission by its canonical trace hash onto a consistent-hash ring of
// `rose_served` backends, forwards the submit payload verbatim (the RTRC
// blob is never decoded or re-encoded in transit), and streams each
// backend's kAccepted/kProgress/kResult frames back with job ids rewritten
// into the router's namespace. Clients need no changes — a ServeClient
// cannot tell a router from a daemon.
//
// Placement by trace hash means a resubmitted dump always lands on the
// shard whose ResultCache already holds its answer, so clustered cache hits
// are byte-identical to single-daemon ones (hash-owner forwarding).
//
// Every consequential decision — ring epochs, dispatches (with the full
// submit payload), completions — goes through the coordinator journal
// *before* it takes effect. When a shard dies mid-job (transport EOF or an
// explicit DetachShard), its in-flight jobs are re-posed from those records
// to the ring successor; the diagnosis engine is deterministic, so the
// re-run result is byte-identical to what the dead shard would have
// produced. A restarted router replays the journal and re-dispatches
// whatever never completed.
//
// Response ordering: the serve protocol answers submissions FIFO per
// connection. Submissions from one client fan out to different shards whose
// answers race, so the router holds each admission response until every
// earlier submission of that client has been answered — per-client FIFO is
// preserved end to end. Progress/result frames for a job are buffered until
// its admission response has been flushed (clients discard frames for jobs
// they have not seen accepted).
//
// Threading: like DiagnosisService, Poll() is the only entry point and runs
// on one thread; the backends do their own worker-pool threading behind
// their transports.
#ifndef SRC_CLUSTER_ROUTER_H_
#define SRC_CLUSTER_ROUTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/hash_ring.h"
#include "src/cluster/journal.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/serve/protocol.h"

namespace rose {

struct RouterConfig {
  // Coordinator journal file; empty = in-memory only (no durability, but
  // failover re-dispatch still works from the mirrored in-process state).
  std::string journal_path;
  int ring_vnodes = HashRing::kDefaultVnodes;
};

struct ClusterStats {
  uint64_t jobs_routed = 0;     // Submissions dispatched to a shard.
  uint64_t completions = 0;     // kResult frames harvested from shards.
  uint64_t failovers = 0;       // Shard deaths observed.
  uint64_t redispatches = 0;    // Jobs re-posed to a ring successor.
  uint64_t recovered_jobs = 0;  // Journal-replayed pending jobs readopted.
  uint64_t rejected_invalid = 0;
  uint64_t corrupt_frames = 0;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(RouterConfig config = {});

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  // Adopts the server end of a client connection (greeted on next Poll()).
  void AttachClient(std::shared_ptr<Transport> transport);

  // Adds a backend to the ring under `name` and journals the new epoch.
  // `transport` is the client end of a connection whose peer a
  // DiagnosisService has Attach()ed. Stranded jobs (no shard was alive when
  // they were admitted or recovered) are dispatched to the ring owner.
  void AttachShard(const std::string& name, std::shared_ptr<Transport> transport);

  // Treats `name` as dead right now: drops it from the ring, journals the
  // epoch, and re-dispatches its in-flight jobs to the ring successor. The
  // same path runs automatically when a shard's transport reaches EOF.
  void DetachShard(const std::string& name);

  // One pump cycle: read clients, admit + dispatch, read shards, harvest
  // and forward responses, detect dead shards, flush every outbox, pump
  // journal replication.
  void Poll();

  // No in-flight jobs and every outgoing byte accepted by its transport.
  bool idle() const;

  const ClusterStats& stats() const { return stats_; }
  const HashRing& ring() const { return ring_; }
  ClusterJournal& journal() { return journal_; }
  size_t inflight_jobs() const { return jobs_.size(); }

  // Replicate the coordinator journal to a follower over `transport`
  // (history first, then every new append; pumped by Poll()).
  void AttachJournalFollower(std::shared_ptr<Transport> transport) {
    journal_.AttachFollower(std::move(transport));
  }

  // The kStatsReply body a client's RequestStats() receives: cluster-level
  // counters in the ServeStats slots plus the process-wide obs snapshot.
  StatsMsg BuildStats() const;

 private:
  struct ClientConn {
    uint64_t id = 0;
    std::shared_ptr<Transport> transport;
    FrameDecoder decoder;
    std::string outbox;
    size_t outbox_sent = 0;
    bool dead = false;
    // Router job ids in submission order — the FIFO the admission responses
    // must be flushed in.
    std::deque<uint64_t> accept_fifo;
  };

  struct Shard {
    std::string name;
    std::shared_ptr<Transport> transport;
    FrameDecoder decoder;
    std::string outbox;
    size_t outbox_sent = 0;
    // Router job ids in dispatch order — correlates the backend's FIFO
    // admission responses.
    std::deque<uint64_t> accept_fifo;
    // Backend job id -> router job id for kProgress/kResult correlation.
    std::map<uint64_t, uint64_t> by_backend_id;
    size_t inflight = 0;
  };

  struct RouterJob {
    uint64_t id = 0;
    uint64_t client = 0;  // 0 = no subscriber (recovered / client gone).
    uint64_t key = 0;
    uint64_t trace_hash = 0;
    std::string payload;  // Verbatim submit payload (kept for re-dispatch).
    std::string shard;    // Current owner ("" = stranded, awaiting a shard).
    uint64_t backend_job_id = 0;
    // Stream session (kStreamOpen) instead of a one-shot submit: data/close
    // frames route through the id mapping, the session outlives its results
    // (a window can fire several oracles), and failover cannot re-pose it —
    // the dead shard's window bytes are gone, so the session errors out.
    // Stream sessions are never journaled (documented open follow-up in
    // docs/wire_protocol.md).
    bool is_stream = false;
    bool redispatched = false;
    // Admission response state: ready = received (or router-local reject),
    // sent = flushed to the client in FIFO turn.
    bool accept_ready = false;
    bool accept_sent = false;
    bool terminal = false;  // The ready response (or result) ends the job.
    ServeFrame response_kind = ServeFrame::kAccepted;
    std::string response_payload;
    // Progress/result frames received before the admission response was
    // flushed (clients ignore frames for jobs not yet accepted).
    std::vector<std::pair<ServeFrame, std::string>> deferred;
    bool result_seen = false;
  };

  void ReadClient(ClientConn& conn);
  void HandleSubmit(ClientConn& conn, std::string payload);
  // Stream forwarding: opens shard by FNV(bug id, seed, token) — the trace
  // hash does not exist yet at open time — then data/close frames follow the
  // session's id mapping with the varint job-id prefix rewritten in place.
  void HandleStreamOpen(ClientConn& conn, std::string_view payload);
  void HandleStreamData(ClientConn& conn, std::string_view payload);
  void HandleStreamClose(ClientConn& conn, std::string_view payload);
  // Queues a router-local rejection in the client's FIFO turn.
  void RejectSubmit(ClientConn& conn, ServeError code, const std::string& message);
  void ReadShard(Shard& shard);
  void HandleShardFrame(Shard& shard, DecodedFrame frame);
  // Appends the job's submit frame to `shard`'s outbox and bookkeeps.
  void DispatchTo(RouterJob& job, Shard& shard);
  void OnShardDead(const std::string& name);
  // Dispatches jobs with no owner to the current ring owner (after a shard
  // attaches, or when failover left the ring empty).
  void DispatchStranded();
  // Flushes ready admission responses (and their deferred frames) in FIFO
  // order; erases finished jobs.
  void FlushClientFifo(ClientConn& conn);
  void FinishJob(uint64_t job_id);
  void FlushOutboxes();
  void UpdateDepthGauges();
  void SendToClient(uint64_t client_id, ServeFrame kind, const std::string& payload);

  RouterConfig config_;
  ClusterStats stats_;

  struct ClusterMetrics {
    Counter* jobs_routed;
    Counter* completions;
    Counter* failovers;
    Counter* redispatches;
    Counter* recovered_jobs;
    Counter* rejects_invalid;
    Counter* corrupt_frames;
    Gauge* journal_appends;
    Gauge* journal_fsyncs;
    Gauge* journal_bytes;
    Gauge* ring_imbalance;
  };
  ClusterMetrics metrics_;

  ClusterJournal journal_;
  HashRing ring_;
  std::map<uint64_t, std::unique_ptr<ClientConn>> clients_;
  std::map<std::string, std::unique_ptr<Shard>> shards_;
  std::map<uint64_t, std::unique_ptr<RouterJob>> jobs_;
  uint64_t next_client_id_ = 1;
  uint64_t next_job_id_ = 1;
};

}  // namespace rose

#endif  // SRC_CLUSTER_ROUTER_H_
