#include "src/common/parallel.h"

#include "src/obs/metrics.h"

namespace rose {

namespace {

// rose::obs self-metrics (docs/metrics.md "parallel.*"): job throughput,
// per-job latency, and queue depth — parallel.job_ns's sum over wall time ×
// thread count gives worker-pool utilization. Write-only: scheduling never
// reads these back.
struct PoolMetrics {
  Counter* jobs_enqueued;
  Counter* jobs_executed;
  Gauge* queue_depth;
  Histogram* job_ns;
};

PoolMetrics& Metrics() {
  static PoolMetrics* m = [] {
    MetricRegistry& reg = MetricRegistry::Global();
    auto* metrics = new PoolMetrics();
    metrics->jobs_enqueued = reg.GetCounter("parallel.jobs_enqueued");
    metrics->jobs_executed = reg.GetCounter("parallel.jobs_executed");
    metrics->queue_depth = reg.GetGauge("parallel.queue_depth");
    metrics->job_ns = reg.GetHistogram("parallel.job_ns");
    return metrics;
  }();
  return *m;
}

}  // namespace

WorkerPool::WorkerPool(int threads) {
  const int count = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkerPool::Enqueue(std::function<void()> job) {
  PoolMetrics& metrics = Metrics();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    metrics.queue_depth->Set(static_cast<int64_t>(queue_.size()));
  }
  metrics.jobs_enqueued->Inc();
  wake_.notify_one();
}

int WorkerPool::DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
    {
      PoolMetrics& metrics = Metrics();
      ScopedTimer timer(metrics.job_ns);
      job();
      metrics.jobs_executed->Inc();
    }
  }
}

}  // namespace rose
