#include "src/common/parallel.h"

namespace rose {

WorkerPool::WorkerPool(int threads) {
  const int count = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkerPool::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

int WorkerPool::DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace rose
