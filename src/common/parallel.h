// rose::parallel — a fixed-size worker pool plus an ordered batch primitive,
// built for deterministic speculative execution of independent simulation
// runs (diagnosis candidates, confirmation reruns).
//
// Determinism model: callers pre-assign every task its inputs (schedule,
// seed) *before* submission, submit a batch, and then consume results
// strictly in submission order. Because each task is a pure function of its
// pre-assigned inputs, the consumed result stream is identical whether the
// batch runs on one thread or many — parallelism only changes wall-clock
// time, never outcomes. Abandon() lets a consumer that has seen enough
// (budget reached, bug confirmed, early-abandon) drop all not-yet-started
// tasks; tasks already running finish and their results are discarded.
#ifndef SRC_COMMON_PARALLEL_H_
#define SRC_COMMON_PARALLEL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace rose {

// Fixed-size pool of worker threads draining a FIFO job queue. Jobs are
// plain closures; lifetime of anything they capture is the submitter's
// responsibility (OrderedBatch below handles that via shared state).
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues a job. Never blocks; jobs run in FIFO submission order as
  // workers free up. Must not be called after destruction begins.
  void Enqueue(std::function<void()> job);

  // The machine's hardware concurrency, with a floor of 1 (the C++ runtime
  // may report 0 when it cannot tell).
  static int DefaultParallelism();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// A batch of tasks with strictly ordered result consumption.
//
// Serial mode (pool == nullptr or a pool with <= 1 thread and `inline_when_serial`):
// nothing runs until Get(i) is called, which executes task i inline — the
// exact lazy behavior of a serial loop, including never executing tasks the
// consumer abandons. Parallel mode: all tasks are enqueued up front
// (speculatively) and Get(i) blocks until slot i completes.
//
// Contract: Get(i) must be called for i = 0, 1, 2, ... in order, and never
// after Abandon(). The destructor abandons outstanding tasks and waits for
// in-flight ones, so task closures may safely reference the caller's stack.
template <typename R>
class OrderedBatch {
 public:
  OrderedBatch(WorkerPool* pool, std::vector<std::function<R()>> tasks)
      : state_(std::make_shared<State>()) {
    state_->tasks = std::move(tasks);
    state_->results.resize(state_->tasks.size());
    state_->status.assign(state_->tasks.size(), kPending);
    if (pool != nullptr && pool->thread_count() > 1) {
      for (size_t i = 0; i < state_->tasks.size(); i++) {
        pool->Enqueue([state = state_, i] { RunSlot(*state, i); });
      }
      parallel_ = true;
    }
  }

  ~OrderedBatch() {
    Abandon();
    // Wait for in-flight tasks: their closures may reference our caller's
    // frame, which dies right after this destructor.
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->done_cv.wait(lock, [this] {
      for (uint8_t status : state_->status) {
        if (status == kRunning) {
          return false;
        }
      }
      return true;
    });
  }

  OrderedBatch(const OrderedBatch&) = delete;
  OrderedBatch& operator=(const OrderedBatch&) = delete;

  size_t size() const { return state_->tasks.size(); }

  // Result of task i. Serial mode: runs the task now. Parallel mode: blocks
  // until the speculative execution of slot i lands.
  R& Get(size_t i) {
    if (!parallel_) {
      if (state_->status[i] != kDone) {
        state_->results[i].emplace(state_->tasks[i]());
        state_->status[i] = kDone;
      }
      return *state_->results[i];
    }
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->done_cv.wait(lock, [&] { return state_->status[i] >= kDone; });
    if (state_->status[i] == kSkipped) {
      // Abandoned before it started (only reachable when the caller breaks
      // the consume-in-order contract); run it inline as a fallback.
      lock.unlock();
      state_->results[i].emplace(state_->tasks[i]());
      state_->status[i] = kDone;
    }
    return *state_->results[i];
  }

  // Drops every task that has not started. Safe to call repeatedly.
  void Abandon() {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->abandoned = true;
  }

 private:
  enum : uint8_t { kPending = 0, kRunning, kDone, kSkipped };

  struct State {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::function<R()>> tasks;
    std::vector<std::optional<R>> results;
    std::vector<uint8_t> status;
    bool abandoned = false;
  };

  static void RunSlot(State& state, size_t i) {
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (state.abandoned || state.status[i] != kPending) {
        state.status[i] = kSkipped;
        state.done_cv.notify_all();
        return;
      }
      state.status[i] = kRunning;
    }
    R result = state.tasks[i]();
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.results[i].emplace(std::move(result));
      state.status[i] = kDone;
      state.done_cv.notify_all();
    }
  }

  std::shared_ptr<State> state_;
  bool parallel_ = false;
};

}  // namespace rose

#endif  // SRC_COMMON_PARALLEL_H_
