#include "src/common/rng.h"

#include <cmath>

namespace rose {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const auto ret = static_cast<uint64_t>(static_cast<double>(n_) *
                                         std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return ret >= n_ ? n_ - 1 : ret;
}

}  // namespace rose
