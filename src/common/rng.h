// Deterministic pseudo-random number generation for the simulator.
//
// Every simulation run is seeded explicitly; all nondeterminism in Rose's
// testbed (message latency jitter, workload inter-arrival times, nemesis
// choices) flows through one of these generators so that a (seed, schedule)
// pair fully determines an execution.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace rose {

// SplitMix64: used to expand a user seed into xoshiro state.
// Reference: Sebastiano Vigna, public domain.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b9u) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Fork a child generator whose stream is independent of this one.
  Rng Fork() { return Rng(Next() ^ 0xd2b74407b1ce6e93ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Zipfian distribution over [0, n) with parameter theta, as used by YCSB.
// Implementation follows Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases" (the classic YCSB zipfian generator).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);

  uint64_t item_count() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace rose

#endif  // SRC_COMMON_RNG_H_
