#include "src/common/strings.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace rose {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    begin++;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    end--;
  }
  return s.substr(begin, end - begin);
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  bool negative = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    negative = s[0] == '-';
    s.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseUint64(s, &magnitude)) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(magnitude) : static_cast<int64_t>(magnitude);
  return true;
}

}  // namespace rose
