// Small string helpers shared across Rose modules.
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace rose {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view needle);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Parses a non-negative integer; returns false on malformed input.
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace rose

#endif  // SRC_COMMON_STRINGS_H_
