#include "src/diagnose/engine.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/strings.h"

namespace rose {

uint64_t DeriveRunSeed(uint64_t base_seed, uint64_t schedule_hash, uint32_t run_index) {
  uint64_t state = base_seed;
  uint64_t seed = SplitMix64(state);
  state = seed ^ schedule_hash;
  seed = SplitMix64(state);
  state = seed ^ run_index;
  return SplitMix64(state);
}

DiagnosisEngine::DiagnosisEngine(TraceView production, const Profile* profile,
                                 const BinaryInfo* binary, ScheduleRunner runner,
                                 DiagnosisConfig config)
    : production_(production), profile_(profile), binary_(binary),
      runner_(std::move(runner)), config_(std::move(config)),
      production_index_(production), causal_(production),
      level2_cap_(config_.level2_budget), level3_cap_(config_.max_schedules) {
  feasibility_ = FeasibilityChecker(&causal_, production_);
  ExtractOptions options;
  options.use_benign_filter = config_.use_benign_filter;
  extraction_ = ExtractFaults(production_, *profile_, options);

  // The linter's known-node set: everything the production run spawned plus
  // the configured server nodes (amplification replicates onto those).
  LintOptions lint;
  for (NodeId node : config_.server_nodes) {
    lint.known_nodes.insert(node);
  }
  for (const TraceEvent& event : production_) {
    if (event.node != kNoNode) {
      lint.known_nodes.insert(event.node);
    }
  }
  linter_ = ScheduleLinter(std::move(lint));

  if (config_.parallelism > 1) {
    pool_ = std::make_unique<WorkerPool>(config_.parallelism);
  }

  MetricRegistry& reg = MetricRegistry::Global();
  metrics_.candidates_generated = reg.GetCounter("engine.candidates_generated");
  metrics_.pruned_invalid = reg.GetCounter("engine.candidates_pruned_invalid");
  metrics_.pruned_duplicate = reg.GetCounter("engine.candidates_pruned_duplicate");
  metrics_.causal_infeasible = reg.GetCounter("engine.causal_pruned_infeasible");
  metrics_.causal_commuted = reg.GetCounter("engine.causal_pruned_commuted");
  metrics_.confirmed = reg.GetCounter("engine.candidates_confirmed");
  metrics_.runs = reg.GetCounter("engine.runs");
  metrics_.speculation_misses = reg.GetCounter("engine.speculation_misses");
  metrics_.speculative_abandoned = reg.GetCounter("engine.speculative_abandoned");
  metrics_.confirm_early_abandons = reg.GetCounter("engine.confirm_early_abandons");
  metrics_.index_targeted = reg.GetCounter("engine.index_targeted");
  metrics_.index_fallback_flat = reg.GetCounter("engine.index_fallback_flat");
  metrics_.index_sweep_width = reg.GetHistogram("engine.index_sweep_width");
  for (int level = 1; level <= 3; level++) {
    const std::string prefix = "engine.level" + std::to_string(level);
    metrics_.level_candidates[level] = reg.GetCounter(prefix + ".candidates");
    metrics_.level_confirmed[level] = reg.GetCounter(prefix + ".confirmed");
    metrics_.level_causal_pruned[level] = reg.GetCounter(prefix + ".causal_pruned");
  }
  metrics_.level_candidates[0] = nullptr;  // Levels are 1..3; guarded at use.
  metrics_.level_confirmed[0] = nullptr;
  metrics_.level_causal_pruned[0] = nullptr;
  metrics_.wave_ns = reg.GetHistogram("engine.wave_ns");
  metrics_.confirm_ns = reg.GetHistogram("engine.confirm_ns");
}

ScheduledFault DiagnosisEngine::MakeScheduledFault(const CandidateFault& fault, int index,
                                                   bool with_index) const {
  ScheduledFault scheduled;
  scheduled.target_node = fault.node;
  if (config_.enforce_fault_order && index > 0) {
    scheduled.conditions.push_back(Condition::AfterFault(index - 1));
  }
  switch (fault.kind) {
    case FaultKind::kSyscallFailure:
      scheduled.kind = FaultKind::kSyscallFailure;
      scheduled.syscall.sys = fault.sys;
      scheduled.syscall.err = fault.err;
      scheduled.syscall.path_filter = fault.filename;
      scheduled.syscall.nth = 1;
      if (with_index && config_.indexing == DiagnosisConfig::IndexingMode::kContext) {
        if (fault.ctx_digest != 0) {
          // Aim at the recorded calling-context address: the index condition
          // arms the fault on exactly that invocation, and nth=1 fails the
          // same invocation at the same kernel boundary.
          scheduled.conditions.push_back(Condition::ExecutionIndex(
              fault.sys, fault.ctx_digest, static_cast<int32_t>(fault.ctx_seq),
              fault.filename));
          metrics_.index_targeted->Inc();
        } else {
          // Pre-index trace: this candidate degrades to flat targeting.
          metrics_.index_fallback_flat->Inc();
        }
      }
      break;
    case FaultKind::kProcessCrash:
      scheduled.kind = FaultKind::kProcessCrash;
      scheduled.conditions.push_back(Condition::AtTime(fault.ts));
      break;
    case FaultKind::kProcessPause:
      scheduled.kind = FaultKind::kProcessPause;
      scheduled.process.pause_duration = fault.pause_duration;
      scheduled.conditions.push_back(Condition::AtTime(fault.ts));
      break;
    case FaultKind::kNetworkPartition:
      scheduled.kind = FaultKind::kNetworkPartition;
      scheduled.network.group_a = fault.group_a;
      scheduled.network.group_b = fault.group_b;
      scheduled.network.duration = fault.nd_duration;
      scheduled.conditions.push_back(Condition::AtTime(fault.ts));
      break;
  }
  return scheduled;
}

namespace {

// Removes every kExecutionIndex condition, leaving the flat-targeting form
// of a context-mode schedule (DESIGN.md §14). Returns whether anything was
// stripped.
bool StripIndexConditions(FaultSchedule* schedule) {
  bool stripped = false;
  for (ScheduledFault& fault : schedule->faults) {
    auto it = std::remove_if(fault.conditions.begin(), fault.conditions.end(),
                             [](const Condition& cond) {
                               return cond.kind == Condition::Kind::kExecutionIndex;
                             });
    stripped = stripped || it != fault.conditions.end();
    fault.conditions.erase(it, fault.conditions.end());
  }
  return stripped;
}

}  // namespace

int DiagnosisEngine::PlannedScfSweepWidth(const CandidateFault& candidate) const {
  if (config_.indexing == DiagnosisConfig::IndexingMode::kContext &&
      candidate.ctx_digest != 0) {
    // Residual same-context window: seq-radius..seq+radius clamped >= 1.
    const int radius = std::max(config_.index_sweep_radius, 0);
    const int below = static_cast<int>(
        std::min<int64_t>(radius, static_cast<int64_t>(candidate.ctx_seq) - 1));
    return 1 + radius + std::max(below, 0);
  }
  int limit = config_.max_scf_sweep;
  if (candidate.filename.empty()) {
    const auto profiled = static_cast<int>(profile_->SyscallCount(candidate.sys));
    limit = std::min(config_.max_scf_sweep, std::max(profiled, 1));
  }
  return limit;
}

FaultSchedule DiagnosisEngine::BuildLevel1() const {
  FaultSchedule schedule;
  schedule.name = "level1";
  for (size_t i = 0; i < extraction_.faults.size(); i++) {
    schedule.faults.push_back(MakeScheduledFault(extraction_.faults[i], static_cast<int>(i)));
  }
  return schedule;
}

void DiagnosisEngine::Notify(DiagnosisProgress::Kind kind, const DiagnosisResult& result,
                             double rate, std::string detail) const {
  if (!config_.on_progress) {
    return;
  }
  DiagnosisProgress progress;
  progress.kind = kind;
  progress.level = notify_level_;
  progress.schedules_generated = result.schedules_generated;
  progress.total_runs = result.total_runs;
  progress.rate = rate;
  progress.detail = std::move(detail);
  config_.on_progress(progress);
}

double DiagnosisEngine::ConfirmBug(const FaultSchedule& schedule, DiagnosisResult* result) {
  ScopedTimer confirm_timer(metrics_.confirm_ns);
  const uint64_t hash = CanonicalHash(schedule);
  const uint32_t base_index = run_counters_[hash];
  // All reruns are independent, so they form one batch; seeds are
  // pre-assigned from the schedule's own run-index stream. Abandoning
  // in-flight work leaves the committed counter at the consumed count, so a
  // later re-confirmation of the same schedule draws fresh seeds.
  std::vector<std::function<ScheduleRunOutcome()>> tasks;
  tasks.reserve(static_cast<size_t>(config_.confirm_runs));
  for (int run = 0; run < config_.confirm_runs; run++) {
    const uint64_t seed = SeedFor(hash, base_index + static_cast<uint32_t>(run));
    // Reruns only answer "did the bug show?" — no window dump needed.
    tasks.push_back([this, &schedule, seed] {
      return runner_(ScheduleRunRequest{&schedule, seed, /*want_trace=*/false});
    });
  }
  OrderedBatch<ScheduleRunOutcome> batch(pool_.get(), std::move(tasks));

  int bug_runs = 0;
  int clean_runs = 0;
  uint32_t consumed = 0;
  for (int run = 0; run < config_.confirm_runs; run++) {
    if (clean_runs >= config_.confirm_abandon_after_clean) {
      // The target rate is already unreachable; stop early (paper line 26).
      batch.Abandon();
      metrics_.confirm_early_abandons->Inc();
      metrics_.speculative_abandoned->Inc(
          static_cast<uint64_t>(config_.confirm_runs) - consumed);
      run_counters_[hash] = base_index + consumed;
      return 0;
    }
    const ScheduleRunOutcome& outcome = batch.Get(static_cast<size_t>(run));
    consumed++;
    result->total_runs++;
    result->virtual_time += outcome.virtual_duration;
    if (outcome.bug) {
      bug_runs++;
    } else {
      clean_runs++;
    }
    Notify(DiagnosisProgress::Kind::kConfirmRun, *result,
           100.0 * static_cast<double>(bug_runs) / static_cast<double>(consumed), "");
  }
  run_counters_[hash] = base_index + consumed;
  return 100.0 * static_cast<double>(bug_runs) / static_cast<double>(config_.confirm_runs);
}

DiagnosisEngine::PlannedProbe DiagnosisEngine::PlanProbe(
    FaultSchedule schedule, bool allow_duplicate, bool causal_prune,
    std::map<uint64_t, uint32_t>* local_counts) {
  // Static pruning: a candidate that cannot fire as intended, or that is
  // canonically identical to one already executed, never reaches the runner.
  PlannedProbe probe;
  probe.schedule = std::move(schedule);
  if (HasErrors(linter_.Lint(probe.schedule))) {
    probe.action = PlannedProbe::Action::kPruneInvalid;
    return probe;
  }
  if (causal_prune && feasibility_.valid()) {
    // Happens-before pruning (DESIGN.md §12), before the hash/dedup step so
    // rejected candidates leave no mark on the dedup or seed state — the
    // pruned and unpruned engines stay byte-identical downstream.
    const FeasibilityReport report = feasibility_.Check(probe.schedule);
    if (report.verdict == FeasibilityVerdict::kInfeasible) {
      probe.action = PlannedProbe::Action::kPruneInfeasible;
      return probe;
    }
  }
  probe.hash = CanonicalHash(probe.schedule);
  probe.inserted_hash = executed_hashes_.insert(probe.hash).second;
  if (!probe.inserted_hash && !allow_duplicate) {
    probe.action = PlannedProbe::Action::kPruneDuplicate;
    return probe;
  }
  probe.action = PlannedProbe::Action::kRun;
  uint32_t in_wave = 0;
  if (local_counts != nullptr) {
    in_wave = (*local_counts)[probe.hash]++;
  }
  probe.tentative_index = run_counters_[probe.hash] + in_wave;
  return probe;
}

bool DiagnosisEngine::ConsumeProbe(PlannedProbe& probe, OrderedBatch<ScheduleRunOutcome>* batch,
                                   int level, DiagnosisResult* result,
                                   ScheduleRunOutcome* outcome_out) {
  if (probe.action == PlannedProbe::Action::kPruneInvalid) {
    result->schedules_pruned_invalid++;
    metrics_.pruned_invalid->Inc();
    return false;
  }
  if (probe.action == PlannedProbe::Action::kPruneDuplicate) {
    result->schedules_pruned_duplicate++;
    metrics_.pruned_duplicate->Inc();
    return false;
  }
  if (probe.action == PlannedProbe::Action::kPruneInfeasible) {
    result->schedules_pruned_infeasible++;
    metrics_.causal_infeasible->Inc();
    if (level >= 1 && level <= 3) {
      metrics_.level_causal_pruned[level]->Inc();
    }
    return false;
  }
  result->schedules_generated++;
  metrics_.candidates_generated->Inc();
  if (level >= 1 && level <= 3) {
    metrics_.level_candidates[level]->Inc();
  }
  notify_level_ = level;
  const uint32_t committed = run_counters_[probe.hash];
  ScheduleRunOutcome outcome;
  if (batch != nullptr && probe.batch_slot >= 0 && committed == probe.tentative_index) {
    // Each slot is consumed exactly once, so the batch's stored result can
    // be moved out instead of copying a whole trace window.
    outcome = std::move(batch->Get(static_cast<size_t>(probe.batch_slot)));
  } else {
    // Serial path, or the speculation missed: an intervening confirmation of
    // the same schedule advanced its run counter, so the pre-assigned seed
    // is stale. Re-run inline with the committed-index seed — this is what
    // keeps parallel results identical to serial ones.
    if (batch != nullptr && probe.batch_slot >= 0) {
      metrics_.speculation_misses->Inc();
    }
    outcome = runner_(ScheduleRunRequest{&probe.schedule, SeedFor(probe.hash, committed)});
  }
  run_counters_[probe.hash] = committed + 1;
  result->total_runs++;
  metrics_.runs->Inc();
  result->virtual_time += outcome.virtual_duration;
  const bool bug = outcome.bug;
  Notify(DiagnosisProgress::Kind::kCandidate, *result, bug ? 100.0 : 0.0,
         probe.schedule.Summary());
  if (outcome_out != nullptr) {
    *outcome_out = std::move(outcome);
  }
  if (!bug) {
    return false;
  }
  const double rate = ConfirmBug(probe.schedule, result);
  if (rate >= config_.target_replay_rate) {
    result->reproduced = true;
    result->schedule = probe.schedule;
    result->replay_rate = rate;
    result->level = level;
    metrics_.confirmed->Inc();
    if (level >= 1 && level <= 3) {
      metrics_.level_confirmed[level]->Inc();
    }
    return true;
  }
  saved_candidates_.push_back(Candidate{probe.schedule, rate, level});
  return false;
}

bool DiagnosisEngine::RunWave(const std::vector<FaultSchedule>& schedules, int level,
                              bool allow_duplicate, int budget, DiagnosisResult* result,
                              bool causal_prune) {
  // Chunked wave-fronts: speculation never runs more than one chunk ahead of
  // the in-order consumer, bounding wasted runs after a stop. Serially the
  // chunk size is 1, which is exactly the classic plan-run-decide loop.
  const size_t chunk =
      pool_ != nullptr ? static_cast<size_t>(pool_->thread_count()) * 2 : 1;
  size_t next = 0;
  while (next < schedules.size()) {
    ScopedTimer wave_timer(metrics_.wave_ns);
    const size_t count = std::min(chunk, schedules.size() - next);
    std::vector<PlannedProbe> probes;
    probes.reserve(count);
    std::map<uint64_t, uint32_t> local_counts;
    size_t runnable = 0;
    for (size_t i = 0; i < count; i++) {
      PlannedProbe probe =
          PlanProbe(schedules[next + i], allow_duplicate, causal_prune, &local_counts);
      if (probe.action == PlannedProbe::Action::kRun) {
        probe.batch_slot = static_cast<int>(runnable++);
      }
      probes.push_back(std::move(probe));
    }
    // Tasks reference the planned probes; `probes` is stable from here on.
    std::vector<std::function<ScheduleRunOutcome()>> tasks;
    tasks.reserve(runnable);
    for (const PlannedProbe& probe : probes) {
      if (probe.batch_slot >= 0) {
        tasks.push_back([this, &probe] {
          return runner_(
              ScheduleRunRequest{&probe.schedule, SeedFor(probe.hash, probe.tentative_index)});
        });
      }
    }
    OrderedBatch<ScheduleRunOutcome> batch(pool_.get(), std::move(tasks));

    for (size_t i = 0; i < probes.size(); i++) {
      const bool reproduced = ConsumeProbe(probes[i], &batch, level, result, nullptr);
      const bool budget_hit = budget > 0 && result->schedules_generated >= budget;
      if (reproduced || budget_hit) {
        // Abandoned probes must leave no trace: un-consumed hash insertions
        // are rolled back so later phases dedup exactly like the serial
        // engine, which never planned these candidates at all.
        batch.Abandon();
        metrics_.speculative_abandoned->Inc(probes.size() - (i + 1));
        for (size_t j = i + 1; j < probes.size(); j++) {
          if (probes[j].inserted_hash) {
            executed_hashes_.erase(probes[j].hash);
          }
        }
        return reproduced;
      }
    }
    next += count;
  }
  return false;
}

bool DiagnosisEngine::RunAndMaybeConfirm(const FaultSchedule& schedule, int level,
                                         DiagnosisResult* result,
                                         ScheduleRunOutcome* outcome_out,
                                         bool allow_duplicate) {
  PlannedProbe probe = PlanProbe(schedule, allow_duplicate, /*causal_prune=*/false, nullptr);
  return ConsumeProbe(probe, nullptr, level, result, outcome_out);
}

std::pair<bool, bool> DiagnosisEngine::ProcessTrace(const ScheduleRunOutcome& outcome,
                                                    size_t fault_index, NodeId node,
                                                    const std::vector<int32_t>& chain) const {
  if (fault_index >= outcome.feedback.outcomes.size()) {
    return {false, false};  // Pruned candidate: no run, no feedback.
  }
  const FaultOutcome& fault = outcome.feedback.outcomes[fault_index];
  if (!fault.injected) {
    return {false, false};
  }
  // AF functions on `node` preceding the injection in the testing run,
  // most recent first, compared against the production chain prefix.
  const std::vector<AfInfo> test_afs = outcome.trace.FunctionsBefore(node, fault.injected_at);
  bool correct_order = true;
  for (size_t i = 0; i < chain.size(); i++) {
    if (i >= test_afs.size() || test_afs[i].function_id != chain[i]) {
      correct_order = false;
      break;
    }
  }
  return {correct_order, true};
}

FaultSchedule DiagnosisEngine::Amplify(const FaultSchedule& schedule,
                                       size_t fault_index) const {
  FaultSchedule amplified = schedule;
  amplified.name += "+amp";
  const ScheduledFault& original = schedule.faults[fault_index];
  for (NodeId node : config_.server_nodes) {
    if (node == original.target_node) {
      continue;
    }
    ScheduledFault replica = original;
    replica.target_node = node;
    // Order-enforcement conditions refer to schedule positions and stay
    // valid; function conditions apply to the replica's own node.
    amplified.faults.push_back(std::move(replica));
  }
  return amplified;
}

bool DiagnosisEngine::FindContextForFault(FaultSchedule* schedule, size_t fault_index,
                                          size_t candidate_index, DiagnosisResult* result) {
  // Algorithm 1 is inherently sequential — each chain extension depends on
  // the previous run's trace — so this path stays serial; its runs still
  // draw derived seeds, keeping it deterministic under restructuring.
  const CandidateFault& candidate = extraction_.faults[candidate_index];
  const std::vector<AfInfo> preceding =
      production_index_.FunctionsBefore(candidate.node, candidate.ts);
  if (preceding.empty()) {
    return false;
  }

  std::vector<int32_t> chain;  // Most recent first: chain[0] is injected-at.
  const ScheduledFault original = schedule->faults[fault_index];
  bool amplified = false;

  for (const AfInfo& af : preceding) {
    if (std::find(chain.begin(), chain.end(), af.function_id) != chain.end()) {
      break;  // No longer a unique code path (paper line 9).
    }
    if (static_cast<int>(chain.size()) >= config_.max_context_chain) {
      break;
    }
    chain.push_back(af.function_id);

    // Rebuild the fault's conditions: keep order enforcement, replace the
    // timed trigger with the function chain (earliest condition first; the
    // most recent production function is the final, injecting condition).
    ScheduledFault& fault = schedule->faults[fault_index];
    fault.conditions.clear();
    if (config_.enforce_fault_order && fault_index > 0) {
      fault.conditions.push_back(Condition::AfterFault(static_cast<int32_t>(fault_index) - 1));
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      fault.conditions.push_back(Condition::FunctionEnter(*it));
    }
    FaultSchedule attempt = amplified ? Amplify(*schedule, fault_index) : *schedule;
    attempt.name = StrFormat("level2-f%zu-%s", fault_index,
                             binary_->NameOf(chain.front()).c_str());

    ScheduleRunOutcome outcome;
    if (RunAndMaybeConfirm(attempt, 2, result, &outcome)) {
      return true;
    }
    if (result->schedules_generated >= level2_cap_) {
      break;
    }

    auto [correct_order, injected] =
        ProcessTrace(outcome, fault_index, candidate.node, chain);
    if (injected && correct_order) {
      continue;  // Context not yet precise enough; extend the chain.
    }
    if (!injected && config_.use_amplification && !amplified &&
        original.kind != FaultKind::kNetworkPartition) {
      // Role-specific state: replicate across all nodes and retry.
      FaultSchedule amp = Amplify(*schedule, fault_index);
      amp.name = StrFormat("level2-f%zu-amp", fault_index);
      ScheduleRunOutcome amp_outcome;
      if (RunAndMaybeConfirm(amp, 2, result, &amp_outcome)) {
        return true;
      }
      if (result->schedules_generated >= level2_cap_) {
        break;
      }
      // Was the context function observed on any node?
      bool seen_anywhere = false;
      for (const TraceEvent& event : amp_outcome.trace.events()) {
        if (event.type == EventType::kAF && event.af().function_id == chain.front()) {
          seen_anywhere = true;
          break;
        }
      }
      if (seen_anywhere) {
        amplified = true;  // Keep the amplified form for further refinement.
        continue;
      }
      break;  // Not role-specific either; give up on this fault.
    }
    break;  // Order mismatch, or amplification unavailable.
  }
  // Restore the fault's Level-1 shape before moving to the next fault.
  schedule->faults[fault_index] = original;
  return false;
}

bool DiagnosisEngine::Level2(FaultSchedule* schedule, const std::vector<size_t>& priority,
                             DiagnosisResult* result) {
  for (size_t candidate_index : priority) {
    if (result->schedules_generated >= level2_cap_) {
      return false;  // Leave budget for Level 3.
    }
    const CandidateFault& candidate = extraction_.faults[candidate_index];
    const size_t fault_index = candidate_index;  // Schedule mirrors extraction order.

    if (candidate.kind == FaultKind::kSyscallFailure) {
      const ScheduledFault original = schedule->faults[fault_index];
      const bool indexed = config_.indexing == DiagnosisConfig::IndexingMode::kContext &&
                           candidate.ctx_digest != 0;
      bool reproduced = false;
      if (indexed) {
        // Residual sweep: the indexed address already names one invocation,
        // so the only remaining ambiguity is same-context drift — the call
        // site re-executing a few iterations earlier or later under replay
        // timing. Probe seq values by distance from the recorded one
        // (clamped >= 1); distance 0 is the Level-1 schedule again and is
        // pruned as a duplicate, mirroring the flat sweep's nth=1 entry.
        std::vector<FaultSchedule> sweep;
        for (int d = 0; d <= config_.index_sweep_radius; d++) {
          for (const int sign : {-1, +1}) {
            if (d == 0 && sign > 0) {
              continue;
            }
            const int64_t seq = static_cast<int64_t>(candidate.ctx_seq) + sign * d;
            if (seq < 1) {
              continue;
            }
            ScheduledFault& fault = schedule->faults[fault_index];
            for (Condition& cond : fault.conditions) {
              if (cond.kind == Condition::Kind::kExecutionIndex) {
                cond.count = static_cast<int32_t>(seq);
              }
            }
            FaultSchedule attempt = *schedule;
            attempt.name = StrFormat("level2-f%zu-seq%d", fault_index,
                                     static_cast<int>(seq));
            sweep.push_back(std::move(attempt));
          }
        }
        // Sweep-width accounting for the flat-vs-context bench, taken at
        // planning — before dedup/budget pruning — so both modes are
        // measured on the ambiguity they pose.
        result->scf_sweeps++;
        result->scf_sweep_width += static_cast<int>(sweep.size());
        metrics_.index_sweep_width->Record(sweep.size());
        reproduced = RunWave(sweep, 2, /*allow_duplicate=*/false, level2_cap_, result);
      }
      if (!reproduced && result->schedules_generated < level2_cap_) {
        // Flat sweep of the invocation count: with inputs, 1..cap; without
        // inputs, up to the profiling-run frequency (hard cap, paper
        // §4.5.2). Every nth is an independent candidate, so the sweep
        // executes as wave-fronts. In context mode this is the retained
        // fallback: it runs only after the indexed window misses (the
        // recorded context drifted beyond recognition), with the index
        // condition stripped so nth matching is unconstrained.
        if (indexed) {
          ScheduledFault& fault = schedule->faults[fault_index];
          fault.conditions.erase(
              std::remove_if(fault.conditions.begin(), fault.conditions.end(),
                             [](const Condition& cond) {
                               return cond.kind == Condition::Kind::kExecutionIndex;
                             }),
              fault.conditions.end());
        }
        int limit = config_.max_scf_sweep;
        if (candidate.filename.empty()) {
          const auto profiled = static_cast<int>(profile_->SyscallCount(candidate.sys));
          limit = std::min(config_.max_scf_sweep, std::max(profiled, 1));
        }
        std::vector<FaultSchedule> sweep;
        sweep.reserve(static_cast<size_t>(limit));
        for (int nth = 1; nth <= limit; nth++) {
          schedule->faults[fault_index].syscall.nth = nth;
          FaultSchedule attempt = *schedule;
          attempt.name = StrFormat("level2-f%zu-nth%d", fault_index, nth);
          sweep.push_back(std::move(attempt));
        }
        result->scf_sweeps++;
        result->scf_sweep_width += static_cast<int>(sweep.size());
        metrics_.index_sweep_width->Record(sweep.size());
        reproduced = RunWave(sweep, 2, /*allow_duplicate=*/false, level2_cap_, result);
      }
      schedule->faults[fault_index] = original;
      if (reproduced) {
        return true;
      }
    } else {
      if (FindContextForFault(schedule, fault_index, candidate_index, result)) {
        return true;
      }
    }
  }
  return false;
}

bool DiagnosisEngine::Level3(FaultSchedule* schedule, const std::vector<size_t>& priority,
                             DiagnosisResult* result) {
  for (size_t candidate_index : priority) {
    const CandidateFault& candidate = extraction_.faults[candidate_index];
    if (candidate.kind != FaultKind::kProcessCrash &&
        candidate.kind != FaultKind::kProcessPause) {
      continue;
    }
    const std::vector<AfInfo> preceding =
        production_index_.FunctionsBefore(candidate.node, candidate.ts);
    if (preceding.empty()) {
      continue;
    }
    const int32_t function_id = preceding.front().function_id;
    const size_t fault_index = candidate_index;
    const ScheduledFault original = schedule->faults[fault_index];

    // Offsets are independent candidates: explore them as wave-fronts, in
    // priority order.
    std::vector<FaultSchedule> attempts;
    for (const OffsetInfo& offset : binary_->PrioritizedOffsets(function_id)) {
      ScheduledFault& fault = schedule->faults[fault_index];
      fault.conditions.clear();
      if (config_.enforce_fault_order && fault_index > 0) {
        fault.conditions.push_back(
            Condition::AfterFault(static_cast<int32_t>(fault_index) - 1));
      }
      fault.conditions.push_back(Condition::FunctionOffset(function_id, offset.offset));
      FaultSchedule attempt = *schedule;
      attempt.name = StrFormat("level3-f%zu-%s+0x%x", fault_index,
                               binary_->NameOf(function_id).c_str(),
                               static_cast<unsigned>(offset.offset));
      attempts.push_back(std::move(attempt));
    }
    schedule->faults[fault_index] = original;
    if (RunWave(attempts, 3, /*allow_duplicate=*/false, level3_cap_, result)) {
      return true;
    }
    if (result->schedules_generated >= level3_cap_) {
      return false;
    }
  }
  return false;
}

DiagnosisResult DiagnosisEngine::Run() {
  DiagnosisResult result;
  result.fr_percent = extraction_.fr_percent;
  if (extraction_.faults.empty()) {
    return result;
  }
  for (const CandidateFault& candidate : extraction_.faults) {
    if (candidate.kind == FaultKind::kSyscallFailure) {
      result.planned_scf_sweep_widths.push_back(PlannedScfSweepWidth(candidate));
    }
  }

  // Level 1: fault order + inputs only. The re-attempts intentionally
  // re-execute the same schedule (the paper's answer to one-clean-run false
  // negatives) — exempt from dedup, and batched as one wave.
  FaultSchedule schedule = BuildLevel1();
  const std::vector<FaultSchedule> attempts(
      static_cast<size_t>(std::max(config_.level1_attempts, 0)), schedule);
  notify_level_ = 1;
  Notify(DiagnosisProgress::Kind::kLevelStart, result, 0, "level 1: production order");
  const bool level1_confirmed = RunWave(attempts, 1, /*allow_duplicate=*/true,
                                        /*budget=*/0, &result);
  if (level1_confirmed && (config_.indexing != DiagnosisConfig::IndexingMode::kContext ||
                           result.replay_rate >= 99.5)) {
    result.fault_summary = result.schedule.Summary();
    return result;
  }

  // Context-mode fallback (DESIGN.md §14): indexed targeting may only add
  // sharper candidates ahead of the flat plan, never replace it. Two ways
  // the indexed aim falls short of flat targeting:
  //  - it missed outright (the recorded context drifted across replay
  //    seeds): re-pose the production order with the index conditions
  //    stripped — exactly the schedule flat mode runs first;
  //  - it confirmed but replays below 100% (exact-index conditions are
  //    tighter, hence more seed-sensitive): measure the flat schedule too
  //    and keep whichever replays better, indexed winning ties.
  if (config_.indexing == DiagnosisConfig::IndexingMode::kContext) {
    FaultSchedule flat_schedule = schedule;
    if (StripIndexConditions(&flat_schedule)) {
      const FaultSchedule indexed_confirmed = result.schedule;
      const double indexed_rate = level1_confirmed ? result.replay_rate : 0;
      flat_schedule.name = "level1-flat";
      const std::vector<FaultSchedule> fallback(
          static_cast<size_t>(std::max(config_.level1_attempts, 0)), flat_schedule);
      Notify(DiagnosisProgress::Kind::kLevelStart, result, 0,
             "level 1: flat-targeting fallback");
      const bool flat_confirmed =
          RunWave(fallback, 1, /*allow_duplicate=*/true, /*budget=*/0, &result);
      if (flat_confirmed && result.replay_rate > indexed_rate) {
        result.fault_summary = result.schedule.Summary();
        return result;
      }
      if (level1_confirmed) {
        result.reproduced = true;
        result.level = 1;
        result.schedule = indexed_confirmed;
        result.replay_rate = indexed_rate;
        result.fault_summary = result.schedule.Summary();
        return result;
      }
      if (flat_confirmed) {
        result.fault_summary = result.schedule.Summary();
        return result;
      }
    } else if (level1_confirmed) {
      // Nothing to strip (unindexed trace): the wave was already flat.
      result.fault_summary = result.schedule.Summary();
      return result;
    }
  } else if (level1_confirmed) {
    result.fault_summary = result.schedule.Summary();
    return result;
  }

  // Level 1, alternative orders: the production order failed, so try other
  // injection orders of the same faults before refining contexts. Orders are
  // enumerated lexicographically, keeping only one representative per
  // commutation class: an order that swaps an adjacent pair of commuting
  // concurrent faults against the trace (TB304) re-explores the class its
  // trace-ordered sibling — lexicographically smaller, hence enumerated
  // first — already covers. The class dedup runs in BOTH pruning modes (it
  // defines the wave, so the modes stay byte-identical); use_causal_pruning
  // additionally rejects orders the happens-before relation outright
  // contradicts (TB301), without a run. Skipped when order is not being
  // enforced: without after_fault conditions every ordering degenerates to
  // the same schedule.
  const size_t fault_count = extraction_.faults.size();
  if (config_.enforce_fault_order && fault_count >= 2 && config_.level1_permutations > 0) {
    std::vector<size_t> order(fault_count);
    for (size_t i = 0; i < fault_count; i++) {
      order[i] = i;
    }
    std::vector<FaultSchedule> alternates;
    alternates.reserve(static_cast<size_t>(config_.level1_permutations));
    // Bounded enumeration: large fault sets have factorially many orders,
    // most of them commutation duplicates; give up on filling the wave
    // after a fixed multiple of its size.
    int enumerated = 0;
    const int max_enumerated = config_.level1_permutations * 50;
    while (static_cast<int>(alternates.size()) < config_.level1_permutations &&
           enumerated < max_enumerated && std::next_permutation(order.begin(), order.end())) {
      enumerated++;
      FaultSchedule alternate;
      alternate.name = StrFormat("level1-order%zu", alternates.size() + 1);
      for (size_t i = 0; i < fault_count; i++) {
        // Order exploration aims flat even in context mode: the indexed
        // production order already ran, and a drifted context would make
        // every permutation miss for the same reason.
        alternate.faults.push_back(MakeScheduledFault(extraction_.faults[order[i]],
                                                      static_cast<int>(i),
                                                      /*with_index=*/false));
      }
      if (config_.level1_dedup_commuted && feasibility_.valid() &&
          !feasibility_.Check(alternate).canonical_order) {
        result.schedules_pruned_commuted++;
        metrics_.causal_commuted->Inc();
        metrics_.level_causal_pruned[1]->Inc();
        continue;
      }
      alternates.push_back(std::move(alternate));
    }
    Notify(DiagnosisProgress::Kind::kLevelStart, result, 0, "level 1: alternative fault orders");
    if (RunWave(alternates, 1, /*allow_duplicate=*/false, /*budget=*/0, &result,
                /*causal_prune=*/config_.use_causal_pruning)) {
      result.fault_summary = result.schedule.Summary();
      return result;
    }
  }

  // Refinement budgets are relative to what Level 1 spent: pruning shrinks
  // the permutation wave, and anchoring the caps here keeps the pruned and
  // unpruned engines' Level-2/3 behavior identical.
  level2_cap_ = result.schedules_generated + config_.level2_budget;
  level3_cap_ = result.schedules_generated + config_.max_schedules;

  const std::vector<size_t> priority = PrioritizeFaults(extraction_.faults);

  // Level 2: invocation sweeps and function-chain contexts.
  notify_level_ = 2;
  Notify(DiagnosisProgress::Kind::kLevelStart, result, 0, "level 2: fault contexts");
  if (Level2(&schedule, priority, &result)) {
    result.fault_summary = result.schedule.Summary();
    return result;
  }

  // Level 3: intra-function offsets.
  notify_level_ = 3;
  Notify(DiagnosisProgress::Kind::kLevelStart, result, 0, "level 3: intra-function offsets");
  if (Level3(&schedule, priority, &result)) {
    result.fault_summary = result.schedule.Summary();
    return result;
  }

  // Pruning runs: re-examine saved candidates (paper §4.5.2).
  notify_level_ = 0;
  Notify(DiagnosisProgress::Kind::kLevelStart, result, 0, "pruning runs: saved candidates");
  const Candidate* best = nullptr;
  for (const Candidate& candidate : saved_candidates_) {
    if (best == nullptr || candidate.rate > best->rate) {
      best = &candidate;
    }
  }
  if (best != nullptr) {
    const double rate = ConfirmBug(best->schedule, &result);
    if (rate >= config_.target_replay_rate || best->rate >= config_.target_replay_rate) {
      result.reproduced = true;
      result.schedule = best->schedule;
      result.replay_rate = std::max(rate, best->rate);
      result.level = best->level;
      result.fault_summary = result.schedule.Summary();
      return result;
    }
    result.schedule = best->schedule;
    result.replay_rate = std::max(rate, best->rate);
    result.fault_summary = result.schedule.Summary();
  }
  return result;
}

}  // namespace rose
