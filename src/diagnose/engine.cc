#include "src/diagnose/engine.h"

#include <algorithm>

#include "src/common/strings.h"

namespace rose {

DiagnosisEngine::DiagnosisEngine(const Trace* production, const Profile* profile,
                                 const BinaryInfo* binary, ScheduleRunner runner,
                                 DiagnosisConfig config)
    : production_(production), profile_(profile), binary_(binary),
      runner_(std::move(runner)), config_(std::move(config)),
      next_seed_(config_.base_seed) {
  ExtractOptions options;
  options.use_benign_filter = config_.use_benign_filter;
  extraction_ = ExtractFaults(*production_, *profile_, options);

  // The linter's known-node set: everything the production run spawned plus
  // the configured server nodes (amplification replicates onto those).
  LintOptions lint;
  for (NodeId node : config_.server_nodes) {
    lint.known_nodes.insert(node);
  }
  for (const TraceEvent& event : production_->events()) {
    if (event.node != kNoNode) {
      lint.known_nodes.insert(event.node);
    }
  }
  linter_ = ScheduleLinter(std::move(lint));
}

ScheduledFault DiagnosisEngine::MakeScheduledFault(const CandidateFault& fault,
                                                   int index) const {
  ScheduledFault scheduled;
  scheduled.target_node = fault.node;
  if (config_.enforce_fault_order && index > 0) {
    scheduled.conditions.push_back(Condition::AfterFault(index - 1));
  }
  switch (fault.kind) {
    case FaultKind::kSyscallFailure:
      scheduled.kind = FaultKind::kSyscallFailure;
      scheduled.syscall.sys = fault.sys;
      scheduled.syscall.err = fault.err;
      scheduled.syscall.path_filter = fault.filename;
      scheduled.syscall.nth = 1;
      break;
    case FaultKind::kProcessCrash:
      scheduled.kind = FaultKind::kProcessCrash;
      scheduled.conditions.push_back(Condition::AtTime(fault.ts));
      break;
    case FaultKind::kProcessPause:
      scheduled.kind = FaultKind::kProcessPause;
      scheduled.process.pause_duration = fault.pause_duration;
      scheduled.conditions.push_back(Condition::AtTime(fault.ts));
      break;
    case FaultKind::kNetworkPartition:
      scheduled.kind = FaultKind::kNetworkPartition;
      scheduled.network.group_a = fault.group_a;
      scheduled.network.group_b = fault.group_b;
      scheduled.network.duration = fault.nd_duration;
      scheduled.conditions.push_back(Condition::AtTime(fault.ts));
      break;
  }
  return scheduled;
}

FaultSchedule DiagnosisEngine::BuildLevel1() const {
  FaultSchedule schedule;
  schedule.name = "level1";
  for (size_t i = 0; i < extraction_.faults.size(); i++) {
    schedule.faults.push_back(MakeScheduledFault(extraction_.faults[i], static_cast<int>(i)));
  }
  return schedule;
}

double DiagnosisEngine::ConfirmBug(const FaultSchedule& schedule, DiagnosisResult* result) {
  int bug_runs = 0;
  int clean_runs = 0;
  for (int run = 0; run < config_.confirm_runs; run++) {
    if (clean_runs >= config_.confirm_abandon_after_clean) {
      // The target rate is already unreachable; stop early (paper line 26).
      return 0;
    }
    const ScheduleRunOutcome outcome = runner_(schedule, next_seed_++);
    result->total_runs++;
    result->virtual_time += outcome.virtual_duration;
    if (outcome.bug) {
      bug_runs++;
    } else {
      clean_runs++;
    }
  }
  return 100.0 * static_cast<double>(bug_runs) / static_cast<double>(config_.confirm_runs);
}

bool DiagnosisEngine::RunAndMaybeConfirm(const FaultSchedule& schedule, int level,
                                         DiagnosisResult* result,
                                         ScheduleRunOutcome* outcome_out,
                                         bool allow_duplicate) {
  // Static pruning: a candidate that cannot fire as intended, or that is
  // canonically identical to one already executed, never reaches the runner.
  if (HasErrors(linter_.Lint(schedule))) {
    result->schedules_pruned_invalid++;
    return false;
  }
  const uint64_t hash = CanonicalHash(schedule);
  if (!executed_hashes_.insert(hash).second && !allow_duplicate) {
    result->schedules_pruned_duplicate++;
    return false;
  }
  result->schedules_generated++;
  const ScheduleRunOutcome outcome = runner_(schedule, next_seed_++);
  result->total_runs++;
  result->virtual_time += outcome.virtual_duration;
  if (outcome_out != nullptr) {
    *outcome_out = outcome;
  }
  if (!outcome.bug) {
    return false;
  }
  const double rate = ConfirmBug(schedule, result);
  if (rate >= config_.target_replay_rate) {
    result->reproduced = true;
    result->schedule = schedule;
    result->replay_rate = rate;
    result->level = level;
    return true;
  }
  saved_candidates_.push_back(Candidate{schedule, rate, level});
  return false;
}

std::pair<bool, bool> DiagnosisEngine::ProcessTrace(const ScheduleRunOutcome& outcome,
                                                    size_t fault_index, NodeId node,
                                                    const std::vector<int32_t>& chain) const {
  if (fault_index >= outcome.feedback.outcomes.size()) {
    return {false, false};  // Pruned candidate: no run, no feedback.
  }
  const FaultOutcome& fault = outcome.feedback.outcomes[fault_index];
  if (!fault.injected) {
    return {false, false};
  }
  // AF functions on `node` preceding the injection in the testing run,
  // most recent first, compared against the production chain prefix.
  const std::vector<AfInfo> test_afs = outcome.trace.FunctionsBefore(node, fault.injected_at);
  bool correct_order = true;
  for (size_t i = 0; i < chain.size(); i++) {
    if (i >= test_afs.size() || test_afs[i].function_id != chain[i]) {
      correct_order = false;
      break;
    }
  }
  return {correct_order, true};
}

FaultSchedule DiagnosisEngine::Amplify(const FaultSchedule& schedule,
                                       size_t fault_index) const {
  FaultSchedule amplified = schedule;
  amplified.name += "+amp";
  const ScheduledFault& original = schedule.faults[fault_index];
  for (NodeId node : config_.server_nodes) {
    if (node == original.target_node) {
      continue;
    }
    ScheduledFault replica = original;
    replica.target_node = node;
    // Order-enforcement conditions refer to schedule positions and stay
    // valid; function conditions apply to the replica's own node.
    amplified.faults.push_back(std::move(replica));
  }
  return amplified;
}

bool DiagnosisEngine::FindContextForFault(FaultSchedule* schedule, size_t fault_index,
                                          size_t candidate_index, DiagnosisResult* result) {
  const CandidateFault& candidate = extraction_.faults[candidate_index];
  const std::vector<AfInfo> preceding =
      production_->FunctionsBefore(candidate.node, candidate.ts);
  if (preceding.empty()) {
    return false;
  }

  std::vector<int32_t> chain;  // Most recent first: chain[0] is injected-at.
  const ScheduledFault original = schedule->faults[fault_index];
  bool amplified = false;

  for (const AfInfo& af : preceding) {
    if (std::find(chain.begin(), chain.end(), af.function_id) != chain.end()) {
      break;  // No longer a unique code path (paper line 9).
    }
    if (static_cast<int>(chain.size()) >= config_.max_context_chain) {
      break;
    }
    chain.push_back(af.function_id);

    // Rebuild the fault's conditions: keep order enforcement, replace the
    // timed trigger with the function chain (earliest condition first; the
    // most recent production function is the final, injecting condition).
    ScheduledFault& fault = schedule->faults[fault_index];
    fault.conditions.clear();
    if (config_.enforce_fault_order && fault_index > 0) {
      fault.conditions.push_back(Condition::AfterFault(static_cast<int32_t>(fault_index) - 1));
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      fault.conditions.push_back(Condition::FunctionEnter(*it));
    }
    FaultSchedule attempt = amplified ? Amplify(*schedule, fault_index) : *schedule;
    attempt.name = StrFormat("level2-f%zu-%s", fault_index,
                             binary_->NameOf(chain.front()).c_str());

    ScheduleRunOutcome outcome;
    if (RunAndMaybeConfirm(attempt, 2, result, &outcome)) {
      return true;
    }
    if (result->schedules_generated >= config_.level2_budget) {
      break;
    }

    auto [correct_order, injected] =
        ProcessTrace(outcome, fault_index, candidate.node, chain);
    if (injected && correct_order) {
      continue;  // Context not yet precise enough; extend the chain.
    }
    if (!injected && config_.use_amplification && !amplified &&
        original.kind != FaultKind::kNetworkPartition) {
      // Role-specific state: replicate across all nodes and retry.
      FaultSchedule amp = Amplify(*schedule, fault_index);
      amp.name = StrFormat("level2-f%zu-amp", fault_index);
      ScheduleRunOutcome amp_outcome;
      if (RunAndMaybeConfirm(amp, 2, result, &amp_outcome)) {
        return true;
      }
      if (result->schedules_generated >= config_.level2_budget) {
        break;
      }
      // Was the context function observed on any node?
      bool seen_anywhere = false;
      for (const TraceEvent& event : amp_outcome.trace.events()) {
        if (event.type == EventType::kAF && event.af().function_id == chain.front()) {
          seen_anywhere = true;
          break;
        }
      }
      if (seen_anywhere) {
        amplified = true;  // Keep the amplified form for further refinement.
        continue;
      }
      break;  // Not role-specific either; give up on this fault.
    }
    break;  // Order mismatch, or amplification unavailable.
  }
  // Restore the fault's Level-1 shape before moving to the next fault.
  schedule->faults[fault_index] = original;
  return false;
}

bool DiagnosisEngine::Level2(FaultSchedule* schedule, const std::vector<size_t>& priority,
                             DiagnosisResult* result) {
  for (size_t candidate_index : priority) {
    if (result->schedules_generated >= config_.level2_budget) {
      return false;  // Leave budget for Level 3.
    }
    const CandidateFault& candidate = extraction_.faults[candidate_index];
    const size_t fault_index = candidate_index;  // Schedule mirrors extraction order.

    if (candidate.kind == FaultKind::kSyscallFailure) {
      // Sweep the invocation count: with inputs, 1..cap; without inputs, up
      // to the profiling-run frequency (hard cap, paper §4.5.2).
      int limit = config_.max_scf_sweep;
      if (candidate.filename.empty()) {
        const auto profiled = static_cast<int>(profile_->SyscallCount(candidate.sys));
        limit = std::min(config_.max_scf_sweep, std::max(profiled, 1));
      }
      const ScheduledFault original = schedule->faults[fault_index];
      for (int nth = 1; nth <= limit; nth++) {
        schedule->faults[fault_index].syscall.nth = nth;
        FaultSchedule attempt = *schedule;
        attempt.name = StrFormat("level2-f%zu-nth%d", fault_index, nth);
        if (RunAndMaybeConfirm(attempt, 2, result)) {
          return true;
        }
        if (result->schedules_generated >= config_.level2_budget) {
          break;
        }
      }
      schedule->faults[fault_index] = original;
    } else {
      if (FindContextForFault(schedule, fault_index, candidate_index, result)) {
        return true;
      }
    }
  }
  return false;
}

bool DiagnosisEngine::Level3(FaultSchedule* schedule, const std::vector<size_t>& priority,
                             DiagnosisResult* result) {
  for (size_t candidate_index : priority) {
    const CandidateFault& candidate = extraction_.faults[candidate_index];
    if (candidate.kind != FaultKind::kProcessCrash &&
        candidate.kind != FaultKind::kProcessPause) {
      continue;
    }
    const std::vector<AfInfo> preceding =
        production_->FunctionsBefore(candidate.node, candidate.ts);
    if (preceding.empty()) {
      continue;
    }
    const int32_t function_id = preceding.front().function_id;
    const size_t fault_index = candidate_index;
    const ScheduledFault original = schedule->faults[fault_index];

    for (const OffsetInfo& offset : binary_->PrioritizedOffsets(function_id)) {
      ScheduledFault& fault = schedule->faults[fault_index];
      fault.conditions.clear();
      if (config_.enforce_fault_order && fault_index > 0) {
        fault.conditions.push_back(
            Condition::AfterFault(static_cast<int32_t>(fault_index) - 1));
      }
      fault.conditions.push_back(Condition::FunctionOffset(function_id, offset.offset));
      FaultSchedule attempt = *schedule;
      attempt.name = StrFormat("level3-f%zu-%s+0x%x", fault_index,
                               binary_->NameOf(function_id).c_str(),
                               static_cast<unsigned>(offset.offset));
      if (RunAndMaybeConfirm(attempt, 3, result)) {
        return true;
      }
      if (result->schedules_generated >= config_.max_schedules) {
        schedule->faults[fault_index] = original;
        return false;
      }
    }
    schedule->faults[fault_index] = original;
  }
  return false;
}

DiagnosisResult DiagnosisEngine::Run() {
  DiagnosisResult result;
  result.fr_percent = extraction_.fr_percent;
  if (extraction_.faults.empty()) {
    return result;
  }

  // Level 1: fault order + inputs only.
  FaultSchedule schedule = BuildLevel1();
  for (int attempt = 0; attempt < config_.level1_attempts; attempt++) {
    // Level-1 re-attempts intentionally re-execute the same schedule (the
    // paper's answer to one-clean-run false negatives) — exempt from dedup.
    if (RunAndMaybeConfirm(schedule, 1, &result, nullptr, /*allow_duplicate=*/true)) {
      result.fault_summary = result.schedule.Summary();
      return result;
    }
  }

  const std::vector<size_t> priority = PrioritizeFaults(extraction_.faults);

  // Level 2: invocation sweeps and function-chain contexts.
  if (Level2(&schedule, priority, &result)) {
    result.fault_summary = result.schedule.Summary();
    return result;
  }

  // Level 3: intra-function offsets.
  if (Level3(&schedule, priority, &result)) {
    result.fault_summary = result.schedule.Summary();
    return result;
  }

  // Pruning runs: re-examine saved candidates (paper §4.5.2).
  const Candidate* best = nullptr;
  for (const Candidate& candidate : saved_candidates_) {
    if (best == nullptr || candidate.rate > best->rate) {
      best = &candidate;
    }
  }
  if (best != nullptr) {
    const double rate = ConfirmBug(best->schedule, &result);
    if (rate >= config_.target_replay_rate || best->rate >= config_.target_replay_rate) {
      result.reproduced = true;
      result.schedule = best->schedule;
      result.replay_rate = std::max(rate, best->rate);
      result.level = best->level;
      result.fault_summary = result.schedule.Summary();
      return result;
    }
    result.schedule = best->schedule;
    result.replay_rate = std::max(rate, best->rate);
    result.fault_summary = result.schedule.Summary();
  }
  return result;
}

}  // namespace rose
