// The diagnosis engine (paper §4.5, Figure 2, Algorithm 1).
//
// Given a buggy production trace, a profile, and a way to execute fault
// schedules, the engine searches for a schedule that reproduces the bug with
// a target replay rate, refining the fault context in three levels:
//
//   Level 1 — faults in production order, timed injection, syscall inputs.
//   Level 2 — nth-invocation sweeps for SCFs; Algorithm 1 function-chain
//             contexts for PS/ND faults, with role-specific Amplification
//             and candidate pruning.
//   Level 3 — intra-function offsets of the function immediately preceding
//             a fault, prioritized: syscall call sites, call sites, rest.
//
// Every generated schedule is executed by the caller-provided runner; a
// schedule that shows the bug is confirmed over 10 reruns (early-abandoned
// after 4 clean runs, like the paper's confirmBug).
#ifndef SRC_DIAGNOSE_ENGINE_H_
#define SRC_DIAGNOSE_ENGINE_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/analyze/schedule_linter.h"
#include "src/diagnose/extract.h"
#include "src/exec/executor.h"
#include "src/profile/binary_info.h"
#include "src/profile/profiler.h"
#include "src/schedule/fault_schedule.h"
#include "src/trace/event.h"

namespace rose {

struct ScheduleRunOutcome {
  bool bug = false;
  Trace trace;
  ExecutionFeedback feedback;
  SimTime virtual_duration = 0;
};

struct DiagnosisConfig {
  double target_replay_rate = 60.0;
  int confirm_runs = 10;
  // confirmBug abandons once this many clean runs accumulate.
  int confirm_abandon_after_clean = 4;
  int max_scf_sweep = 50;
  // The paper notes schedules can be unluckily discarded after one clean run
  // (its "false negatives" limitation) and proposes multiple executions per
  // candidate; Level 1 gets this many attempts.
  int level1_attempts = 2;
  int max_schedules = 500;
  // Level 2 yields to Level 3 once this many schedules were generated, so
  // offset exploration always gets a share of the budget.
  int level2_budget = 350;
  // Longest function chain Algorithm 1 builds for one fault.
  int max_context_chain = 6;
  uint64_t base_seed = 40'000;
  // Server nodes (amplification targets).
  std::vector<NodeId> server_nodes;
  // Ablations.
  bool enforce_fault_order = true;
  bool use_amplification = true;
  bool use_benign_filter = true;
};

struct DiagnosisResult {
  bool reproduced = false;
  FaultSchedule schedule;
  double replay_rate = 0;
  int schedules_generated = 0;
  // Candidates the static linter rejected before any run was spent on them.
  int schedules_pruned_invalid = 0;
  // Candidates canonically equal to an already-executed schedule (e.g. the
  // Level-2 SCF sweep's nth=1 entry, which is the Level-1 schedule again).
  int schedules_pruned_duplicate = 0;
  int total_runs = 0;
  SimTime virtual_time = 0;
  double fr_percent = 0;
  int level = 0;  // 1..3, or 0 if never reproduced.
  std::string fault_summary;
};

class DiagnosisEngine {
 public:
  using ScheduleRunner = std::function<ScheduleRunOutcome(const FaultSchedule&, uint64_t seed)>;

  DiagnosisEngine(const Trace* production, const Profile* profile, const BinaryInfo* binary,
                  ScheduleRunner runner, DiagnosisConfig config);

  DiagnosisResult Run();

 private:
  struct Candidate {
    FaultSchedule schedule;
    double rate = 0;
    int level = 0;
  };

  FaultSchedule BuildLevel1() const;
  ScheduledFault MakeScheduledFault(const CandidateFault& fault, int index) const;

  // Executes one schedule (counts it) and, if the bug shows, confirms it.
  // Returns true when the confirmed rate reaches the target. Statically
  // invalid or canonically-duplicate schedules are pruned without a run;
  // `allow_duplicate` exempts intentional re-executions (Level-1 attempts).
  bool RunAndMaybeConfirm(const FaultSchedule& schedule, int level, DiagnosisResult* result,
                          ScheduleRunOutcome* outcome_out = nullptr,
                          bool allow_duplicate = false);
  double ConfirmBug(const FaultSchedule& schedule, DiagnosisResult* result);

  // Algorithm 1 for PS/ND fault at position `fault_index` in the schedule.
  bool FindContextForFault(FaultSchedule* schedule, size_t fault_index,
                           size_t candidate_index, DiagnosisResult* result);
  // Replicates fault `fault_index`'s (fault, context) across all nodes.
  FaultSchedule Amplify(const FaultSchedule& schedule, size_t fault_index) const;
  // (correctOrder, faultInjected) from a testing run.
  std::pair<bool, bool> ProcessTrace(const ScheduleRunOutcome& outcome, size_t fault_index,
                                     NodeId node, const std::vector<int32_t>& chain) const;

  bool Level2(FaultSchedule* schedule, const std::vector<size_t>& priority,
              DiagnosisResult* result);
  bool Level3(FaultSchedule* schedule, const std::vector<size_t>& priority,
              DiagnosisResult* result);

  const Trace* production_;
  const Profile* profile_;
  const BinaryInfo* binary_;
  ScheduleRunner runner_;
  DiagnosisConfig config_;
  ExtractionResult extraction_;
  ScheduleLinter linter_;
  // Canonical hashes of every schedule handed to the runner so far.
  std::set<uint64_t> executed_hashes_;
  std::vector<Candidate> saved_candidates_;
  uint64_t next_seed_;
};

}  // namespace rose

#endif  // SRC_DIAGNOSE_ENGINE_H_
