// The diagnosis engine (paper §4.5, Figure 2, Algorithm 1).
//
// Given a buggy production trace, a profile, and a way to execute fault
// schedules, the engine searches for a schedule that reproduces the bug with
// a target replay rate, refining the fault context in three levels:
//
//   Level 1 — faults in production order, timed injection, syscall inputs.
//   Level 2 — nth-invocation sweeps for SCFs; Algorithm 1 function-chain
//             contexts for PS/ND faults, with role-specific Amplification
//             and candidate pruning.
//   Level 3 — intra-function offsets of the function immediately preceding
//             a fault, prioritized: syscall call sites, call sites, rest.
//
// Every generated schedule is executed by the caller-provided runner; a
// schedule that shows the bug is confirmed over 10 reruns (early-abandoned
// after 4 clean runs, like the paper's confirmBug).
//
// Parallel execution: diagnosis is embarrassingly parallel — every candidate
// runs in its own seeded SimWorld — so with `parallelism > 1` the engine
// speculatively executes independent candidates on a worker pool (Level-1
// attempts as one batch, SCF nth-sweeps and Level-3 offsets as wave-fronts,
// confirmBug's reruns as one batch with early-abandon cancellation) while
// consuming results strictly in generation order. Seeds are pre-assigned
// per (schedule, run-index) — never drawn from a shared stream on the
// execution path — so the engine's decisions and the returned
// DiagnosisResult are bit-for-bit identical at any parallelism level.
#ifndef SRC_DIAGNOSE_ENGINE_H_
#define SRC_DIAGNOSE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/analyze/schedule_linter.h"
#include "src/causal/feasibility.h"
#include "src/common/parallel.h"
#include "src/diagnose/extract.h"
#include "src/obs/metrics.h"
#include "src/exec/executor.h"
#include "src/profile/binary_info.h"
#include "src/profile/profiler.h"
#include "src/schedule/fault_schedule.h"
#include "src/trace/event.h"

namespace rose {

struct ScheduleRunOutcome {
  bool bug = false;
  Trace trace;
  ExecutionFeedback feedback;
  SimTime virtual_duration = 0;
};

// One requested execution of a candidate schedule. `want_trace` is false for
// confirmBug reruns: only the bug verdict matters there, so the runner can
// skip dumping (and copying back) the million-event window entirely. The
// tracer must stay attached either way — its virtual-time costs are part of
// the simulated execution, and dropping them would change the run.
struct ScheduleRunRequest {
  const FaultSchedule* schedule = nullptr;
  uint64_t seed = 0;
  bool want_trace = true;
};

// The seed for one execution of one candidate schedule. Deriving seeds from
// (base_seed, canonical schedule hash, per-schedule run index) — instead of
// bumping a shared counter per run — keeps every schedule's seed stream
// stable under engine restructuring: adding or removing a probe of one
// schedule never shifts the seeds of any other, which is what makes
// speculative parallel execution reproduce the serial engine exactly.
uint64_t DeriveRunSeed(uint64_t base_seed, uint64_t schedule_hash, uint32_t run_index);

// A milestone in a running diagnosis, reported through
// DiagnosisConfig::on_progress. Observation only: the callback sees every
// level transition, candidate execution, and confirmBug rerun in the
// deterministic consumption order (it fires on the engine's consuming
// thread, never from workers), and nothing the callback does can change the
// DiagnosisResult. The serve daemon streams these to clients as progress
// frames; leave the callback empty and diagnosis is byte-identical.
struct DiagnosisProgress {
  enum class Kind : int8_t { kLevelStart = 0, kCandidate, kConfirmRun };
  Kind kind = Kind::kCandidate;
  int level = 0;               // 1..3 (0 for the final pruning-runs phase).
  int schedules_generated = 0;  // Counter snapshots at emission time.
  int total_runs = 0;
  // kConfirmRun: running replay-rate estimate over the reruns consumed so far.
  double rate = 0;
  // kCandidate: the schedule's fault summary.
  std::string detail;
};

struct DiagnosisConfig {
  // How SCF candidates are aimed at an invocation (DESIGN.md §14).
  //   kFlat    — historical nth-invocation counters: the candidate matches
  //              the nth (syscall, input) invocation after arming, and
  //              Level 2 sweeps nth = 1..max_scf_sweep. Byte-identical to
  //              every pre-index release; the default.
  //   kContext — when the production trace recorded an execution index for
  //              the candidate (ctx_digest != 0), target that
  //              calling-context address directly with a kExecutionIndex
  //              condition, and shrink the Level-2 sweep to the residual
  //              same-context window (± index_sweep_radius around the
  //              recorded seq). Candidates from pre-index traces fall back
  //              to flat targeting individually.
  enum class IndexingMode : int8_t { kFlat = 0, kContext };
  IndexingMode indexing = IndexingMode::kFlat;
  // Context-mode Level-2 residual sweep: seq values within this distance of
  // the recorded one (clamped >= 1), ordered by distance. Radius 3 gives a
  // worst-case width of 7 — against max_scf_sweep (50) for flat sweeps.
  int index_sweep_radius = 3;
  double target_replay_rate = 60.0;
  int confirm_runs = 10;
  // confirmBug abandons once this many clean runs accumulate.
  int confirm_abandon_after_clean = 4;
  int max_scf_sweep = 50;
  // The paper notes schedules can be unluckily discarded after one clean run
  // (its "false negatives" limitation) and proposes multiple executions per
  // candidate; Level 1 gets this many attempts.
  int level1_attempts = 2;
  int max_schedules = 500;
  // Level 2 yields to Level 3 once this many schedules were generated, so
  // offset exploration always gets a share of the budget.
  int level2_budget = 350;
  // Longest function chain Algorithm 1 builds for one fault.
  int max_context_chain = 6;
  uint64_t base_seed = 40'000;
  // Worker threads executing candidate runs. 1 (the default) runs everything
  // inline on the caller's thread; any value produces the same
  // DiagnosisResult, provided the runner is safe to invoke concurrently
  // (see BugRunner::RunOnce).
  int parallelism = 1;
  // Server nodes (amplification targets).
  std::vector<NodeId> server_nodes;
  // Progress observer (see DiagnosisProgress); null = silent.
  std::function<void(const DiagnosisProgress&)> on_progress;
  // Level-1 order exploration: when the production order fails and more than
  // one fault was extracted, up to this many alternative injection orders
  // are enumerated (lexicographically) before Level 2. 0 disables.
  int level1_permutations = 24;
  // Ablations.
  bool enforce_fault_order = true;
  bool use_amplification = true;
  bool use_benign_filter = true;
  // Causal pruning (DESIGN.md §12): statically reject order permutations the
  // production trace's happens-before order contradicts (TB301), before any
  // run is spent on them. The rejection happens before the dedup/seed step,
  // and refinement budgets are anchored after the permutation wave, so the
  // diagnosis output is byte-identical with it on or off — only the number
  // of wasted replays changes. (Commutation-class dedup is part of the
  // enumeration itself, not of this toggle: reordering a commuting pair
  // still shifts injection times through the after_fault chain, so the
  // swapped order is a distinct execution that must be skipped identically
  // in both modes or not at all.)
  bool use_causal_pruning = true;
  // Naive-enumeration baseline for bench_causal: when false, Level-1 order
  // enumeration keeps commutation-class duplicates (TB304) instead of
  // collapsing each class to its trace-ordered representative. Measurement
  // ablation only — it changes which candidates enter the wave, so the
  // ON-vs-OFF byte-identity guarantee above does not extend to it.
  bool level1_dedup_commuted = true;
};

struct DiagnosisResult {
  bool reproduced = false;
  FaultSchedule schedule;
  double replay_rate = 0;
  int schedules_generated = 0;
  // Candidates the static linter rejected before any run was spent on them.
  int schedules_pruned_invalid = 0;
  // Candidates canonically equal to an already-executed schedule (e.g. the
  // Level-2 SCF sweep's nth=1 entry, which is the Level-1 schedule again).
  int schedules_pruned_duplicate = 0;
  // Candidates whose enforced order contradicts the production trace's
  // happens-before order (TB301) — statically rejected, never run.
  int schedules_pruned_infeasible = 0;
  // Non-representative members of a commutation class (TB304), skipped
  // during Level-1 order enumeration: the trace-ordered permutation of the
  // same concurrent faults is already in the wave. Counted identically with
  // pruning on or off — class dedup is part of the enumeration.
  int schedules_pruned_commuted = 0;
  int total_runs = 0;
  SimTime virtual_time = 0;
  double fr_percent = 0;
  int level = 0;  // 1..3, or 0 if never reproduced.
  std::string fault_summary;
  // Level-2 SCF sweep accounting for the flat-vs-context bench: how many
  // sweeps were planned and their total candidate width (mean width =
  // scf_sweep_width / scf_sweeps). Counted at planning time, before
  // dedup/budget pruning, so the two modes are compared on the ambiguity
  // they pose, not on how fast a lucky hit cut a sweep short.
  int scf_sweeps = 0;
  int scf_sweep_width = 0;
  // Static plan, filled before any run: for each extracted SCF candidate,
  // the width of the Level-2 sweep the configured indexing mode would pose
  // (flat: the nth grind up to max_scf_sweep; context: the residual
  // same-context window). The flat-vs-context bench compares these per-bug
  // even when diagnosis never reaches Level 2.
  std::vector<int> planned_scf_sweep_widths;
};

class DiagnosisEngine {
 public:
  using ScheduleRunner = std::function<ScheduleRunOutcome(const ScheduleRunRequest&)>;

  // `production` is a non-owning view; the caller keeps the trace (and its
  // string pool) alive and unmodified for the engine's lifetime.
  DiagnosisEngine(TraceView production, const Profile* profile, const BinaryInfo* binary,
                  ScheduleRunner runner, DiagnosisConfig config);

  DiagnosisResult Run();

 private:
  struct Candidate {
    FaultSchedule schedule;
    double rate = 0;
    int level = 0;
  };

  // A candidate probe with pruning verdict and pre-assigned seed, formed in
  // generation order before any execution.
  struct PlannedProbe {
    enum class Action : int8_t {
      kRun,
      kPruneInvalid,
      kPruneDuplicate,
      kPruneInfeasible,
    };
    FaultSchedule schedule;
    uint64_t hash = 0;
    Action action = Action::kRun;
    // Whether planning inserted `hash` into executed_hashes_ (rolled back if
    // the probe is abandoned unconsumed).
    bool inserted_hash = false;
    // Speculative per-schedule run index; re-validated at consumption.
    uint32_t tentative_index = 0;
    int batch_slot = -1;
  };

  FaultSchedule BuildLevel1() const;
  // `with_index` false builds the flat-targeting form even in context mode
  // (fallback waves — DESIGN.md §14).
  ScheduledFault MakeScheduledFault(const CandidateFault& fault, int index,
                                    bool with_index = true) const;
  // Width of the Level-2 SCF sweep this candidate would pose under the
  // engine's configured indexing mode (static plan; nothing runs).
  int PlannedScfSweepWidth(const CandidateFault& candidate) const;

  uint64_t SeedFor(uint64_t schedule_hash, uint32_t run_index) const {
    return DeriveRunSeed(config_.base_seed, schedule_hash, run_index);
  }

  // Reports one milestone through config_.on_progress (no-op when unset).
  void Notify(DiagnosisProgress::Kind kind, const DiagnosisResult& result, double rate,
              std::string detail) const;

  // Lints, dedups, and assigns the speculative run index for one candidate.
  // `local_counts` tracks in-wave index bumps for not-yet-committed probes.
  // With `causal_prune`, candidates the happens-before analysis proves
  // infeasible (or redundant under commutation) are rejected before the
  // hash/dedup step, leaving no mark on the engine's state.
  PlannedProbe PlanProbe(FaultSchedule schedule, bool allow_duplicate, bool causal_prune,
                         std::map<uint64_t, uint32_t>* local_counts);

  // Consumes one planned probe in generation order: applies pruning
  // accounting, obtains the outcome (from the speculative batch when its
  // pre-assigned seed is still the committed one, else by re-running
  // inline), commits the run counter, and confirms on a bug. Returns true
  // when the confirmed rate reaches the target.
  bool ConsumeProbe(PlannedProbe& probe, OrderedBatch<ScheduleRunOutcome>* batch, int level,
                    DiagnosisResult* result, ScheduleRunOutcome* outcome_out);

  // Plans and executes `schedules` as wave-fronts of independent probes,
  // consuming results in generation order. Stops on reproduction or, when
  // `budget > 0`, once result->schedules_generated reaches it; abandoned
  // probes leave no mark on the engine's state. Returns true on reproduction.
  bool RunWave(const std::vector<FaultSchedule>& schedules, int level, bool allow_duplicate,
               int budget, DiagnosisResult* result, bool causal_prune = false);

  // Executes one schedule (counts it) and, if the bug shows, confirms it.
  // Returns true when the confirmed rate reaches the target. Statically
  // invalid or canonically-duplicate schedules are pruned without a run;
  // `allow_duplicate` exempts intentional re-executions (Level-1 attempts).
  bool RunAndMaybeConfirm(const FaultSchedule& schedule, int level, DiagnosisResult* result,
                          ScheduleRunOutcome* outcome_out = nullptr,
                          bool allow_duplicate = false);
  double ConfirmBug(const FaultSchedule& schedule, DiagnosisResult* result);

  // Algorithm 1 for PS/ND fault at position `fault_index` in the schedule.
  bool FindContextForFault(FaultSchedule* schedule, size_t fault_index,
                           size_t candidate_index, DiagnosisResult* result);
  // Replicates fault `fault_index`'s (fault, context) across all nodes.
  FaultSchedule Amplify(const FaultSchedule& schedule, size_t fault_index) const;
  // (correctOrder, faultInjected) from a testing run.
  std::pair<bool, bool> ProcessTrace(const ScheduleRunOutcome& outcome, size_t fault_index,
                                     NodeId node, const std::vector<int32_t>& chain) const;

  bool Level2(FaultSchedule* schedule, const std::vector<size_t>& priority,
              DiagnosisResult* result);
  bool Level3(FaultSchedule* schedule, const std::vector<size_t>& priority,
              DiagnosisResult* result);

  TraceView production_;
  const Profile* profile_;
  const BinaryInfo* binary_;
  ScheduleRunner runner_;
  DiagnosisConfig config_;
  ExtractionResult extraction_;
  ScheduleLinter linter_;
  // Memoized FunctionsBefore over the immutable production trace.
  TraceIndex production_index_;
  // Happens-before order of the production trace and the feasibility
  // checker over it (DESIGN.md §12); the checker borrows the graph.
  CausalGraph causal_;
  FeasibilityChecker feasibility_;
  // Absolute schedule-count cutoffs for Levels 2 and 3, fixed at Level-2
  // entry as entry count + configured budget. Relative budgets keep the
  // refinement levels' behavior independent of how many Level-1 orderings
  // causal pruning removed.
  int level2_cap_ = 0;
  int level3_cap_ = 0;
  // Canonical hashes of every schedule handed to the runner so far.
  std::set<uint64_t> executed_hashes_;
  // Per-schedule committed run counts (canonical hash -> next run index).
  std::map<uint64_t, uint32_t> run_counters_;
  std::vector<Candidate> saved_candidates_;
  // Level currently being consumed, for progress reporting only.
  int notify_level_ = 0;
  // Worker pool for speculative candidate execution; null when parallelism <= 1.
  std::unique_ptr<WorkerPool> pool_;

  // rose::obs self-metrics (docs/metrics.md "engine.*"), resolved once at
  // construction. Strictly write-only: the search never branches on them —
  // that is what keeps parallel and serial diagnoses byte-identical.
  struct EngineMetrics {
    Counter* candidates_generated;
    Counter* pruned_invalid;
    Counter* pruned_duplicate;
    Counter* causal_infeasible;
    Counter* causal_commuted;
    Counter* confirmed;
    Counter* runs;
    Counter* speculation_misses;
    Counter* speculative_abandoned;
    Counter* confirm_early_abandons;
    // Execution-index targeting (DESIGN.md §14).
    Counter* index_targeted;       // SCF faults emitted with an indexed address.
    Counter* index_fallback_flat;  // Context-mode SCFs without a recorded index.
    Histogram* index_sweep_width;  // Planned Level-2 SCF sweep widths (both modes).
    // Indexed by level 1..3 (slot 0 unused).
    Counter* level_candidates[4];
    Counter* level_confirmed[4];
    Counter* level_causal_pruned[4];
    Histogram* wave_ns;
    Histogram* confirm_ns;
  };
  EngineMetrics metrics_;
};

}  // namespace rose

#endif  // SRC_DIAGNOSE_ENGINE_H_
