#include "src/diagnose/extract.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/strings.h"

namespace rose {

std::string CandidateFault::Label() const {
  switch (kind) {
    case FaultKind::kSyscallFailure:
      return StrFormat("SCF(%s,%s,%s)", std::string(SysName(sys)).c_str(), filename.c_str(),
                       std::string(ErrName(err)).c_str());
    case FaultKind::kProcessCrash:
      return StrFormat("PS(Crash)@n%d", node);
    case FaultKind::kProcessPause:
      return StrFormat("PS(Pause %.1fs)@n%d", ToSeconds(pause_duration), node);
    case FaultKind::kNetworkPartition:
      return StrFormat("ND(%s | %.1fs)", Join(group_a, ",").c_str(), ToSeconds(nd_duration));
  }
  return "?";
}

namespace {

// Groups overlapping ND events into partition faults. `nd_events` ids
// resolve against `trace`'s pool.
std::vector<CandidateFault> GroupNdEvents(TraceView trace,
                                          const std::vector<TraceEvent>& nd_events) {
  struct Group {
    SimTime begin = 0;
    SimTime end = 0;
    std::vector<NdInfo> members;
    NodeId node = kNoNode;
  };
  std::vector<Group> groups;
  for (const TraceEvent& event : nd_events) {
    const NdInfo& nd = event.nd();
    const SimTime begin = event.ts - nd.duration;
    const SimTime end = event.ts;
    bool placed = false;
    for (Group& group : groups) {
      if (begin <= group.end && end >= group.begin) {
        group.begin = std::min(group.begin, begin);
        group.end = std::max(group.end, end);
        group.members.push_back(nd);
        if (group.node == kNoNode) {
          group.node = event.node;
        }
        placed = true;
        break;
      }
    }
    if (!placed) {
      groups.push_back(Group{begin, end, {nd}, event.node});
    }
  }

  std::vector<CandidateFault> out;
  for (const Group& group : groups) {
    // The isolated endpoint is the ip participating in the most pairs.
    // Keys are resolved views into the trace's pool — ordered maps keep the
    // historical lexicographic tie-break, with no per-ip allocation.
    std::map<std::string_view, int> degree;
    SimTime max_duration = 0;
    for (const NdInfo& nd : group.members) {
      degree[trace.str(nd.src_ip)]++;
      degree[trace.str(nd.dst_ip)]++;
      max_duration = std::max(max_duration, nd.duration);
    }
    std::string_view isolated;
    int best = -1;
    for (const auto& [ip, count] : degree) {
      if (count > best) {
        best = count;
        isolated = ip;
      }
    }
    CandidateFault fault;
    fault.kind = FaultKind::kNetworkPartition;
    fault.ts = group.begin;
    fault.nd_duration = max_duration;
    fault.group_a = {std::string(isolated)};
    for (const auto& [ip, count] : degree) {
      if (ip != isolated) {
        fault.group_b.emplace_back(ip);
      }
    }
    fault.node = group.node;
    out.push_back(std::move(fault));
  }
  return out;
}

}  // namespace

ExtractionResult ExtractFaults(TraceView trace, const Profile& profile,
                               const ExtractOptions& options) {
  ExtractionResult result;
  std::vector<CandidateFault> faults;
  std::vector<TraceEvent> nd_events;
  std::set<std::string> seen_scf;
  std::map<NodeId, SimTime> last_crash;

  for (const TraceEvent& event : trace) {
    switch (event.type) {
      case EventType::kSCF: {
        const ScfInfo& scf = event.scf();
        const std::string filename(trace.str(scf.filename));
        result.total_fault_events++;
        const bool benign =
            options.use_benign_filter &&
            (profile.benign_scf_signatures.count(
                 ScfSignature(scf.sys, filename, scf.err)) != 0 ||
             profile.benign_scf_signatures.count(ScfSignature(scf.sys, "", scf.err)) != 0);
        if (benign) {
          result.removed_benign++;
          break;
        }
        const std::string dedup_key = StrFormat(
            "%d|%d|%s|%d", event.node, static_cast<int>(scf.sys), filename.c_str(),
            static_cast<int>(scf.err));
        if (!seen_scf.insert(dedup_key).second) {
          break;  // Repeat of an already-known failing call.
        }
        CandidateFault fault;
        fault.kind = FaultKind::kSyscallFailure;
        fault.node = event.node;
        fault.ts = event.ts;
        fault.sys = scf.sys;
        fault.err = scf.err;
        fault.filename = filename;
        // First production occurrence carries its execution index (0/0 on
        // pre-index traces). The dedup key above deliberately ignores it:
        // extraction output is byte-identical to the flat era, and the
        // engine decides whether to target the indexed address.
        fault.ctx_digest = scf.ctx_digest;
        fault.ctx_seq = scf.ctx_seq;
        faults.push_back(std::move(fault));
        break;
      }
      case EventType::kPS: {
        const PsInfo& ps = event.ps();
        result.total_fault_events++;
        if (ps.state == ProcState::kCrashed) {
          auto it = last_crash.find(event.node);
          if (it != last_crash.end() && event.ts - it->second <= options.crash_collapse_gap) {
            it->second = event.ts;  // Part of the same crash loop.
            result.collapsed_crashes++;
            break;
          }
          last_crash[event.node] = event.ts;
          CandidateFault fault;
          fault.kind = FaultKind::kProcessCrash;
          fault.node = event.node;
          fault.ts = event.ts;
          faults.push_back(std::move(fault));
        } else if (ps.state == ProcState::kPaused) {
          CandidateFault fault;
          fault.kind = FaultKind::kProcessPause;
          fault.node = event.node;
          fault.ts = event.ts;
          fault.pause_duration = ps.duration;
          faults.push_back(std::move(fault));
        }
        break;
      }
      case EventType::kND: {
        result.total_fault_events++;
        const NdInfo& nd = event.nd();
        if (options.use_benign_filter &&
            profile.benign_nd_pairs.count({std::string(trace.str(nd.src_ip)),
                                           std::string(trace.str(nd.dst_ip))}) != 0) {
          result.removed_benign++;
          break;
        }
        nd_events.push_back(event);
        break;
      }
      case EventType::kAF:
        break;
    }
  }

  std::vector<CandidateFault> partitions = GroupNdEvents(trace, nd_events);
  faults.insert(faults.end(), partitions.begin(), partitions.end());
  std::stable_sort(faults.begin(), faults.end(),
                   [](const CandidateFault& a, const CandidateFault& b) { return a.ts < b.ts; });
  result.faults = std::move(faults);
  result.fr_percent = result.total_fault_events == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(result.removed_benign) /
                                static_cast<double>(result.total_fault_events);
  return result;
}

std::vector<size_t> PrioritizeFaults(const std::vector<CandidateFault>& faults) {
  std::vector<size_t> order;
  for (int pass = 0; pass < 3; pass++) {
    for (size_t i = 0; i < faults.size(); i++) {
      const FaultKind kind = faults[i].kind;
      const bool is_ps =
          kind == FaultKind::kProcessCrash || kind == FaultKind::kProcessPause;
      if ((pass == 0 && is_ps) || (pass == 1 && kind == FaultKind::kNetworkPartition) ||
          (pass == 2 && kind == FaultKind::kSyscallFailure)) {
        order.push_back(i);
      }
    }
  }
  return order;
}

}  // namespace rose
