// Fault extraction from a buggy production trace (paper §4.5, Level 1 prep).
//
// Turns raw trace events into candidate faults:
//   - discards benign SCFs by diffing against the profiling baseline (the
//     paper's FR% column measures this reduction);
//   - deduplicates repeated identical SCFs;
//   - collapses crash loops (a panic-restart-panic cascade is one fault);
//   - groups overlapping ND events into a single partition fault, inferring
//     the isolated node from pair degrees.
#ifndef SRC_DIAGNOSE_EXTRACT_H_
#define SRC_DIAGNOSE_EXTRACT_H_

#include <string>
#include <vector>

#include "src/profile/profiler.h"
#include "src/schedule/fault_schedule.h"
#include "src/trace/event.h"

namespace rose {

struct CandidateFault {
  FaultKind kind = FaultKind::kProcessCrash;
  // The node the fault applies to. For partitions: the isolated node (also
  // the node whose AF history contextualizes the fault).
  NodeId node = kNoNode;
  SimTime ts = 0;

  // kSyscallFailure:
  Sys sys = Sys::kOpen;
  Err err = Err::kEIO;
  std::string filename;
  // Execution index of the first production occurrence (0/0 when the trace
  // predates indexing); context-mode candidate generation targets this
  // address directly instead of sweeping flat nth counters.
  uint64_t ctx_digest = 0;
  uint32_t ctx_seq = 0;

  // kProcessPause:
  SimTime pause_duration = 0;

  // kNetworkPartition:
  std::vector<std::string> group_a;
  std::vector<std::string> group_b;
  SimTime nd_duration = 0;

  std::string Label() const;
};

struct ExtractionResult {
  // Chronological candidate faults.
  std::vector<CandidateFault> faults;
  // Raw fault-shaped events in the trace before any filtering.
  int total_fault_events = 0;
  int removed_benign = 0;
  int collapsed_crashes = 0;
  // The paper's FR%: share of potential faults removed by the clean-trace diff.
  double fr_percent = 0;
};

struct ExtractOptions {
  // Crashes of the same node closer than this are one crash loop. A
  // panic-on-boot crash follows its predecessor by exactly the supervisor
  // restart delay (2 s) plus recovery microseconds; a genuinely new fault
  // needs at least a heartbeat of post-boot activity first.
  SimTime crash_collapse_gap = Millis(2050);
  // Disable the benign diff (ablation A1).
  bool use_benign_filter = true;
};

// `trace` is a read-only view: candidate faults detach from it (filenames
// and ip groups become owned strings), so the result outlives the trace.
ExtractionResult ExtractFaults(TraceView trace, const Profile& profile,
                               const ExtractOptions& options = {});

// Priority order for contextualization: PS first, then ND, then SCF,
// chronological within each class (paper §4.5.1). Returns indices into
// `faults`.
std::vector<size_t> PrioritizeFaults(const std::vector<CandidateFault>& faults);

}  // namespace rose

#endif  // SRC_DIAGNOSE_EXTRACT_H_
