#include "src/exec/executor.h"

namespace rose {

Executor::Executor(SimKernel* kernel, Network* network, FaultSchedule schedule,
                   const FeasibilityChecker* feasibility)
    : kernel_(kernel), network_(network), schedule_(std::move(schedule)) {
  diagnostics_ = ScheduleLinter().Lint(schedule_);
  if (feasibility != nullptr && feasibility->valid()) {
    // Causal admission: an injection order the production trace's
    // happens-before relation contradicts can never replay; refuse it like
    // any other statically-unsatisfiable schedule.
    FeasibilityReport report = feasibility->Check(schedule_);
    diagnostics_.insert(diagnostics_.end(),
                        std::make_move_iterator(report.diagnostics.begin()),
                        std::make_move_iterator(report.diagnostics.end()));
  }
  schedule_valid_ = !HasErrors(diagnostics_);
  runtime_.resize(schedule_.faults.size());
  for (const ScheduledFault& fault : schedule_.faults) {
    for (const Condition& cond : fault.conditions) {
      if (cond.kind == Condition::Kind::kExecutionIndex) {
        uses_index_ = true;
      }
    }
  }
}

Executor::~Executor() { Detach(); }

bool Executor::Attach() {
  if (attached_) {
    return true;
  }
  if (!schedule_valid_) {
    return false;
  }
  attached_ = true;
  kernel_->AddObserver(this);
  kernel_->AddInterposer(this);
  AdvanceAll();
  return true;
}

void Executor::Detach() {
  if (!attached_) {
    return;
  }
  attached_ = false;
  kernel_->RemoveObserver(this);
  kernel_->RemoveInterposer(this);
}

ExecutionFeedback Executor::Feedback() const {
  ExecutionFeedback feedback;
  feedback.outcomes.reserve(runtime_.size());
  for (const FaultRuntime& rt : runtime_) {
    FaultOutcome outcome;
    outcome.injected = rt.injected;
    outcome.injected_at = rt.injected_at;
    outcome.conditions_satisfied = rt.next_condition;
    feedback.outcomes.push_back(outcome);
  }
  return feedback;
}

bool Executor::PidOnNode(Pid pid, NodeId node) const {
  const Process* proc = kernel_->FindProcess(pid);
  return proc != nullptr && proc->node == node;
}

NodeId Executor::NodeOfPid(Pid pid) const {
  const Process* proc = kernel_->FindProcess(pid);
  return proc == nullptr ? kNoNode : proc->node;
}

std::string Executor::InputOf(const SyscallInvocation& inv) const {
  if (SysTakesPath(inv.sys)) {
    return inv.path;
  }
  if (!inv.remote_ip.empty()) {
    return "sock:" + inv.remote_ip;
  }
  if (inv.fd >= 0) {
    return kernel_->PathOfFd(inv.pid, inv.fd);
  }
  return "";
}

bool Executor::InputMatches(const std::string& filter, const std::string& input) {
  return filter.empty() || filter == input;
}

void Executor::AdvanceAll() {
  for (size_t i = 0; i < runtime_.size(); i++) {
    TryAdvance(i);
  }
}

void Executor::TryAdvance(size_t index) {
  FaultRuntime& rt = runtime_[index];
  if (rt.armed || rt.injected) {
    return;
  }
  const ScheduledFault& fault = schedule_.faults[index];
  while (rt.next_condition < fault.conditions.size()) {
    const Condition& cond = fault.conditions[rt.next_condition];
    if (cond.kind == Condition::Kind::kAfterFault) {
      const auto dep = static_cast<size_t>(cond.fault_index);
      if (dep < runtime_.size() && runtime_[dep].injected) {
        rt.next_condition++;
        continue;
      }
      return;
    }
    if (cond.kind == Condition::Kind::kAtTime) {
      if (kernel_->now() >= cond.at_time) {
        rt.next_condition++;
        continue;
      }
      kernel_->loop().ScheduleAt(cond.at_time, [this, index] { TryAdvance(index); });
      return;
    }
    // Function / syscall-count / execution-index conditions advance from the
    // kernel hooks.
    return;
  }
  Arm(index);
}

void Executor::Arm(size_t index) {
  FaultRuntime& rt = runtime_[index];
  if (rt.armed || rt.injected) {
    return;
  }
  rt.armed = true;
  const ScheduledFault& fault = schedule_.faults[index];
  if (fault.kind != FaultKind::kSyscallFailure) {
    // Non-syscall faults fire the instant their context completes.
    Inject(index);
  }
}

void Executor::Inject(size_t index) {
  FaultRuntime& rt = runtime_[index];
  if (rt.injected) {
    return;
  }
  rt.injected = true;
  rt.injected_at = kernel_->now();
  const ScheduledFault& fault = schedule_.faults[index];
  switch (fault.kind) {
    case FaultKind::kSyscallFailure:
      // Recorded here; the actual override happened in MaybeOverride.
      break;
    case FaultKind::kProcessCrash: {
      const Pid victim = pids_.CurrentMain(fault.target_node);
      if (victim != kNoPid) {
        kernel_->Kill(victim);
      }
      break;
    }
    case FaultKind::kProcessPause: {
      const Pid victim = pids_.CurrentMain(fault.target_node);
      if (victim != kNoPid) {
        kernel_->Pause(victim, fault.process.pause_duration);
      }
      break;
    }
    case FaultKind::kNetworkPartition:
      if (network_ != nullptr) {
        network_->Partition(fault.network.group_a, fault.network.group_b,
                            fault.network.duration);
      }
      break;
  }
  // Other faults may have been waiting on this one (fault-order conditions).
  AdvanceAll();
}

void Executor::OnProcessSpawned(SimTime /*now*/, Pid pid, NodeId node, Pid parent) {
  pids_.OnSpawn(pid, node, parent);
}

void Executor::OnFunctionEnter(SimTime /*now*/, Pid pid, int32_t function_id) {
  if (uses_index_) {
    // Every enter, before any condition matching — mirrors the tracer's
    // unfiltered shadow-chain update so digests agree between capture and
    // replay.
    index_.OnFunctionEnter(pid, function_id);
  }
  for (size_t i = 0; i < runtime_.size(); i++) {
    FaultRuntime& rt = runtime_[i];
    const ScheduledFault& fault = schedule_.faults[i];
    if (rt.armed || rt.injected || rt.next_condition >= fault.conditions.size()) {
      continue;
    }
    const Condition& cond = fault.conditions[rt.next_condition];
    if (cond.kind == Condition::Kind::kFunctionEnter && cond.function_id == function_id &&
        PidOnNode(pid, fault.target_node)) {
      rt.next_condition++;
      TryAdvance(i);
    }
  }
}

void Executor::OnFunctionOffset(SimTime /*now*/, Pid pid, int32_t function_id, int32_t offset) {
  for (size_t i = 0; i < runtime_.size(); i++) {
    FaultRuntime& rt = runtime_[i];
    const ScheduledFault& fault = schedule_.faults[i];
    if (rt.armed || rt.injected || rt.next_condition >= fault.conditions.size()) {
      continue;
    }
    const Condition& cond = fault.conditions[rt.next_condition];
    if (cond.kind == Condition::Kind::kFunctionOffset && cond.function_id == function_id &&
        cond.offset == offset && PidOnNode(pid, fault.target_node)) {
      rt.next_condition++;
      TryAdvance(i);
    }
  }
}

void Executor::OnSyscallExit(SimTime /*now*/, const SyscallInvocation& inv,
                             const SyscallResult& /*result*/) {
  for (size_t i = 0; i < runtime_.size(); i++) {
    FaultRuntime& rt = runtime_[i];
    const ScheduledFault& fault = schedule_.faults[i];
    if (rt.armed || rt.injected || rt.next_condition >= fault.conditions.size()) {
      continue;
    }
    Condition& cond = schedule_.faults[i].conditions[rt.next_condition];
    if (cond.kind == Condition::Kind::kSyscallCount && cond.sys == inv.sys &&
        PidOnNode(inv.pid, fault.target_node) &&
        InputMatches(cond.path_filter, InputOf(inv))) {
      cond.count--;
      if (cond.count <= 0) {
        rt.next_condition++;
        TryAdvance(i);
      }
    }
  }
}

std::optional<SyscallResult> Executor::MaybeOverride(const SyscallInvocation& inv) {
  if (uses_index_) {
    // Advance the execution index exactly once per invocation (the
    // interposer sees every syscall, overridden or not — the same stream the
    // tracer counts at sys_exit), then step any fault whose next condition
    // is the indexed address of this very invocation. Matching is three
    // integer compares against the online (digest, seq) — no counter scan.
    const uint64_t digest = index_.DigestOf(inv.pid);
    const uint32_t seq =
        index_.NextSeq(NodeOfPid(inv.pid), digest, inv.sys, IndexInputOf(inv));
    for (size_t i = 0; i < runtime_.size(); i++) {
      FaultRuntime& rt = runtime_[i];
      const ScheduledFault& fault = schedule_.faults[i];
      if (rt.armed || rt.injected || rt.next_condition >= fault.conditions.size()) {
        continue;
      }
      const Condition& cond = fault.conditions[rt.next_condition];
      if (cond.kind == Condition::Kind::kExecutionIndex && cond.sys == inv.sys &&
          cond.ctx_digest == digest && static_cast<uint32_t>(cond.count) == seq &&
          PidOnNode(inv.pid, fault.target_node) &&
          InputMatches(cond.path_filter, InputOf(inv))) {
        rt.next_condition++;
        // Arms SCF faults (and fires non-SCF ones) at this kernel boundary;
        // for an SCF fault the armed scan below then fails this same
        // invocation — the indexed address names the injection point itself.
        TryAdvance(i);
      }
    }
  }
  for (size_t i = 0; i < runtime_.size(); i++) {
    FaultRuntime& rt = runtime_[i];
    const ScheduledFault& fault = schedule_.faults[i];
    if (fault.kind != FaultKind::kSyscallFailure || !rt.armed) {
      continue;
    }
    if (rt.injected && !fault.syscall.persistent) {
      continue;
    }
    if (fault.syscall.sys != inv.sys || !PidOnNode(inv.pid, fault.target_node)) {
      continue;
    }
    if (!InputMatches(fault.syscall.path_filter, InputOf(inv))) {
      continue;
    }
    rt.match_count++;
    if (rt.match_count < fault.syscall.nth) {
      continue;
    }
    if (!rt.injected) {
      Inject(i);
    }
    return SyscallResult::Fail(fault.syscall.err);
  }
  return std::nullopt;
}

}  // namespace rose
