// The reproduction-phase executor (paper §4.6, §5.4).
//
// Tracks per-node fault contexts and injects faults precisely:
//   - syscall failures via the interposer (bpf_override_return analogue):
//     the nth invocation matching (syscall, input filter) after the fault's
//     conditions hold is failed at entry with the scheduled errno;
//   - crashes/pauses via kernel signals delivered at the observing hook
//     point (bpf_send_signal analogue);
//   - partitions via TC-style drop rules on the network fabric.
//
// Conditions are an ordered sequence; the fault fires the moment the last
// one is observed. AfterFault conditions enforce the production fault order.
#ifndef SRC_EXEC_EXECUTOR_H_
#define SRC_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/analyze/schedule_linter.h"
#include "src/causal/feasibility.h"
#include "src/exec/pid_tracker.h"
#include "src/net/network.h"
#include "src/os/kernel.h"
#include "src/schedule/fault_schedule.h"
#include "src/trace/execution_index.h"

namespace rose {

// Per-fault outcome fed back to the diagnosis phase (Algorithm 1 lines 34-35).
struct FaultOutcome {
  bool injected = false;
  SimTime injected_at = 0;
  // How far through its condition sequence the fault got.
  size_t conditions_satisfied = 0;
};

struct ExecutionFeedback {
  std::vector<FaultOutcome> outcomes;

  bool AllInjected() const {
    for (const auto& outcome : outcomes) {
      if (!outcome.injected) {
        return false;
      }
    }
    return true;
  }
};

class Executor : public KernelObserver, public SyscallInterposer {
 public:
  // `feasibility`, when provided, admits the schedule against the production
  // trace's happens-before order (DESIGN.md §12): an infeasible schedule —
  // one whose enforced injection order the trace contradicts (TB301) — is
  // refused exactly like a lint rejection. The checker (and the graph and
  // trace it borrows) must outlive the executor.
  Executor(SimKernel* kernel, Network* network, FaultSchedule schedule,
           const FeasibilityChecker* feasibility = nullptr);
  ~Executor() override;

  // Hooks into the kernel. A schedule the linter rejects (error-severity
  // diagnostics) or the feasibility checker refutes is refused up front:
  // Attach() returns false and installs nothing, instead of letting the
  // faults silently never fire.
  bool Attach();
  void Detach();

  const FaultSchedule& schedule() const { return schedule_; }
  // Lint (and, when a checker was given, feasibility) findings for the
  // schedule, computed at construction.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  // False when the schedule is statically malformed (Attach() will refuse).
  bool schedule_valid() const { return schedule_valid_; }
  ExecutionFeedback Feedback() const;

  // --- KernelObserver --------------------------------------------------------
  void OnSyscallExit(SimTime now, const SyscallInvocation& inv,
                     const SyscallResult& result) override;
  void OnFunctionEnter(SimTime now, Pid pid, int32_t function_id) override;
  void OnFunctionOffset(SimTime now, Pid pid, int32_t function_id, int32_t offset) override;
  void OnProcessSpawned(SimTime now, Pid pid, NodeId node, Pid parent) override;

  // --- SyscallInterposer ------------------------------------------------------
  std::optional<SyscallResult> MaybeOverride(const SyscallInvocation& inv) override;

 private:
  struct FaultRuntime {
    size_t next_condition = 0;
    int32_t match_count = 0;  // Matching invocations seen while armed (SCF).
    bool armed = false;       // All conditions satisfied.
    bool injected = false;
    SimTime injected_at = 0;
  };

  bool PidOnNode(Pid pid, NodeId node) const;
  NodeId NodeOfPid(Pid pid) const;
  // Pathname-ish input of an invocation (path, fd-resolved path, or peer).
  std::string InputOf(const SyscallInvocation& inv) const;
  static bool InputMatches(const std::string& filter, const std::string& input);

  // Advances statically-checkable conditions (AfterFault, AtTime) and
  // injects non-syscall faults once armed.
  void TryAdvance(size_t index);
  void AdvanceAll();
  void Arm(size_t index);
  void Inject(size_t index);

  SimKernel* kernel_;
  Network* network_;
  FaultSchedule schedule_;
  std::vector<Diagnostic> diagnostics_;
  bool schedule_valid_ = true;
  std::vector<FaultRuntime> runtime_;
  PidTracker pids_;
  bool attached_ = false;
  // Replay-side execution index, fed the same hook stream as the tracer's
  // capture-side tracker, so a recorded (digest, seq) address re-resolves to
  // the same invocation here. kExecutionIndex conditions match against it in
  // O(1) — no armed-counter scan.
  ExecutionIndexTracker index_;
  // True when any fault carries a kExecutionIndex condition; skips the
  // per-invocation index bookkeeping entirely for flat schedules.
  bool uses_index_ = false;
};

}  // namespace rose

#endif  // SRC_EXEC_EXECUTOR_H_
