#include "src/exec/pid_tracker.h"

namespace rose {

void PidTracker::OnSpawn(Pid pid, NodeId node, Pid parent) {
  if (parent != kNoPid) {
    // Child process: decisions are made against (and faults injected on) the
    // parent's schedule identity.
    auto it = root_of_.find(parent);
    root_of_[pid] = it != root_of_.end() ? it->second : parent;
    return;
  }
  auto original = original_main_.find(node);
  if (original == original_main_.end()) {
    original_main_[node] = pid;
    current_main_[node] = pid;
    root_of_[pid] = pid;
    return;
  }
  // Restart: map the new pid back to the original schedule identity.
  root_of_[pid] = original->second;
  current_main_[node] = pid;
}

Pid PidTracker::RootOf(Pid pid) const {
  auto it = root_of_.find(pid);
  return it == root_of_.end() ? pid : it->second;
}

NodeId PidTracker::NodeOfRoot(Pid root) const {
  for (const auto& [node, pid] : original_main_) {
    if (pid == root) {
      return node;
    }
  }
  return kNoNode;
}

Pid PidTracker::CurrentMain(NodeId node) const {
  auto it = current_main_.find(node);
  return it == current_main_.end() ? kNoPid : it->second;
}

Pid PidTracker::OriginalMain(NodeId node) const {
  auto it = original_main_.find(node);
  return it == original_main_.end() ? kNoPid : it->second;
}

}  // namespace rose
