// Pid tracking across children and restarts (paper §5.4).
//
// Conditions and faults are specified per *node*, but the kernel reports
// events per *pid*. Systems fork children, and a crashed node restarts with
// a fresh pid, so the executor maintains two maps, exactly as the paper
// describes: child pid -> schedule pid (the node's first main process), and
// restarted pid -> original pid. Decisions are made against the original
// pid; injection happens on the node's current main pid.
#ifndef SRC_EXEC_PID_TRACKER_H_
#define SRC_EXEC_PID_TRACKER_H_

#include <map>

#include "src/os/process.h"

namespace rose {

class PidTracker {
 public:
  // Feed every spawn in order. A spawn with a parent is a child process; a
  // parentless spawn on a node that already has a main process is a restart.
  void OnSpawn(Pid pid, NodeId node, Pid parent);

  // The schedule-level pid this runtime pid maps to (itself if unknown).
  Pid RootOf(Pid pid) const;

  // The node a schedule-level pid belongs to; kNoNode when unknown.
  NodeId NodeOfRoot(Pid root) const;

  // Current main pid of `node` (where faults are injected); kNoPid if none.
  Pid CurrentMain(NodeId node) const;

  // First main pid ever observed for `node` (the schedule-level identity).
  Pid OriginalMain(NodeId node) const;

 private:
  std::map<Pid, Pid> root_of_;          // any pid -> original main pid
  std::map<NodeId, Pid> original_main_;
  std::map<NodeId, Pid> current_main_;
};

}  // namespace rose

#endif  // SRC_EXEC_PID_TRACKER_H_
