// Bug specifications: everything the developer gives Rose for one bug.
//
// Per the paper (§4), the developer provides: the system binaries (here, a
// deployment factory + the guest's BinaryInfo), a representative workload
// (baked into the deployment as client nodes), a bug oracle, and a list of
// source files controlling critical functionality (profiling candidates).
// The production trace comes either from a Jepsen-style nemesis run (source
// "J") or, for bugs recreated from test cases (source "A"/"M"), from a
// manually-authored trigger schedule — mirroring how the paper obtained its
// traces.
#ifndef SRC_HARNESS_BUG_H_
#define SRC_HARNESS_BUG_H_

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/apps/framework/cluster.h"
#include "src/harness/world.h"
#include "src/profile/binary_info.h"
#include "src/schedule/fault_schedule.h"
#include "src/workload/nemesis.h"

namespace rose {

// A deployed guest instance living inside one SimWorld.
struct Deployment {
  std::unique_ptr<Cluster> cluster;
  std::vector<NodeId> servers;
  std::vector<NodeId> clients;
  // Current leader (kNoNode if none/unknown); used by the targeted nemesis.
  std::function<NodeId()> leader_probe;
  // The bug oracle: true when the bug has manifested in this deployment.
  std::function<bool()> oracle;
};

struct BugSpec {
  std::string id;           // e.g. "RedisRaft-43"
  std::string system;       // e.g. "RaftKV (mini RedisRaft)"
  std::string source;       // "J"=Jepsen-style, "A"=Anduril-style, "M"=manual
  std::string description;

  std::function<Deployment(SimWorld&, uint64_t seed)> deploy;
  const BinaryInfo* binary = nullptr;
  std::set<std::string> relevant_files;

  SimTime run_duration = Seconds(40);

  // Production-trace acquisition: nemesis (randomized) or manual schedule.
  bool production_via_nemesis = true;
  NemesisOptions nemesis;
  std::optional<FaultSchedule> manual_production;
  int max_production_attempts = 40;

  // Ground truth for reporting (EXPERIMENTS.md comparisons).
  std::string expected_faults;
  int expected_level = 1;
};

}  // namespace rose

#endif  // SRC_HARNESS_BUG_H_
