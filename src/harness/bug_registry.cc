#include "src/harness/bug_registry.h"

#include <memory>

namespace rose {

namespace {

std::vector<std::unique_ptr<BugSpec>>& Storage() {
  static std::vector<std::unique_ptr<BugSpec>> storage;
  return storage;
}

void BuildRegistry() {
  std::vector<BugSpec> specs;
  RegisterRaftKvBugs(&specs);
  RegisterMiniRedpandaBugs(&specs);
  RegisterMiniZkBugs(&specs);
  RegisterMiniHdfsBugs(&specs);
  RegisterMiniBrokerBugs(&specs);
  RegisterMiniTableStoreBugs(&specs);
  RegisterMiniDocStoreBugs(&specs);
  RegisterMiniBftBugs(&specs);
  for (BugSpec& spec : specs) {
    Storage().push_back(std::make_unique<BugSpec>(std::move(spec)));
  }
}

}  // namespace

const std::vector<const BugSpec*>& AllBugs() {
  static const std::vector<const BugSpec*> view = [] {
    BuildRegistry();
    std::vector<const BugSpec*> out;
    for (const auto& spec : Storage()) {
      out.push_back(spec.get());
    }
    return out;
  }();
  return view;
}

const BugSpec* FindBug(const std::string& id) {
  for (const BugSpec* spec : AllBugs()) {
    if (spec->id == id) {
      return spec;
    }
  }
  return nullptr;
}

}  // namespace rose
