// Registry of the 20 reproduced bugs (paper Table 1).
#ifndef SRC_HARNESS_BUG_REGISTRY_H_
#define SRC_HARNESS_BUG_REGISTRY_H_

#include <string>
#include <vector>

#include "src/harness/bug.h"

namespace rose {

// All registered bug specs, in Table-1 order. Specs are owned by the
// registry and live for the process lifetime.
const std::vector<const BugSpec*>& AllBugs();

// Lookup by id (e.g. "RedisRaft-43"); nullptr when unknown.
const BugSpec* FindBug(const std::string& id);

// Per-guest registration hooks (each guest module defines one).
void RegisterRaftKvBugs(std::vector<BugSpec>* out);
void RegisterMiniZkBugs(std::vector<BugSpec>* out);
void RegisterMiniHdfsBugs(std::vector<BugSpec>* out);
void RegisterMiniBrokerBugs(std::vector<BugSpec>* out);
void RegisterMiniRedpandaBugs(std::vector<BugSpec>* out);
void RegisterMiniDocStoreBugs(std::vector<BugSpec>* out);
void RegisterMiniTableStoreBugs(std::vector<BugSpec>* out);
void RegisterMiniBftBugs(std::vector<BugSpec>* out);

}  // namespace rose

#endif  // SRC_HARNESS_BUG_REGISTRY_H_
