// BugSpec for the MiniBft (mini Tendermint) bug of Table 1.
#include "src/apps/minibft/minibft.h"
#include "src/harness/bug_registry.h"
#include "src/oracle/oracle.h"

namespace rose {

namespace {

const BinaryInfo& MiniBftBinary() {
  static const BinaryInfo binary = BuildMiniBftBinary();
  return binary;
}

Deployment DeployMiniBft(SimWorld& world, uint64_t seed, const MiniBftOptions& options) {
  ClusterConfig cluster_config;
  cluster_config.seed = seed;
  auto cluster = std::make_unique<Cluster>(&world.kernel, &world.network, &MiniBftBinary(),
                                           cluster_config);
  Deployment deployment;
  for (int i = 0; i < options.cluster_size; i++) {
    deployment.servers.push_back(cluster->AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<MiniBftNode>(c, id, options);
    }));
  }
  Cluster* raw = cluster.get();
  deployment.leader_probe = [] { return static_cast<NodeId>(0); };
  deployment.oracle = [raw] {
    return LogsContain(raw->AllLogText(), "unexpected validator key change");
  };
  deployment.cluster = std::move(cluster);
  return deployment;
}

}  // namespace

void RegisterMiniBftBugs(std::vector<BugSpec>* out) {
  BugSpec spec;
  spec.id = "Tendermint-5839";
  spec.system = "MiniBft (mini Tendermint, Go)";
  spec.source = "M";
  spec.description = "Does not validate permissions to access the validator key file.";
  spec.binary = &MiniBftBinary();
  spec.relevant_files = {"privval.c", "consensus.c"};
  spec.run_duration = Seconds(25);
  spec.expected_faults = "SCF(openat)";
  spec.expected_level = 1;
  MiniBftOptions options;
  options.bug5839 = true;
  spec.deploy = [options](SimWorld& world, uint64_t seed) {
    return DeployMiniBft(world, seed, options);
  };
  spec.production_via_nemesis = false;
  FaultSchedule production;
  production.name = "tendermint-5839-production";
  ScheduledFault fault;
  fault.kind = FaultKind::kSyscallFailure;
  fault.target_node = 1;
  fault.syscall.sys = Sys::kOpenAt;
  fault.syscall.err = Err::kEACCES;
  fault.syscall.path_filter = "/data/priv_validator_key.json";
  fault.syscall.nth = 1;
  fault.conditions = {Condition::AtTime(Seconds(5))};
  production.faults.push_back(fault);
  spec.manual_production = production;
  out->push_back(std::move(spec));
}

}  // namespace rose
