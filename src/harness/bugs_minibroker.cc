// BugSpec for the MiniBroker (mini Kafka Streams) bug of Table 1.
#include "src/apps/minibroker/minibroker.h"
#include "src/harness/bug_registry.h"
#include "src/oracle/oracle.h"

namespace rose {

namespace {

const BinaryInfo& MiniBrokerBinary() {
  static const BinaryInfo binary = BuildMiniBrokerBinary();
  return binary;
}

Deployment DeployMiniBroker(SimWorld& world, uint64_t seed, const MiniBrokerOptions& options) {
  ClusterConfig cluster_config;
  cluster_config.seed = seed;
  auto cluster = std::make_unique<Cluster>(&world.kernel, &world.network,
                                           &MiniBrokerBinary(), cluster_config);
  Deployment deployment;
  for (int i = 0; i < 2; i++) {
    deployment.servers.push_back(cluster->AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<MiniBrokerNode>(c, id, options);
    }));
  }
  Cluster* raw = cluster.get();
  deployment.leader_probe = [] { return kBrokerStreams; };
  deployment.oracle = [raw] {
    return LogsContain(raw->AllLogText(), "emit-on-change updates lost");
  };
  deployment.cluster = std::move(cluster);
  return deployment;
}

}  // namespace

void RegisterMiniBrokerBugs(std::vector<BugSpec>* out) {
  BugSpec spec;
  spec.id = "Kafka-12508";
  spec.system = "MiniBroker (mini Kafka Streams, Java/Scala)";
  spec.source = "A";
  spec.description = "Emit-on-change tables may lose updates on error or restart.";
  spec.binary = &MiniBrokerBinary();
  spec.relevant_files = {"streams.c"};
  spec.run_duration = Seconds(25);
  spec.expected_faults = "SCF(openat)";
  spec.expected_level = 1;
  MiniBrokerOptions options;
  options.bug12508 = true;
  spec.deploy = [options](SimWorld& world, uint64_t seed) {
    return DeployMiniBroker(world, seed, options);
  };
  spec.production_via_nemesis = false;
  FaultSchedule production;
  production.name = "kafka-12508-production";
  ScheduledFault fault;
  fault.kind = FaultKind::kSyscallFailure;
  fault.target_node = kBrokerStreams;
  fault.syscall.sys = Sys::kOpenAt;
  fault.syscall.err = Err::kEIO;
  fault.syscall.path_filter = "/data/changelog";
  fault.syscall.nth = 1;
  fault.conditions = {Condition::AtTime(Seconds(6))};
  production.faults.push_back(fault);
  spec.manual_production = production;
  out->push_back(std::move(spec));
}

}  // namespace rose
