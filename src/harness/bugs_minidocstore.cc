// BugSpecs for the two MiniDocStore (mini MongoDB) bugs of Table 1.
#include "src/apps/minidocstore/minidocstore.h"
#include "src/harness/bug_registry.h"
#include "src/oracle/oracle.h"
#include "src/workload/kv_client.h"

namespace rose {

namespace {

const BinaryInfo& MiniDocStoreBinary() {
  static const BinaryInfo binary = BuildMiniDocStoreBinary();
  return binary;
}

enum class DsOracleKind { kDataLoss, kUnavailability };

Deployment DeployMiniDocStore(SimWorld& world, uint64_t seed,
                              const MiniDocStoreOptions& options, DsOracleKind oracle_kind) {
  ClusterConfig cluster_config;
  cluster_config.seed = seed;
  auto cluster = std::make_unique<Cluster>(&world.kernel, &world.network,
                                           &MiniDocStoreBinary(), cluster_config);
  Deployment deployment;
  for (int i = 0; i < options.cluster_size; i++) {
    deployment.servers.push_back(cluster->AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<MiniDocStoreNode>(c, id, options);
    }));
  }
  KvClientOptions client_options;
  client_options.server_count = options.cluster_size;
  client_options.read_fraction = 0.0;  // Writes only (the oracle audits them).
  for (int i = 0; i < 2; i++) {
    deployment.clients.push_back(cluster->AddNode([client_options](Cluster* c, NodeId id) {
      return std::make_unique<KvClient>(c, id, client_options);
    }));
  }
  Cluster* raw = cluster.get();
  const int server_count = options.cluster_size;
  deployment.leader_probe = [raw, server_count]() -> NodeId {
    NodeId best = kNoNode;
    int64_t best_epoch = -1;
    for (NodeId id = 0; id < server_count; id++) {
      auto* node = dynamic_cast<MiniDocStoreNode*>(raw->node(id));
      if (node != nullptr && node->is_primary() && raw->IsNodeAlive(id) &&
          node->epoch() > best_epoch) {
        best = id;
        best_epoch = node->epoch();
      }
    }
    return best;
  };
  const auto leader_probe = deployment.leader_probe;
  deployment.oracle = [raw, server_count, oracle_kind, leader_probe] {
    if (oracle_kind == DsOracleKind::kUnavailability) {
      return LogsContain(raw->AllLogText(), "replica set has no primary");
    }
    // Data loss: an acknowledged write missing from the authoritative
    // primary's oplog.
    const NodeId primary_id = leader_probe();
    if (primary_id == kNoNode) {
      return false;
    }
    auto* primary = dynamic_cast<MiniDocStoreNode*>(raw->node(primary_id));
    if (primary == nullptr) {
      return false;
    }
    std::vector<std::string> acked;
    for (NodeId id = server_count; id < server_count + 2; id++) {
      auto* client = dynamic_cast<KvClient*>(raw->node(id));
      if (client == nullptr) {
        continue;
      }
      for (const OpRecord& record : client->history()) {
        if (record.acknowledged) {
          acked.push_back(record.op_id);
        }
      }
    }
    const std::vector<std::string>& committed = primary->oplog();
    for (const HistoryViolation& violation :
         ElleLite::CheckAppendHistory(acked, committed)) {
      if (violation.kind == HistoryViolation::Kind::kLostWrite) {
        return true;
      }
    }
    return false;
  };
  deployment.cluster = std::move(cluster);
  return deployment;
}

}  // namespace

void RegisterMiniDocStoreBugs(std::vector<BugSpec>* out) {
  {
    BugSpec spec;
    spec.id = "MongoDB-2.4.3";
    spec.system = "MiniDocStore (mini MongoDB, C++)";
    spec.source = "M";
    spec.description = "MongoDB data loss: acknowledged writes rolled back after partition.";
    spec.binary = &MiniDocStoreBinary();
    spec.relevant_files = {"repl.c", "storage.c"};
    spec.run_duration = Seconds(35);
    spec.expected_faults = "2*ND";
    spec.expected_level = 1;
    MiniDocStoreOptions options;
    options.bug_dataloss = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniDocStore(world, seed, options, DsOracleKind::kDataLoss);
    };
    spec.production_via_nemesis = true;
    spec.nemesis.server_count = 3;
    spec.nemesis.p_crash = 0.0;
    spec.nemesis.p_pause = 0.1;
    spec.nemesis.p_partition = 0.9;
    spec.nemesis.p_target_leader = 0.85;
    out->push_back(std::move(spec));
  }
  {
    BugSpec spec;
    spec.id = "MongoDB-3.2.10";
    spec.system = "MiniDocStore (mini MongoDB, C++)";
    spec.source = "M";
    spec.description = "MongoDB unavailability: no primary elected during partition.";
    spec.binary = &MiniDocStoreBinary();
    spec.relevant_files = {"repl.c", "storage.c"};
    spec.run_duration = Seconds(35);
    spec.expected_faults = "ND";
    spec.expected_level = 1;
    MiniDocStoreOptions options;
    options.bug_unavail = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniDocStore(world, seed, options, DsOracleKind::kUnavailability);
    };
    spec.production_via_nemesis = true;
    spec.nemesis.server_count = 3;
    spec.nemesis.p_crash = 0.0;
    spec.nemesis.p_pause = 0.0;
    spec.nemesis.p_partition = 1.0;
    spec.nemesis.p_target_leader = 0.9;
    spec.nemesis.partition_min = Seconds(11);
    spec.nemesis.partition_max = Seconds(14);
    spec.nemesis.interval_min = Seconds(4);
    spec.nemesis.interval_max = Seconds(8);
    out->push_back(std::move(spec));
  }
}

}  // namespace rose
