// BugSpecs for the four MiniHdfs bugs of Table 1.
#include "src/apps/minihdfs/hdfs_client.h"
#include "src/apps/minihdfs/minihdfs.h"
#include "src/harness/bug_registry.h"
#include "src/oracle/oracle.h"

namespace rose {

namespace {

const BinaryInfo& MiniHdfsBinary() {
  static const BinaryInfo binary = BuildMiniHdfsBinary();
  return binary;
}

Deployment DeployMiniHdfs(SimWorld& world, uint64_t seed, const MiniHdfsOptions& options,
                          const std::string& oracle_pattern) {
  ClusterConfig cluster_config;
  cluster_config.seed = seed;
  auto cluster = std::make_unique<Cluster>(&world.kernel, &world.network, &MiniHdfsBinary(),
                                           cluster_config);
  Deployment deployment;
  for (int i = 0; i < kHdfsServerCount; i++) {
    deployment.servers.push_back(cluster->AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<MiniHdfsNode>(c, id, options);
    }));
  }
  HdfsClientOptions client_options;
  for (int i = 0; i < 2; i++) {
    deployment.clients.push_back(cluster->AddNode([client_options](Cluster* c, NodeId id) {
      return std::make_unique<HdfsClient>(c, id, client_options);
    }));
  }
  Cluster* raw = cluster.get();
  deployment.leader_probe = [] { return kHdfsNameNode; };
  deployment.oracle = [raw, oracle_pattern] {
    return LogsContain(raw->AllLogText(), oracle_pattern);
  };
  deployment.cluster = std::move(cluster);
  return deployment;
}

BugSpec BaseHdfsSpec() {
  BugSpec spec;
  spec.system = "MiniHdfs (mini HDFS, Java)";
  spec.source = "A";
  spec.binary = &MiniHdfsBinary();
  spec.relevant_files = {"namenode.c", "datanode.c", "balancer.c"};
  spec.run_duration = Seconds(30);
  spec.production_via_nemesis = false;
  return spec;
}

ScheduledFault ScfAt(Sys sys, Err err, const std::string& path, NodeId node, SimTime at,
                     int nth = 1) {
  ScheduledFault fault;
  fault.kind = FaultKind::kSyscallFailure;
  fault.target_node = node;
  fault.syscall.sys = sys;
  fault.syscall.err = err;
  fault.syscall.path_filter = path;
  fault.syscall.nth = nth;
  fault.conditions = {Condition::AtTime(at)};
  return fault;
}

}  // namespace

void RegisterMiniHdfsBugs(std::vector<BugSpec>* out) {
  {
    BugSpec spec = BaseHdfsSpec();
    spec.id = "HDFS-4233";
    spec.description = "NN keeps serving even after no journals started while rolling edit.";
    spec.expected_faults = "SCF(openat)";
    spec.expected_level = 1;
    MiniHdfsOptions options;
    options.bug4233 = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniHdfs(world, seed, options, "no journals started while rolling edit");
    };
    FaultSchedule production;
    production.name = "hdfs-4233-production";
    production.faults.push_back(
        ScfAt(Sys::kOpenAt, Err::kEIO, "/data/edits.new", kHdfsNameNode, Seconds(4)));
    spec.manual_production = production;
    out->push_back(std::move(spec));
  }
  {
    BugSpec spec = BaseHdfsSpec();
    spec.id = "HDFS-12070";
    spec.description = "Files remain open indefinitely if block recovery fails.";
    spec.expected_faults = "SCF(fstat)";
    spec.expected_level = 2;
    MiniHdfsOptions options;
    options.bug12070 = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniHdfs(world, seed, options, "remains open indefinitely");
    };
    FaultSchedule production;
    production.name = "hdfs-12070-production";
    // fstat on datanode 1 during finalization of some block (~5 s in).
    production.faults.push_back(
        ScfAt(Sys::kFstat, Err::kEIO, "", kHdfsDataNode1, Seconds(5)));
    spec.manual_production = production;
    out->push_back(std::move(spec));
  }
  {
    BugSpec spec = BaseHdfsSpec();
    spec.id = "HDFS-15032";
    spec.description = "Balancer crashes when it fails to contact an unavailable namenode.";
    spec.expected_faults = "SCF(connect)";
    spec.expected_level = 2;
    MiniHdfsOptions options;
    options.bug15032 = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniHdfs(world, seed, options, "Balancer crashed");
    };
    FaultSchedule production;
    production.name = "hdfs-15032-production";
    // The (report_connects+1)-th connect of a balancer iteration is the
    // unguarded getBlocks call.
    production.faults.push_back(ScfAt(Sys::kConnect, Err::kETIMEDOUT, "sock:10.0.0.1",
                                      kHdfsBalancer, Seconds(4),
                                      /*nth=*/9));
    spec.manual_production = production;
    out->push_back(std::move(spec));
  }
  {
    BugSpec spec = BaseHdfsSpec();
    spec.id = "HDFS-16332";
    spec.description = "Missing handling of expired block token causes slow read.";
    spec.expected_faults = "SCF(read)";
    spec.expected_level = 1;
    MiniHdfsOptions options;
    options.bug16332 = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniHdfs(world, seed, options, "expired block token never refreshed");
    };
    FaultSchedule production;
    production.name = "hdfs-16332-production";
    production.faults.push_back(
        ScfAt(Sys::kRead, Err::kEACCES, "/data/blocks/blk_3", kHdfsDataNode1, Seconds(6)));
    spec.manual_production = production;
    out->push_back(std::move(spec));
  }
}

}  // namespace rose
