// BugSpecs for the two MiniRedpanda bugs of Table 1 (both from the same
// defect; both need the Elle-lite history checker as oracle).
#include "src/apps/miniredpanda/miniredpanda.h"
#include "src/apps/miniredpanda/producer_client.h"
#include <set>

#include "src/harness/bug_registry.h"
#include "src/oracle/oracle.h"

namespace rose {

namespace {

const BinaryInfo& MiniRedpandaBinary() {
  static const BinaryInfo binary = BuildMiniRedpandaBinary();
  return binary;
}

enum class RpOracleKind { kDuplicates, kDivergentOffsets };

Deployment DeployMiniRedpanda(SimWorld& world, uint64_t seed,
                              const MiniRedpandaOptions& options, RpOracleKind oracle_kind) {
  ClusterConfig cluster_config;
  cluster_config.seed = seed;
  auto cluster = std::make_unique<Cluster>(&world.kernel, &world.network,
                                           &MiniRedpandaBinary(), cluster_config);
  Deployment deployment;
  for (int i = 0; i < options.cluster_size; i++) {
    deployment.servers.push_back(cluster->AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<MiniRedpandaNode>(c, id, options);
    }));
  }
  ProducerOptions producer_options;
  producer_options.broker_count = options.cluster_size;
  for (int i = 0; i < 2; i++) {
    deployment.clients.push_back(
        cluster->AddNode([producer_options](Cluster* c, NodeId id) {
          return std::make_unique<ProducerClient>(c, id, producer_options);
        }));
  }
  Cluster* raw = cluster.get();
  const int broker_count = options.cluster_size;
  deployment.leader_probe = [raw, broker_count]() -> NodeId {
    for (NodeId id = 0; id < broker_count; id++) {
      auto* node = dynamic_cast<MiniRedpandaNode*>(raw->node(id));
      if (node != nullptr && node->is_leader() && raw->IsNodeAlive(id)) {
        return id;
      }
    }
    return kNoNode;
  };
  deployment.oracle = [raw, broker_count, oracle_kind] {
    if (oracle_kind == RpOracleKind::kDuplicates) {
      // Elle-lite: acknowledged batches must appear exactly once in every
      // broker's log.
      std::vector<std::string> acked;
      for (NodeId id = broker_count; id < broker_count + 2; id++) {
        auto* producer = dynamic_cast<ProducerClient*>(raw->node(id));
        if (producer != nullptr) {
          acked.insert(acked.end(), producer->acked_ops().begin(),
                       producer->acked_ops().end());
        }
      }
      for (NodeId id = 0; id < broker_count; id++) {
        auto* broker = dynamic_cast<MiniRedpandaNode*>(raw->node(id));
        if (broker == nullptr) {
          continue;
        }
        std::vector<std::string> committed;
        for (const auto& [offset, entry] : broker->log()) {
          committed.push_back(entry.op_id);
        }
        for (const HistoryViolation& violation :
             ElleLite::CheckAppendHistory(acked, committed)) {
          if (violation.kind == HistoryViolation::Kind::kDuplicate) {
            return true;
          }
        }
      }
      return false;
    }
    // Inconsistent offsets: the same record is assigned different offsets on
    // different brokers (or two offsets on one broker) — what a consumer
    // observes as the offsets going inconsistent after leadership moves.
    std::map<std::string, int64_t> canonical;
    for (NodeId id = 0; id < broker_count; id++) {
      auto* broker = dynamic_cast<MiniRedpandaNode*>(raw->node(id));
      if (broker == nullptr) {
        continue;
      }
      std::set<std::string> seen_here;
      for (const auto& [offset, entry] : broker->log()) {
        if (!seen_here.insert(entry.op_id).second) {
          return true;  // Same record at two offsets on one broker.
        }
        auto it = canonical.find(entry.op_id);
        if (it == canonical.end()) {
          canonical[entry.op_id] = offset;
        } else if (it->second != offset) {
          return true;  // Same record at different offsets across brokers.
        }
      }
    }
    return false;
  };
  deployment.cluster = std::move(cluster);
  return deployment;
}

BugSpec BaseRedpandaSpec(RpOracleKind oracle_kind) {
  BugSpec spec;
  spec.system = "MiniRedpanda (mini Redpanda, C++)";
  spec.source = "J";
  spec.binary = &MiniRedpandaBinary();
  spec.relevant_files = {"leadership.c", "log.c"};
  spec.run_duration = Seconds(30);
  spec.production_via_nemesis = true;
  spec.nemesis.server_count = 3;
  spec.nemesis.p_crash = 0.0;
  spec.nemesis.p_pause = 1.0;
  spec.nemesis.p_partition = 0.0;
  spec.nemesis.p_target_leader = 0.8;
  MiniRedpandaOptions options;
  options.bug_dedup = true;
  spec.deploy = [options, oracle_kind](SimWorld& world, uint64_t seed) {
    return DeployMiniRedpanda(world, seed, options, oracle_kind);
  };
  return spec;
}

}  // namespace

void RegisterMiniRedpandaBugs(std::vector<BugSpec>* out) {
  {
    BugSpec spec = BaseRedpandaSpec(RpOracleKind::kDuplicates);
    spec.id = "Redpanda-3003";
    spec.description = "Redpanda fails to perform deduplication of sent messages.";
    spec.expected_faults = "5*PS(Pause)";
    spec.expected_level = 2;
    out->push_back(std::move(spec));
  }
  {
    BugSpec spec = BaseRedpandaSpec(RpOracleKind::kDivergentOffsets);
    spec.id = "Redpanda-3039";
    spec.description = "Inconsistent offsets across brokers after leadership changes.";
    spec.expected_faults = "5*PS(Pause)";
    spec.expected_level = 2;
    out->push_back(std::move(spec));
  }
}

}  // namespace rose
