// BugSpec for the MiniTableStore (mini HBase) bug of Table 1.
#include "src/apps/minitablestore/minitablestore.h"
#include "src/harness/bug_registry.h"
#include "src/oracle/oracle.h"

namespace rose {

namespace {

const BinaryInfo& MiniTableStoreBinary() {
  static const BinaryInfo binary = BuildMiniTableStoreBinary();
  return binary;
}

Deployment DeployMiniTableStore(SimWorld& world, uint64_t seed,
                                const MiniTableStoreOptions& options) {
  ClusterConfig cluster_config;
  cluster_config.seed = seed;
  auto cluster = std::make_unique<Cluster>(&world.kernel, &world.network,
                                           &MiniTableStoreBinary(), cluster_config);
  Deployment deployment;
  for (int i = 0; i < 3; i++) {
    deployment.servers.push_back(cluster->AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<MiniTableStoreNode>(c, id, options);
    }));
  }
  Cluster* raw = cluster.get();
  deployment.leader_probe = [] { return kTableMaster; };
  deployment.oracle = [raw] {
    return LogsContain(raw->AllLogText(), "duplicate procedure execution detected");
  };
  deployment.cluster = std::move(cluster);
  return deployment;
}

}  // namespace

void RegisterMiniTableStoreBugs(std::vector<BugSpec>* out) {
  BugSpec spec;
  spec.id = "HBASE-19608";
  spec.system = "MiniTableStore (mini HBase, Java)";
  spec.source = "A";
  spec.description = "Race in MasterRpcServices.getProcedureResult.";
  spec.binary = &MiniTableStoreBinary();
  spec.relevant_files = {"master.c"};
  spec.run_duration = Seconds(25);
  spec.expected_faults = "SCF(openat)";
  spec.expected_level = 1;
  MiniTableStoreOptions options;
  options.bug19608 = true;
  spec.deploy = [options](SimWorld& world, uint64_t seed) {
    return DeployMiniTableStore(world, seed, options);
  };
  spec.production_via_nemesis = false;
  FaultSchedule production;
  production.name = "hbase-19608-production";
  ScheduledFault fault;
  fault.kind = FaultKind::kSyscallFailure;
  fault.target_node = kTableMaster;
  fault.syscall.sys = Sys::kOpenAt;
  fault.syscall.err = Err::kEIO;
  fault.syscall.path_filter = "/data/procs.wal";
  fault.syscall.nth = 1;
  fault.conditions = {Condition::AtTime(Seconds(4))};
  production.faults.push_back(fault);
  spec.manual_production = production;
  out->push_back(std::move(spec));
}

}  // namespace rose
