// BugSpecs for the four MiniZk (mini ZooKeeper) bugs of Table 1.
#include "src/apps/minizk/minizk.h"
#include "src/harness/bug_registry.h"
#include "src/oracle/oracle.h"
#include "src/workload/kv_client.h"

namespace rose {

namespace {

const BinaryInfo& MiniZkBinary() {
  static const BinaryInfo binary = BuildMiniZkBinary();
  return binary;
}

Deployment DeployMiniZk(SimWorld& world, uint64_t seed, const MiniZkOptions& options,
                        const std::string& oracle_pattern) {
  ClusterConfig cluster_config;
  cluster_config.seed = seed;
  auto cluster = std::make_unique<Cluster>(&world.kernel, &world.network, &MiniZkBinary(),
                                           cluster_config);
  Deployment deployment;
  for (int i = 0; i < options.cluster_size; i++) {
    deployment.servers.push_back(cluster->AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<MiniZkNode>(c, id, options);
    }));
  }
  KvClientOptions client_options;
  client_options.server_count = options.cluster_size;
  for (int i = 0; i < 2; i++) {
    deployment.clients.push_back(cluster->AddNode([client_options](Cluster* c, NodeId id) {
      return std::make_unique<KvClient>(c, id, client_options);
    }));
  }
  Cluster* raw = cluster.get();
  const int server_count = options.cluster_size;
  deployment.leader_probe = [raw, server_count]() -> NodeId {
    for (NodeId id = 0; id < server_count; id++) {
      auto* node = dynamic_cast<MiniZkNode*>(raw->node(id));
      if (node != nullptr && node->is_leader() && raw->IsNodeAlive(id)) {
        return id;
      }
    }
    return kNoNode;
  };
  deployment.oracle = [raw, oracle_pattern] {
    return LogsContain(raw->AllLogText(), oracle_pattern);
  };
  deployment.cluster = std::move(cluster);
  return deployment;
}

BugSpec BaseZkSpec() {
  BugSpec spec;
  spec.system = "MiniZk (mini ZooKeeper, Java)";
  spec.source = "A";
  spec.binary = &MiniZkBinary();
  spec.relevant_files = {"quorum.c", "txnlog.c", "snapshot.c", "session.c"};
  spec.run_duration = Seconds(30);
  spec.production_via_nemesis = false;
  return spec;
}

ScheduledFault ScfAt(Sys sys, Err err, const std::string& path, NodeId node, SimTime at,
                     int nth = 1) {
  ScheduledFault fault;
  fault.kind = FaultKind::kSyscallFailure;
  fault.target_node = node;
  fault.syscall.sys = sys;
  fault.syscall.err = err;
  fault.syscall.path_filter = path;
  fault.syscall.nth = nth;
  fault.conditions = {Condition::AtTime(at)};
  return fault;
}

}  // namespace

void RegisterMiniZkBugs(std::vector<BugSpec>* out) {
  {
    BugSpec spec = BaseZkSpec();
    spec.id = "Zookeeper-2247";
    spec.description =
        "Service becomes unavailable when leader fails to write transaction log.";
    spec.expected_faults = "SCF(write)";
    spec.expected_level = 2;
    MiniZkOptions options;
    options.bug2247 = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniZk(world, seed, options,
                          "txn log write failed; service unavailable");
    };
    FaultSchedule production;
    production.name = "zk-2247-production";
    production.faults.push_back(
        ScfAt(Sys::kWrite, Err::kEIO, "/data/txnlog", 0, Seconds(6)));
    spec.manual_production = production;
    out->push_back(std::move(spec));
  }
  {
    BugSpec spec = BaseZkSpec();
    spec.id = "Zookeeper-3006";
    spec.description = "Invalid disk file content causes null pointer exception.";
    spec.expected_faults = "SCF(read)";
    spec.expected_level = 1;
    MiniZkOptions options;
    options.bug3006 = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniZk(world, seed, options,
                          "NullPointerException while computing snapshot size");
    };
    FaultSchedule production;
    production.name = "zk-3006-production";
    production.faults.push_back(
        ScfAt(Sys::kRead, Err::kEIO, "/data/snapshot.0", 0, Seconds(6)));
    spec.manual_production = production;
    out->push_back(std::move(spec));
  }
  {
    BugSpec spec = BaseZkSpec();
    spec.id = "Zookeeper-3157";
    spec.description = "Connection loss causes the client to fail.";
    spec.expected_faults = "SCF(read)";
    spec.expected_level = 1;
    MiniZkOptions options;
    options.bug3157 = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniZk(world, seed, options, "connection loss causes client failure");
    };
    FaultSchedule production;
    production.name = "zk-3157-production";
    // The first client lives on node 3 -> ip 10.0.0.4.
    production.faults.push_back(
        ScfAt(Sys::kRead, Err::kECONNRESET, "sock:10.0.0.4", 0, Seconds(5)));
    spec.manual_production = production;
    out->push_back(std::move(spec));
  }
  {
    BugSpec spec = BaseZkSpec();
    spec.id = "Zookeeper-4203";
    spec.description = "The leader election is stuck forever due to connection error.";
    spec.expected_faults = "SCF(accept)";
    spec.expected_level = 2;
    MiniZkOptions options;
    options.bug4203 = true;
    options.resign_interval = Seconds(8);
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployMiniZk(world, seed, options, "leader election stuck forever");
    };
    FaultSchedule production;
    production.name = "zk-4203-production";
    production.faults.push_back(
        ScfAt(Sys::kAccept, Err::kECONNRESET, "sock:10.0.0.2", 0, Seconds(9)));
    spec.manual_production = production;
    out->push_back(std::move(spec));
  }
}

}  // namespace rose
