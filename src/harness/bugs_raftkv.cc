// BugSpecs for the five RaftKV (mini RedisRaft) bugs of Table 1.
#include "src/apps/raftkv/raftkv.h"
#include "src/harness/bug_registry.h"
#include "src/oracle/oracle.h"
#include "src/workload/kv_client.h"

namespace rose {

namespace {

const BinaryInfo& RaftKvBinary() {
  static const BinaryInfo binary = BuildRaftKvBinary();
  return binary;
}

int32_t Fid(const char* name) {
  const FunctionInfo* info = RaftKvBinary().FindByName(name);
  return info == nullptr ? -1 : info->id;
}

Deployment DeployRaftKv(SimWorld& world, uint64_t seed, const RaftKvOptions& options,
                        const std::string& oracle_pattern, int client_count = 2) {
  ClusterConfig cluster_config;
  cluster_config.seed = seed;
  auto cluster = std::make_unique<Cluster>(&world.kernel, &world.network, &RaftKvBinary(),
                                           cluster_config);
  Deployment deployment;
  for (int i = 0; i < options.cluster_size; i++) {
    deployment.servers.push_back(cluster->AddNode([options](Cluster* c, NodeId id) {
      return std::make_unique<RaftKvNode>(c, id, options);
    }));
  }
  KvClientOptions client_options;
  client_options.server_count = options.cluster_size;
  for (int i = 0; i < client_count; i++) {
    deployment.clients.push_back(cluster->AddNode([client_options](Cluster* c, NodeId id) {
      return std::make_unique<KvClient>(c, id, client_options);
    }));
  }
  Cluster* raw = cluster.get();
  const int server_count = options.cluster_size;
  deployment.leader_probe = [raw, server_count]() -> NodeId {
    for (NodeId id = 0; id < server_count; id++) {
      auto* node = dynamic_cast<RaftKvNode*>(raw->node(id));
      if (node != nullptr && node->is_leader() && raw->IsNodeAlive(id)) {
        return id;
      }
    }
    return kNoNode;
  };
  deployment.oracle = [raw, oracle_pattern] {
    return LogsContain(raw->AllLogText(), oracle_pattern);
  };
  deployment.cluster = std::move(cluster);
  return deployment;
}

BugSpec BaseRaftKvSpec() {
  BugSpec spec;
  spec.system = "RaftKV (mini RedisRaft, C)";
  spec.binary = &RaftKvBinary();
  spec.relevant_files = {"raft.c", "snapshot.c", "kv.c"};
  spec.run_duration = Seconds(35);
  spec.nemesis.server_count = 5;
  return spec;
}

}  // namespace

void RegisterRaftKvBugs(std::vector<BugSpec>* out) {
  // ---- RedisRaft-42 ---------------------------------------------------------
  {
    BugSpec spec = BaseRaftKvSpec();
    spec.id = "RedisRaft-42";
    spec.source = "J";
    spec.description = "Node crashes due to failed assert related to snapshot & log integrity.";
    spec.expected_faults = "PS(Crash)";
    spec.expected_level = 1;
    RaftKvOptions options;
    options.bug42 = true;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployRaftKv(world, seed, options,
                          "ASSERTION FAILED: snapshot and log integrity");
    };
    spec.production_via_nemesis = true;
    spec.nemesis.p_crash = 0.7;
    spec.nemesis.p_pause = 0.15;
    spec.nemesis.p_partition = 0.15;
    out->push_back(std::move(spec));
  }

  // ---- RedisRaft-43 ---------------------------------------------------------
  {
    BugSpec spec = BaseRaftKvSpec();
    spec.id = "RedisRaft-43";
    spec.source = "J";
    spec.description = "Snapshot index mismatch: crash during RaftLogCreate leaves a "
                       "snapshot without a log segment.";
    spec.expected_faults = "PS(Crash)*3 + ND + PS(Crash)";
    spec.expected_level = 2;
    RaftKvOptions options;
    options.bug43 = true;
    options.snapshot_every = 50;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployRaftKv(world, seed, options,
                          "ASSERTION FAILED: snapshot and log index mismatch");
    };
    // Production trace: the Jepsen-style sequence from the paper, with the
    // final crash landing during snapshot installation.
    spec.production_via_nemesis = false;
    FaultSchedule production;
    production.name = "redisraft-43-production";
    {
      ScheduledFault f;
      f.kind = FaultKind::kProcessCrash;
      f.target_node = 1;
      f.conditions = {Condition::AtTime(Seconds(4))};
      production.faults.push_back(f);
    }
    {
      ScheduledFault f;
      f.kind = FaultKind::kProcessCrash;
      f.target_node = 2;
      f.conditions = {Condition::AtTime(Millis(5500))};
      production.faults.push_back(f);
    }
    {
      ScheduledFault f;
      f.kind = FaultKind::kProcessCrash;
      f.target_node = 3;
      f.conditions = {Condition::AtTime(Seconds(7))};
      production.faults.push_back(f);
    }
    {
      ScheduledFault f;
      f.kind = FaultKind::kNetworkPartition;
      f.target_node = 4;
      f.network.group_a = {"10.0.0.5"};
      f.network.group_b = {"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"};
      f.network.duration = Seconds(6);
      f.conditions = {Condition::AtTime(Seconds(8))};
      production.faults.push_back(f);
    }
    {
      // The critical fault: crash node 1 exactly when it (re)creates its log
      // after installing the snapshot it receives when rejoining (~6 s).
      ScheduledFault f;
      f.kind = FaultKind::kProcessCrash;
      f.target_node = 1;
      f.conditions = {Condition::AfterFault(0), Condition::FunctionEnter(Fid("RaftLogCreate"))};
      production.faults.push_back(f);
    }
    spec.manual_production = std::move(production);
    out->push_back(std::move(spec));
  }

  // ---- RedisRaft-51 ---------------------------------------------------------
  {
    BugSpec spec = BaseRaftKvSpec();
    spec.id = "RedisRaft-51";
    spec.source = "J";
    spec.description = "Leader paused mid snapshot-transfer asserts cache index integrity.";
    spec.expected_faults = "PS(Pause)*3";
    spec.expected_level = 2;
    RaftKvOptions options;
    options.bug51 = true;
    options.snapshot_every = 50;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployRaftKv(world, seed, options,
                          "ASSERTION FAILED: cache index integrity");
    };
    spec.production_via_nemesis = false;
    FaultSchedule production;
    production.name = "redisraft-51-production";
    {
      ScheduledFault f;
      f.kind = FaultKind::kProcessPause;
      f.target_node = 1;
      f.process.pause_duration = Millis(4200);
      f.conditions = {Condition::AtTime(Seconds(5))};
      production.faults.push_back(f);
    }
    {
      ScheduledFault f;
      f.kind = FaultKind::kProcessPause;
      f.target_node = 2;
      f.process.pause_duration = Millis(4200);
      f.conditions = {Condition::AtTime(Seconds(10))};
      production.faults.push_back(f);
    }
    // The role-specific pause: whichever node acts as leader sends snapshot
    // chunks; pause it right there (replicated across all nodes; only the
    // leader's replica fires).
    for (NodeId node = 0; node < 5; node++) {
      ScheduledFault f;
      f.kind = FaultKind::kProcessPause;
      f.target_node = node;
      f.process.pause_duration = Millis(4200);
      f.conditions = {Condition::AfterFault(1),
                      Condition::FunctionEnter(Fid("sendSnapshotChunk"))};
      production.faults.push_back(f);
    }
    spec.manual_production = std::move(production);
    out->push_back(std::move(spec));
  }

  // ---- RedisRaft-NEW --------------------------------------------------------
  {
    BugSpec spec = BaseRaftKvSpec();
    spec.id = "RedisRaft-NEW";
    spec.source = "J";
    spec.description = "Redis itself crashes due to an inconsistent snapshot file "
                       "(non-atomic in-place snapshot write).";
    spec.expected_faults = "ND + PS(Crash) + PS(Crash)";
    spec.expected_level = 3;
    RaftKvOptions options;
    options.bug_new = true;
    options.snapshot_every = 30;
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployRaftKv(world, seed, options, "PANIC: corrupted snapshot file");
    };
    spec.production_via_nemesis = false;
    FaultSchedule production;
    production.name = "redisraft-new-production";
    {
      ScheduledFault f;
      f.kind = FaultKind::kNetworkPartition;
      f.target_node = 0;
      f.network.group_a = {"10.0.0.1"};
      f.network.group_b = {"10.0.0.2", "10.0.0.3", "10.0.0.4", "10.0.0.5"};
      f.network.duration = Seconds(6);
      f.conditions = {Condition::AtTime(Seconds(4))};
      production.faults.push_back(f);
    }
    {
      ScheduledFault f;
      f.kind = FaultKind::kProcessCrash;
      f.target_node = 0;
      f.conditions = {Condition::AtTime(Seconds(12))};
      production.faults.push_back(f);
    }
    {
      // Crash exactly between the truncating open and the write inside
      // storeSnapshotData.
      ScheduledFault f;
      f.kind = FaultKind::kProcessCrash;
      f.target_node = 0;
      f.conditions = {Condition::AfterFault(1),
                      Condition::FunctionOffset(Fid("storeSnapshotData"), 0x10)};
      production.faults.push_back(f);
    }
    spec.manual_production = std::move(production);
    out->push_back(std::move(spec));
  }

  // ---- RedisRaft-NEW2 -------------------------------------------------------
  {
    BugSpec spec = BaseRaftKvSpec();
    spec.id = "RedisRaft-NEW2";
    spec.source = "J";
    spec.description = "Redis itself fails due to a repeated key (optimistic apply not "
                       "rolled back on log truncation).";
    spec.expected_faults = "ND";
    spec.expected_level = 1;
    RaftKvOptions options;
    options.bug_new2 = true;
    options.snapshot_every = 200;  // Keep snapshots out of the way.
    spec.deploy = [options](SimWorld& world, uint64_t seed) {
      return DeployRaftKv(world, seed, options, "repeated key");
    };
    spec.production_via_nemesis = true;
    spec.nemesis.p_crash = 0.05;
    spec.nemesis.p_pause = 0.05;
    spec.nemesis.p_partition = 0.9;
    spec.nemesis.p_target_leader = 0.8;
    out->push_back(std::move(spec));
  }
}

}  // namespace rose
