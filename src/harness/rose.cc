#include "src/harness/rose.h"

namespace rose {

DiagnosisEngine::ScheduleRunner MakeScheduleRunner(BugRunner* runner, const Profile* profile) {
  return [runner, profile](const ScheduleRunRequest& request) {
    RunOptions options;
    options.seed = request.seed;
    options.duration = runner->spec().run_duration;
    options.schedule = request.schedule;
    options.profile = profile;
    options.want_trace = request.want_trace;
    RunOutcome outcome = runner->RunOnce(options);
    ScheduleRunOutcome result;
    result.bug = outcome.bug;
    // Move, don't copy: the window can be a million events, and the engine
    // runs thousands of candidates.
    result.trace = std::move(outcome.trace);
    result.feedback = std::move(outcome.feedback);
    result.virtual_duration = outcome.virtual_duration;
    return result;
  };
}

RoseReport ReproduceBugRobust(const BugSpec& spec, const RoseConfig& config, int max_tries) {
  RoseReport last;
  for (int attempt = 0; attempt < max_tries; attempt++) {
    RoseConfig attempt_config = config;
    attempt_config.seed = config.seed + static_cast<uint64_t>(attempt) * 101;
    last = ReproduceBug(spec, attempt_config);
    if (last.reproduced()) {
      return last;
    }
  }
  return last;
}

DiagnosisResult DiagnoseTrace(const BugSpec& spec, const Profile& profile,
                              TraceView production, const RoseConfig& config) {
  BugRunner runner(&spec);
  DiagnosisConfig diagnosis_config = config.diagnosis;
  if (diagnosis_config.server_nodes.empty()) {
    // Default: every deployed server is an amplification target. Discover
    // them from a throwaway deployment.
    SimWorld world(config.seed);
    Deployment deployment = spec.deploy(world, config.seed);
    diagnosis_config.server_nodes = deployment.servers;
  }
  diagnosis_config.base_seed = config.seed * 1000 + 40000;

  DiagnosisEngine engine(production, &profile, spec.binary,
                         MakeScheduleRunner(&runner, &profile), diagnosis_config);
  return engine.Run();
}

RoseReport ReproduceBug(const BugSpec& spec, const RoseConfig& config) {
  RoseReport report;
  report.bug_id = spec.id;

  BugRunner runner(&spec);

  // Phase 1: profiling (failure-free run).
  report.profile = runner.RunProfiling(config.seed);

  // Phase 2: production tracing — run until the bug surfaces, dump the trace.
  const std::optional<Trace> production =
      runner.ObtainProductionTrace(report.profile, config.seed + 17,
                                   &report.production_attempts);
  if (!production.has_value()) {
    return report;
  }
  report.trace_obtained = true;

  // Phases 3+4: diagnosis with reproduction feedback.
  report.diagnosis = DiagnoseTrace(spec, report.profile, *production, config);
  return report;
}

}  // namespace rose
