// Rose end-to-end pipeline (paper Figure 1).
//
//   profiling -> tracing(production) -> diagnosis -> reproduction
//
// ReproduceBug() drives all four phases for one BugSpec and returns a report
// with the Table-1 quantities: faults injected, replay rate, schedules
// generated, total runs, total (virtual) time, and FR%.
#ifndef SRC_HARNESS_ROSE_H_
#define SRC_HARNESS_ROSE_H_

#include <optional>
#include <string>

#include "src/diagnose/engine.h"
#include "src/harness/bug.h"
#include "src/harness/runner.h"

namespace rose {

struct RoseConfig {
  uint64_t seed = 1;
  DiagnosisConfig diagnosis;
};

struct RoseReport {
  std::string bug_id;
  bool trace_obtained = false;
  int production_attempts = 0;
  Profile profile;
  DiagnosisResult diagnosis;

  // Convenience accessors for the Table-1 columns.
  bool reproduced() const { return diagnosis.reproduced; }
  double replay_rate() const { return diagnosis.replay_rate; }
  int schedules() const { return diagnosis.schedules_generated; }
  int runs() const { return diagnosis.total_runs; }
  double minutes() const { return ToSeconds(diagnosis.virtual_time) / 60.0; }
  double fr_percent() const { return diagnosis.fr_percent; }
};

// Runs the full Rose workflow on one bug.
RoseReport ReproduceBug(const BugSpec& spec, const RoseConfig& config = {});

// Phases 3+4 alone: diagnose an already-captured production dump against an
// already-learned profile. This is the entry point the serve daemon uses for
// submitted dumps; ReproduceBug routes through it too, so an offline run and
// a served run of the same (dump, profile, seed) are the same computation —
// which is what makes their confirmed-schedule YAML byte-identical. Applies
// the same defaulting ReproduceBug always did: server_nodes discovered from
// a throwaway deployment when unset, base_seed derived from config.seed.
DiagnosisResult DiagnoseTrace(const BugSpec& spec, const Profile& profile,
                              TraceView production, const RoseConfig& config = {});

// Like ReproduceBug, but retries with fresh seeds when a run ends without
// reproduction — the paper runs Rose multiple times for the bugs whose
// schedules replay below 100% and reports the (averaged) successful runs.
RoseReport ReproduceBugRobust(const BugSpec& spec, const RoseConfig& config = {},
                              int max_tries = 3);

// Builds a DiagnosisEngine runner closure for `spec` (used by benches that
// want to drive diagnosis with custom configs).
DiagnosisEngine::ScheduleRunner MakeScheduleRunner(BugRunner* runner, const Profile* profile);

}  // namespace rose

#endif  // SRC_HARNESS_ROSE_H_
