#include "src/harness/runner.h"

#include "src/workload/kv_client.h"

namespace rose {

Profile BugRunner::RunProfiling(uint64_t seed) const {
  SimWorld world(seed);
  Deployment deployment = spec_->deploy(world, seed);

  ProfilerConfig config;
  config.relevant_files = spec_->relevant_files;
  Profiler profiler(&world.kernel, spec_->binary, config);
  profiler.Attach();

  // A Rose-mode tracer runs alongside to learn the benign-fault baseline
  // (including NDs, which only the ingress tap sees).
  TracerConfig tracer_config;
  Tracer tracer(&world.kernel, &world.network, tracer_config);
  tracer.Attach();

  deployment.cluster->Start();
  world.loop.RunUntil(spec_->run_duration);

  profiler.AbsorbCleanTrace(tracer.Dump());
  Profile profile = profiler.BuildProfile();
  profiler.Detach();
  tracer.Detach();
  return profile;
}

RunOutcome BugRunner::RunOnce(const RunOptions& options) const {
  SimWorld world(options.seed);
  Deployment deployment = spec_->deploy(world, options.seed);

  TracerConfig tracer_config = options.tracer_config;
  if (options.profile != nullptr) {
    tracer_config.monitored_functions = options.profile->monitored_functions;
  }
  std::optional<Tracer> tracer;
  if (options.with_tracer) {
    tracer.emplace(&world.kernel, &world.network, tracer_config);
    tracer->Attach();
  }

  std::optional<Executor> executor;
  if (options.schedule != nullptr) {
    executor.emplace(&world.kernel, &world.network, *options.schedule, options.feasibility);
    executor->Attach();
  }

  std::optional<Nemesis> nemesis;
  if (options.with_nemesis) {
    NemesisOptions nemesis_options = spec_->nemesis;
    nemesis_options.seed ^= options.seed * 0x2545f4914f6cdd1dULL;
    nemesis.emplace(deployment.cluster.get(), nemesis_options, deployment.leader_probe);
    nemesis->Start();
  }

  deployment.cluster->Start();

  // The monitoring loop: poll the bug oracle; once it fires, let the system
  // run a short grace period (so cascading events land in the window) and
  // halt — this is what triggers the tracer dump in production.
  SimTime bug_detected_at = -1;
  const SimTime grace = Seconds(4);
  std::function<void()> poll_oracle = [&] {
    if (bug_detected_at < 0 && deployment.oracle && deployment.oracle()) {
      bug_detected_at = world.loop.now();
    }
    if (bug_detected_at >= 0 && world.loop.now() >= bug_detected_at + grace) {
      world.loop.Halt();
      return;
    }
    world.loop.ScheduleAfter(Millis(500), poll_oracle);
  };
  world.loop.ScheduleAfter(Millis(500), poll_oracle);

  world.loop.RunUntil(options.duration);

  RunOutcome outcome;
  outcome.bug = deployment.oracle ? deployment.oracle() : false;
  if (tracer.has_value()) {
    if (options.want_trace) {
      outcome.trace = tracer->Dump();
    }
    outcome.tracer_stats = tracer->stats();
  }
  if (executor.has_value()) {
    outcome.feedback = executor->Feedback();
  }
  outcome.logs = deployment.cluster->AllLogText();
  outcome.virtual_duration = world.loop.now();
  for (NodeId client_id : deployment.clients) {
    auto* client = dynamic_cast<KvClient*>(deployment.cluster->node(client_id));
    if (client != nullptr) {
      outcome.client_ops_completed += client->ops_completed();
    }
  }
  return outcome;
}

std::optional<Trace> BugRunner::ObtainProductionTrace(const Profile& profile,
                                                      uint64_t base_seed,
                                                      int* attempts_used) const {
  for (int attempt = 0; attempt < spec_->max_production_attempts; attempt++) {
    RunOptions options;
    options.seed = base_seed + static_cast<uint64_t>(attempt) * 7919;
    options.duration = spec_->run_duration;
    options.profile = &profile;
    if (spec_->production_via_nemesis) {
      options.with_nemesis = true;
    } else if (spec_->manual_production.has_value()) {
      options.schedule = &*spec_->manual_production;
    }
    RunOutcome outcome = RunOnce(options);
    if (outcome.bug) {
      if (attempts_used != nullptr) {
        *attempts_used = attempt + 1;
      }
      return std::move(outcome.trace);
    }
  }
  if (attempts_used != nullptr) {
    *attempts_used = spec_->max_production_attempts;
  }
  return std::nullopt;
}

}  // namespace rose
