// Run orchestration: profiling runs, production(-trace) runs, reproduction runs.
//
// This is the glue the paper's Python utilities provide: build a world,
// deploy the guest, attach tracer / executor / nemesis, run for a fixed
// virtual duration, consult the oracle, dump the trace.
#ifndef SRC_HARNESS_RUNNER_H_
#define SRC_HARNESS_RUNNER_H_

#include <optional>
#include <string>

#include "src/exec/executor.h"
#include "src/harness/bug.h"
#include "src/profile/profiler.h"
#include "src/trace/tracer.h"

namespace rose {

struct RunOptions {
  uint64_t seed = 1;
  SimTime duration = Seconds(40);
  const FaultSchedule* schedule = nullptr;  // Reproduction runs.
  // Optional causal admission for `schedule` (DESIGN.md §12): when set, the
  // executor refuses schedules whose enforced order the production trace's
  // happens-before relation contradicts. Must outlive the run.
  const FeasibilityChecker* feasibility = nullptr;
  bool with_nemesis = false;                // Production runs.
  const Profile* profile = nullptr;         // Supplies AF monitoring sites.
  TracerConfig tracer_config;               // Mode/window/etc.
  bool with_tracer = true;
  // When false the tracer still runs (its virtual-time costs are part of the
  // simulated execution) but the window is never dumped into the outcome —
  // for runs that only need the bug verdict, e.g. confirmBug reruns.
  bool want_trace = true;
};

struct RunOutcome {
  bool bug = false;
  Trace trace;
  ExecutionFeedback feedback;
  TracerStats tracer_stats;
  std::string logs;
  uint64_t client_ops_completed = 0;
  SimTime virtual_duration = 0;
};

// Thread-safety contract: a BugRunner holds only a pointer to an immutable
// BugSpec, and every run builds a fresh SimWorld, tracer, executor, and
// nemesis from scratch — runs share no mutable state. RunOnce and
// RunProfiling are therefore const and safe to call concurrently from the
// parallel diagnosis engine, provided the BugSpec honors its side of the
// contract: `deploy` must be a pure factory (capture configuration by
// value, allocate everything inside the passed-in SimWorld, and never touch
// shared mutable state). All registered specs follow this — their deploy
// closures capture option structs by value and their BinaryInfo instances
// are `static const` (thread-safe magic-static initialization, immutable
// afterwards).
class BugRunner {
 public:
  explicit BugRunner(const BugSpec* spec) : spec_(spec) {}

  const BugSpec& spec() const { return *spec_; }

  // Failure-free profiling run (paper §4.2): counts function/syscall
  // frequencies and learns the benign-fault baseline.
  Profile RunProfiling(uint64_t seed) const;

  // One execution with the given options. Safe for concurrent invocation
  // (see the class contract above); each call is a pure function of
  // (spec, options).
  RunOutcome RunOnce(const RunOptions& options) const;

  // Obtains a buggy "production" trace per the spec (nemesis retries or the
  // manual trigger schedule). Returns nullopt if the bug never surfaced.
  std::optional<Trace> ObtainProductionTrace(const Profile& profile, uint64_t base_seed,
                                             int* attempts_used = nullptr) const;

 private:
  const BugSpec* spec_;
};

}  // namespace rose

#endif  // SRC_HARNESS_RUNNER_H_
