// One simulated world: event loop + kernel + network, wired together.
//
// Every run (profiling, production, reproduction, confirmation) constructs a
// fresh SimWorld from a seed, deploys the guest into it, and tears the whole
// thing down afterwards — runs never share state except through what the
// caller extracts (traces, profiles, logs).
#ifndef SRC_HARNESS_WORLD_H_
#define SRC_HARNESS_WORLD_H_

#include "src/net/network.h"
#include "src/os/kernel.h"
#include "src/sim/event_loop.h"

namespace rose {

class SimWorld {
 public:
  explicit SimWorld(uint64_t seed)
      : kernel(&loop), network(&loop, seed ^ 0x517cc1b727220a95ULL) {
    kernel.set_reachability(&network);
  }
  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  EventLoop loop;
  SimKernel kernel;
  Network network;
};

}  // namespace rose

#endif  // SRC_HARNESS_WORLD_H_
