#include "src/net/network.h"

#include <algorithm>

namespace rose {

Network::Network(EventLoop* loop, uint64_t seed) : loop_(loop), rng_(seed) {}

void Network::Block(const std::string& src_ip, const std::string& dst_ip) {
  rules_.insert({src_ip, dst_ip});
}

void Network::Unblock(const std::string& src_ip, const std::string& dst_ip) {
  rules_.erase({src_ip, dst_ip});
}

void Network::Partition(const std::vector<std::string>& group_a,
                        const std::vector<std::string>& group_b, SimTime duration) {
  for (const auto& a : group_a) {
    for (const auto& b : group_b) {
      Block(a, b);
      Block(b, a);
    }
  }
  if (duration > 0) {
    loop_->ScheduleAfter(duration, [this, group_a, group_b] {
      for (const auto& a : group_a) {
        for (const auto& b : group_b) {
          Unblock(a, b);
          Unblock(b, a);
        }
      }
    });
  }
}

void Network::Isolate(const std::string& ip, const std::vector<std::string>& others,
                      SimTime duration) {
  std::vector<std::string> rest;
  for (const auto& other : others) {
    if (other != ip) {
      rest.push_back(other);
    }
  }
  Partition({ip}, rest, duration);
}

void Network::HealAll() { rules_.clear(); }

bool Network::IsReachable(const std::string& src_ip, const std::string& dst_ip) {
  if (rules_.count({src_ip, dst_ip}) != 0) {
    return false;
  }
  if (rules_.count({"*", dst_ip}) != 0 || rules_.count({src_ip, "*"}) != 0) {
    return false;
  }
  return true;
}

SimTime Network::NextLatency() {
  if (jitter_ <= 0) {
    return base_latency_;
  }
  return base_latency_ + static_cast<SimTime>(rng_.NextBelow(static_cast<uint64_t>(jitter_)));
}

void Network::Send(const std::string& src_ip, const std::string& dst_ip, int64_t size,
                   std::function<void()> deliver) {
  if (!IsReachable(src_ip, dst_ip)) {
    packets_dropped_++;
    return;
  }
  const SimTime latency = NextLatency();
  loop_->ScheduleAfter(latency, [this, src_ip, dst_ip, size, deliver = std::move(deliver)] {
    // Rules are re-checked at arrival so a partition raised mid-flight drops
    // in-transit packets too.
    if (!IsReachable(src_ip, dst_ip)) {
      packets_dropped_++;
      return;
    }
    packets_delivered_++;
    for (IngressTap* tap : taps_) {
      tap->OnPacketIn(loop_->now(), src_ip, dst_ip, size);
    }
    deliver();
  });
}

void Network::AddIngressTap(IngressTap* tap) { taps_.push_back(tap); }

void Network::RemoveIngressTap(IngressTap* tap) {
  taps_.erase(std::remove(taps_.begin(), taps_.end(), tap), taps_.end());
}

}  // namespace rose
