// Simulated network fabric.
//
// Stands in for the data-plane pieces Rose uses on Linux:
//  - TC drop filters  -> DropRule set consulted on every delivery (and by
//    connect() through the NetReachability interface)
//  - XDP ingress hook -> IngressTap observers notified when a packet reaches
//    the receiving NIC, before "the stack" (i.e. before the deliver callback)
//
// The fabric is payload-agnostic: the guest framework hands it a closure to
// run at delivery time. Latency is base + seeded jitter, so message ordering
// varies across seeds but is identical for identical (seed, schedule) pairs.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/os/kernel.h"
#include "src/sim/event_loop.h"

namespace rose {

// XDP-analogue: observes packets at receiver ingress.
class IngressTap {
 public:
  virtual ~IngressTap() = default;
  virtual void OnPacketIn(SimTime now, const std::string& src_ip, const std::string& dst_ip,
                          int64_t size) = 0;
};

class Network : public NetReachability {
 public:
  Network(EventLoop* loop, uint64_t seed);

  // --- Latency model ---------------------------------------------------------
  void set_base_latency(SimTime base) { base_latency_ = base; }
  void set_jitter(SimTime jitter) { jitter_ = jitter; }

  // --- TC-style fault rules ---------------------------------------------------
  // Blocks src->dst (one direction). "*" matches any ip.
  void Block(const std::string& src_ip, const std::string& dst_ip);
  void Unblock(const std::string& src_ip, const std::string& dst_ip);
  // Blocks both directions between every pair across the two groups for
  // `duration` (0 = until explicitly healed).
  void Partition(const std::vector<std::string>& group_a,
                 const std::vector<std::string>& group_b, SimTime duration);
  // Isolates one node from everyone else for `duration`.
  void Isolate(const std::string& ip, const std::vector<std::string>& others,
               SimTime duration);
  void HealAll();
  bool IsReachable(const std::string& src_ip, const std::string& dst_ip) override;

  // --- Data plane --------------------------------------------------------------
  // Sends `size` bytes src->dst; `deliver` runs at the receiver after the
  // ingress taps fire. Dropped silently when a rule matches (like TC).
  void Send(const std::string& src_ip, const std::string& dst_ip, int64_t size,
            std::function<void()> deliver);

  void AddIngressTap(IngressTap* tap);
  void RemoveIngressTap(IngressTap* tap);

  // --- Introspection -----------------------------------------------------------
  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  size_t active_rules() const { return rules_.size(); }

 private:
  SimTime NextLatency();

  EventLoop* loop_;
  Rng rng_;
  SimTime base_latency_ = Millis(1);
  SimTime jitter_ = Micros(500);
  std::set<std::pair<std::string, std::string>> rules_;
  std::vector<IngressTap*> taps_;
  uint64_t packets_delivered_ = 0;
  uint64_t packets_dropped_ = 0;
};

}  // namespace rose

#endif  // SRC_NET_NETWORK_H_
