#include "src/net/transport.h"

#include <algorithm>

namespace rose {

namespace {

// One direction of a pipe: a bounded byte queue plus the writer's close flag.
struct PipeBuffer {
  std::mutex mutex;
  std::string data;
  size_t capacity = kDefaultTransportCapacity;
  bool closed = false;
};

// One endpoint: writes into `out`, reads from `in`.
class PipeEndpoint : public Transport {
 public:
  PipeEndpoint(std::shared_ptr<PipeBuffer> in, std::shared_ptr<PipeBuffer> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~PipeEndpoint() override { Close(); }

  size_t Write(std::string_view data) override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (out_->closed) {
      return 0;
    }
    const size_t space = out_->capacity - std::min(out_->capacity, out_->data.size());
    const size_t n = std::min(space, data.size());
    out_->data.append(data.data(), n);
    return n;
  }

  std::string Read(size_t max) override {
    std::lock_guard<std::mutex> lock(in_->mutex);
    const size_t n = std::min(max, in_->data.size());
    std::string result = in_->data.substr(0, n);
    in_->data.erase(0, n);
    return result;
  }

  size_t readable() const override {
    std::lock_guard<std::mutex> lock(in_->mutex);
    return in_->data.size();
  }

  size_t writable() const override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (out_->closed) {
      return 0;
    }
    return out_->capacity - std::min(out_->capacity, out_->data.size());
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    out_->closed = true;
  }

  bool AtEof() const override {
    std::lock_guard<std::mutex> lock(in_->mutex);
    return in_->closed && in_->data.empty();
  }

 private:
  std::shared_ptr<PipeBuffer> in_;
  std::shared_ptr<PipeBuffer> out_;
};

}  // namespace

std::pair<std::shared_ptr<Transport>, std::shared_ptr<Transport>> MakePipePair(
    size_t capacity) {
  auto a_to_b = std::make_shared<PipeBuffer>();
  auto b_to_a = std::make_shared<PipeBuffer>();
  a_to_b->capacity = capacity;
  b_to_a->capacity = capacity;
  auto a = std::make_shared<PipeEndpoint>(b_to_a, a_to_b);
  auto b = std::make_shared<PipeEndpoint>(a_to_b, b_to_a);
  return {std::move(a), std::move(b)};
}

bool SimSocketSpace::Listen(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return listeners_.emplace(path, std::deque<std::shared_ptr<Transport>>{}).second;
}

void SimSocketSpace::CloseListener(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.erase(path);
}

std::shared_ptr<Transport> SimSocketSpace::Connect(const std::string& path,
                                                   size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = listeners_.find(path);
  if (it == listeners_.end() || it->second.size() >= backlog_) {
    return nullptr;
  }
  auto [client_end, server_end] = MakePipePair(capacity);
  it->second.push_back(std::move(server_end));
  return client_end;
}

std::shared_ptr<Transport> SimSocketSpace::Accept(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = listeners_.find(path);
  if (it == listeners_.end() || it->second.empty()) {
    return nullptr;
  }
  std::shared_ptr<Transport> endpoint = std::move(it->second.front());
  it->second.pop_front();
  return endpoint;
}

}  // namespace rose
