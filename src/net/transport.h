// Byte-stream transports for the diagnosis service (DESIGN.md §10).
//
// On Linux the rose_served daemon would listen on a Unix/TCP socket; this
// repo's OS substrate is simulated, so the "wire" is an in-process transport
// abstraction instead. The substitution is deliberate and narrow: only the
// bottom-most read/write syscalls are replaced. Everything a socket makes
// hard — partial writes under a bounded send buffer, short reads, half-close,
// frames split across arbitrary read boundaries — is preserved, so the serve
// protocol's framing, backpressure, and corruption handling are exercised for
// real in tests.
//
// Two implementations:
//   - MakePipePair(): a connected pair of endpoints over two bounded byte
//     queues (the loopback "wire").
//   - SimSocketSpace: a Unix-socket-style namespace — a server Listen()s on a
//     path, clients Connect() to it, the server Accept()s the peer endpoint.
//     Connect fails when nobody listens or the backlog is full (the ECONNREFUSED
//     analogue).
//
// Thread safety: endpoints are internally locked, so a service Poll()ing on
// one thread and a client on another may share a pair. Determinism is the
// caller's concern — the serve tests pump client and server from one thread.
#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace rose {

// A bidirectional, bounded, in-order byte stream. Writes accept at most the
// free space of the peer-facing buffer (backpressure shows up as a short
// write, never blocking); reads drain whatever has arrived.
class Transport {
 public:
  virtual ~Transport() = default;

  // Appends up to buffer-space bytes of `data`; returns how many were
  // accepted (0 when the buffer is full or the stream is closed).
  virtual size_t Write(std::string_view data) = 0;

  // Removes and returns up to `max` buffered bytes (possibly fewer, possibly
  // empty — a short read, exactly like a socket).
  virtual std::string Read(size_t max) = 0;

  // Bytes currently readable / writable without blocking.
  virtual size_t readable() const = 0;
  virtual size_t writable() const = 0;

  // Half-closes the write side: the peer still drains what was sent, then
  // observes end-of-stream.
  virtual void Close() = 0;

  // True once the *peer* closed its write side and every byte it sent has
  // been read (end-of-stream for this endpoint's reads).
  virtual bool AtEof() const = 0;
};

inline constexpr size_t kDefaultTransportCapacity = 64 * 1024;

// A connected endpoint pair sharing two bounded buffers (a.Write -> b.Read
// and vice versa). `capacity` bounds each direction independently.
std::pair<std::shared_ptr<Transport>, std::shared_ptr<Transport>> MakePipePair(
    size_t capacity = kDefaultTransportCapacity);

// Unix-socket-style namespace for in-process endpoints.
class SimSocketSpace {
 public:
  explicit SimSocketSpace(size_t backlog = 8) : backlog_(backlog) {}

  // Claims `path`; false when already claimed.
  bool Listen(const std::string& path);
  void CloseListener(const std::string& path);

  // Creates a connected pair, queues the server end on `path`'s backlog, and
  // returns the client end — or nullptr when nobody listens or the backlog
  // is full.
  std::shared_ptr<Transport> Connect(const std::string& path,
                                     size_t capacity = kDefaultTransportCapacity);

  // Pops the next pending server-side endpoint for `path` (nullptr if none).
  std::shared_ptr<Transport> Accept(const std::string& path);

 private:
  mutable std::mutex mutex_;
  size_t backlog_;
  // path -> pending server-side endpoints (listening paths map to a queue,
  // possibly empty; absent key = not listening).
  std::map<std::string, std::deque<std::shared_ptr<Transport>>> listeners_;
};

}  // namespace rose

#endif  // SRC_NET_TRANSPORT_H_
