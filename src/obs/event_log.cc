#include "src/obs/event_log.h"

namespace rose {

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

}  // namespace rose
