#ifndef ROSE_OBS_EVENT_LOG_H_
#define ROSE_OBS_EVENT_LOG_H_

// Bounded structured self-event log (DESIGN.md §11): pipeline phases record
// notable moments ("dump complete", "cache hit", "wave abandoned") as
// (sequence, category, message) records. The log keeps the most recent
// `capacity` entries and counts what it dropped; like the metrics registry it
// is write-only from the simulation's point of view.

#include "src/obs/metrics.h"

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace rose {

struct ObsEvent {
  uint64_t seq = 0;          // monotonically increasing per log
  std::string category;      // e.g. "tracer", "engine", "serve"
  std::string message;
};

class EventLog {
 public:
  explicit EventLog(size_t capacity = 256) : capacity_(capacity) {}

  void Log(std::string category, std::string message) {
#if ROSE_OBS_ENABLED
    std::lock_guard<std::mutex> lock(mu_);
    ObsEvent ev;
    ev.seq = next_seq_++;
    ev.category = std::move(category);
    ev.message = std::move(message);
    entries_.push_back(std::move(ev));
    if (entries_.size() > capacity_) {
      entries_.pop_front();
      ++dropped_;
    }
#else
    (void)category;
    (void)message;
#endif
  }

  std::vector<ObsEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {entries_.begin(), entries_.end()};
  }

  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  size_t capacity() const { return capacity_; }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    next_seq_ = 0;
    dropped_ = 0;
  }

  // Process-wide log used by the built-in instrumentation.
  static EventLog& Global();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<ObsEvent> entries_;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace rose

#endif  // ROSE_OBS_EVENT_LOG_H_
