#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <sstream>

namespace rose {

int Histogram::BucketIndex(uint64_t v) {
  if (v < kSub) return static_cast<int>(v);
  const int octave = 63 - std::countl_zero(v);  // >= kSubBits here
  const int sub = static_cast<int>((v >> (octave - kSubBits)) & (kSub - 1));
  return kSub + (octave - kSubBits) * kSub + sub;
}

uint64_t Histogram::BucketLower(int index) {
  if (index < kSub) return static_cast<uint64_t>(index);
  const int octave = kSubBits + (index - kSub) / kSub;
  const int sub = (index - kSub) % kSub;
  return (uint64_t{1} << octave) +
         static_cast<uint64_t>(sub) * (uint64_t{1} << (octave - kSubBits));
}

uint64_t Histogram::BucketWidth(int index) {
  if (index < kSub) return 1;
  const int octave = kSubBits + (index - kSub) / kSub;
  return uint64_t{1} << (octave - kSubBits);
}

namespace {
uint64_t BucketMid(int index) {
  return Histogram::BucketLower(index) + Histogram::BucketWidth(index) / 2;
}
}  // namespace

uint64_t Histogram::Quantile(double q) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th value, 1-based; q=0 maps to the first recording.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketMid(i);
  }
  return BucketMid(kBuckets - 1);
}

void Histogram::Reset() {
  for (int i = 0; i < kBuckets; ++i) buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::ApproxMax() const {
  for (int i = kBuckets - 1; i >= 0; --i) {
    if (buckets_[i].load(std::memory_order_relaxed) != 0) return BucketMid(i);
  }
  return 0;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.p50 = h->Quantile(0.50);
    hs.p90 = h->Quantile(0.90);
    hs.p99 = h->Quantile(0.99);
    hs.max = h->ApproxMax();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;  // std::map iteration => already name-sorted
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

std::string MetricsSnapshot::ToYaml() const {
  std::ostringstream out;
  out << "# rose-obs v1\n";
  if (counters.empty()) {
    out << "counters: {}\n";
  } else {
    out << "counters:\n";
    for (const auto& [name, v] : counters) out << "  " << name << ": " << v << "\n";
  }
  if (gauges.empty()) {
    out << "gauges: {}\n";
  } else {
    out << "gauges:\n";
    for (const auto& [name, v] : gauges) out << "  " << name << ": " << v << "\n";
  }
  if (histograms.empty()) {
    out << "histograms: {}\n";
  } else {
    out << "histograms:\n";
    for (const auto& h : histograms) {
      out << "  " << h.name << ": {count: " << h.count << ", sum: " << h.sum
          << ", p50: " << h.p50 << ", p90: " << h.p90 << ", p99: " << h.p99
          << ", max: " << h.max << "}\n";
    }
  }
  return out.str();
}

bool WriteStatsFile(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << MetricRegistry::Global().Snapshot().ToYaml();
  return static_cast<bool>(out);
}

}  // namespace rose
