#ifndef ROSE_OBS_METRICS_H_
#define ROSE_OBS_METRICS_H_

// rose::obs — lock-cheap self-metrics for the pipeline (DESIGN.md §11).
//
// The registry hands out stable pointers to named counters / gauges /
// histograms; hot paths cache the pointer once and mutate it with relaxed
// atomics, so recording costs one uncontended atomic RMW. Registration (the
// only mutex) happens on cold paths.
//
// Determinism contract: metrics are strictly write-only from the simulation's
// point of view. Nothing in src/ may branch on a metric value — the
// (seed, schedule) pair alone determines an execution, and
// tools/check_determinism.sh continues to enforce the byte-identical
// guarantee with ROSE_OBS=ON.
//
// ROSE_OBS=OFF (-DROSE_OBS_ENABLED=0) compiles every record operation to an
// inline no-op; the registry and snapshot API keep working (all zeros) so
// callers need no #ifdefs.

#ifndef ROSE_OBS_ENABLED
#define ROSE_OBS_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rose {

// Monotonic counter. Inc() is a relaxed fetch_add — safe from any thread.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
#if ROSE_OBS_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time signed value (queue depth, window occupancy).
class Gauge {
 public:
  void Set(int64_t v) {
#if ROSE_OBS_ENABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t d) {
#if ROSE_OBS_ENABLED
    value_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket log-linear histogram: 8 linear buckets for values 0..7, then
// 8 linear sub-buckets per power-of-two octave. Quantile estimates carry at
// most one sub-bucket of relative error (≤ 12.5%), which is plenty for p50 /
// p99 latency reporting. Recording is one relaxed fetch_add on a bucket plus
// two on count/sum; concurrent recorders never contend on a lock.
class Histogram {
 public:
  static constexpr int kSubBits = 3;                      // 8 sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kOctaves = 64 - kSubBits;          // values < 2^64
  static constexpr int kBuckets = kSub + kOctaves * kSub;

  void Record(uint64_t v) {
#if ROSE_OBS_ENABLED
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  // Quantile estimate for q in [0, 1]; 0 when empty. Returns the midpoint of
  // the bucket holding the q-th recorded value.
  uint64_t Quantile(double q) const;
  // Midpoint of the highest non-empty bucket (≈ observed maximum).
  uint64_t ApproxMax() const;
  void Reset();

  static int BucketIndex(uint64_t v);
  // [lower, width) of a bucket — exposed for the accuracy-bound tests.
  static uint64_t BucketLower(int index);
  static uint64_t BucketWidth(int index);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// RAII phase timer: records elapsed wall nanoseconds into a histogram at
// scope exit. Uses std::chrono::steady_clock (monotonic, allowed by the
// determinism lint) and never feeds the reading back into the simulation.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
#if ROSE_OBS_ENABLED
    start_ = std::chrono::steady_clock::now();
#endif
  }
  ~ScopedTimer() {
#if ROSE_OBS_ENABLED
    if (hist_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    hist_->Record(static_cast<uint64_t>(ns.count()));
#endif
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
#if ROSE_OBS_ENABLED
  std::chrono::steady_clock::time_point start_;
#endif
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

// A stable, name-sorted copy of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  std::string ToYaml() const;  // deterministic: sorted by metric name
};

// Name → metric map. GetX() find-or-creates under a mutex and returns a
// pointer that stays valid for the registry's lifetime, so hot paths resolve
// a metric once (usually in a constructor) and record lock-free after that.
// Every metric name must appear in docs/metrics.md.
class MetricRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (pointers stay valid). Tests and
  // bench harnesses use this between iterations.
  void Reset();

  // Process-wide registry used by the built-in instrumentation.
  static MetricRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Writes MetricRegistry::Global()'s snapshot as YAML ("# rose-obs v1") to
// `path`; false on I/O failure. The --stats-out flag of reproduce_bug /
// trace_explorer / rose_served lands here.
bool WriteStatsFile(const std::string& path);

}  // namespace rose

#endif  // ROSE_OBS_METRICS_H_
