#include "src/obs/trace_report.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>

#include "src/sim/time.h"
#include "src/trace/trace_io.h"

namespace rose {

namespace {

std::string LowerName(EventType type) {
  std::string name(EventTypeName(type));
  for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return name;
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

}  // namespace

std::string RenderTraceStats(TraceView trace, MetricRegistry* registry,
                             bool with_encoded_sizes) {
  std::map<EventType, uint64_t> by_type;
  std::map<NodeId, uint64_t> by_node;
  for (const TraceEvent& event : trace) {
    by_type[event.type]++;
    by_node[event.node]++;
  }

  if (registry != nullptr) {
    for (const auto& [type, count] : by_type) {
      registry->GetCounter("trace.events." + LowerName(type))->Inc(count);
    }
    for (const auto& [node, count] : by_node) {
      registry->GetCounter("trace.events.node." + std::to_string(node))->Inc(count);
    }
    registry->GetGauge("trace.window.occupancy")
        ->Set(static_cast<int64_t>(trace.size()));
    registry->GetGauge("trace.pool.strings")
        ->Set(static_cast<int64_t>(trace.pool().size()));
    registry->GetGauge("trace.pool.payload_bytes")
        ->Set(static_cast<int64_t>(trace.pool().payload_bytes()));
  }

  std::string out;
  Append(&out, "--- window statistics ---\n");
  Append(&out, "events: %zu\n", trace.size());
  for (const auto& [type, count] : by_type) {
    Append(&out, "  %-3s %llu\n", std::string(EventTypeName(type)).c_str(),
           static_cast<unsigned long long>(count));
  }
  Append(&out, "events by node:\n");
  for (const auto& [node, count] : by_node) {
    Append(&out, "  node %d: %llu\n", node, static_cast<unsigned long long>(count));
  }
  Append(&out, "string pool: %zu strings, %zu payload bytes\n", trace.pool().size(),
         trace.pool().payload_bytes());
  if (!trace.empty()) {
    Append(&out, "window span: %.3fs .. %.3fs (%.3fs)\n", ToSeconds(trace[0].ts),
           ToSeconds(trace[trace.size() - 1].ts),
           ToSeconds(trace[trace.size() - 1].ts - trace[0].ts));
  }
  if (with_encoded_sizes) {
    // Encode straight from the view — works for owning and mapped traces
    // alike (TraceWriter resolves pool ids through View, which an
    // external-arena pool serves from the mapped bytes).
    std::string binary;
    TraceWriter writer(&binary, &trace.pool());
    for (const TraceEvent& event : trace) {
      writer.Add(event);
    }
    writer.Finish();
    std::string text;
    for (const TraceEvent& event : trace) {
      event.AppendLine(&text, trace.pool());
      text.push_back('\n');
    }
    const size_t binary_bytes = binary.size();
    const size_t text_bytes = text.size();
    Append(&out, "encoded size: binary %zu bytes, text %zu bytes (%.0f%%)\n",
           binary_bytes, text_bytes,
           text_bytes == 0 ? 0.0 : 100.0 * static_cast<double>(binary_bytes) /
                                       static_cast<double>(text_bytes));
  }
  return out;
}

}  // namespace rose
