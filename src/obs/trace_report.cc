#include "src/obs/trace_report.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>

#include "src/sim/time.h"
#include "src/trace/trace_io.h"

namespace rose {

namespace {

std::string LowerName(EventType type) {
  std::string name(EventTypeName(type));
  for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return name;
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

}  // namespace

std::string RenderTraceStats(TraceView trace, MetricRegistry* registry,
                             bool with_encoded_sizes, bool with_index_stats) {
  std::map<EventType, uint64_t> by_type;
  std::map<NodeId, uint64_t> by_node;
  for (const TraceEvent& event : trace) {
    by_type[event.type]++;
    by_node[event.node]++;
  }

  if (registry != nullptr) {
    for (const auto& [type, count] : by_type) {
      registry->GetCounter("trace.events." + LowerName(type))->Inc(count);
    }
    for (const auto& [node, count] : by_node) {
      registry->GetCounter("trace.events.node." + std::to_string(node))->Inc(count);
    }
    registry->GetGauge("trace.window.occupancy")
        ->Set(static_cast<int64_t>(trace.size()));
    registry->GetGauge("trace.pool.strings")
        ->Set(static_cast<int64_t>(trace.pool().size()));
    registry->GetGauge("trace.pool.payload_bytes")
        ->Set(static_cast<int64_t>(trace.pool().payload_bytes()));
  }

  std::string out;
  Append(&out, "--- window statistics ---\n");
  Append(&out, "events: %zu\n", trace.size());
  for (const auto& [type, count] : by_type) {
    Append(&out, "  %-3s %llu\n", std::string(EventTypeName(type)).c_str(),
           static_cast<unsigned long long>(count));
  }
  Append(&out, "events by node:\n");
  for (const auto& [node, count] : by_node) {
    Append(&out, "  node %d: %llu\n", node, static_cast<unsigned long long>(count));
  }
  Append(&out, "string pool: %zu strings, %zu payload bytes\n", trace.pool().size(),
         trace.pool().payload_bytes());
  if (!trace.empty()) {
    Append(&out, "window span: %.3fs .. %.3fs (%.3fs)\n", ToSeconds(trace[0].ts),
           ToSeconds(trace[trace.size() - 1].ts),
           ToSeconds(trace[trace.size() - 1].ts - trace[0].ts));
  }
  if (with_encoded_sizes) {
    // Encode straight from the view — works for owning and mapped traces
    // alike (TraceWriter resolves pool ids through View, which an
    // external-arena pool serves from the mapped bytes).
    std::string binary;
    TraceWriter writer(&binary, &trace.pool());
    for (const TraceEvent& event : trace) {
      writer.Add(event);
    }
    writer.Finish();
    std::string text;
    for (const TraceEvent& event : trace) {
      event.AppendLine(&text, trace.pool());
      text.push_back('\n');
    }
    const size_t binary_bytes = binary.size();
    const size_t text_bytes = text.size();
    Append(&out, "encoded size: binary %zu bytes, text %zu bytes (%.0f%%)\n",
           binary_bytes, text_bytes,
           text_bytes == 0 ? 0.0 : 100.0 * static_cast<double>(binary_bytes) /
                                       static_cast<double>(text_bytes));
  }
  if (with_index_stats) {
    // Execution-index quality (DESIGN.md §14): coverage (how many SCFs carry
    // an index), collisions (a recorded address — (ctx, seq, sys, input) on
    // one node — occurring twice means the digest aliased two distinct
    // calling contexts and the address no longer names a unique invocation),
    // and the seq-depth histogram (how deep same-context repetition runs —
    // the residual ambiguity a context-mode Level-2 sweep still faces).
    uint64_t indexed = 0;
    uint64_t unindexed = 0;
    uint32_t max_seq = 0;
    uint64_t depth[5] = {0, 0, 0, 0, 0};  // seq 1 / 2 / 3-4 / 5-8 / >8.
    std::map<std::string, uint64_t> addresses;
    for (const TraceEvent& event : trace) {
      if (event.type != EventType::kSCF) {
        continue;
      }
      const ScfInfo& scf = event.scf();
      if (scf.ctx_digest == 0) {
        unindexed++;
        continue;
      }
      indexed++;
      const uint32_t seq = scf.ctx_seq;
      if (seq > max_seq) {
        max_seq = seq;
      }
      depth[seq <= 1 ? 0 : seq == 2 ? 1 : seq <= 4 ? 2 : seq <= 8 ? 3 : 4]++;
      char key[64];
      std::snprintf(key, sizeof(key), "%d|%llx|%u|%d", event.node,
                    static_cast<unsigned long long>(scf.ctx_digest), seq,
                    static_cast<int>(scf.sys));
      addresses[std::string(key) + std::string(trace.str(scf.filename))]++;
    }
    uint64_t colliding = 0;
    for (const auto& [key, count] : addresses) {
      if (count > 1) {
        colliding++;
      }
    }
    if (registry != nullptr) {
      registry->GetGauge("trace.index.indexed_scf")->Set(static_cast<int64_t>(indexed));
      registry->GetGauge("trace.index.addresses")
          ->Set(static_cast<int64_t>(addresses.size()));
      registry->GetGauge("trace.index.collisions")->Set(static_cast<int64_t>(colliding));
      Histogram* hist = registry->GetHistogram("trace.index.seq_depth");
      for (const TraceEvent& event : trace) {
        if (event.type == EventType::kSCF && event.scf().ctx_digest != 0) {
          hist->Record(event.scf().ctx_seq);
        }
      }
    }
    Append(&out, "execution index: %llu of %llu SCF events indexed (%llu unindexed)\n",
           static_cast<unsigned long long>(indexed),
           static_cast<unsigned long long>(indexed + unindexed),
           static_cast<unsigned long long>(unindexed));
    Append(&out, "index addresses: %zu distinct, %llu colliding\n", addresses.size(),
           static_cast<unsigned long long>(colliding));
    Append(&out,
           "context seq depth: 1:%llu 2:%llu 3-4:%llu 5-8:%llu >8:%llu (max %u)\n",
           static_cast<unsigned long long>(depth[0]),
           static_cast<unsigned long long>(depth[1]),
           static_cast<unsigned long long>(depth[2]),
           static_cast<unsigned long long>(depth[3]),
           static_cast<unsigned long long>(depth[4]), max_seq);
  }
  return out;
}

}  // namespace rose
