#ifndef ROSE_OBS_TRACE_REPORT_H_
#define ROSE_OBS_TRACE_REPORT_H_

// Registry-backed window statistics shared by `trace_explorer --stats` and
// `lint_schedule --trace`. Both tools used to keep hand-rolled tallies that
// drifted apart; this is the one code path and the one output format.
//
// Lives in its own target (rose_obs_report) because it depends on rose_trace,
// while rose_obs itself must stay dependency-free so the tracer can link it.

#include <string>

#include "src/obs/metrics.h"
#include "src/trace/event.h"

namespace rose {

// Folds the trace's window statistics into `registry` —
//   counters  trace.events.{scf,af,nd,ps}, trace.events.node.<id>
//   gauges    trace.window.occupancy, trace.pool.strings,
//             trace.pool.payload_bytes
// — and returns the human-readable report both CLIs print.
// `with_encoded_sizes` additionally serializes the trace both ways to report
// binary-vs-text size (skipped where the extra work is unwanted).
// Takes a view so zero-copy mapped traces render without promotion (an
// owning Trace converts implicitly).
std::string RenderTraceStats(TraceView trace, MetricRegistry* registry,
                             bool with_encoded_sizes = true);

}  // namespace rose

#endif  // ROSE_OBS_TRACE_REPORT_H_
