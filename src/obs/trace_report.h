#ifndef ROSE_OBS_TRACE_REPORT_H_
#define ROSE_OBS_TRACE_REPORT_H_

// Registry-backed window statistics shared by `trace_explorer --stats` and
// `lint_schedule --trace`. Both tools used to keep hand-rolled tallies that
// drifted apart; this is the one code path and the one output format.
//
// Lives in its own target (rose_obs_report) because it depends on rose_trace,
// while rose_obs itself must stay dependency-free so the tracer can link it.

#include <string>

#include "src/obs/metrics.h"
#include "src/trace/event.h"

namespace rose {

// Folds the trace's window statistics into `registry` —
//   counters  trace.events.{scf,af,nd,ps}, trace.events.node.<id>
//   gauges    trace.window.occupancy, trace.pool.strings,
//             trace.pool.payload_bytes
// — and returns the human-readable report both CLIs print.
// `with_encoded_sizes` additionally serializes the trace both ways to report
// binary-vs-text size (skipped where the extra work is unwanted).
// `with_index_stats` adds execution-index quality rows (DESIGN.md §14):
// indexed-SCF coverage, digest-collision count (addresses that fail to name
// a unique invocation), and the context seq-depth histogram — folded into
// the registry as trace.index.* (gauges indexed_scf, addresses, collisions;
// histogram seq_depth).
// Takes a view so zero-copy mapped traces render without promotion (an
// owning Trace converts implicitly).
std::string RenderTraceStats(TraceView trace, MetricRegistry* registry,
                             bool with_encoded_sizes = true,
                             bool with_index_stats = false);

}  // namespace rose

#endif  // ROSE_OBS_TRACE_REPORT_H_
