#include "src/oracle/oracle.h"

#include <map>

#include "src/common/strings.h"

namespace rose {

bool LogsContain(const std::string& all_log_text, const std::string& pattern) {
  return Contains(all_log_text, pattern);
}

std::vector<HistoryViolation> ElleLite::CheckAppendHistory(
    const std::vector<std::string>& acked, const std::vector<std::string>& committed) {
  std::vector<HistoryViolation> violations;

  std::map<std::string, int> committed_count;
  std::map<std::string, size_t> committed_pos;
  for (size_t i = 0; i < committed.size(); i++) {
    committed_count[committed[i]]++;
    if (committed_pos.find(committed[i]) == committed_pos.end()) {
      committed_pos[committed[i]] = i;
    }
  }

  for (const auto& [op, count] : committed_count) {
    if (count > 1) {
      violations.push_back({HistoryViolation::Kind::kDuplicate, op,
                            StrFormat("op appears %d times in the committed log", count)});
    }
  }

  size_t last_pos = 0;
  bool have_last = false;
  for (const std::string& op : acked) {
    auto it = committed_pos.find(op);
    if (it == committed_pos.end()) {
      violations.push_back(
          {HistoryViolation::Kind::kLostWrite, op, "acknowledged op missing from log"});
      continue;
    }
    if (have_last && it->second < last_pos) {
      violations.push_back({HistoryViolation::Kind::kReordered, op,
                            "acknowledged op committed before an earlier ack"});
    }
    last_pos = it->second;
    have_last = true;
  }
  return violations;
}

}  // namespace rose
