// Bug oracles.
//
// The paper's oracles are log greps, health checks, or Elle. Here:
//   - LogsContain: scan merged node logs for a failure signature;
//   - ElleLite: an append-history consistency checker in the spirit of Elle,
//     detecting lost acknowledged writes and duplicated applications. Like
//     Elle it is deliberately the *expensive* oracle (it walks the entire
//     operation history), which is why the Redpanda rows of Table 1 run
//     longer than the others.
#ifndef SRC_ORACLE_ORACLE_H_
#define SRC_ORACLE_ORACLE_H_

#include <string>
#include <vector>

namespace rose {

// True if any node log line contains `pattern`.
bool LogsContain(const std::string& all_log_text, const std::string& pattern);

struct HistoryViolation {
  enum class Kind { kLostWrite, kDuplicate, kReordered };
  Kind kind = Kind::kLostWrite;
  std::string op_id;
  std::string detail;
};

class ElleLite {
 public:
  // `acked` — operation ids acknowledged to clients, in ack order.
  // `committed` — operation ids in the system's final authoritative order.
  // Reports acked-but-missing (lost), multiply-present (duplicate), and
  // acked ops whose relative order was inverted (reordered).
  static std::vector<HistoryViolation> CheckAppendHistory(
      const std::vector<std::string>& acked, const std::vector<std::string>& committed);
};

}  // namespace rose

#endif  // SRC_ORACLE_ORACLE_H_
