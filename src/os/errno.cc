#include "src/os/errno.h"

#include <array>
#include <utility>

namespace rose {

namespace {

constexpr std::array<std::pair<Err, std::string_view>, 21> kErrNames = {{
    {Err::kOk, "OK"},
    {Err::kEPERM, "EPERM"},
    {Err::kENOENT, "ENOENT"},
    {Err::kEINTR, "EINTR"},
    {Err::kEIO, "EIO"},
    {Err::kEBADF, "EBADF"},
    {Err::kEAGAIN, "EAGAIN"},
    {Err::kEACCES, "EACCES"},
    {Err::kEEXIST, "EEXIST"},
    {Err::kENOTDIR, "ENOTDIR"},
    {Err::kEISDIR, "EISDIR"},
    {Err::kEINVAL, "EINVAL"},
    {Err::kEMFILE, "EMFILE"},
    {Err::kENOSPC, "ENOSPC"},
    {Err::kEPIPE, "EPIPE"},
    {Err::kENETUNREACH, "ENETUNREACH"},
    {Err::kECONNRESET, "ECONNRESET"},
    {Err::kENOTCONN, "ENOTCONN"},
    {Err::kETIMEDOUT, "ETIMEDOUT"},
    {Err::kECONNREFUSED, "ECONNREFUSED"},
    {Err::kESTALE, "ESTALE"},
}};

}  // namespace

std::string_view ErrName(Err err) {
  for (const auto& [value, name] : kErrNames) {
    if (value == err) {
      return name;
    }
  }
  return "EUNKNOWN";
}

Err ErrFromName(std::string_view name) {
  for (const auto& [value, err_name] : kErrNames) {
    if (err_name == name) {
      return value;
    }
  }
  return Err::kOk;
}

}  // namespace rose
