// Simulated errno values.
//
// Rose's fault model manipulates the errno returned by failed system calls
// (the paper's bpf_override_return path), so the error codes form part of the
// public fault-schedule format. The subset below covers every errno used by
// the paper's 20 reproduced bugs plus the benign failures the profiler learns.
#ifndef SRC_OS_ERRNO_H_
#define SRC_OS_ERRNO_H_

#include <cstdint>
#include <string_view>

namespace rose {

enum class Err : int32_t {
  kOk = 0,
  kEPERM = 1,
  kENOENT = 2,
  kEINTR = 4,
  kEIO = 5,
  kEBADF = 9,
  kEAGAIN = 11,
  kEACCES = 13,
  kEEXIST = 17,
  kENOTDIR = 20,
  kEISDIR = 21,
  kEINVAL = 22,
  kEMFILE = 24,
  kENOSPC = 28,
  kEPIPE = 32,
  kENETUNREACH = 101,
  kECONNRESET = 104,
  kENOTCONN = 107,
  kETIMEDOUT = 110,
  kECONNREFUSED = 111,
  kESTALE = 116,
};

// Returns the symbolic name, e.g. "ENOENT".
std::string_view ErrName(Err err);

// Parses a symbolic name back into an Err; returns Err::kOk when unknown.
Err ErrFromName(std::string_view name);

}  // namespace rose

#endif  // SRC_OS_ERRNO_H_
