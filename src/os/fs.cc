#include "src/os/fs.h"

#include <algorithm>
#include <vector>

#include "src/common/strings.h"

namespace rose {

InMemoryFileSystem::InMemoryFileSystem() { directories_.insert("/"); }

bool InMemoryFileSystem::ParentIsValid(const std::string& path) const {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) {
    return true;  // Root-level entries are always fine.
  }
  const std::string parent = path.substr(0, slash);
  // A parent that exists as a regular file is a layout error.
  return files_.find(parent) == files_.end();
}

Err InMemoryFileSystem::Create(const std::string& path, bool truncate) {
  if (path.empty()) {
    return Err::kEINVAL;
  }
  if (directories_.count(path) != 0) {
    return Err::kEISDIR;
  }
  if (!ParentIsValid(path)) {
    return Err::kENOTDIR;
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    files_[path] = FileNode{};
    return Err::kOk;
  }
  if ((it->second.mode & 0600) == 0) {
    return Err::kEACCES;
  }
  if (truncate) {
    it->second.data.clear();
  }
  return Err::kOk;
}

bool InMemoryFileSystem::Exists(const std::string& path) const {
  return files_.count(path) != 0 || directories_.count(path) != 0;
}

bool InMemoryFileSystem::IsDirectory(const std::string& path) const {
  return directories_.count(path) != 0;
}

Err InMemoryFileSystem::Stat(const std::string& path, FileStat* out) const {
  if (directories_.count(path) != 0) {
    *out = FileStat{0, 0755, true};
    return Err::kOk;
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Err::kENOENT;
  }
  if ((it->second.mode & 0400) == 0) {
    return Err::kEACCES;
  }
  *out = FileStat{static_cast<int64_t>(it->second.data.size()), it->second.mode, false};
  return Err::kOk;
}

Err InMemoryFileSystem::ReadAt(const std::string& path, int64_t offset, int64_t count,
                               std::string* out) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Err::kENOENT;
  }
  if ((it->second.mode & 0400) == 0) {
    return Err::kEACCES;
  }
  const auto& data = it->second.data;
  if (offset < 0) {
    return Err::kEINVAL;
  }
  if (offset >= static_cast<int64_t>(data.size())) {
    out->clear();
    return Err::kOk;
  }
  const auto available = static_cast<int64_t>(data.size()) - offset;
  *out = data.substr(static_cast<size_t>(offset),
                     static_cast<size_t>(std::min(count, available)));
  return Err::kOk;
}

Err InMemoryFileSystem::WriteAt(const std::string& path, int64_t offset, std::string_view data) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Err::kENOENT;
  }
  if ((it->second.mode & 0200) == 0) {
    return Err::kEACCES;
  }
  auto& contents = it->second.data;
  if (offset < 0) {
    return Err::kEINVAL;
  }
  if (static_cast<size_t>(offset) + data.size() > contents.size()) {
    contents.resize(static_cast<size_t>(offset) + data.size(), '\0');
  }
  contents.replace(static_cast<size_t>(offset), data.size(), data);
  return Err::kOk;
}

Err InMemoryFileSystem::Truncate(const std::string& path, int64_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Err::kENOENT;
  }
  it->second.data.resize(static_cast<size_t>(size), '\0');
  return Err::kOk;
}

Err InMemoryFileSystem::Unlink(const std::string& path) {
  if (directories_.count(path) != 0) {
    return Err::kEISDIR;
  }
  if (files_.erase(path) == 0) {
    return Err::kENOENT;
  }
  return Err::kOk;
}

Err InMemoryFileSystem::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Err::kENOENT;
  }
  if (!ParentIsValid(to)) {
    return Err::kENOTDIR;
  }
  FileNode node = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(node);
  return Err::kOk;
}

Err InMemoryFileSystem::Mkdir(const std::string& path) {
  if (Exists(path)) {
    return Err::kEEXIST;
  }
  directories_.insert(path);
  return Err::kOk;
}

Err InMemoryFileSystem::Chmod(const std::string& path, uint32_t mode) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Err::kENOENT;
  }
  it->second.mode = mode;
  return Err::kOk;
}

uint32_t InMemoryFileSystem::ModeOf(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.mode;
}

std::optional<std::string> InMemoryFileSystem::ReadAll(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return std::nullopt;
  }
  return it->second.data;
}

void InMemoryFileSystem::WriteAll(const std::string& path, std::string_view data) {
  files_[path].data = std::string(data);
}

std::vector<std::string> InMemoryFileSystem::ListFiles(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, node] : files_) {
    if (StartsWith(path, prefix)) {
      out.push_back(path);
    }
  }
  return out;
}

int64_t InMemoryFileSystem::SizeOf(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? -1 : static_cast<int64_t>(it->second.data.size());
}

int64_t InMemoryFileSystem::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [path, node] : files_) {
    total += static_cast<int64_t>(node.data.size());
  }
  return total;
}

void InMemoryFileSystem::Wipe() {
  files_.clear();
  directories_.clear();
  directories_.insert("/");
}

}  // namespace rose
