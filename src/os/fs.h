// Per-node in-memory filesystem.
//
// Every simulated node owns one InMemoryFileSystem ("its disk"). The disk
// survives process crashes and restarts within a simulation run, which is
// what makes crash-recovery bugs (corrupted snapshots, index mismatches)
// observable: a crash between two write() syscalls leaves exactly the bytes
// already written.
#ifndef SRC_OS_FS_H_
#define SRC_OS_FS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/os/errno.h"

namespace rose {

struct FileStat {
  int64_t size = 0;
  uint32_t mode = 0644;
  bool is_directory = false;
};

class InMemoryFileSystem {
 public:
  InMemoryFileSystem();

  // Creates the file if missing; truncates when `truncate` is set.
  // Fails with ENOTDIR if a parent component is a file, EACCES if the file
  // exists but the mode denies access.
  Err Create(const std::string& path, bool truncate);

  bool Exists(const std::string& path) const;
  bool IsDirectory(const std::string& path) const;

  Err Stat(const std::string& path, FileStat* out) const;

  // Reads up to `count` bytes starting at `offset`; returns bytes read.
  Err ReadAt(const std::string& path, int64_t offset, int64_t count, std::string* out) const;

  // Writes `data` at `offset`, extending the file as needed.
  Err WriteAt(const std::string& path, int64_t offset, std::string_view data);

  Err Truncate(const std::string& path, int64_t size);
  Err Unlink(const std::string& path);
  Err Rename(const std::string& from, const std::string& to);
  Err Mkdir(const std::string& path);

  // Permission bits; 0000 makes every open/stat fail with EACCES.
  Err Chmod(const std::string& path, uint32_t mode);
  uint32_t ModeOf(const std::string& path) const;

  // Whole-file convenience accessors (used by tests and recovery code).
  std::optional<std::string> ReadAll(const std::string& path) const;
  void WriteAll(const std::string& path, std::string_view data);

  // All regular files under `prefix`, sorted.
  std::vector<std::string> ListFiles(const std::string& prefix) const;

  int64_t SizeOf(const std::string& path) const;

  // Total bytes stored across all files.
  int64_t TotalBytes() const;

  // Drops all files and directories (a fresh disk).
  void Wipe();

 private:
  struct FileNode {
    std::string data;
    uint32_t mode = 0644;
  };

  bool ParentIsValid(const std::string& path) const;

  std::map<std::string, FileNode> files_;
  std::set<std::string> directories_;
};

}  // namespace rose

#endif  // SRC_OS_FS_H_
