#include "src/os/kernel.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rose {

std::string_view ProcStateName(ProcState state) {
  switch (state) {
    case ProcState::kRunning:
      return "running";
    case ProcState::kPaused:
      return "paused";
    case ProcState::kCrashed:
      return "crashed";
    case ProcState::kExited:
      return "exited";
  }
  return "unknown";
}

SimKernel::SimKernel(EventLoop* loop) : loop_(loop) {}

void SimKernel::RegisterNode(NodeId node, const std::string& ip) {
  node_ips_[node] = ip;
  ip_nodes_[ip] = node;
  if (disks_.find(node) == disks_.end()) {
    disks_[node] = std::make_unique<InMemoryFileSystem>();
  }
}

const std::string& SimKernel::IpOf(NodeId node) const {
  static const std::string kEmpty;
  auto it = node_ips_.find(node);
  return it == node_ips_.end() ? kEmpty : it->second;
}

NodeId SimKernel::NodeOfIp(const std::string& ip) const {
  auto it = ip_nodes_.find(ip);
  return it == ip_nodes_.end() ? kNoNode : it->second;
}

InMemoryFileSystem& SimKernel::DiskOf(NodeId node) {
  auto it = disks_.find(node);
  if (it == disks_.end()) {
    throw std::logic_error("DiskOf: unregistered node");
  }
  return *it->second;
}

void SimKernel::AddObserver(KernelObserver* observer) { observers_.push_back(observer); }

void SimKernel::RemoveObserver(KernelObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void SimKernel::AddInterposer(SyscallInterposer* interposer) {
  interposers_.push_back(interposer);
}

void SimKernel::RemoveInterposer(SyscallInterposer* interposer) {
  interposers_.erase(std::remove(interposers_.begin(), interposers_.end(), interposer),
                     interposers_.end());
}

Pid SimKernel::Spawn(NodeId node, const std::string& name, Pid parent) {
  const Pid pid = next_pid_++;
  Process proc;
  proc.pid = pid;
  proc.node = node;
  proc.name = name;
  proc.parent = parent;
  proc.state = ProcState::kRunning;
  proc.state_since = now();
  processes_[pid] = std::move(proc);
  for (KernelObserver* obs : observers_) {
    obs->OnProcessSpawned(now(), pid, node, parent);
  }
  return pid;
}

void SimKernel::SetState(Pid pid, ProcState state) {
  Process& proc = Proc(pid);
  if (proc.state == state) {
    return;
  }
  const ProcState from = proc.state;
  proc.state = state;
  proc.state_since = now();
  for (KernelObserver* obs : observers_) {
    obs->OnProcessStateChange(now(), pid, from, state);
  }
}

void SimKernel::Kill(Pid pid) {
  Process& proc = Proc(pid);
  if (proc.state == ProcState::kCrashed || proc.state == ProcState::kExited) {
    return;
  }
  if (proc.state == ProcState::kPaused && !proc.pauses.empty() &&
      proc.pauses.back().end == 0) {
    proc.pauses.back().end = now();
  }
  SetState(pid, ProcState::kCrashed);
  proc.interrupt_pending = true;
  proc.fds.clear();
}

void SimKernel::Pause(Pid pid, SimTime duration) {
  Process& proc = Proc(pid);
  if (proc.state != ProcState::kRunning) {
    return;
  }
  proc.pauses.push_back(PauseRecord{now(), 0});
  SetState(pid, ProcState::kPaused);
  loop_->ScheduleAfter(duration, [this, pid] { Resume(pid); });
}

void SimKernel::Resume(Pid pid) {
  Process& proc = Proc(pid);
  if (proc.state != ProcState::kPaused) {
    return;
  }
  if (!proc.pauses.empty() && proc.pauses.back().end == 0) {
    proc.pauses.back().end = now();
  }
  SetState(pid, ProcState::kRunning);
}

void SimKernel::Exit(Pid pid) {
  Process& proc = Proc(pid);
  if (proc.state == ProcState::kExited) {
    return;
  }
  proc.fds.clear();
  SetState(pid, ProcState::kExited);
}

bool SimKernel::IsAlive(Pid pid) const {
  auto it = processes_.find(pid);
  return it != processes_.end() && (it->second.state == ProcState::kRunning ||
                                    it->second.state == ProcState::kPaused);
}

ProcState SimKernel::StateOf(Pid pid) const { return Proc(pid).state; }

const Process* SimKernel::FindProcess(Pid pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

std::vector<Pid> SimKernel::AllPids() const {
  std::vector<Pid> pids;
  pids.reserve(processes_.size());
  for (const auto& [pid, proc] : processes_) {
    pids.push_back(pid);
  }
  return pids;
}

Process& SimKernel::Proc(Pid pid) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    throw std::logic_error("unknown pid");
  }
  return it->second;
}

const Process& SimKernel::Proc(Pid pid) const {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    throw std::logic_error("unknown pid");
  }
  return it->second;
}

void SimKernel::CheckInterrupt(Pid pid) {
  Process& proc = Proc(pid);
  if (proc.interrupt_pending) {
    proc.interrupt_pending = false;
    throw ProcessInterrupted{pid};
  }
}

SyscallResult SimKernel::DoSyscall(SyscallInvocation inv,
                                   const std::function<SyscallResult()>& body) {
  CheckInterrupt(inv.pid);
  for (KernelObserver* obs : observers_) {
    obs->OnSyscallEnter(now(), inv);
  }
  std::optional<SyscallResult> override_result;
  for (SyscallInterposer* interposer : interposers_) {
    override_result = interposer->MaybeOverride(inv);
    if (override_result.has_value()) {
      break;
    }
  }
  const SyscallResult result = override_result.has_value() ? *override_result : body();
  loop_->AdvanceBy(syscall_cost_);
  for (KernelObserver* obs : observers_) {
    obs->OnSyscallExit(now(), inv, result);
  }
  CheckInterrupt(inv.pid);
  return result;
}

int32_t SimKernel::AllocFd(Process& proc, OpenFile file) {
  const int32_t fd = proc.next_fd++;
  proc.fds[fd] = std::move(file);
  return fd;
}

SyscallResult SimKernel::Open(Pid pid, const std::string& path, OpenFlags flags) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kOpen;
  inv.path = path;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    InMemoryFileSystem& disk = DiskOf(proc.node);
    if (!disk.Exists(path)) {
      if (!flags.create) {
        return SyscallResult::Fail(Err::kENOENT);
      }
      const Err err = disk.Create(path, /*truncate=*/false);
      if (err != Err::kOk) {
        return SyscallResult::Fail(err);
      }
    } else {
      const uint32_t mode = disk.ModeOf(path);
      const uint32_t needed = flags.readonly ? 0400u : 0600u;
      if (!disk.IsDirectory(path) && (mode & needed) != needed) {
        return SyscallResult::Fail(Err::kEACCES);
      }
      if (flags.truncate) {
        disk.Truncate(path, 0);
      }
    }
    OpenFile file;
    file.path = path;
    file.readonly = flags.readonly;
    file.offset = flags.append ? disk.SizeOf(path) : 0;
    return SyscallResult::Ok(AllocFd(proc, std::move(file)));
  });
}

SyscallResult SimKernel::OpenAt(Pid pid, const std::string& path, OpenFlags flags) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kOpenAt;
  inv.path = path;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    InMemoryFileSystem& disk = DiskOf(proc.node);
    if (!disk.Exists(path)) {
      if (!flags.create) {
        return SyscallResult::Fail(Err::kENOENT);
      }
      const Err err = disk.Create(path, /*truncate=*/false);
      if (err != Err::kOk) {
        return SyscallResult::Fail(err);
      }
    } else {
      const uint32_t mode = disk.ModeOf(path);
      const uint32_t needed = flags.readonly ? 0400u : 0600u;
      if (!disk.IsDirectory(path) && (mode & needed) != needed) {
        return SyscallResult::Fail(Err::kEACCES);
      }
      if (flags.truncate) {
        disk.Truncate(path, 0);
      }
    }
    OpenFile file;
    file.path = path;
    file.readonly = flags.readonly;
    file.offset = flags.append ? disk.SizeOf(path) : 0;
    return SyscallResult::Ok(AllocFd(proc, std::move(file)));
  });
}

SyscallResult SimKernel::Close(Pid pid, int32_t fd) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kClose;
  inv.fd = fd;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    if (proc.fds.erase(fd) == 0) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    return SyscallResult::Ok(0);
  });
}

SyscallResult SimKernel::Read(Pid pid, int32_t fd, int64_t count, std::string* out) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kRead;
  inv.fd = fd;
  inv.length = count;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    auto it = proc.fds.find(fd);
    if (it == proc.fds.end()) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    OpenFile& file = it->second;
    if (file.is_socket) {
      // Socket payloads are delivered by the message fabric; the read models
      // the boundary crossing and always drains `count` bytes.
      return SyscallResult::Ok(count);
    }
    std::string data;
    const Err err = DiskOf(proc.node).ReadAt(file.path, file.offset, count, &data);
    if (err != Err::kOk) {
      return SyscallResult::Fail(err);
    }
    file.offset += static_cast<int64_t>(data.size());
    const auto bytes = static_cast<int64_t>(data.size());
    if (out != nullptr) {
      *out = std::move(data);
    }
    return SyscallResult::Ok(bytes);
  });
}

SyscallResult SimKernel::Write(Pid pid, int32_t fd, std::string_view data) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kWrite;
  inv.fd = fd;
  inv.length = static_cast<int64_t>(data.size());
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    auto it = proc.fds.find(fd);
    if (it == proc.fds.end()) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    OpenFile& file = it->second;
    if (file.is_socket) {
      return SyscallResult::Ok(static_cast<int64_t>(data.size()));
    }
    if (file.readonly) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    const Err err = DiskOf(proc.node).WriteAt(file.path, file.offset, data);
    if (err != Err::kOk) {
      return SyscallResult::Fail(err);
    }
    file.offset += static_cast<int64_t>(data.size());
    return SyscallResult::Ok(static_cast<int64_t>(data.size()));
  });
}

SyscallResult SimKernel::PRead(Pid pid, int32_t fd, int64_t offset, int64_t count,
                               std::string* out) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kPRead;
  inv.fd = fd;
  inv.length = count;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    auto it = proc.fds.find(fd);
    if (it == proc.fds.end()) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    std::string data;
    const Err err = DiskOf(proc.node).ReadAt(it->second.path, offset, count, &data);
    if (err != Err::kOk) {
      return SyscallResult::Fail(err);
    }
    const auto bytes = static_cast<int64_t>(data.size());
    if (out != nullptr) {
      *out = std::move(data);
    }
    return SyscallResult::Ok(bytes);
  });
}

SyscallResult SimKernel::PWrite(Pid pid, int32_t fd, int64_t offset, std::string_view data) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kPWrite;
  inv.fd = fd;
  inv.length = static_cast<int64_t>(data.size());
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    auto it = proc.fds.find(fd);
    if (it == proc.fds.end()) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    const Err err = DiskOf(proc.node).WriteAt(it->second.path, offset, data);
    if (err != Err::kOk) {
      return SyscallResult::Fail(err);
    }
    return SyscallResult::Ok(static_cast<int64_t>(data.size()));
  });
}

SyscallResult SimKernel::Fsync(Pid pid, int32_t fd) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kFsync;
  inv.fd = fd;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    if (proc.fds.find(fd) == proc.fds.end()) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    return SyscallResult::Ok(0);
  });
}

SyscallResult SimKernel::Stat(Pid pid, const std::string& path, FileStat* out) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kStat;
  inv.path = path;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    FileStat st;
    const Err err = DiskOf(proc.node).Stat(path, &st);
    if (err != Err::kOk) {
      return SyscallResult::Fail(err);
    }
    if (out != nullptr) {
      *out = st;
    }
    return SyscallResult::Ok(st.size);
  });
}

SyscallResult SimKernel::Fstat(Pid pid, int32_t fd, FileStat* out) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kFstat;
  inv.fd = fd;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    auto it = proc.fds.find(fd);
    if (it == proc.fds.end()) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    if (it->second.is_socket) {
      if (out != nullptr) {
        *out = FileStat{0, 0600, false};
      }
      return SyscallResult::Ok(0);
    }
    FileStat st;
    const Err err = DiskOf(proc.node).Stat(it->second.path, &st);
    if (err != Err::kOk) {
      return SyscallResult::Fail(err);
    }
    if (out != nullptr) {
      *out = st;
    }
    return SyscallResult::Ok(st.size);
  });
}

SyscallResult SimKernel::Unlink(Pid pid, const std::string& path) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kUnlink;
  inv.path = path;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    const Err err = DiskOf(proc.node).Unlink(path);
    return err == Err::kOk ? SyscallResult::Ok(0) : SyscallResult::Fail(err);
  });
}

SyscallResult SimKernel::Rename(Pid pid, const std::string& from, const std::string& to) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kRename;
  inv.path = from;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    const Err err = DiskOf(proc.node).Rename(from, to);
    return err == Err::kOk ? SyscallResult::Ok(0) : SyscallResult::Fail(err);
  });
}

SyscallResult SimKernel::Mkdir(Pid pid, const std::string& path) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kMkdir;
  inv.path = path;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    const Err err = DiskOf(proc.node).Mkdir(path);
    return err == Err::kOk ? SyscallResult::Ok(0) : SyscallResult::Fail(err);
  });
}

SyscallResult SimKernel::Readlink(Pid pid, const std::string& path) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kReadlink;
  inv.path = path;
  return DoSyscall(inv, [&]() -> SyscallResult {
    // The simulated filesystems carry no symlinks; readlink models the
    // frequent benign EINVAL/ENOENT failures real runtimes produce.
    Process& proc = Proc(pid);
    if (!DiskOf(proc.node).Exists(path)) {
      return SyscallResult::Fail(Err::kENOENT);
    }
    return SyscallResult::Fail(Err::kEINVAL);
  });
}

SyscallResult SimKernel::Dup(Pid pid, int32_t fd) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kDup;
  inv.fd = fd;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    auto it = proc.fds.find(fd);
    if (it == proc.fds.end()) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    return SyscallResult::Ok(AllocFd(proc, it->second));
  });
}

SyscallResult SimKernel::SocketOpen(Pid pid) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kSocket;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    OpenFile file;
    file.path = "sock:";
    file.is_socket = true;
    return SyscallResult::Ok(AllocFd(proc, std::move(file)));
  });
}

SyscallResult SimKernel::Connect(Pid pid, const std::string& dst_ip) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kConnect;
  inv.remote_ip = dst_ip;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    const std::string& src_ip = IpOf(proc.node);
    if (reachability_ != nullptr && !reachability_->IsReachable(src_ip, dst_ip)) {
      return SyscallResult::Fail(Err::kETIMEDOUT);
    }
    OpenFile file;
    file.path = "sock:" + dst_ip;
    file.is_socket = true;
    return SyscallResult::Ok(AllocFd(proc, std::move(file)));
  });
}

SyscallResult SimKernel::Accept(Pid pid, const std::string& remote_ip) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kAccept;
  inv.remote_ip = remote_ip;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    OpenFile file;
    file.path = "sock:" + remote_ip;
    file.is_socket = true;
    return SyscallResult::Ok(AllocFd(proc, std::move(file)));
  });
}

SyscallResult SimKernel::SendTo(Pid pid, int32_t fd, int64_t length) {
  SyscallInvocation inv;
  inv.pid = pid;
  inv.sys = Sys::kSend;
  inv.fd = fd;
  inv.length = length;
  return DoSyscall(inv, [&]() -> SyscallResult {
    Process& proc = Proc(pid);
    auto it = proc.fds.find(fd);
    if (it == proc.fds.end() || !it->second.is_socket) {
      return SyscallResult::Fail(Err::kEBADF);
    }
    return SyscallResult::Ok(length);
  });
}

std::string SimKernel::PathOfFd(Pid pid, int32_t fd) const {
  const Process* proc = FindProcess(pid);
  if (proc == nullptr) {
    return "";
  }
  auto it = proc->fds.find(fd);
  return it == proc->fds.end() ? "" : it->second.path;
}

void SimKernel::FunctionEnter(Pid pid, int32_t function_id) {
  CheckInterrupt(pid);
  for (KernelObserver* obs : observers_) {
    obs->OnFunctionEnter(now(), pid, function_id);
  }
  CheckInterrupt(pid);
}

void SimKernel::FunctionOffset(Pid pid, int32_t function_id, int32_t offset) {
  CheckInterrupt(pid);
  for (KernelObserver* obs : observers_) {
    obs->OnFunctionOffset(now(), pid, function_id, offset);
  }
  CheckInterrupt(pid);
}

}  // namespace rose
