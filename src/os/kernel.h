// The simulated kernel: syscall boundary, processes, per-node disks.
//
// This is the substrate standing in for Linux + eBPF in the paper:
//  - KernelObserver::OnSyscallEnter/Exit  ~ sys_enter / sys_exit tracepoints
//  - SyscallInterposer::MaybeOverride     ~ kprobe + bpf_override_return
//  - KernelObserver::OnFunctionEnter/Offset ~ uprobes at symbol / offset
//  - Kill / Pause                          ~ bpf_send_signal from kernel space
//
// All guest I/O flows through DoSyscall(), which runs the hook chain in a
// fixed order: enter-observers, interposers (first override wins), the
// syscall body (skipped when overridden), exit-observers, then interrupt
// delivery. Crash signals injected by an observer during the exit hook
// therefore land at exactly the same execution point every run — the paper's
// precise-injection property.
#ifndef SRC_OS_KERNEL_H_
#define SRC_OS_KERNEL_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/os/fs.h"
#include "src/os/process.h"
#include "src/os/syscall.h"
#include "src/sim/event_loop.h"

namespace rose {

// Observation interface (tracers, executors). All methods have no-op defaults.
class KernelObserver {
 public:
  virtual ~KernelObserver() = default;
  virtual void OnSyscallEnter(SimTime /*now*/, const SyscallInvocation& /*inv*/) {}
  virtual void OnSyscallExit(SimTime /*now*/, const SyscallInvocation& /*inv*/,
                             const SyscallResult& /*result*/) {}
  virtual void OnFunctionEnter(SimTime /*now*/, Pid /*pid*/, int32_t /*function_id*/) {}
  virtual void OnFunctionOffset(SimTime /*now*/, Pid /*pid*/, int32_t /*function_id*/,
                                int32_t /*offset*/) {}
  virtual void OnProcessSpawned(SimTime /*now*/, Pid /*pid*/, NodeId /*node*/, Pid /*parent*/) {}
  virtual void OnProcessStateChange(SimTime /*now*/, Pid /*pid*/, ProcState /*from*/,
                                    ProcState /*to*/) {}
};

// Return-value override interface (the bpf_override_return analogue).
class SyscallInterposer {
 public:
  virtual ~SyscallInterposer() = default;
  // Returning a result fails the syscall at entry: the body never runs.
  virtual std::optional<SyscallResult> MaybeOverride(const SyscallInvocation& inv) = 0;
};

// Reachability oracle used by connect(); implemented by the network module.
class NetReachability {
 public:
  virtual ~NetReachability() = default;
  virtual bool IsReachable(const std::string& src_ip, const std::string& dst_ip) = 0;
};

class SimKernel {
 public:
  explicit SimKernel(EventLoop* loop);
  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  EventLoop& loop() { return *loop_; }
  SimTime now() const { return loop_->now(); }

  // --- Topology -------------------------------------------------------------
  void RegisterNode(NodeId node, const std::string& ip);
  const std::string& IpOf(NodeId node) const;
  NodeId NodeOfIp(const std::string& ip) const;
  InMemoryFileSystem& DiskOf(NodeId node);

  void set_reachability(NetReachability* reachability) { reachability_ = reachability; }

  // --- Instrumentation ------------------------------------------------------
  void AddObserver(KernelObserver* observer);
  void RemoveObserver(KernelObserver* observer);
  void AddInterposer(SyscallInterposer* interposer);
  void RemoveInterposer(SyscallInterposer* interposer);

  // --- Process management ---------------------------------------------------
  Pid Spawn(NodeId node, const std::string& name, Pid parent = kNoPid);
  // Crash signal from kernel space; delivered at the victim's next (or
  // current) kernel boundary.
  void Kill(Pid pid);
  // Stop signal; the process resumes automatically after `duration`.
  void Pause(Pid pid, SimTime duration);
  void Resume(Pid pid);
  void Exit(Pid pid);

  bool IsAlive(Pid pid) const;
  ProcState StateOf(Pid pid) const;
  const Process* FindProcess(Pid pid) const;
  // Pids of all processes ever spawned (the procfs analogue).
  std::vector<Pid> AllPids() const;

  // --- Syscalls (invoked by guest code) --------------------------------------
  struct OpenFlags {
    bool create = false;
    bool truncate = false;
    bool readonly = false;
    bool append = false;
  };
  SyscallResult Open(Pid pid, const std::string& path, OpenFlags flags);
  // openat: identical semantics, distinct syscall id (matches the bugs that
  // key on openat specifically).
  SyscallResult OpenAt(Pid pid, const std::string& path, OpenFlags flags);
  SyscallResult Close(Pid pid, int32_t fd);
  SyscallResult Read(Pid pid, int32_t fd, int64_t count, std::string* out = nullptr);
  SyscallResult Write(Pid pid, int32_t fd, std::string_view data);
  SyscallResult PRead(Pid pid, int32_t fd, int64_t offset, int64_t count,
                      std::string* out = nullptr);
  SyscallResult PWrite(Pid pid, int32_t fd, int64_t offset, std::string_view data);
  SyscallResult Fsync(Pid pid, int32_t fd);
  SyscallResult Stat(Pid pid, const std::string& path, FileStat* out = nullptr);
  SyscallResult Fstat(Pid pid, int32_t fd, FileStat* out = nullptr);
  SyscallResult Unlink(Pid pid, const std::string& path);
  SyscallResult Rename(Pid pid, const std::string& from, const std::string& to);
  SyscallResult Mkdir(Pid pid, const std::string& path);
  SyscallResult Readlink(Pid pid, const std::string& path);
  SyscallResult Dup(Pid pid, int32_t fd);
  SyscallResult SocketOpen(Pid pid);
  SyscallResult Connect(Pid pid, const std::string& dst_ip);
  SyscallResult Accept(Pid pid, const std::string& remote_ip);
  // send() on a connected socket fd. The byte payload itself is delivered by
  // the network fabric above the kernel; the syscall models the boundary
  // crossing (and is the injection point for send failures).
  SyscallResult SendTo(Pid pid, int32_t fd, int64_t length);

  // Path of an open fd (empty when unknown) — used by tests and the executor.
  std::string PathOfFd(Pid pid, int32_t fd) const;

  // --- Uprobe boundary (called by the guest framework) -----------------------
  void FunctionEnter(Pid pid, int32_t function_id);
  void FunctionOffset(Pid pid, int32_t function_id, int32_t offset);

  // Throws ProcessInterrupted if a crash signal is pending for `pid`.
  void CheckInterrupt(Pid pid);

  // Virtual cost accounting: each syscall advances the clock a little so
  // handlers occupy nonzero time and traces have realistic spacing.
  void set_syscall_cost(SimTime cost) { syscall_cost_ = cost; }

 private:
  Process& Proc(Pid pid);
  const Process& Proc(Pid pid) const;
  SyscallResult DoSyscall(SyscallInvocation inv,
                          const std::function<SyscallResult()>& body);
  int32_t AllocFd(Process& proc, OpenFile file);
  void SetState(Pid pid, ProcState state);

  EventLoop* loop_;
  NetReachability* reachability_ = nullptr;
  SimTime syscall_cost_ = Micros(2);
  Pid next_pid_ = 100;
  std::map<Pid, Process> processes_;
  std::map<NodeId, std::string> node_ips_;
  std::map<std::string, NodeId> ip_nodes_;
  std::map<NodeId, std::unique_ptr<InMemoryFileSystem>> disks_;
  std::vector<KernelObserver*> observers_;
  std::vector<SyscallInterposer*> interposers_;
};

}  // namespace rose

#endif  // SRC_OS_KERNEL_H_
