// Simulated processes.
//
// A process belongs to a node (one main process per node in the guest
// systems, plus optional children), owns a file-descriptor table, and can be
// crashed or paused by the executor exactly at a kernel boundary — the
// simulated counterpart of bpf_send_signal.
#ifndef SRC_OS_PROCESS_H_
#define SRC_OS_PROCESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/os/syscall.h"
#include "src/sim/time.h"

namespace rose {

using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

enum class ProcState : int8_t {
  kRunning = 0,
  kPaused,   // bpf_send_signal(SIGSTOP) analogue; the "waiting" state in the paper.
  kCrashed,  // bpf_send_signal(SIGKILL) analogue.
  kExited,   // Clean shutdown.
};

std::string_view ProcStateName(ProcState state);

// An open file-descriptor entry. Sockets are fds whose path is "sock:<ip>".
struct OpenFile {
  std::string path;
  int64_t offset = 0;
  bool readonly = false;
  bool is_socket = false;
};

struct PauseRecord {
  SimTime start = 0;
  SimTime end = 0;  // 0 while ongoing.
};

struct Process {
  Pid pid = kNoPid;
  NodeId node = kNoNode;
  std::string name;
  Pid parent = kNoPid;
  ProcState state = ProcState::kRunning;
  SimTime state_since = 0;
  // Set when a crash signal has been delivered but the victim has not yet
  // reached a kernel boundary where the unwind can happen.
  bool interrupt_pending = false;
  std::map<int32_t, OpenFile> fds;
  int32_t next_fd = 3;
  std::vector<PauseRecord> pauses;
};

// Thrown by the kernel at a hook point when the executing process has been
// crashed; the guest framework catches it at the event-handler boundary so
// partially-completed multi-syscall updates stay exactly as durable as the
// syscalls already executed.
struct ProcessInterrupted {
  Pid pid = kNoPid;
};

}  // namespace rose

#endif  // SRC_OS_PROCESS_H_
