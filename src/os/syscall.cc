#include "src/os/syscall.h"

#include <array>

namespace rose {

namespace {

constexpr std::array<std::string_view, kNumSyscalls> kSysNames = {
    "open",  "openat", "close",    "read", "write",  "pread",   "pwrite",
    "fsync", "stat",   "fstat",    "unlink", "rename", "mkdir", "readlink",
    "dup",   "socket", "connect",  "accept", "send",   "recv",  "listen",
};

}  // namespace

std::string_view SysName(Sys sys) {
  const auto index = static_cast<size_t>(sys);
  if (index >= kSysNames.size()) {
    return "unknown";
  }
  return kSysNames[index];
}

bool SysFromName(std::string_view name, Sys* out) {
  for (size_t i = 0; i < kSysNames.size(); i++) {
    if (kSysNames[i] == name) {
      *out = static_cast<Sys>(i);
      return true;
    }
  }
  return false;
}

bool SysTakesPath(Sys sys) {
  switch (sys) {
    case Sys::kOpen:
    case Sys::kOpenAt:
    case Sys::kStat:
    case Sys::kUnlink:
    case Sys::kRename:
    case Sys::kMkdir:
    case Sys::kReadlink:
      return true;
    default:
      return false;
  }
}

bool SysTakesFd(Sys sys) {
  switch (sys) {
    case Sys::kClose:
    case Sys::kRead:
    case Sys::kWrite:
    case Sys::kPRead:
    case Sys::kPWrite:
    case Sys::kFsync:
    case Sys::kFstat:
    case Sys::kDup:
      return true;
    default:
      return false;
  }
}

}  // namespace rose
