// Simulated system-call identifiers and invocation records.
//
// The SimKernel exposes the same observable surface Rose instruments on
// Linux: a syscall id, the invoking pid, the fd or pathname operated on, and
// the return value / errno. Tracers subscribe to the sys_enter / sys_exit
// boundary; the executor's interposer can override the return value before
// the syscall body executes (the bpf_override_return equivalent).
#ifndef SRC_OS_SYSCALL_H_
#define SRC_OS_SYSCALL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/os/errno.h"

namespace rose {

using Pid = int32_t;
inline constexpr Pid kNoPid = -1;

enum class Sys : int32_t {
  kOpen = 0,
  kOpenAt,
  kClose,
  kRead,
  kWrite,
  kPRead,
  kPWrite,
  kFsync,
  kStat,
  kFstat,
  kUnlink,
  kRename,
  kMkdir,
  kReadlink,
  kDup,
  kSocket,
  kConnect,
  kAccept,
  kSend,
  kRecv,
  kListen,
  kNumSyscalls,
};

inline constexpr int kNumSyscalls = static_cast<int>(Sys::kNumSyscalls);

// Returns the syscall name, e.g. "openat".
std::string_view SysName(Sys sys);

// Parses a syscall name; returns false when unknown.
bool SysFromName(std::string_view name, Sys* out);

// True for syscalls whose primary argument is a pathname (the tracer records
// the name directly instead of resolving an fd).
bool SysTakesPath(Sys sys);

// True for syscalls whose primary argument is a file descriptor.
bool SysTakesFd(Sys sys);

// A single syscall invocation as seen at the kernel boundary.
struct SyscallInvocation {
  Pid pid = kNoPid;
  Sys sys = Sys::kOpen;
  // Pathname argument for path-based syscalls (open/openat/stat/...).
  std::string path;
  // File-descriptor argument for fd-based syscalls; -1 when not applicable.
  int32_t fd = -1;
  // Destination/source IP for network syscalls; empty otherwise.
  std::string remote_ip;
  // Payload size for read/write/send/recv.
  int64_t length = 0;
};

// Result of a syscall: `value` is the raw return (>= 0) on success; on
// failure `value` is -1 and `err` carries the errno.
struct SyscallResult {
  int64_t value = 0;
  Err err = Err::kOk;

  bool ok() const { return err == Err::kOk; }

  static SyscallResult Ok(int64_t value = 0) { return SyscallResult{value, Err::kOk}; }
  static SyscallResult Fail(Err err) { return SyscallResult{-1, err}; }
};

}  // namespace rose

#endif  // SRC_OS_SYSCALL_H_
