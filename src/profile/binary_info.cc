#include "src/profile/binary_info.h"

#include <algorithm>

namespace rose {

int32_t BinaryInfo::RegisterFunction(const std::string& name, const std::string& source_file,
                                     std::vector<OffsetInfo> offsets) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  const auto id = static_cast<int32_t>(functions_.size());
  FunctionInfo info;
  info.id = id;
  info.name = name;
  info.source_file = source_file;
  info.offsets = std::move(offsets);
  functions_.push_back(std::move(info));
  by_name_[name] = id;
  return id;
}

const FunctionInfo* BinaryInfo::Find(int32_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= functions_.size()) {
    return nullptr;
  }
  return &functions_[static_cast<size_t>(id)];
}

const FunctionInfo* BinaryInfo::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : Find(it->second);
}

std::string BinaryInfo::NameOf(int32_t id) const {
  const FunctionInfo* info = Find(id);
  return info == nullptr ? "?" : info->name;
}

std::vector<int32_t> BinaryInfo::FunctionsInFiles(const std::set<std::string>& files) const {
  std::vector<int32_t> out;
  for (const FunctionInfo& info : functions_) {
    if (files.count(info.source_file) != 0) {
      out.push_back(info.id);
    }
  }
  return out;
}

std::vector<OffsetInfo> BinaryInfo::PrioritizedOffsets(int32_t id) const {
  const FunctionInfo* info = Find(id);
  if (info == nullptr) {
    return {};
  }
  std::vector<OffsetInfo> out = info->offsets;
  std::stable_sort(out.begin(), out.end(), [](const OffsetInfo& a, const OffsetInfo& b) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  return out;
}

}  // namespace rose
