// Simulated static binary analysis (paper §5.1, §5.3).
//
// On Linux, Rose extracts function symbols and offsets with readelf /
// addr2line / objdump. In the simulator each guest system registers its
// "binary": the functions it will announce through uprobes, the source file
// each symbol lives in, and the interesting offsets inside each function,
// classified the way Level 3 prioritizes them (syscall call sites first,
// then call sites to other functions, then remaining offsets).
#ifndef SRC_PROFILE_BINARY_INFO_H_
#define SRC_PROFILE_BINARY_INFO_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/os/syscall.h"

namespace rose {

enum class OffsetKind : int8_t {
  kSyscallCallSite = 0,  // Highest Level-3 priority.
  kCallSite,
  kOther,
};

struct OffsetInfo {
  int32_t offset = 0;
  OffsetKind kind = OffsetKind::kOther;
  // Which syscall the call site invokes (valid when kind == kSyscallCallSite).
  Sys sys = Sys::kOpen;
};

struct FunctionInfo {
  int32_t id = -1;
  std::string name;
  std::string source_file;
  std::vector<OffsetInfo> offsets;
};

class BinaryInfo {
 public:
  // Registers a function symbol; returns its id (stable registration order).
  int32_t RegisterFunction(const std::string& name, const std::string& source_file,
                           std::vector<OffsetInfo> offsets = {});

  const FunctionInfo* Find(int32_t id) const;
  const FunctionInfo* FindByName(const std::string& name) const;
  std::string NameOf(int32_t id) const;

  // Function ids whose source file is in `files` — the developer-provided
  // "list of key system files" from which monitoring candidates are drawn.
  std::vector<int32_t> FunctionsInFiles(const std::set<std::string>& files) const;

  const std::vector<FunctionInfo>& functions() const { return functions_; }

  // Level-3 offset exploration order for one function: syscall call sites,
  // then call sites, then other offsets (each group in offset order).
  std::vector<OffsetInfo> PrioritizedOffsets(int32_t id) const;

 private:
  std::vector<FunctionInfo> functions_;
  std::map<std::string, int32_t> by_name_;
};

}  // namespace rose

#endif  // SRC_PROFILE_BINARY_INFO_H_
