#include "src/profile/profiler.h"
#include <algorithm>

#include "src/common/strings.h"

namespace rose {

std::string ScfSignature(Sys sys, std::string_view filename, Err err) {
  std::string out(SysName(sys));
  out += '|';
  out.append(filename);
  out += '|';
  out.append(ErrName(err));
  return out;
}

Profiler::Profiler(SimKernel* kernel, const BinaryInfo* binary, ProfilerConfig config)
    : kernel_(kernel), binary_(binary), config_(std::move(config)) {
  for (int32_t id : binary_->FunctionsInFiles(config_.relevant_files)) {
    candidates_.insert(id);
    function_counts_[id] = 0;
  }
}

Profiler::~Profiler() { Detach(); }

void Profiler::Attach() {
  if (attached_) {
    return;
  }
  attached_ = true;
  started_at_ = kernel_->now();
  kernel_->AddObserver(this);
}

void Profiler::Detach() {
  if (!attached_) {
    return;
  }
  attached_ = false;
  kernel_->RemoveObserver(this);
}

void Profiler::OnSyscallExit(SimTime /*now*/, const SyscallInvocation& inv,
                             const SyscallResult& result) {
  syscall_counts_[static_cast<int32_t>(inv.sys)]++;
  if (!result.ok()) {
    const std::string filename = SysTakesPath(inv.sys) ? inv.path : "";
    benign_scf_.insert(ScfSignature(inv.sys, filename, result.err));
    // Also record the input-less form so fd-based failures whose path
    // resolution differs across runs still match.
    benign_scf_.insert(ScfSignature(inv.sys, "", result.err));
  }
}

void Profiler::OnFunctionEnter(SimTime /*now*/, Pid pid, int32_t function_id) {
  auto it = function_counts_.find(function_id);
  if (it != function_counts_.end()) {
    it->second++;
    const Process* proc = kernel_->FindProcess(pid);
    if (proc != nullptr) {
      function_node_counts_[function_id][proc->node]++;
    }
  }
}

void Profiler::AbsorbCleanTrace(TraceView trace) {
  for (const TraceEvent& event : trace) {
    if (event.type == EventType::kSCF) {
      const auto& scf = event.scf();
      benign_scf_.insert(ScfSignature(scf.sys, trace.str(scf.filename), scf.err));
      benign_scf_.insert(ScfSignature(scf.sys, "", scf.err));
    } else if (event.type == EventType::kND) {
      benign_nd_.insert({std::string(trace.str(event.nd().src_ip)),
                         std::string(trace.str(event.nd().dst_ip))});
    }
  }
}

Profile Profiler::BuildProfile() const {
  Profile profile;
  profile.function_counts = function_counts_;
  profile.syscall_counts = syscall_counts_;
  profile.benign_scf_signatures = benign_scf_;
  profile.benign_nd_pairs = benign_nd_;
  profile.duration = kernel_->now() - started_at_;
  const double seconds = ToSeconds(profile.duration);
  for (int32_t id : candidates_) {
    // Classification is by the busiest single node's rate: every node runs
    // its own tracer, so the cost of a uprobe is per node.
    uint64_t max_node_count = 0;
    auto per_node = function_node_counts_.find(id);
    if (per_node != function_node_counts_.end()) {
      for (const auto& [node, count] : per_node->second) {
        max_node_count = std::max(max_node_count, count);
      }
    }
    const double rate = seconds > 0 ? static_cast<double>(max_node_count) / seconds : 0.0;
    // Functions never observed are kept: the paper's intuition is that EFIBs
    // live on rarely-executed paths, and a function absent from the clean run
    // is the extreme case.
    if (rate <= config_.frequent_calls_per_second) {
      profile.monitored_functions.insert(id);
    }
  }
  return profile;
}

}  // namespace rose
