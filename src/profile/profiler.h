// The profiling phase (paper §4.2).
//
// Runs as a kernel observer during a failure-free execution of the target
// under a representative workload and produces a Profile:
//   - infrequent functions (candidates from developer-listed source files,
//     minus anything invoked more often than the frequency threshold),
//     which become the tracing phase's AF monitoring sites;
//   - per-syscall invocation counts (used by Level 2's input-less sweeps);
//   - benign fault signatures: SCFs and NDs that occur even without faults,
//     which the diagnosis phase subtracts from the buggy trace (FR%).
#ifndef SRC_PROFILE_PROFILER_H_
#define SRC_PROFILE_PROFILER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/os/kernel.h"
#include "src/profile/binary_info.h"
#include "src/trace/event.h"

namespace rose {

struct ProfilerConfig {
  // Functions invoked more often than this (calls/second) are discarded.
  double frequent_calls_per_second = 2.0;
  // Developer-provided source files that control critical functionality.
  std::set<std::string> relevant_files;
};

// Canonical signature of a benign SCF: "sys|filename|errno".
std::string ScfSignature(Sys sys, std::string_view filename, Err err);

struct Profile {
  // Monitoring sites for the tracing phase.
  std::set<int32_t> monitored_functions;
  // All candidate functions with their observed invocation counts.
  std::map<int32_t, uint64_t> function_counts;
  // Syscall frequency over the profiling run.
  std::map<int32_t, uint64_t> syscall_counts;
  // Faults observed during the failure-free run.
  std::set<std::string> benign_scf_signatures;
  std::set<std::pair<std::string, std::string>> benign_nd_pairs;
  // Profiling run length (virtual).
  SimTime duration = 0;

  uint64_t SyscallCount(Sys sys) const {
    auto it = syscall_counts.find(static_cast<int32_t>(sys));
    return it == syscall_counts.end() ? 0 : it->second;
  }
};

// Observer half of the profiler: attach to the kernel (and feed it the clean
// trace for benign-fault extraction), then call BuildProfile().
class Profiler : public KernelObserver {
 public:
  Profiler(SimKernel* kernel, const BinaryInfo* binary, ProfilerConfig config);
  ~Profiler() override;

  void Attach();
  void Detach();

  // Folds a clean-run trace (from a Rose tracer on the same run) into the
  // benign-fault baseline.
  void AbsorbCleanTrace(TraceView trace);

  // Classifies candidates into frequent/infrequent using the elapsed virtual
  // time since Attach() and returns the finished profile.
  Profile BuildProfile() const;

  // --- KernelObserver --------------------------------------------------------
  void OnSyscallExit(SimTime now, const SyscallInvocation& inv,
                     const SyscallResult& result) override;
  void OnFunctionEnter(SimTime now, Pid pid, int32_t function_id) override;

 private:
  SimKernel* kernel_;
  const BinaryInfo* binary_;
  ProfilerConfig config_;
  bool attached_ = false;
  SimTime started_at_ = 0;
  std::set<int32_t> candidates_;
  std::map<int32_t, uint64_t> function_counts_;
  // Per-node invocation counts: the frequency threshold is per node, like
  // the per-node tracers in the paper's deployment.
  std::map<int32_t, std::map<NodeId, uint64_t>> function_node_counts_;
  std::map<int32_t, uint64_t> syscall_counts_;
  std::set<std::string> benign_scf_;
  std::set<std::pair<std::string, std::string>> benign_nd_;
};

}  // namespace rose

#endif  // SRC_PROFILE_PROFILER_H_
