#include "src/schedule/fault_schedule.h"

#include <map>

#include "src/common/strings.h"

namespace rose {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSyscallFailure:
      return "syscall";
    case FaultKind::kProcessCrash:
      return "crash";
    case FaultKind::kProcessPause:
      return "pause";
    case FaultKind::kNetworkPartition:
      return "partition";
  }
  return "unknown";
}

Condition Condition::AfterFault(int32_t index) {
  Condition c;
  c.kind = Kind::kAfterFault;
  c.fault_index = index;
  return c;
}

Condition Condition::FunctionEnter(int32_t function_id) {
  Condition c;
  c.kind = Kind::kFunctionEnter;
  c.function_id = function_id;
  return c;
}

Condition Condition::FunctionOffset(int32_t function_id, int32_t offset) {
  Condition c;
  c.kind = Kind::kFunctionOffset;
  c.function_id = function_id;
  c.offset = offset;
  return c;
}

Condition Condition::SyscallCount(Sys sys, const std::string& path_filter, int32_t count) {
  Condition c;
  c.kind = Kind::kSyscallCount;
  c.sys = sys;
  c.path_filter = path_filter;
  c.count = count;
  return c;
}

Condition Condition::AtTime(SimTime at) {
  Condition c;
  c.kind = Kind::kAtTime;
  c.at_time = at;
  return c;
}

Condition Condition::ExecutionIndex(Sys sys, uint64_t ctx_digest, int32_t seq,
                                    const std::string& path_filter) {
  Condition c;
  c.kind = Kind::kExecutionIndex;
  c.sys = sys;
  c.ctx_digest = ctx_digest;
  c.count = seq;
  c.path_filter = path_filter;
  return c;
}

std::string Condition::ToString() const {
  switch (kind) {
    case Kind::kAfterFault:
      return StrFormat("after_fault(%d)", fault_index);
    case Kind::kFunctionEnter:
      return StrFormat("function(%d)", function_id);
    case Kind::kFunctionOffset:
      return StrFormat("offset(%d+%d)", function_id, offset);
    case Kind::kSyscallCount:
      return StrFormat("syscall_count(%s,%s,%d)", std::string(SysName(sys)).c_str(),
                       path_filter.c_str(), count);
    case Kind::kAtTime:
      return StrFormat("at_time(%lld)", static_cast<long long>(at_time));
    case Kind::kExecutionIndex:
      return StrFormat("exec_index(%s,%s,%llx,%d)", std::string(SysName(sys)).c_str(),
                       path_filter.c_str(), static_cast<unsigned long long>(ctx_digest),
                       count);
  }
  return "?";
}

std::string ScheduledFault::Label() const {
  switch (kind) {
    case FaultKind::kSyscallFailure:
      return StrFormat("SCF(%s)", std::string(SysName(syscall.sys)).c_str());
    case FaultKind::kProcessCrash:
      return "PS(Crash)";
    case FaultKind::kProcessPause:
      return "PS(Pause)";
    case FaultKind::kNetworkPartition:
      return "ND";
  }
  return "?";
}

std::string FaultSchedule::Summary() const {
  // Collapse runs of identical labels into "label*N".
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < faults.size()) {
    const std::string label = faults[i].Label();
    size_t j = i;
    while (j < faults.size() && faults[j].Label() == label) {
      j++;
    }
    const size_t run = j - i;
    parts.push_back(run > 1 ? StrFormat("%s*%zu", label.c_str(), run) : label);
    i = j;
  }
  return Join(parts, " + ");
}

std::string FaultSchedule::ToYaml() const {
  std::string out = "schedule:\n";
  out += StrFormat("  name: %s\n", name.c_str());
  out += "  faults:\n";
  for (const ScheduledFault& fault : faults) {
    out += StrFormat("    - kind: %s\n", std::string(FaultKindName(fault.kind)).c_str());
    out += StrFormat("      node: %d\n", fault.target_node);
    switch (fault.kind) {
      case FaultKind::kSyscallFailure:
        out += StrFormat("      sys: %s\n", std::string(SysName(fault.syscall.sys)).c_str());
        out += StrFormat("      errno: %s\n", std::string(ErrName(fault.syscall.err)).c_str());
        if (!fault.syscall.path_filter.empty()) {
          out += StrFormat("      path: %s\n", fault.syscall.path_filter.c_str());
        }
        out += StrFormat("      nth: %d\n", fault.syscall.nth);
        out += StrFormat("      persistent: %s\n", fault.syscall.persistent ? "true" : "false");
        break;
      case FaultKind::kProcessPause:
        out += StrFormat("      duration: %lld\n",
                         static_cast<long long>(fault.process.pause_duration));
        break;
      case FaultKind::kProcessCrash:
        break;
      case FaultKind::kNetworkPartition:
        out += StrFormat("      ips_in: %s\n", Join(fault.network.group_a, ",").c_str());
        out += StrFormat("      ips_out: %s\n", Join(fault.network.group_b, ",").c_str());
        out += StrFormat("      duration: %lld\n",
                         static_cast<long long>(fault.network.duration));
        break;
    }
    if (!fault.conditions.empty()) {
      out += "      conditions:\n";
      for (const Condition& cond : fault.conditions) {
        switch (cond.kind) {
          case Condition::Kind::kAfterFault:
            out += StrFormat("        - type: after_fault\n          fault: %d\n",
                             cond.fault_index);
            break;
          case Condition::Kind::kFunctionEnter:
            out += StrFormat("        - type: function\n          fid: %d\n",
                             cond.function_id);
            break;
          case Condition::Kind::kFunctionOffset:
            out += StrFormat("        - type: offset\n          fid: %d\n          off: %d\n",
                             cond.function_id, cond.offset);
            break;
          case Condition::Kind::kSyscallCount:
            out += StrFormat(
                "        - type: syscall_count\n          sys: %s\n          count: %d\n",
                std::string(SysName(cond.sys)).c_str(), cond.count);
            if (!cond.path_filter.empty()) {
              out += StrFormat("          path: %s\n", cond.path_filter.c_str());
            }
            break;
          case Condition::Kind::kAtTime:
            out += StrFormat("        - type: at_time\n          time: %lld\n",
                             static_cast<long long>(cond.at_time));
            break;
          case Condition::Kind::kExecutionIndex:
            out += StrFormat(
                "        - type: exec_index\n          sys: %s\n          ctx: %llx\n"
                "          count: %d\n",
                std::string(SysName(cond.sys)).c_str(),
                static_cast<unsigned long long>(cond.ctx_digest), cond.count);
            if (!cond.path_filter.empty()) {
              out += StrFormat("          path: %s\n", cond.path_filter.c_str());
            }
            break;
        }
      }
    }
  }
  return out;
}

namespace {

// Minimal parser for the YAML subset emitted by ToYaml(): "key: value" lines
// plus "- " list-item markers, with fixed indentation levels.
struct Line {
  int indent = 0;
  bool item = false;
  std::string key;
  std::string value;
};

// Parses a lowercase-hex 64-bit value (the ctx digest emitted as %llx).
bool ParseHex64(std::string_view s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t parsed = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    parsed = (parsed << 4) | static_cast<uint64_t>(digit);
  }
  *out = parsed;
  return true;
}

bool ParseLine(const std::string& raw, Line* out) {
  size_t i = 0;
  while (i < raw.size() && raw[i] == ' ') {
    i++;
  }
  if (i >= raw.size()) {
    return false;
  }
  out->indent = static_cast<int>(i);
  std::string_view rest = std::string_view(raw).substr(i);
  out->item = StartsWith(rest, "- ");
  if (out->item) {
    rest.remove_prefix(2);
    out->indent += 2;
  }
  const size_t colon = rest.find(':');
  if (colon == std::string_view::npos) {
    return false;
  }
  out->key = std::string(StripWhitespace(rest.substr(0, colon)));
  out->value = std::string(StripWhitespace(rest.substr(colon + 1)));
  return true;
}

}  // namespace

bool FaultSchedule::FromYaml(const std::string& text, FaultSchedule* out) {
  *out = FaultSchedule();
  ScheduledFault* fault = nullptr;
  Condition* cond = nullptr;
  bool in_conditions = false;

  for (const std::string& raw : Split(text, '\n')) {
    if (StripWhitespace(raw).empty()) {
      continue;
    }
    Line line;
    if (!ParseLine(raw, &line)) {
      return false;
    }
    if (line.key == "schedule" || line.key == "faults") {
      continue;
    }
    if (line.key == "name" && line.indent == 2) {
      out->name = line.value;
      continue;
    }
    if (line.item && line.key == "kind") {
      out->faults.emplace_back();
      fault = &out->faults.back();
      cond = nullptr;
      in_conditions = false;
      if (line.value == "syscall") {
        fault->kind = FaultKind::kSyscallFailure;
      } else if (line.value == "crash") {
        fault->kind = FaultKind::kProcessCrash;
      } else if (line.value == "pause") {
        fault->kind = FaultKind::kProcessPause;
      } else if (line.value == "partition") {
        fault->kind = FaultKind::kNetworkPartition;
      } else {
        return false;
      }
      continue;
    }
    if (fault == nullptr) {
      return false;
    }
    if (line.key == "conditions") {
      in_conditions = true;
      continue;
    }
    if (in_conditions && line.item && line.key == "type") {
      fault->conditions.emplace_back();
      cond = &fault->conditions.back();
      if (line.value == "after_fault") {
        cond->kind = Condition::Kind::kAfterFault;
      } else if (line.value == "function") {
        cond->kind = Condition::Kind::kFunctionEnter;
      } else if (line.value == "offset") {
        cond->kind = Condition::Kind::kFunctionOffset;
      } else if (line.value == "syscall_count") {
        cond->kind = Condition::Kind::kSyscallCount;
      } else if (line.value == "at_time") {
        cond->kind = Condition::Kind::kAtTime;
      } else if (line.value == "exec_index") {
        cond->kind = Condition::Kind::kExecutionIndex;
      } else {
        return false;
      }
      continue;
    }
    int64_t number = 0;
    const bool is_number = ParseInt64(line.value, &number);
    if (in_conditions && cond != nullptr) {
      if (line.key == "fault" && is_number) {
        cond->fault_index = static_cast<int32_t>(number);
      } else if (line.key == "fid" && is_number) {
        cond->function_id = static_cast<int32_t>(number);
      } else if (line.key == "off" && is_number) {
        cond->offset = static_cast<int32_t>(number);
      } else if (line.key == "sys") {
        SysFromName(line.value, &cond->sys);
      } else if (line.key == "count" && is_number) {
        cond->count = static_cast<int32_t>(number);
      } else if (line.key == "path") {
        cond->path_filter = line.value;
      } else if (line.key == "time" && is_number) {
        cond->at_time = number;
      } else if (line.key == "ctx") {
        uint64_t digest = 0;
        if (ParseHex64(line.value, &digest)) {
          cond->ctx_digest = digest;
        }
      }
      continue;
    }
    if (line.key == "node" && is_number) {
      fault->target_node = static_cast<NodeId>(number);
    } else if (line.key == "sys") {
      SysFromName(line.value, &fault->syscall.sys);
    } else if (line.key == "errno") {
      fault->syscall.err = ErrFromName(line.value);
    } else if (line.key == "path") {
      fault->syscall.path_filter = line.value;
    } else if (line.key == "nth" && is_number) {
      fault->syscall.nth = static_cast<int32_t>(number);
    } else if (line.key == "persistent") {
      fault->syscall.persistent = line.value == "true";
    } else if (line.key == "duration" && is_number) {
      if (fault->kind == FaultKind::kProcessPause) {
        fault->process.pause_duration = number;
      } else {
        fault->network.duration = number;
      }
    } else if (line.key == "ips_in") {
      fault->network.group_a = Split(line.value, ',');
    } else if (line.key == "ips_out") {
      fault->network.group_b = Split(line.value, ',');
    }
  }
  return true;
}

}  // namespace rose
