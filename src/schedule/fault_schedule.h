// Fault schedules (paper §4.4–§4.6).
//
// A schedule is an ordered list of faults; each fault carries the *fault
// context*: an ordered sequence of conditions that must be observed before
// the fault is injected. When the last condition of a fault is observed the
// fault fires immediately at that kernel boundary.
//
// Condition kinds map 1:1 to the paper:
//   kAfterFault    — production fault order enforcement (§4.6.1)
//   kFunctionEnter — Level 2 function-chain context (Algorithm 1)
//   kFunctionOffset— Level 3 intra-function offsets
//   kSyscallCount  — nth invocation of a syscall (optionally input-filtered)
//   kAtTime        — Level 1 relative-time injection
//   kExecutionIndex— calling-context-qualified syscall address (context
//                    digest + in-context sequence number, see
//                    src/trace/execution_index.h); the stable replacement
//                    for flat kSyscallCount targeting
#ifndef SRC_SCHEDULE_FAULT_SCHEDULE_H_
#define SRC_SCHEDULE_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/os/process.h"
#include "src/os/syscall.h"
#include "src/sim/time.h"

namespace rose {

enum class FaultKind : int8_t {
  kSyscallFailure = 0,
  kProcessCrash,
  kProcessPause,
  kNetworkPartition,
};

std::string_view FaultKindName(FaultKind kind);

struct SyscallFaultSpec {
  Sys sys = Sys::kOpen;
  Err err = Err::kEIO;
  // Only invocations whose pathname (or socket peer "sock:<ip>") matches.
  // Empty matches any input.
  std::string path_filter;
  // Fail the nth matching invocation (1-based), counted after the fault's
  // conditions are satisfied.
  int32_t nth = 1;
  // Keep failing every matching invocation from the nth onwards (models a
  // persistently broken disk/endpoint rather than a single transient error).
  bool persistent = false;
};

struct ProcessFaultSpec {
  SimTime pause_duration = 0;  // Only for kProcessPause.
};

struct NetworkFaultSpec {
  std::vector<std::string> group_a;
  std::vector<std::string> group_b;
  SimTime duration = Seconds(5);
};

struct Condition {
  enum class Kind : int8_t {
    kAfterFault = 0,
    kFunctionEnter,
    kFunctionOffset,
    kSyscallCount,
    kAtTime,
    kExecutionIndex,
  };
  Kind kind = Kind::kAtTime;
  int32_t fault_index = -1;     // kAfterFault
  int32_t function_id = -1;     // kFunctionEnter / kFunctionOffset
  int32_t offset = -1;          // kFunctionOffset
  Sys sys = Sys::kOpen;         // kSyscallCount / kExecutionIndex
  std::string path_filter;      // kSyscallCount / kExecutionIndex
  int32_t count = 1;            // kSyscallCount (nth) / kExecutionIndex (seq)
  SimTime at_time = 0;          // kAtTime (relative to run start)
  uint64_t ctx_digest = 0;      // kExecutionIndex (calling-context digest)

  static Condition AfterFault(int32_t index);
  static Condition FunctionEnter(int32_t function_id);
  static Condition FunctionOffset(int32_t function_id, int32_t offset);
  static Condition SyscallCount(Sys sys, const std::string& path_filter, int32_t count);
  static Condition AtTime(SimTime at);
  // Matches the seq'th (1-based) invocation of `sys` under the calling
  // context `ctx_digest`, counted per (node, context, syscall, input);
  // `path_filter` narrows matching the same way kSyscallCount's does.
  static Condition ExecutionIndex(Sys sys, uint64_t ctx_digest, int32_t seq,
                                  const std::string& path_filter = "");

  std::string ToString() const;
};

struct ScheduledFault {
  NodeId target_node = kNoNode;
  FaultKind kind = FaultKind::kProcessCrash;
  SyscallFaultSpec syscall;
  ProcessFaultSpec process;
  NetworkFaultSpec network;
  // Ordered sequence; condition i+1 is armed only once condition i holds.
  std::vector<Condition> conditions;

  std::string Label() const;  // e.g. "PS(Crash)" / "SCF(write)" / "ND".
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  std::string name;
  std::vector<ScheduledFault> faults;

  size_t size() const { return faults.size(); }
  bool empty() const { return faults.empty(); }

  // The paper's "Faults Inj" column, e.g. "PS(Crash)*3 + ND + PS(Crash)".
  std::string Summary() const;

  // YAML round-trip (the analyzer emits YAML; the executor parses it).
  std::string ToYaml() const;
  static bool FromYaml(const std::string& text, FaultSchedule* out);
};

}  // namespace rose

#endif  // SRC_SCHEDULE_FAULT_SCHEDULE_H_
