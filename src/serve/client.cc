#include "src/serve/client.h"

#include "src/analyze/trace_validator.h"

namespace rose {
namespace {

// Chunk size for transport reads; small enough to exercise reassembly.
constexpr size_t kReadChunk = 16 * 1024;

// splitmix64 finalizer: full-avalanche mixing for the deterministic retry
// jitter (no global RNG, no wall clock — replays byte-identically).
uint64_t MixJitter(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// FNV-1a over a short string (bug ids, tags) for token derivation.
uint64_t FnvMix(uint64_t seed, std::string_view s) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Idempotency token for a submission: the blob's canonical hash (encoding-
// independent — a resend of the same window matches even if re-encoded)
// mixed with bug id and seed so two jobs over one dump stay distinct.
// Always nonzero: 0 means "no token" on the wire.
uint64_t SubmitToken(uint64_t trace_hash, std::string_view bug_id, uint64_t seed) {
  const uint64_t token = MixJitter(FnvMix(trace_hash, bug_id) ^ seed);
  return token == 0 ? 1 : token;
}

}  // namespace

ServeClient::ServeClient(std::shared_ptr<Transport> transport, ServeClientConfig config)
    : transport_(std::move(transport)), config_(config) {
  AppendServeHeader(&outbox_);
}

uint64_t ServeClient::Submit(const SubmitRequest& request) {
  const uint64_t token =
      SubmitToken(CanonicalTraceHash(request.trace), request.bug_id, request.seed);
  return SubmitEncoded(EncodeSubmitBlob(request.bug_id, request.seed, request.tag,
                                        SerializeProfile(request.profile),
                                        request.trace.SerializeBinary(), token),
                       token);
}

uint64_t ServeClient::SubmitBlob(std::string_view bug_id, uint64_t seed, std::string_view tag,
                                 std::string_view profile_text, std::string_view trace_blob) {
  uint64_t trace_hash = 0;
  CanonicalBlobHash(trace_blob, &trace_hash);  // Best-effort: damaged blobs
                                               // still get a stable token.
  const uint64_t token = SubmitToken(trace_hash, bug_id, seed);
  return SubmitEncoded(EncodeSubmitBlob(bug_id, seed, tag, profile_text, trace_blob, token),
                       token);
}

uint64_t ServeClient::SubmitEncoded(std::string encoded, uint64_t token) {
  const uint64_t handle = next_handle_++;
  PendingJob& job = jobs_[handle];
  job.handle = handle;
  job.encoded = std::move(encoded);
  job.token = token;
  job.state = JobState::kAwaitingAccept;
  AppendServeFrame(&outbox_, ServeFrame::kSubmit, job.encoded);
  accept_fifo_.push_back(handle);
  return handle;
}

uint64_t ServeClient::OpenStream(std::string_view bug_id, uint64_t seed, std::string_view tag,
                                 std::string_view profile_text) {
  const uint64_t handle = next_handle_++;
  PendingJob& job = jobs_[handle];
  job.handle = handle;
  job.is_stream = true;
  // Session nonce, not a content hash: the content does not exist yet.
  job.token = SubmitToken(MixJitter(config_.backoff_jitter_seed ^ handle), bug_id, seed);
  StreamOpenMsg msg;
  msg.bug_id = std::string(bug_id);
  msg.seed = seed;
  msg.tag = std::string(tag);
  msg.profile_text = std::string(profile_text);
  msg.token = job.token;
  job.encoded = EncodeStreamOpen(msg);
  job.state = JobState::kAwaitingAccept;
  AppendServeFrame(&outbox_, ServeFrame::kStreamOpen, job.encoded);
  accept_fifo_.push_back(handle);
  return handle;
}

void ServeClient::StreamData(uint64_t handle, std::string_view bytes) {
  auto it = jobs_.find(handle);
  if (it == jobs_.end() || !it->second.is_stream || bytes.empty()) {
    return;
  }
  PendingJob& job = it->second;
  if (job.state == JobState::kAwaitingAccept) {
    job.stream_staged.append(bytes.data(), bytes.size());
    return;
  }
  // kDone only means a result arrived under the session id — the session
  // itself stays open (a window can fire several oracles). Only failure
  // ends it.
  if (job.state != JobState::kAccepted && job.state != JobState::kDone) {
    return;
  }
  AppendServeFrame(&outbox_, ServeFrame::kStreamData,
                   EncodeStreamData(job.server_job_id, bytes));
}

void ServeClient::CloseStream(uint64_t handle) {
  auto it = jobs_.find(handle);
  if (it == jobs_.end() || !it->second.is_stream) {
    return;
  }
  PendingJob& job = it->second;
  if (job.state == JobState::kAwaitingAccept) {
    job.close_requested = true;  // Sent right after the accept arrives.
    return;
  }
  if (job.state != JobState::kAccepted && job.state != JobState::kDone) {
    return;  // Never accepted, or already failed.
  }
  AppendServeFrame(&outbox_, ServeFrame::kStreamClose,
                   EncodeStreamClose(StreamCloseMsg{job.server_job_id}));
}

bool ServeClient::stream_accepted(uint64_t handle) const {
  const PendingJob& job = Get(handle);
  return job.is_stream && (job.state == JobState::kAccepted || job.state == JobState::kDone);
}

bool ServeClient::stream_throttled(uint64_t handle) const { return Get(handle).throttled; }

int ServeClient::BackoffRounds(const PendingJob& job) const {
  const int cap = config_.max_backoff_rounds > 0 ? config_.max_backoff_rounds : 1;
  // Shift saturates well before it could overflow (cap is an int).
  int rounds = config_.backoff_base_rounds > 0 ? config_.backoff_base_rounds : 1;
  for (int i = 0; i < job.attempts && rounds < cap; i++) {
    rounds <<= 1;
  }
  if (rounds > cap) {
    rounds = cap;
  }
  // Up to +50% jitter so synchronized clients fan out instead of re-stampeding
  // the queue in lockstep; the mix is a pure function of (seed, handle,
  // attempt), so a rerun of the same submission order waits identically.
  const uint64_t mix =
      MixJitter(config_.backoff_jitter_seed ^ (job.handle * 0x9e3779b97f4a7c15ULL) ^
                static_cast<uint64_t>(job.attempts));
  rounds += static_cast<int>(mix % (static_cast<uint64_t>(rounds) / 2 + 1));
  return rounds < cap ? rounds : cap;
}

void ServeClient::RequestStats() {
  AppendServeFrame(&outbox_, ServeFrame::kStatsRequest, "");
}

void ServeClient::Poll() {
  if (broken_) {
    return;
  }

  // Backoff bookkeeping: jobs waiting out a queue-full rejection re-enter the
  // wire when their counter hits zero. Resubmission order follows handle
  // order, which keeps the FIFO correlation well-defined.
  for (auto& [handle, job] : jobs_) {
    if (job.state != JobState::kBackoff) {
      continue;
    }
    if (--job.backoff_left > 0) {
      continue;
    }
    job.state = JobState::kAwaitingAccept;
    AppendServeFrame(&outbox_,
                     job.is_stream ? ServeFrame::kStreamOpen : ServeFrame::kSubmit,
                     job.encoded);
    accept_fifo_.push_back(handle);
    retries_performed_++;
  }

  // Flush as much of the outbox as the transport accepts (short writes mean
  // the pipe is full; the remainder goes out on a later Poll()).
  if (outbox_sent_ < outbox_.size() && transport_->writable()) {
    std::string_view rest(outbox_.data() + outbox_sent_, outbox_.size() - outbox_sent_);
    outbox_sent_ += transport_->Write(rest);
    if (outbox_sent_ == outbox_.size()) {
      outbox_.clear();
      outbox_sent_ = 0;
    } else if (outbox_sent_ > 64 * 1024 && outbox_sent_ >= outbox_.size() / 2) {
      outbox_.erase(0, outbox_sent_);
      outbox_sent_ = 0;
    }
  }

  // Pull inbound bytes and process every complete frame.
  while (transport_->readable()) {
    std::string chunk = transport_->Read(kReadChunk);
    if (chunk.empty()) {
      break;
    }
    decoder_.Feed(chunk);
  }
  DecodedFrame frame;
  for (;;) {
    FrameDecoder::Status status = decoder_.Next(&frame);
    if (status == FrameDecoder::Status::kNeedMore) {
      break;
    }
    if (status == FrameDecoder::Status::kBadStream) {
      broken_ = true;
      // Every in-flight job fails: the stream cannot carry answers anymore.
      for (auto& [handle, job] : jobs_) {
        if (job.state != JobState::kDone && job.state != JobState::kFailed) {
          job.state = JobState::kFailed;
          job.error = ServeError::kVersionMismatch;
          job.error_message = "serve stream header rejected";
        }
      }
      return;
    }
    if (status == FrameDecoder::Status::kCorruptFrame) {
      continue;  // Server frames are regenerable; resynchronization handled it.
    }
    HandleFrame(frame);
  }
}

void ServeClient::HandleFrame(const DecodedFrame& frame) {
  switch (frame.kind) {
    case ServeFrame::kAccepted: {
      AcceptedMsg msg;
      if (DecodeAccepted(frame.payload, &msg)) {
        HandleAccepted(msg);
      }
      return;
    }
    case ServeFrame::kProgress: {
      ProgressMsg msg;
      if (!DecodeProgress(frame.payload, &msg)) {
        return;
      }
      if (PendingJob* job = ByServerJobId(msg.job_id)) {
        job->progress.push_back(std::move(msg));
      }
      return;
    }
    case ServeFrame::kResult: {
      ResultMsg msg;
      if (!DecodeResult(frame.payload, &msg)) {
        return;
      }
      PendingJob* job = ByServerJobId(msg.job_id);
      if (job == nullptr) {
        return;
      }
      job->state = JobState::kDone;
      job->result.reproduced = msg.reproduced;
      job->result.cached = msg.cached;
      job->result.coalesced = msg.coalesced;
      job->result.replay_rate = msg.rate_permille / 10.0;
      job->result.level = static_cast<int>(msg.level);
      job->result.schedules = static_cast<int>(msg.schedules);
      job->result.runs = static_cast<int>(msg.runs);
      job->result.schedule_yaml = std::move(msg.schedule_yaml);
      job->result.fault_summary = std::move(msg.fault_summary);
      return;
    }
    case ServeFrame::kError: {
      ErrorMsg msg;
      if (!DecodeError(frame.payload, &msg)) {
        return;
      }
      // job_id 0 = pre-admission rejection, correlated FIFO; otherwise the
      // server names the job.
      PendingJob* job =
          msg.job_id == 0 ? OldestAwaitingAccept() : ByServerJobId(msg.job_id);
      if (job == nullptr) {
        return;
      }
      if (msg.job_id == 0) {
        accept_fifo_.pop_front();
      }
      // Retryable rejections: queue-full always; a pre-admission kBadFrame on
      // a plain submit too — a half-closed transport can truncate the frame
      // mid-flight, and resending is safe because the idempotency token makes
      // a second accept for an already-registered original recognizable
      // (HandleAccepted drops it) instead of double-submitting. Stream opens
      // stay fail-fast: their data frames are gone with the connection.
      const bool retryable =
          msg.code == ServeError::kQueueFull ||
          (msg.code == ServeError::kBadFrame && msg.job_id == 0 && !job->is_stream);
      if (retryable && config_.auto_retry_queue_full &&
          job->attempts < config_.max_retries) {
        job->state = JobState::kBackoff;
        job->backoff_left = BackoffRounds(*job);
        job->attempts++;
        return;
      }
      if (retryable && config_.auto_retry_queue_full) {
        // Every retry consumed: surface a client-side typed error instead of
        // the server's last rejection, so callers can tell "gave up after
        // backoff" from "rejected once with retries disabled".
        job->state = JobState::kFailed;
        job->error = ServeError::kRetriesExhausted;
        job->error_message =
            std::string(msg.code == ServeError::kQueueFull ? "queue full" : "bad frame") +
            " after " + std::to_string(job->attempts) + " retries: " + std::move(msg.message);
        return;
      }
      job->state = JobState::kFailed;
      job->error = msg.code;
      job->error_message = std::move(msg.message);
      return;
    }
    case ServeFrame::kStatsReply: {
      StatsMsg msg;
      if (DecodeStats(frame.payload, &msg)) {
        latest_stats_ = std::move(msg);
        stats_received_++;
      }
      return;
    }
    case ServeFrame::kThrottle: {
      ThrottleMsg msg;
      if (!DecodeThrottle(frame.payload, &msg)) {
        return;
      }
      if (PendingJob* job = ByServerJobId(msg.job_id)) {
        if (msg.on && !job->throttled) {
          throttle_events_++;
        }
        job->throttled = msg.on;
      }
      return;
    }
    case ServeFrame::kSubmit:
    case ServeFrame::kStatsRequest:
    case ServeFrame::kStreamOpen:
    case ServeFrame::kStreamData:
    case ServeFrame::kStreamClose:
      return;  // Client never receives these; skip per protocol rules.
  }
}

void ServeClient::HandleAccepted(const AcceptedMsg& msg) {
  PendingJob* job = nullptr;
  if (msg.token != 0) {
    // Token-directed accept: claim the first awaiting FIFO entry carrying
    // this token. If a resent submission's original actually registered, the
    // server answers twice with the same token — by the second accept the job
    // is no longer awaiting, nothing matches, and the duplicate is dropped
    // WITHOUT popping the FIFO (popping would steal the next submission's
    // accept and shift every later correlation by one).
    for (auto it = accept_fifo_.begin(); it != accept_fifo_.end(); ++it) {
      auto jit = jobs_.find(*it);
      if (jit == jobs_.end() || jit->second.state != JobState::kAwaitingAccept) {
        continue;
      }
      if (jit->second.token == msg.token) {
        job = &jit->second;
        accept_fifo_.erase(it);
        break;
      }
    }
    if (job == nullptr) {
      return;  // Duplicate (or unknown) token — swallow.
    }
  } else {
    // Legacy pre-token server: plain FIFO correlation.
    job = OldestAwaitingAccept();
    if (job == nullptr) {
      return;
    }
    accept_fifo_.pop_front();
  }
  job->state = JobState::kAccepted;
  job->server_job_id = msg.job_id;
  job->accept_kind = msg.kind;
  if (job->is_stream) {
    if (!job->stream_staged.empty()) {
      AppendServeFrame(&outbox_, ServeFrame::kStreamData,
                       EncodeStreamData(job->server_job_id, job->stream_staged));
      job->stream_staged.clear();
      job->stream_staged.shrink_to_fit();
    }
    if (job->close_requested) {
      AppendServeFrame(&outbox_, ServeFrame::kStreamClose,
                       EncodeStreamClose(StreamCloseMsg{job->server_job_id}));
    }
  }
}

ServeClient::PendingJob* ServeClient::OldestAwaitingAccept() {
  while (!accept_fifo_.empty()) {
    auto it = jobs_.find(accept_fifo_.front());
    if (it != jobs_.end() && it->second.state == JobState::kAwaitingAccept) {
      return &it->second;
    }
    accept_fifo_.pop_front();  // Stale entry (job already resolved).
  }
  return nullptr;
}

ServeClient::PendingJob* ServeClient::ByServerJobId(uint64_t job_id) {
  for (auto& [handle, job] : jobs_) {
    if (job.server_job_id == job_id && job.state == JobState::kAccepted) {
      return &job;
    }
  }
  return nullptr;
}

const ServeClient::PendingJob& ServeClient::Get(uint64_t handle) const {
  static const PendingJob kEmpty;
  auto it = jobs_.find(handle);
  return it == jobs_.end() ? kEmpty : it->second;
}

bool ServeClient::done(uint64_t handle) const {
  JobState state = Get(handle).state;
  return state == JobState::kDone || state == JobState::kFailed;
}

bool ServeClient::failed(uint64_t handle) const {
  return Get(handle).state == JobState::kFailed;
}

ServeError ServeClient::error_code(uint64_t handle) const { return Get(handle).error; }

const std::string& ServeClient::error_message(uint64_t handle) const {
  return Get(handle).error_message;
}

const ServeJobResult& ServeClient::result(uint64_t handle) const {
  return Get(handle).result;
}

AcceptKind ServeClient::accept_kind(uint64_t handle) const {
  return Get(handle).accept_kind;
}

std::vector<ProgressMsg> ServeClient::TakeProgress(uint64_t handle) {
  auto it = jobs_.find(handle);
  if (it == jobs_.end()) {
    return {};
  }
  std::vector<ProgressMsg> out = std::move(it->second.progress);
  it->second.progress.clear();
  return out;
}

bool ServeClient::all_done() const {
  for (const auto& [handle, job] : jobs_) {
    if (job.state != JobState::kDone && job.state != JobState::kFailed) {
      return false;
    }
  }
  return true;
}

}  // namespace rose
