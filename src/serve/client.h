// Client half of the serve protocol (DESIGN.md §10).
//
// A ServeClient owns one connection to a DiagnosisService. Submit() encodes
// a diagnosis job and queues its bytes; Poll() moves data both ways — it
// drains the outbox into the transport (handling the short writes a bounded
// wire produces), reassembles inbound frames, and advances each job's state
// machine:
//
//     pending-send -> awaiting-accept -> accepted -> done | failed
//                          ^                  (progress streams in between)
//                          '--- queue-full rejection re-queues the submit
//                               after an exponential backoff (Poll rounds)
//
// The server answers submissions in FIFO order, so the client correlates
// kAccepted/kError frames with the oldest in-flight submission; kProgress /
// kResult frames carry the server-assigned job id.
#ifndef SRC_SERVE_CLIENT_H_
#define SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/transport.h"
#include "src/serve/protocol.h"

namespace rose {

struct ServeClientConfig {
  // Queue-full handling: resubmit after backoff_base << attempt Poll rounds
  // (plus jitter, capped at max_backoff_rounds), up to max_retries; then the
  // job fails with ServeError::kRetriesExhausted.
  bool auto_retry_queue_full = true;
  int max_retries = 8;
  int backoff_base_rounds = 1;
  // Ceiling on any single wait — exponential growth stops doubling here, so
  // a deep retry never strands a job for thousands of rounds.
  int max_backoff_rounds = 64;
  // Seed for deterministic retry jitter. Each wait gains up to half its
  // length again, mixed from (seed, handle, attempt) — so a thundering herd
  // of clients hitting one queue-full server desynchronizes, yet any given
  // (seed, submission order) replays the exact same backoff schedule. No
  // wall-clock or global RNG is involved (the determinism lint's rule).
  uint64_t backoff_jitter_seed = 0;
};

// Terminal state of one submitted job.
struct ServeJobResult {
  bool reproduced = false;
  bool cached = false;
  bool coalesced = false;
  double replay_rate = 0;  // Percent.
  int level = 0;
  int schedules = 0;
  int runs = 0;
  std::string schedule_yaml;
  std::string fault_summary;
};

class ServeClient {
 public:
  explicit ServeClient(std::shared_ptr<Transport> transport,
                       ServeClientConfig config = {});

  // Queues one submission; returns a client-side handle. `request.trace` /
  // `request.profile` are encoded immediately (no lifetime obligations).
  uint64_t Submit(const SubmitRequest& request);

  // Zero-copy submission: ships an already-serialized RTRC blob (e.g. a
  // mapped dump file's bytes) without building or re-encoding a Trace. Same
  // cache key as Submit of the equivalent trace — the canonical hash is
  // encoding-independent. All views are copied into the frame immediately.
  // Every submission carries an idempotency token derived from the blob's
  // canonical hash: if a suspected-lost submit is resent and the original
  // actually registered, the duplicate kAccepted is recognized by token and
  // dropped instead of being mis-attributed to the next FIFO submission.
  uint64_t SubmitBlob(std::string_view bug_id, uint64_t seed, std::string_view tag,
                      std::string_view profile_text, std::string_view trace_blob);

  // --- Streaming ingestion (DESIGN.md §16) -----------------------------------
  // Opens a stream session: the kStreamOpen enters the same FIFO accept
  // correlation as submits; once accepted (AcceptKind::kStream), StreamData
  // bytes flow under the session's server job id. Data handed over before
  // the accept arrives is staged client-side and flushed on acceptance.
  uint64_t OpenStream(std::string_view bug_id, uint64_t seed, std::string_view tag,
                      std::string_view profile_text);
  // Queues raw RTRC stream bytes for the session. The sink is expected to
  // honor stream_throttled() and pause pumping; bytes handed here are always
  // forwarded (the oracle flush must go through even under throttle).
  void StreamData(uint64_t handle, std::string_view bytes);
  void CloseStream(uint64_t handle);
  bool stream_accepted(uint64_t handle) const;
  // True between a kThrottle(on) and the matching kThrottle(off).
  bool stream_throttled(uint64_t handle) const;
  // kThrottle(on) frames received over the connection's lifetime.
  uint64_t throttle_events() const { return throttle_events_; }

  // Queues a kStatsRequest. The server answers with one kStatsReply;
  // stats_available() turns true and stats() holds the latest snapshot.
  void RequestStats();
  bool stats_available() const { return stats_received_ > 0; }
  // kStatsReply frames received over the connection's lifetime.
  uint64_t stats_received() const { return stats_received_; }
  const StatsMsg& stats() const { return latest_stats_; }

  // One pump cycle; call interleaved with the service's Poll().
  void Poll();

  // --- Per-handle observation -------------------------------------------------
  bool done(uint64_t handle) const;      // Result or failure reached.
  bool failed(uint64_t handle) const;
  // Typed error for a failed handle (kNone otherwise).
  ServeError error_code(uint64_t handle) const;
  const std::string& error_message(uint64_t handle) const;
  const ServeJobResult& result(uint64_t handle) const;
  // Disposition from the kAccepted frame (valid once accepted).
  AcceptKind accept_kind(uint64_t handle) const;
  // Drains the progress lines received for `handle` since the last call.
  std::vector<ProgressMsg> TakeProgress(uint64_t handle);

  bool all_done() const;
  // Queue-full retries performed so far (across all handles).
  int retries_performed() const { return retries_performed_; }
  // True when the server stream turned out to be unusable (bad header).
  bool broken() const { return broken_; }

 private:
  enum class JobState : uint8_t {
    kBackoff,         // Waiting `backoff_left` rounds before (re)sending.
    kAwaitingAccept,  // Bytes queued/sent; no kAccepted/kError yet.
    kAccepted,        // Server job id known; awaiting result.
    kDone,
    kFailed,
  };

  struct PendingJob {
    uint64_t handle = 0;
    JobState state = JobState::kAwaitingAccept;
    std::string encoded;  // Submit payload, kept for retries.
    int attempts = 0;
    int backoff_left = 0;
    uint64_t server_job_id = 0;
    AcceptKind accept_kind = AcceptKind::kQueued;
    ServeError error = ServeError::kNone;
    std::string error_message;
    ServeJobResult result;
    std::vector<ProgressMsg> progress;
    // Idempotency token carried in the submit/stream-open payload (0 on
    // stats-era encodings that predate tokens).
    uint64_t token = 0;
    bool is_stream = false;
    bool throttled = false;
    bool close_requested = false;   // CloseStream before the accept arrived.
    std::string stream_staged;      // Data queued before the accept arrived.
  };

  void HandleFrame(const DecodedFrame& frame);
  void HandleAccepted(const AcceptedMsg& msg);
  uint64_t SubmitEncoded(std::string encoded, uint64_t token);
  // Rounds to wait before retry `job.attempts`: exponential base, capped,
  // plus deterministic jitter mixed from (jitter seed, handle, attempt).
  int BackoffRounds(const PendingJob& job) const;
  PendingJob* OldestAwaitingAccept();
  PendingJob* ByServerJobId(uint64_t job_id);
  const PendingJob& Get(uint64_t handle) const;

  std::shared_ptr<Transport> transport_;
  ServeClientConfig config_;
  FrameDecoder decoder_;
  std::string outbox_;
  size_t outbox_sent_ = 0;
  std::map<uint64_t, PendingJob> jobs_;
  // Submission order on the wire — the server's response order.
  std::deque<uint64_t> accept_fifo_;
  uint64_t next_handle_ = 1;
  int retries_performed_ = 0;
  uint64_t throttle_events_ = 0;
  bool broken_ = false;
  uint64_t stats_received_ = 0;
  StatsMsg latest_stats_;
};

}  // namespace rose

#endif  // SRC_SERVE_CLIENT_H_
