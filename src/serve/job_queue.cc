#include "src/serve/job_queue.h"

#include <algorithm>

namespace rose {

JobQueue::PushResult JobQueue::Push(uint64_t tenant, uint64_t job_id) {
  if (size_ >= capacity_) {
    return PushResult::kFull;
  }
  auto [it, inserted] = per_tenant_.emplace(tenant, std::deque<uint64_t>{});
  if (inserted) {
    tenant_order_.push_back(tenant);
  }
  it->second.push_back(job_id);
  size_++;
  return PushResult::kOk;
}

std::optional<uint64_t> JobQueue::Pop() {
  if (size_ == 0 || tenant_order_.empty()) {
    return std::nullopt;
  }
  // Start after the last-served tenant and take the first one with work;
  // empty tenants stay registered so their round-robin position is stable.
  for (size_t i = 0; i < tenant_order_.size(); i++) {
    const size_t slot = (cursor_ + i) % tenant_order_.size();
    auto it = per_tenant_.find(tenant_order_[slot]);
    if (it == per_tenant_.end() || it->second.empty()) {
      continue;
    }
    const uint64_t job_id = it->second.front();
    it->second.pop_front();
    size_--;
    cursor_ = (slot + 1) % tenant_order_.size();
    return job_id;
  }
  return std::nullopt;
}

}  // namespace rose
