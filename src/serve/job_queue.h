// Bounded multi-tenant job queue with round-robin fairness.
//
// The serve daemon admits jobs from many clients but runs a fixed number of
// diagnosis engines at once; everything else waits here. Two policies:
//
//   Bounded: at most `capacity` jobs wait at any time, across all tenants.
//     Push on a full queue is a typed rejection (the kQueueFull wire error);
//     the client retries with backoff. Bounding the queue — instead of
//     buffering unboundedly — is what turns overload into backpressure the
//     protocol can express.
//
//   Fair: Pop services tenants round-robin in first-seen order, so a tenant
//     that batch-submits 50 dumps cannot starve one that submits a single
//     urgent window. Within a tenant, jobs stay FIFO.
//
// Single-threaded by design: only the service's Poll() thread touches it.
#ifndef SRC_SERVE_JOB_QUEUE_H_
#define SRC_SERVE_JOB_QUEUE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace rose {

class JobQueue {
 public:
  explicit JobQueue(size_t capacity) : capacity_(capacity) {}

  enum class PushResult : uint8_t { kOk = 0, kFull };

  PushResult Push(uint64_t tenant, uint64_t job_id);

  // Next job id, round-robin over tenants with queued work.
  std::optional<uint64_t> Pop();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  // Jobs a single tenant has waiting (0 for unknown tenants) — feeds the
  // per-client serve.queue_depth.* gauges.
  size_t DepthOf(uint64_t tenant) const {
    auto it = per_tenant_.find(tenant);
    return it == per_tenant_.end() ? 0 : it->second.size();
  }

 private:
  size_t capacity_;
  size_t size_ = 0;
  std::map<uint64_t, std::deque<uint64_t>> per_tenant_;
  // Tenants in first-seen order; the cursor remembers who was served last.
  std::vector<uint64_t> tenant_order_;
  size_t cursor_ = 0;
};

}  // namespace rose

#endif  // SRC_SERVE_JOB_QUEUE_H_
