#include "src/serve/protocol.h"

#include <cstring>

#include "src/common/strings.h"
#include "src/trace/trace_io.h"

namespace rose {

namespace {

void PutLengthPrefixed(std::string* out, std::string_view bytes) {
  PutVarint(out, bytes.size());
  out->append(bytes.data(), bytes.size());
}

bool GetLengthPrefixed(std::string_view* data, std::string_view* out) {
  uint64_t len = 0;
  if (!GetVarint(data, &len) || len > data->size()) {
    return false;
  }
  *out = data->substr(0, static_cast<size_t>(len));
  data->remove_prefix(static_cast<size_t>(len));
  return true;
}

void PutU32LE(std::string* out, uint32_t v) {
  char bytes[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                   static_cast<char>((v >> 16) & 0xff), static_cast<char>((v >> 24) & 0xff)};
  out->append(bytes, 4);
}

uint32_t ReadU32LE(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

}  // namespace

std::string_view ServeErrorName(ServeError error) {
  switch (error) {
    case ServeError::kNone: return "none";
    case ServeError::kQueueFull: return "queue_full";
    case ServeError::kInvalidTrace: return "invalid_trace";
    case ServeError::kUnknownBug: return "unknown_bug";
    case ServeError::kBadFrame: return "bad_frame";
    case ServeError::kVersionMismatch: return "version_mismatch";
    case ServeError::kMalformedRequest: return "malformed_request";
    case ServeError::kRetriesExhausted: return "retries_exhausted";
  }
  return "?";
}

std::string ProgressMsg::ToString() const {
  const char* what = "";
  switch (kind) {
    case ProgressKind::kRunning: what = "running"; break;
    case ProgressKind::kLevelStart: what = "level-start"; break;
    case ProgressKind::kCandidate: what = "candidate"; break;
    case ProgressKind::kConfirm: what = "confirm"; break;
  }
  std::string line = StrFormat("job %llu %s L%u sched=%u runs=%u rate=%.1f%%",
                               static_cast<unsigned long long>(job_id), what, level,
                               schedules, runs, static_cast<double>(rate_permille) / 10.0);
  if (!detail.empty()) {
    line += "  [" + detail + "]";
  }
  return line;
}

// --- Framing -----------------------------------------------------------------

void AppendServeHeader(std::string* out) {
  out->append(kServeMagic, sizeof(kServeMagic));
  out->push_back(static_cast<char>(kServeProtocolVersion & 0xff));
  out->push_back(static_cast<char>(kServeProtocolVersion >> 8));
  out->push_back(0);
  out->push_back(0);
}

void AppendServeFrame(std::string* out, ServeFrame kind, std::string_view payload) {
  out->push_back(static_cast<char>(kind));
  PutU32LE(out, static_cast<uint32_t>(payload.size()));
  PutU32LE(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

FrameDecoder::Status FrameDecoder::Next(DecodedFrame* out) {
  if (dead_) {
    return Status::kBadStream;
  }
  std::string_view rest = std::string_view(buffer_).substr(consumed_);
  if (!header_done_) {
    if (rest.size() < 8) {
      return Status::kNeedMore;
    }
    if (std::memcmp(rest.data(), kServeMagic, sizeof(kServeMagic)) != 0) {
      dead_ = true;
      return Status::kBadStream;
    }
    const uint16_t version = static_cast<uint16_t>(static_cast<uint8_t>(rest[4])) |
                             static_cast<uint16_t>(static_cast<uint8_t>(rest[5])) << 8;
    if (version > kServeProtocolVersion) {
      dead_ = true;
      return Status::kBadStream;
    }
    consumed_ += 8;
    header_done_ = true;
    rest.remove_prefix(8);
  }
  if (rest.size() < 9) {
    Compact();
    return Status::kNeedMore;
  }
  const uint8_t kind = static_cast<uint8_t>(rest[0]);
  const uint32_t len = ReadU32LE(rest.data() + 1);
  const uint32_t crc = ReadU32LE(rest.data() + 5);
  if (len > kMaxServeFramePayload) {
    // A length this large cannot be a real frame; resynchronization is
    // impossible without trusting it, so the stream is dead.
    dead_ = true;
    return Status::kBadStream;
  }
  if (rest.size() - 9 < len) {
    Compact();
    return Status::kNeedMore;
  }
  const std::string_view payload = rest.substr(9, len);
  consumed_ += 9 + len;  // Consume the frame either way: length is trusted,
                         // payload integrity is not.
  if (Crc32(payload) != crc) {
    Compact();
    return Status::kCorruptFrame;
  }
  out->kind = static_cast<ServeFrame>(kind);
  out->payload.assign(payload.data(), payload.size());
  Compact();
  return Status::kFrame;
}

void FrameDecoder::Compact() {
  // Reclaim consumed prefix once it dominates the buffer, amortizing the
  // memmove across many small frames.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

// --- Message codecs ----------------------------------------------------------

std::string EncodeSubmit(const SubmitRequest& request) {
  return EncodeSubmitBlob(request.bug_id, request.seed, request.tag,
                          SerializeProfile(request.profile),
                          request.trace.SerializeBinary());
}

std::string EncodeSubmitBlob(std::string_view bug_id, uint64_t seed, std::string_view tag,
                             std::string_view profile_text, std::string_view trace_blob,
                             uint64_t token) {
  std::string payload;
  payload.reserve(bug_id.size() + tag.size() + profile_text.size() + trace_blob.size() + 32);
  PutLengthPrefixed(&payload, bug_id);
  PutVarint(&payload, seed);
  PutLengthPrefixed(&payload, tag);
  PutLengthPrefixed(&payload, profile_text);
  PutLengthPrefixed(&payload, trace_blob);
  if (token != 0) {
    // Optional trailing idempotency token. Pre-token decoders stop after
    // the blob and ignore trailing bytes, so this is additive within v1 —
    // and omitting it when 0 keeps historical submissions byte-identical.
    PutVarint(&payload, token);
  }
  return payload;
}

bool DecodeSubmit(std::string_view payload, SubmitRequest* out,
                  std::vector<Diagnostic>* trace_diags) {
  std::string_view bug_id;
  std::string_view tag;
  std::string_view profile_text;
  std::string_view trace_blob;
  if (!GetLengthPrefixed(&payload, &bug_id) || !GetVarint(&payload, &out->seed) ||
      !GetLengthPrefixed(&payload, &tag) || !GetLengthPrefixed(&payload, &profile_text) ||
      !GetLengthPrefixed(&payload, &trace_blob)) {
    return false;
  }
  out->bug_id = std::string(bug_id);
  out->tag = std::string(tag);
  if (!ParseProfile(profile_text, &out->profile)) {
    return false;
  }
  out->trace = Trace::ParseBinary(trace_blob, trace_diags);
  return true;
}

bool DecodeSubmitEnvelope(std::string payload, SubmitEnvelope* out) {
  std::string_view rest = payload;
  const char* base = rest.data();
  std::string_view bug_id;
  std::string_view tag;
  std::string_view profile_text;
  std::string_view trace_blob;
  uint64_t seed = 0;
  if (!GetLengthPrefixed(&rest, &bug_id) || !GetVarint(&rest, &seed) ||
      !GetLengthPrefixed(&rest, &tag) || !GetLengthPrefixed(&rest, &profile_text) ||
      !GetLengthPrefixed(&rest, &trace_blob)) {
    return false;
  }
  if (!ParseProfile(profile_text, &out->profile_)) {
    return false;
  }
  out->token_ = 0;
  if (!rest.empty() && !GetVarint(&rest, &out->token_)) {
    return false;
  }
  out->seed_ = seed;
  out->bug_id_off_ = static_cast<size_t>(bug_id.data() - base);
  out->bug_id_len_ = bug_id.size();
  out->tag_off_ = static_cast<size_t>(tag.data() - base);
  out->tag_len_ = tag.size();
  out->profile_off_ = static_cast<size_t>(profile_text.data() - base);
  out->profile_len_ = profile_text.size();
  out->trace_off_ = static_cast<size_t>(trace_blob.data() - base);
  out->trace_len_ = trace_blob.size();
  // Adopt last: the offsets above were measured against the same buffer the
  // move transfers (or, for SSO-short payloads, against bytes the offsets
  // re-find in the new buffer).
  out->payload_ = std::move(payload);
  return true;
}

std::string EncodeAccepted(const AcceptedMsg& msg) {
  std::string payload;
  PutVarint(&payload, msg.job_id);
  payload.push_back(static_cast<char>(msg.kind));
  PutVarint(&payload, msg.queue_depth);
  if (msg.token != 0) {
    PutVarint(&payload, msg.token);  // Optional trailing echo; see header.
  }
  return payload;
}

bool DecodeAccepted(std::string_view payload, AcceptedMsg* out) {
  if (!GetVarint(&payload, &out->job_id) || payload.empty()) {
    return false;
  }
  const uint8_t kind = static_cast<uint8_t>(payload[0]);
  payload.remove_prefix(1);
  if (kind > static_cast<uint8_t>(AcceptKind::kStream)) {
    return false;
  }
  out->kind = static_cast<AcceptKind>(kind);
  if (!GetVarint(&payload, &out->queue_depth)) {
    return false;
  }
  out->token = 0;
  return payload.empty() || GetVarint(&payload, &out->token);
}

std::string EncodeStreamOpen(const StreamOpenMsg& msg) {
  std::string payload;
  PutLengthPrefixed(&payload, msg.bug_id);
  PutVarint(&payload, msg.seed);
  PutLengthPrefixed(&payload, msg.tag);
  PutLengthPrefixed(&payload, msg.profile_text);
  PutVarint(&payload, msg.token);
  return payload;
}

bool DecodeStreamOpen(std::string_view payload, StreamOpenMsg* out) {
  std::string_view bug_id;
  std::string_view tag;
  std::string_view profile_text;
  if (!GetLengthPrefixed(&payload, &bug_id) || !GetVarint(&payload, &out->seed) ||
      !GetLengthPrefixed(&payload, &tag) || !GetLengthPrefixed(&payload, &profile_text) ||
      !GetVarint(&payload, &out->token)) {
    return false;
  }
  out->bug_id = std::string(bug_id);
  out->tag = std::string(tag);
  out->profile_text = std::string(profile_text);
  return true;
}

std::string EncodeStreamData(uint64_t job_id, std::string_view chunk) {
  std::string payload;
  payload.reserve(chunk.size() + 10);
  PutVarint(&payload, job_id);
  payload.append(chunk.data(), chunk.size());
  return payload;
}

bool DecodeStreamData(std::string_view payload, uint64_t* job_id, std::string_view* chunk) {
  if (!GetVarint(&payload, job_id)) {
    return false;
  }
  *chunk = payload;  // The rest of the frame is the raw RTRC byte run.
  return true;
}

std::string EncodeStreamClose(const StreamCloseMsg& msg) {
  std::string payload;
  PutVarint(&payload, msg.job_id);
  return payload;
}

bool DecodeStreamClose(std::string_view payload, StreamCloseMsg* out) {
  return GetVarint(&payload, &out->job_id) && payload.empty();
}

std::string EncodeThrottle(const ThrottleMsg& msg) {
  std::string payload;
  PutVarint(&payload, msg.job_id);
  payload.push_back(msg.on ? 1 : 0);
  PutVarint(&payload, msg.resident_bytes);
  return payload;
}

bool DecodeThrottle(std::string_view payload, ThrottleMsg* out) {
  if (!GetVarint(&payload, &out->job_id) || payload.empty()) {
    return false;
  }
  out->on = payload[0] != 0;
  payload.remove_prefix(1);
  return GetVarint(&payload, &out->resident_bytes) && payload.empty();
}

std::string EncodeProgress(const ProgressMsg& msg) {
  std::string payload;
  PutVarint(&payload, msg.job_id);
  payload.push_back(static_cast<char>(msg.kind));
  PutVarint(&payload, msg.level);
  PutVarint(&payload, msg.schedules);
  PutVarint(&payload, msg.runs);
  PutVarint(&payload, msg.rate_permille);
  PutLengthPrefixed(&payload, msg.detail);
  return payload;
}

bool DecodeProgress(std::string_view payload, ProgressMsg* out) {
  if (!GetVarint(&payload, &out->job_id) || payload.empty()) {
    return false;
  }
  const uint8_t kind = static_cast<uint8_t>(payload[0]);
  payload.remove_prefix(1);
  if (kind > static_cast<uint8_t>(ProgressKind::kConfirm)) {
    return false;
  }
  out->kind = static_cast<ProgressKind>(kind);
  uint64_t level = 0, schedules = 0, runs = 0, rate = 0;
  std::string_view detail;
  if (!GetVarint(&payload, &level) || !GetVarint(&payload, &schedules) ||
      !GetVarint(&payload, &runs) || !GetVarint(&payload, &rate) ||
      !GetLengthPrefixed(&payload, &detail)) {
    return false;
  }
  out->level = static_cast<uint32_t>(level);
  out->schedules = static_cast<uint32_t>(schedules);
  out->runs = static_cast<uint32_t>(runs);
  out->rate_permille = static_cast<uint32_t>(rate);
  out->detail = std::string(detail);
  return true;
}

std::string EncodeResult(const ResultMsg& msg) {
  std::string payload;
  PutVarint(&payload, msg.job_id);
  const uint8_t flags = static_cast<uint8_t>((msg.reproduced ? 1 : 0) |
                                             (msg.cached ? 2 : 0) | (msg.coalesced ? 4 : 0));
  payload.push_back(static_cast<char>(flags));
  PutVarint(&payload, msg.rate_permille);
  PutVarint(&payload, msg.level);
  PutVarint(&payload, msg.schedules);
  PutVarint(&payload, msg.runs);
  PutLengthPrefixed(&payload, msg.schedule_yaml);
  PutLengthPrefixed(&payload, msg.fault_summary);
  return payload;
}

bool DecodeResult(std::string_view payload, ResultMsg* out) {
  if (!GetVarint(&payload, &out->job_id) || payload.empty()) {
    return false;
  }
  const uint8_t flags = static_cast<uint8_t>(payload[0]);
  payload.remove_prefix(1);
  out->reproduced = (flags & 1) != 0;
  out->cached = (flags & 2) != 0;
  out->coalesced = (flags & 4) != 0;
  uint64_t rate = 0, level = 0, schedules = 0, runs = 0;
  std::string_view yaml;
  std::string_view summary;
  if (!GetVarint(&payload, &rate) || !GetVarint(&payload, &level) ||
      !GetVarint(&payload, &schedules) || !GetVarint(&payload, &runs) ||
      !GetLengthPrefixed(&payload, &yaml) || !GetLengthPrefixed(&payload, &summary)) {
    return false;
  }
  out->rate_permille = static_cast<uint32_t>(rate);
  out->level = static_cast<uint32_t>(level);
  out->schedules = static_cast<uint32_t>(schedules);
  out->runs = static_cast<uint32_t>(runs);
  out->schedule_yaml = std::string(yaml);
  out->fault_summary = std::string(summary);
  return true;
}

std::string EncodeError(const ErrorMsg& msg) {
  std::string payload;
  PutVarint(&payload, msg.job_id);
  payload.push_back(static_cast<char>(msg.code));
  PutLengthPrefixed(&payload, msg.message);
  return payload;
}

std::string EncodeStats(const StatsMsg& msg) {
  std::string payload;
  PutVarint(&payload, msg.jobs_submitted);
  PutVarint(&payload, msg.jobs_completed);
  PutVarint(&payload, msg.cache_hits);
  PutVarint(&payload, msg.coalesced);
  PutVarint(&payload, msg.rejected_queue_full);
  PutVarint(&payload, msg.rejected_invalid);
  PutVarint(&payload, msg.corrupt_frames);
  PutVarint(&payload, msg.engine_runs);
  PutVarint(&payload, msg.queued_jobs);
  PutVarint(&payload, msg.running_jobs);
  PutLengthPrefixed(&payload, msg.metrics_yaml);
  return payload;
}

bool DecodeStats(std::string_view payload, StatsMsg* out) {
  if (!GetVarint(&payload, &out->jobs_submitted) ||
      !GetVarint(&payload, &out->jobs_completed) ||
      !GetVarint(&payload, &out->cache_hits) ||
      !GetVarint(&payload, &out->coalesced) ||
      !GetVarint(&payload, &out->rejected_queue_full) ||
      !GetVarint(&payload, &out->rejected_invalid) ||
      !GetVarint(&payload, &out->corrupt_frames) ||
      !GetVarint(&payload, &out->engine_runs) ||
      !GetVarint(&payload, &out->queued_jobs) ||
      !GetVarint(&payload, &out->running_jobs)) {
    return false;
  }
  std::string_view yaml;
  if (!GetLengthPrefixed(&payload, &yaml)) {
    return false;
  }
  out->metrics_yaml = std::string(yaml);
  return true;
}

std::string StatsMsg::ToString() const {
  return StrFormat(
      "jobs: %llu submitted, %llu done, %llu queued, %llu running | cache: %llu hits, "
      "%llu coalesced | rejects: %llu full, %llu invalid | %llu corrupt frames | "
      "%llu engine runs",
      static_cast<unsigned long long>(jobs_submitted),
      static_cast<unsigned long long>(jobs_completed),
      static_cast<unsigned long long>(queued_jobs),
      static_cast<unsigned long long>(running_jobs),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(coalesced),
      static_cast<unsigned long long>(rejected_queue_full),
      static_cast<unsigned long long>(rejected_invalid),
      static_cast<unsigned long long>(corrupt_frames),
      static_cast<unsigned long long>(engine_runs));
}

bool DecodeError(std::string_view payload, ErrorMsg* out) {
  if (!GetVarint(&payload, &out->job_id) || payload.empty()) {
    return false;
  }
  const uint8_t code = static_cast<uint8_t>(payload[0]);
  payload.remove_prefix(1);
  if (code > static_cast<uint8_t>(ServeError::kMalformedRequest)) {
    return false;
  }
  out->code = static_cast<ServeError>(code);
  std::string_view message;
  if (!GetLengthPrefixed(&payload, &message)) {
    return false;
  }
  out->message = std::string(message);
  return true;
}

// --- Profile baseline serialization ------------------------------------------

std::string SerializeProfile(const Profile& profile) {
  std::string out = "rose-profile v1\n";
  out += StrFormat("duration %lld\n", static_cast<long long>(profile.duration));
  for (int32_t fid : profile.monitored_functions) {
    out += StrFormat("monitored %d\n", fid);
  }
  for (const auto& [fid, count] : profile.function_counts) {
    out += StrFormat("function %d %llu\n", fid, static_cast<unsigned long long>(count));
  }
  for (const auto& [sys, count] : profile.syscall_counts) {
    out += StrFormat("syscall %d %llu\n", sys, static_cast<unsigned long long>(count));
  }
  for (const std::string& sig : profile.benign_scf_signatures) {
    out += "benign_scf " + sig + "\n";
  }
  for (const auto& [src, dst] : profile.benign_nd_pairs) {
    out += "benign_nd " + src + " " + dst + "\n";
  }
  return out;
}

bool ParseProfile(std::string_view text, Profile* out) {
  *out = Profile();
  bool saw_header = false;
  for (const std::string& raw : Split(text, '\n')) {
    const std::string_view line = StripWhitespace(raw);
    if (line.empty()) {
      continue;
    }
    if (!saw_header) {
      if (line != "rose-profile v1") {
        return false;
      }
      saw_header = true;
      continue;
    }
    const size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      return false;
    }
    const std::string_view key = line.substr(0, space);
    const std::string_view rest = line.substr(space + 1);
    if (key == "duration") {
      int64_t value = 0;
      if (!ParseInt64(rest, &value)) {
        return false;
      }
      out->duration = value;
    } else if (key == "monitored") {
      int64_t fid = 0;
      if (!ParseInt64(rest, &fid)) {
        return false;
      }
      out->monitored_functions.insert(static_cast<int32_t>(fid));
    } else if (key == "function" || key == "syscall") {
      const size_t sep = rest.find(' ');
      int64_t id = 0;
      uint64_t count = 0;
      if (sep == std::string_view::npos || !ParseInt64(rest.substr(0, sep), &id) ||
          !ParseUint64(StripWhitespace(rest.substr(sep + 1)), &count)) {
        return false;
      }
      auto& map = key == "function" ? out->function_counts : out->syscall_counts;
      map[static_cast<int32_t>(id)] = count;
    } else if (key == "benign_scf") {
      out->benign_scf_signatures.insert(std::string(rest));
    } else if (key == "benign_nd") {
      const size_t sep = rest.find(' ');
      if (sep == std::string_view::npos) {
        return false;
      }
      out->benign_nd_pairs.emplace(std::string(rest.substr(0, sep)),
                                   std::string(StripWhitespace(rest.substr(sep + 1))));
    } else {
      // Unknown facts from a newer writer are skipped, mirroring the frame
      // rule: same-version extensions must stay readable.
      continue;
    }
  }
  return saw_header;
}

}  // namespace rose
