// rose::serve wire protocol (DESIGN.md §10).
//
// Both directions of a serve connection carry the same byte grammar,
// deliberately reusing the binary trace container's primitives (trace_io.h:
// LEB128 varints, zigzag, CRC32, length-prefixed frames):
//
//   stream:  'R' 'S' 'R' 'V' | u16 version (LE) | u16 reserved | frame*
//   frame:   u8 kind | u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
//
// Client -> server frames:
//   kSubmit    — one diagnosis job: bug id, seed, profile baseline, RTRC
//                trace blob. The server answers every kSubmit, in order,
//                with exactly one kAccepted or kError frame (responses to
//                *submissions* are FIFO; kProgress/kResult frames for
//                accepted jobs interleave freely and carry the job id).
//
// Server -> client frames:
//   kAccepted  — job admitted: server job id + disposition (queued /
//                cache hit / coalesced onto an identical in-flight job).
//   kProgress  — job state change: queued->running, diagnosis level
//                transitions, candidate schedules tried, confirm runs.
//   kResult    — terminal frame for a job: the confirmed FaultSchedule in
//                canonical YAML plus the Table-1 counters.
//   kError     — submission rejected (typed code) or connection-level fault.
//
// Versioning rules: the u16 stream version is bumped on any incompatible
// change; a receiver rejects newer versions (kVersionMismatch) and never
// guesses. Unknown *frame kinds* within a known version are skipped (their
// length is self-describing), so compatible extensions stay possible.
// Corrupt frames (CRC mismatch) are skipped the same way — framing makes
// resynchronization exact, which is what lets a server drop one bad
// submission and keep serving the connection.
#ifndef SRC_SERVE_PROTOCOL_H_
#define SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/analyze/diagnostic.h"
#include "src/profile/profiler.h"
#include "src/trace/event.h"

namespace rose {

inline constexpr char kServeMagic[4] = {'R', 'S', 'R', 'V'};
inline constexpr uint16_t kServeProtocolVersion = 1;
// A submit frame embeds a whole trace dump; anything beyond this is a
// malformed length field, not a plausible payload.
inline constexpr uint32_t kMaxServeFramePayload = 256u * 1024u * 1024u;

enum class ServeFrame : uint8_t {
  kSubmit = 1,
  kStatsRequest = 2,  // Empty payload; answered with exactly one kStatsReply.
  // Streaming ingestion (DESIGN.md §16) — additive within version 1, like
  // kStatsReply below. kStreamOpen enters the same FIFO accept correlation
  // as kSubmit (one kAccepted with AcceptKind::kStream, or one kError);
  // kStreamData/kStreamClose carry the accepted session's job id.
  kStreamOpen = 3,
  kStreamData = 4,
  kStreamClose = 5,
  // 6..15 reserved for future client->server frames.
  kAccepted = 16,
  kProgress = 17,
  kResult = 18,
  kError = 19,
  // An *additive* extension within version 1: servers predating it skip the
  // unknown kind (framing is self-describing), so no version bump is needed.
  kStatsReply = 20,
  // Server -> client backpressure for a stream session: on=true asks the
  // sender to pause pushing kStreamData until a matching on=false arrives.
  kThrottle = 21,
};

// Typed rejection codes carried by kError frames.
enum class ServeError : uint8_t {
  kNone = 0,
  kQueueFull = 1,       // Bounded job queue at capacity; retry with backoff.
  kInvalidTrace = 2,    // Trace failed validation (or decoded to nothing).
  kUnknownBug = 3,      // bug_id not in this server's registry.
  kBadFrame = 4,        // Frame skipped: CRC mismatch or undecodable payload.
  kVersionMismatch = 5, // Peer speaks a newer protocol version.
  kMalformedRequest = 6,// Frame decoded but fields are out of range.
  // Client-side terminal state, never sent by a server: every queue-full
  // retry was consumed (ServeClientConfig::max_retries) and the job gave up.
  kRetriesExhausted = 7,
};

std::string_view ServeErrorName(ServeError error);

// How an accepted submission will be served.
enum class AcceptKind : uint8_t {
  kQueued = 0,     // New job, waiting for a worker slot.
  kCacheHit = 1,   // Result served from the canonical-hash cache; no runs.
  kCoalesced = 2,  // Attached to an identical queued/running job.
  kStream = 3,     // A stream session opened; job id names the session.
};

// --- Message bodies ---------------------------------------------------------

struct SubmitRequest {
  std::string bug_id;
  uint64_t seed = 42;
  std::string tag;      // Client-chosen label, echoed in served progress.
  Profile profile;      // Profiling baseline (benign-fault subtraction).
  Trace trace;          // The production dump.
};

// Zero-copy view of a submit frame: owns the raw frame payload (moved in,
// not copied) and exposes the fields as views into it. The admission path
// uses this instead of SubmitRequest so the embedded RTRC blob is never
// parsed into an owning Trace just to compute a cache key — the blob can be
// hashed in place (CanonicalBlobHash) and, on a cache miss, handed to
// MappedTrace::FromBuffer. Fields are stored as offsets, not string_views,
// so moving the envelope (SSO buffers relocate) stays safe.
class SubmitEnvelope {
 public:
  std::string_view bug_id() const { return Field(bug_id_off_, bug_id_len_); }
  std::string_view tag() const { return Field(tag_off_, tag_len_); }
  // The adopted frame payload, verbatim. The cluster router forwards these
  // bytes to the owner shard unchanged (and journals them for re-dispatch),
  // so the blob is never decoded or re-encoded on its way through.
  std::string_view payload() const { return payload_; }
  std::string_view profile_text() const { return Field(profile_off_, profile_len_); }
  std::string_view trace_blob() const { return Field(trace_off_, trace_len_); }
  uint64_t seed() const { return seed_; }
  // Client-chosen idempotency token (0 = none; pre-token clients). Echoed in
  // the kAccepted frame so a client that resent after a suspected loss can
  // correlate — and discard — a duplicate accept instead of mis-attributing
  // it to the next submission in FIFO order.
  uint64_t token() const { return token_; }
  const Profile& profile() const { return profile_; }

  // Transfers the trace blob's bytes out as an owned string (one copy — the
  // only one the admission path ever makes, and only on a cache miss).
  std::string TakeTraceBlob() const {
    return std::string(trace_blob());
  }

 private:
  friend bool DecodeSubmitEnvelope(std::string payload, SubmitEnvelope* out);

  std::string_view Field(size_t off, size_t len) const {
    return std::string_view(payload_).substr(off, len);
  }

  std::string payload_;
  size_t bug_id_off_ = 0, bug_id_len_ = 0;
  size_t tag_off_ = 0, tag_len_ = 0;
  size_t profile_off_ = 0, profile_len_ = 0;
  size_t trace_off_ = 0, trace_len_ = 0;
  uint64_t seed_ = 42;
  uint64_t token_ = 0;
  Profile profile_;
};

struct AcceptedMsg {
  uint64_t job_id = 0;
  AcceptKind kind = AcceptKind::kQueued;
  uint64_t queue_depth = 0;  // Jobs ahead of this one (queued disposition).
  // Echo of the submission's idempotency token (0 when the client sent
  // none). Encoded as an optional trailing varint: pre-token decoders
  // ignore trailing bytes, so the extension is additive within version 1.
  uint64_t token = 0;
};

// --- Streaming ingestion messages (DESIGN.md §16) ----------------------------

// kStreamOpen payload: everything a kSubmit carries except the trace blob,
// which follows incrementally as kStreamData chunks.
struct StreamOpenMsg {
  std::string bug_id;
  uint64_t seed = 42;
  std::string tag;
  std::string profile_text;   // SerializeProfile() form.
  uint64_t token = 0;         // Idempotency token, echoed in kAccepted.
};

// kStreamClose payload. Closing a session discards its window (a session
// whose oracle already fired keeps its admitted diagnosis job running).
struct StreamCloseMsg {
  uint64_t job_id = 0;
};

// kThrottle payload (server -> client).
struct ThrottleMsg {
  uint64_t job_id = 0;
  bool on = false;
  uint64_t resident_bytes = 0;  // Session window occupancy at send time.
};

// Job lifecycle milestones streamed while a diagnosis runs.
enum class ProgressKind : uint8_t {
  kRunning = 0,     // Dequeued: a worker picked the job up.
  kLevelStart = 1,  // Diagnosis entered level `level`.
  kCandidate = 2,   // One candidate schedule executed.
  kConfirm = 3,     // One confirmBug rerun consumed.
};

struct ProgressMsg {
  uint64_t job_id = 0;
  ProgressKind kind = ProgressKind::kRunning;
  uint32_t level = 0;
  uint32_t schedules = 0;
  uint32_t runs = 0;
  uint32_t rate_permille = 0;
  std::string detail;

  std::string ToString() const;
};

struct ResultMsg {
  uint64_t job_id = 0;
  bool reproduced = false;
  bool cached = false;
  bool coalesced = false;
  uint32_t rate_permille = 0;   // Replay rate, per-mille (60% -> 600).
  uint32_t level = 0;
  uint32_t schedules = 0;
  uint32_t runs = 0;
  std::string schedule_yaml;    // FaultSchedule::ToYaml(), byte-exact.
  std::string fault_summary;
};

struct ErrorMsg {
  uint64_t job_id = 0;  // 0 = responds to the oldest unanswered submission.
  ServeError code = ServeError::kNone;
  std::string message;
};

// Server self-metrics answered to a kStatsRequest: the daemon's lifetime
// ServeStats counters, the instantaneous queue/worker state, and the full
// rose::obs registry snapshot in its YAML form (docs/metrics.md).
struct StatsMsg {
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t cache_hits = 0;
  uint64_t coalesced = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_invalid = 0;
  uint64_t corrupt_frames = 0;
  uint64_t engine_runs = 0;
  uint64_t queued_jobs = 0;
  uint64_t running_jobs = 0;
  std::string metrics_yaml;  // MetricsSnapshot::ToYaml() ("# rose-obs v1").

  std::string ToString() const;  // One summary line (daemon heartbeat form).
};

// --- Encoding ---------------------------------------------------------------

void AppendServeHeader(std::string* out);
// Appends one `kind` frame wrapping `payload` (length + CRC32 computed here).
void AppendServeFrame(std::string* out, ServeFrame kind, std::string_view payload);

std::string EncodeSubmit(const SubmitRequest& request);
// Zero-copy encode: wraps an already-serialized RTRC blob (e.g. the bytes
// of a mapped dump file) without re-encoding a Trace. EncodeSubmit is this
// plus SerializeBinary; the canonical hash is encoding-independent, so a
// raw-blob submission and a re-encoded one dedup to the same cache key.
std::string EncodeSubmitBlob(std::string_view bug_id, uint64_t seed, std::string_view tag,
                             std::string_view profile_text, std::string_view trace_blob,
                             uint64_t token = 0);
std::string EncodeAccepted(const AcceptedMsg& msg);
std::string EncodeStreamOpen(const StreamOpenMsg& msg);
// kStreamData payload: varint session job id, then the raw RTRC stream
// bytes verbatim (no inner length prefix — the frame bounds the chunk).
std::string EncodeStreamData(uint64_t job_id, std::string_view chunk);
std::string EncodeStreamClose(const StreamCloseMsg& msg);
std::string EncodeThrottle(const ThrottleMsg& msg);
std::string EncodeProgress(const ProgressMsg& msg);
std::string EncodeResult(const ResultMsg& msg);
std::string EncodeError(const ErrorMsg& msg);
std::string EncodeStats(const StatsMsg& msg);

// Payload decoders; false on malformed input (missing fields / overrun).
// DecodeSubmit parses the embedded RTRC blob; container damage (truncation,
// CRC) lands in `trace_diags` — the frame still decodes, the *service*
// decides whether a damaged dump is admissible.
bool DecodeSubmit(std::string_view payload, SubmitRequest* out,
                  std::vector<Diagnostic>* trace_diags = nullptr);
// Zero-copy decode: adopts `payload` (move the DecodedFrame's payload in)
// and records field offsets without parsing the trace blob at all. Same
// false-on-malformed semantics as DecodeSubmit, including the ParseProfile
// check; trace-container damage surfaces later, from whoever consumes
// trace_blob().
bool DecodeSubmitEnvelope(std::string payload, SubmitEnvelope* out);
bool DecodeAccepted(std::string_view payload, AcceptedMsg* out);
bool DecodeStreamOpen(std::string_view payload, StreamOpenMsg* out);
// `*chunk` views into `payload`; the caller keeps the payload alive while
// feeding the chunk onward (zero-copy into the ingestor).
bool DecodeStreamData(std::string_view payload, uint64_t* job_id, std::string_view* chunk);
bool DecodeStreamClose(std::string_view payload, StreamCloseMsg* out);
bool DecodeThrottle(std::string_view payload, ThrottleMsg* out);
bool DecodeProgress(std::string_view payload, ProgressMsg* out);
bool DecodeResult(std::string_view payload, ResultMsg* out);
bool DecodeError(std::string_view payload, ErrorMsg* out);
bool DecodeStats(std::string_view payload, StatsMsg* out);

// --- Incremental frame decoding ---------------------------------------------

struct DecodedFrame {
  ServeFrame kind = ServeFrame::kSubmit;
  std::string payload;
};

// Reassembles frames from an arbitrarily-chunked byte stream (transports
// deliver short reads; a submit frame can arrive over hundreds of Feed()
// calls). The decoder validates the stream header first, then yields one
// frame at a time; corrupt frames are skipped with exact resynchronization.
class FrameDecoder {
 public:
  enum class Status : uint8_t {
    kNeedMore = 0,   // No complete frame buffered yet.
    kFrame,          // `out` holds the next frame.
    kCorruptFrame,   // A frame failed its CRC and was skipped; stream continues.
    kBadStream,      // Header magic/version invalid; the connection is dead.
  };

  void Feed(std::string_view bytes) { buffer_.append(bytes.data(), bytes.size()); }

  // Pulls the next event out of the buffer. Call until kNeedMore.
  Status Next(DecodedFrame* out);

  bool header_ok() const { return header_done_ && !dead_; }
  bool dead() const { return dead_; }
  // Bytes buffered but not yet consumed (reassembly backlog).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  void Compact();

  std::string buffer_;
  size_t consumed_ = 0;
  bool header_done_ = false;
  bool dead_ = false;
};

// --- Profile baseline serialization ------------------------------------------

// Deterministic text form of a Profile ("rose-profile v1" header; one fact
// per line, ordered). Carried inside kSubmit and written next to saved dumps.
std::string SerializeProfile(const Profile& profile);
bool ParseProfile(std::string_view text, Profile* out);

}  // namespace rose

#endif  // SRC_SERVE_PROTOCOL_H_
