#include "src/serve/result_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/strings.h"

namespace rose {

namespace {

std::string KeyName(uint64_t key) {
  return StrFormat("%016llx", static_cast<unsigned long long>(key));
}

bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Temp-file + atomic rename: a crash mid-write leaves a stray .tmp (ignored
// by LoadFromDisk), never a half-written cache entry under its final name.
// Readers therefore see each file either whole or absent.
bool WriteFileAtomic(const std::filesystem::path& path, std::string_view data) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out.good()) {
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

ResultCache::ResultCache(size_t capacity, std::string dir)
    : capacity_(capacity), dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    LoadFromDisk();
  }
}

std::optional<CachedResult> ResultCache::Get(uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  lru_.splice(lru_.end(), lru_, it->second.lru_it);
  return it->second.result;
}

void ResultCache::Put(uint64_t key, const CachedResult& result) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.result = result;
    lru_.splice(lru_.end(), lru_, it->second.lru_it);
  } else {
    lru_.push_back(key);
    entries_[key] = Entry{result, std::prev(lru_.end())};
    while (entries_.size() > capacity_ && !lru_.empty()) {
      entries_.erase(lru_.front());
      lru_.pop_front();
    }
  }
  if (!dir_.empty() && result.reproduced) {
    Persist(key, result);
  }
}

void ResultCache::Persist(uint64_t key, const CachedResult& result) const {
  const std::filesystem::path base = std::filesystem::path(dir_) / KeyName(key);
  // Yaml first, meta second: the meta file is the commit point (LoadFromDisk
  // starts from .meta files), so an entry only becomes visible once both
  // halves are durably named. yaml_bytes is written last so any truncation
  // of the meta — or of the yaml it vouches for — is detectable on load.
  if (!WriteFileAtomic(base.string() + ".yaml", result.schedule_yaml)) {
    return;
  }
  std::string meta = "rose-serve-result v1\n";
  meta += StrFormat("reproduced %d\n", result.reproduced ? 1 : 0);
  meta += StrFormat("rate_permille %u\n", result.rate_permille);
  meta += StrFormat("level %u\n", result.level);
  meta += StrFormat("schedules %u\n", result.schedules);
  meta += StrFormat("runs %u\n", result.runs);
  meta += "summary " + result.fault_summary + "\n";
  meta += StrFormat("yaml_bytes %zu\n", result.schedule_yaml.size());
  WriteFileAtomic(base.string() + ".meta", meta);
}

void ResultCache::LoadFromDisk() {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) {
    return;
  }
  // Sorted for a deterministic LRU order regardless of directory iteration
  // order; the set is re-ranked by use anyway.
  std::map<uint64_t, std::string> found;
  for (const auto& entry : it) {
    const std::filesystem::path& path = entry.path();
    if (path.extension() != ".meta") {
      continue;
    }
    uint64_t key = 0;
    const std::string stem = path.stem().string();
    if (stem.size() != 16) {
      continue;
    }
    bool valid = true;
    for (char c : stem) {
      const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
      if (!hex) {
        valid = false;
        break;
      }
      key = key << 4 | static_cast<uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
    }
    if (valid) {
      found[key] = path.string();
    }
  }
  for (const auto& [key, meta_path] : found) {
    std::string meta;
    if (!ReadFile(meta_path, &meta)) {
      continue;
    }
    CachedResult result;
    bool header_ok = false;
    bool sealed = false;  // yaml_bytes present = the meta is complete.
    uint64_t yaml_bytes = 0;
    for (const std::string& raw : Split(meta, '\n')) {
      const std::string_view line = StripWhitespace(raw);
      if (line.empty()) {
        continue;
      }
      if (!header_ok) {
        if (line != "rose-serve-result v1") {
          break;
        }
        header_ok = true;
        continue;
      }
      const size_t space = line.find(' ');
      if (space == std::string_view::npos) {
        continue;
      }
      const std::string_view field = line.substr(0, space);
      const std::string_view value = line.substr(space + 1);
      uint64_t number = 0;
      if (field == "summary") {
        result.fault_summary = std::string(value);
      } else if (ParseUint64(value, &number)) {
        if (field == "reproduced") {
          result.reproduced = number != 0;
        } else if (field == "rate_permille") {
          result.rate_permille = static_cast<uint32_t>(number);
        } else if (field == "level") {
          result.level = static_cast<uint32_t>(number);
        } else if (field == "schedules") {
          result.schedules = static_cast<uint32_t>(number);
        } else if (field == "runs") {
          result.runs = static_cast<uint32_t>(number);
        } else if (field == "yaml_bytes") {
          yaml_bytes = number;
          sealed = true;
        }
      }
    }
    std::string yaml;
    const std::string yaml_path =
        meta_path.substr(0, meta_path.size() - 5) + ".yaml";
    // `sealed` rejects a meta truncated mid-file (yaml_bytes is its last
    // line); the size check rejects a yaml truncated after its meta was
    // sealed. Either way the damaged entry is skipped cleanly — the cache
    // recovers with one fewer hit, never with a corrupt schedule.
    if (!header_ok || !sealed || !ReadFile(yaml_path, &yaml) ||
        yaml.size() != yaml_bytes) {
      continue;
    }
    result.schedule_yaml = std::move(yaml);
    // Insert without re-persisting (Put would rewrite identical bytes).
    lru_.push_back(key);
    entries_[key] = Entry{std::move(result), std::prev(lru_.end())};
    while (entries_.size() > capacity_ && !lru_.empty()) {
      entries_.erase(lru_.front());
      lru_.pop_front();
    }
  }
}

}  // namespace rose
