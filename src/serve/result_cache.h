// Canonical-hash result cache for served diagnoses.
//
// Diagnosis is a pure function of (bug spec, profile, production dump, seed):
// the engine is deterministic, so two submissions with the same canonical
// key MUST produce the same confirmed schedule — recomputing it would burn
// thousands of simulated runs to rediscover a known answer. The cache maps
//
//   key = FNV-mix(canonical trace hash, bug id, seed)
//
// to the finished DiagnosisResult essentials. The canonical trace hash
// (rose::analyze) is pool-independent, so a dump that went through save /
// load / merge round-trips still hits.
//
// Bounds and durability:
//   - In memory: LRU over `capacity` entries (Get promotes, Put evicts).
//   - On disk (optional `dir`): confirmed schedules persist as
//     `<key>.yaml` — the byte-exact FaultSchedule::ToYaml() output, valid
//     input for the executor and `lint_schedule` as-is — plus a `<key>.meta`
//     sidecar with the counters (the YAML stays pristine because the
//     schedule parser has no comment syntax). A restarted daemon reloads
//     the directory and keeps answering O(1) for every schedule it ever
//     confirmed. Unconfirmed results are cached in memory only: they are
//     deterministic too, but worthless across restarts.
#ifndef SRC_SERVE_RESULT_CACHE_H_
#define SRC_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

namespace rose {

struct CachedResult {
  bool reproduced = false;
  std::string schedule_yaml;
  uint32_t rate_permille = 0;
  uint32_t level = 0;
  uint32_t schedules = 0;
  uint32_t runs = 0;
  std::string fault_summary;
};

class ResultCache {
 public:
  // Loads any persisted entries from `dir` (created if missing; empty
  // disables persistence), most recently written last into LRU order.
  ResultCache(size_t capacity, std::string dir);

  // Hit promotes the entry to most-recently-used.
  std::optional<CachedResult> Get(uint64_t key);

  // Inserts (or refreshes) an entry; persists confirmed ones when a
  // directory is configured. Evicts the least-recently-used entry beyond
  // capacity (memory only — the disk copy survives for the next restart).
  void Put(uint64_t key, const CachedResult& result);

  size_t size() const { return entries_.size(); }
  const std::string& dir() const { return dir_; }

 private:
  void Persist(uint64_t key, const CachedResult& result) const;
  void LoadFromDisk();

  size_t capacity_;
  std::string dir_;
  // MRU at the back; map points into the list.
  std::list<uint64_t> lru_;
  struct Entry {
    CachedResult result;
    std::list<uint64_t>::iterator lru_it;
  };
  std::map<uint64_t, Entry> entries_;
};

}  // namespace rose

#endif  // SRC_SERVE_RESULT_CACHE_H_
