#include "src/serve/service.h"

#include <algorithm>
#include <cmath>

#include "src/analyze/trace_validator.h"
#include "src/causal/causal_graph.h"
#include "src/common/strings.h"
#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

namespace rose {

namespace {

constexpr size_t kReadChunk = 16 * 1024;

uint64_t FnvMix(uint64_t hash, std::string_view bytes) {
  for (char ch : bytes) {
    hash ^= static_cast<uint8_t>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; i++) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint32_t RatePermille(double rate_percent) {
  return static_cast<uint32_t>(std::lround(rate_percent * 10.0));
}

}  // namespace

uint64_t DiagnosisService::JobKey(uint64_t trace_hash, std::string_view bug_id,
                                  uint64_t seed) {
  uint64_t key = FnvMix(0xcbf29ce484222325ULL, trace_hash);
  key = FnvMix(key, bug_id);
  return FnvMix(key, seed);
}

DiagnosisService::DiagnosisService(ServeConfig config)
    : config_(config),
      cache_(config.cache_capacity, config.cache_dir),
      queue_(config.queue_capacity),
      pool_(std::make_unique<WorkerPool>(std::max(config.max_concurrent_jobs, 1))) {
  MetricRegistry& reg = MetricRegistry::Global();
  metrics_.submissions = reg.GetCounter("serve.submissions");
  metrics_.cache_hits = reg.GetCounter("serve.cache_hits");
  metrics_.cache_misses = reg.GetCounter("serve.cache_misses");
  metrics_.coalesced = reg.GetCounter("serve.coalesced");
  metrics_.rejects_queue_full = reg.GetCounter("serve.rejects_queue_full");
  metrics_.rejects_invalid = reg.GetCounter("serve.rejects_invalid");
  metrics_.rejects_causal = reg.GetCounter("serve.rejects_causal");
  metrics_.corrupt_frames = reg.GetCounter("serve.corrupt_frames");
  metrics_.stats_requests = reg.GetCounter("serve.stats_requests");
  metrics_.admit_zero_copy = reg.GetCounter("serve.admit_zero_copy");
  metrics_.queue_depth = reg.GetGauge("serve.queue_depth");
  metrics_.job_ns = reg.GetHistogram("serve.job_ns");
}

DiagnosisService::~DiagnosisService() {
  // WorkerPool's destructor drains queued closures and joins; every worker
  // references only jobs_ entries, which outlive pool_ (member order).
  pool_.reset();
}

void DiagnosisService::Attach(std::shared_ptr<Transport> transport) {
  auto conn = std::make_unique<Connection>();
  conn->id = next_connection_id_++;
  conn->transport = std::move(transport);
  AppendServeHeader(&conn->outbox);
  connections_.emplace(conn->id, std::move(conn));
}

void DiagnosisService::Poll() {
  for (auto& [id, conn] : connections_) {
    if (!conn->dead) {
      ReadConnection(*conn);
    }
  }
  StartJobs();
  HarvestJobs();
  FlushConnections();
}

bool DiagnosisService::idle() const {
  if (!queue_.empty() || running_ != 0) {
    return false;
  }
  for (const auto& [id, conn] : connections_) {
    if (!conn->dead && conn->outbox_sent < conn->outbox.size()) {
      return false;
    }
  }
  return true;
}

void DiagnosisService::ReadConnection(Connection& conn) {
  for (;;) {
    const std::string chunk = conn.transport->Read(kReadChunk);
    if (chunk.empty()) {
      break;
    }
    conn.decoder.Feed(chunk);
  }
  DecodedFrame frame;
  for (;;) {
    switch (conn.decoder.Next(&frame)) {
      case FrameDecoder::Status::kNeedMore:
        return;
      case FrameDecoder::Status::kFrame:
        if (frame.kind == ServeFrame::kSubmit) {
          HandleSubmit(conn, std::move(frame.payload));
        } else if (frame.kind == ServeFrame::kStatsRequest) {
          metrics_.stats_requests->Inc();
          SendFrame(conn.id, ServeFrame::kStatsReply, EncodeStats(BuildStats()));
        }
        // Unknown / server-only kinds from a confused peer are skipped;
        // framing already advanced past them.
        break;
      case FrameDecoder::Status::kCorruptFrame:
        stats_.corrupt_frames++;
        metrics_.corrupt_frames->Inc();
        SendError(conn, ServeError::kBadFrame,
                  "frame failed its CRC32 and was skipped; resend the submission");
        break;
      case FrameDecoder::Status::kBadStream:
        SendError(conn, ServeError::kVersionMismatch,
                  "bad stream header or unsupported protocol version");
        conn.dead = true;
        FlushConnections();
        conn.transport->Close();
        return;
    }
  }
}

void DiagnosisService::HandleSubmit(Connection& conn, std::string payload) {
  SubmitEnvelope env;
  if (!DecodeSubmitEnvelope(std::move(payload), &env)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kMalformedRequest, "submit payload does not decode");
    return;
  }
  const std::string bug_id(env.bug_id());
  const BugSpec* spec = FindBug(bug_id);
  if (spec == nullptr) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kUnknownBug, "unknown bug id: " + bug_id);
    return;
  }
  // Streaming canonical hash straight over the RTRC blob: the cache/dedup
  // key is known before any owning Trace exists — a repeat submission is
  // answered below without materializing the trace at all. Container damage
  // (TB2xx: truncation, CRC) falls out of the same single pass.
  uint64_t trace_hash = 0;
  size_t event_count = 0;
  std::vector<Diagnostic> container_diags;
  CanonicalBlobHash(env.trace_blob(), &trace_hash, &container_diags, &event_count);
  if (HasErrors(container_diags)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kInvalidTrace,
              "trace container damaged: " + container_diags.front().ToString());
    return;
  }
  if (event_count == 0) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kInvalidTrace, "trace decoded to zero events");
    return;
  }
  const uint64_t key = JobKey(trace_hash, bug_id, env.seed());

  // O(1) repeat: answered from the cache without touching the engine — and,
  // with the key streamed above, without a single trace copy. Validation is
  // safely skipped here: a cached key means a byte-canonical-identical trace
  // already passed the full admission checks before its diagnosis ran.
  if (std::optional<CachedResult> cached = cache_.Get(key)) {
    stats_.jobs_submitted++;
    metrics_.submissions->Inc();
    stats_.cache_hits++;
    metrics_.cache_hits->Inc();
    metrics_.admit_zero_copy->Inc();
    const uint64_t job_id = next_job_id_++;
    AcceptedMsg accepted;
    accepted.job_id = job_id;
    accepted.kind = AcceptKind::kCacheHit;
    SendFrame(conn.id, ServeFrame::kAccepted, EncodeAccepted(accepted));
    ResultMsg msg;
    msg.job_id = job_id;
    msg.reproduced = cached->reproduced;
    msg.cached = true;
    msg.rate_permille = cached->rate_permille;
    msg.level = cached->level;
    msg.schedules = cached->schedules;
    msg.runs = cached->runs;
    msg.schedule_yaml = cached->schedule_yaml;
    msg.fault_summary = cached->fault_summary;
    SendFrame(conn.id, ServeFrame::kResult, EncodeResult(msg));
    return;
  }
  metrics_.cache_misses->Inc();

  // Identical job already queued/running: subscribe, don't re-run. Like the
  // cache hit, the in-flight job's trace already passed admission checks.
  if (auto it = inflight_by_key_.find(key); it != inflight_by_key_.end()) {
    Job& job = *jobs_.at(it->second);
    stats_.jobs_submitted++;
    metrics_.submissions->Inc();
    stats_.coalesced++;
    metrics_.coalesced->Inc();
    metrics_.admit_zero_copy->Inc();
    job.subscribers.emplace_back(conn.id, /*coalesced=*/true);
    AcceptedMsg accepted;
    accepted.job_id = job.id;
    accepted.kind = AcceptKind::kCoalesced;
    SendFrame(conn.id, ServeFrame::kAccepted, EncodeAccepted(accepted));
    return;
  }

  // First sighting of this key: now — and only now — the trace materializes,
  // as a zero-copy decode over the blob moved out of the envelope (pool
  // strings resolve into the adopted bytes; no owning Trace is built).
  MappedTrace mapped = MappedTrace::FromBuffer(env.TakeTraceBlob());
  Profile profile = env.profile();

  // Up-front validation: a structurally-invalid trace would burn thousands
  // of simulated runs on garbage. TV1xx from the validator.
  TraceValidateOptions validate_options;
  validate_options.profile = &profile;
  const std::vector<Diagnostic> validation =
      TraceValidator(validate_options).Validate(mapped.view());
  if (HasErrors(validation)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kInvalidTrace,
              "trace failed validation: " + validation.front().ToString());
    return;
  }
  // Causal consistency (TB303, DESIGN.md §12): a trace the happens-before
  // model itself refutes — a pid alive on two nodes, events from a process
  // after its crash — would feed the engine a graph whose prunes are
  // meaningless. Vector clocks are skipped: admission only needs the prescan.
  const CausalGraph causal(mapped.view(), CausalOptions{/*vector_clocks=*/false});
  if (HasErrors(causal.diagnostics())) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    metrics_.rejects_causal->Inc();
    SendError(conn, ServeError::kInvalidTrace,
              "trace causally inconsistent: " + causal.diagnostics().front().ToString());
    return;
  }

  stats_.jobs_submitted++;
  metrics_.submissions->Inc();
  metrics_.admit_zero_copy->Inc();

  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->key = key;
  job->seed = env.seed();
  job->bug_id = bug_id;
  job->tag = std::string(env.tag());
  job->spec = spec;
  job->profile = std::move(profile);
  job->trace = std::move(mapped);
  job->subscribers.emplace_back(conn.id, /*coalesced=*/false);

  if (queue_.Push(conn.id, job->id) == JobQueue::PushResult::kFull) {
    stats_.rejected_queue_full++;
    metrics_.rejects_queue_full->Inc();
    SendError(conn, ServeError::kQueueFull,
              StrFormat("job queue at capacity (%zu); retry with backoff",
                        queue_.capacity()));
    return;  // `job` dies here; nothing was registered.
  }
  job->admitted = std::chrono::steady_clock::now();
  metrics_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
  MetricRegistry::Global()
      .GetGauge("serve.queue_depth.client" + std::to_string(conn.id))
      ->Set(static_cast<int64_t>(queue_.DepthOf(conn.id)));

  AcceptedMsg accepted;
  accepted.job_id = job->id;
  accepted.kind = AcceptKind::kQueued;
  accepted.queue_depth = queue_.size() - 1;
  SendFrame(conn.id, ServeFrame::kAccepted, EncodeAccepted(accepted));
  inflight_by_key_.emplace(key, job->id);
  jobs_.emplace(job->id, std::move(job));
}

void DiagnosisService::StartJobs() {
  while (running_ < std::max(config_.max_concurrent_jobs, 1)) {
    const std::optional<uint64_t> job_id = queue_.Pop();
    if (!job_id.has_value()) {
      return;
    }
    Job& job = *jobs_.at(*job_id);
    job.state = Job::State::kRunning;
    running_++;
    metrics_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
    if (!job.subscribers.empty()) {
      const uint64_t tenant = job.subscribers.front().first;
      MetricRegistry::Global()
          .GetGauge("serve.queue_depth.client" + std::to_string(tenant))
          ->Set(static_cast<int64_t>(queue_.DepthOf(tenant)));
    }

    ProgressMsg msg;
    msg.job_id = job.id;
    msg.kind = ProgressKind::kRunning;
    msg.detail = job.tag.empty() ? job.bug_id : job.tag;
    BroadcastProgress(job, msg);

    RoseConfig run_config;
    run_config.seed = job.seed;
    run_config.diagnosis = config_.diagnosis;
    Job* shared = &job;
    run_config.diagnosis.on_progress = [shared](const DiagnosisProgress& progress) {
      std::lock_guard<std::mutex> lock(shared->mutex);
      shared->pending_progress.push_back(progress);
    };
    const BugSpec* spec = job.spec;
    pool_->Enqueue([shared, spec, run_config = std::move(run_config)] {
      DiagnosisResult result =
          DiagnoseTrace(*spec, shared->profile, shared->trace.view(), run_config);
      std::lock_guard<std::mutex> lock(shared->mutex);
      shared->result = std::move(result);
      shared->finished = true;
    });
  }
}

void DiagnosisService::HarvestJobs() {
  std::vector<uint64_t> done;
  for (auto& [id, job] : jobs_) {
    if (job->state != Job::State::kRunning) {
      continue;
    }
    std::deque<DiagnosisProgress> progress;
    bool finished = false;
    {
      std::lock_guard<std::mutex> lock(job->mutex);
      progress.swap(job->pending_progress);
      finished = job->finished;
    }
    for (const DiagnosisProgress& step : progress) {
      ProgressMsg msg;
      msg.job_id = job->id;
      switch (step.kind) {
        case DiagnosisProgress::Kind::kLevelStart:
          msg.kind = ProgressKind::kLevelStart;
          break;
        case DiagnosisProgress::Kind::kCandidate:
          msg.kind = ProgressKind::kCandidate;
          break;
        case DiagnosisProgress::Kind::kConfirmRun:
          msg.kind = ProgressKind::kConfirm;
          break;
      }
      msg.level = static_cast<uint32_t>(std::max(step.level, 0));
      msg.schedules = static_cast<uint32_t>(std::max(step.schedules_generated, 0));
      msg.runs = static_cast<uint32_t>(std::max(step.total_runs, 0));
      msg.rate_permille = RatePermille(step.rate);
      msg.detail = step.detail;
      BroadcastProgress(*job, msg);
    }
    if (!finished) {
      continue;
    }
    // Past this point no worker touches the job again: the closure set
    // `finished` as its last locked action.
    job->state = Job::State::kDone;
    running_--;
    stats_.jobs_completed++;
    stats_.engine_runs += static_cast<uint64_t>(std::max(job->result.total_runs, 0));
#if ROSE_OBS_ENABLED
    metrics_.job_ns->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - job->admitted)
            .count()));
#endif

    CachedResult cached;
    cached.reproduced = job->result.reproduced;
    cached.schedule_yaml = job->result.schedule.ToYaml();
    cached.rate_permille = RatePermille(job->result.replay_rate);
    cached.level = static_cast<uint32_t>(std::max(job->result.level, 0));
    cached.schedules = static_cast<uint32_t>(std::max(job->result.schedules_generated, 0));
    cached.runs = static_cast<uint32_t>(std::max(job->result.total_runs, 0));
    cached.fault_summary = job->result.fault_summary;
    cache_.Put(job->key, cached);

    BroadcastResult(*job, cached);
    inflight_by_key_.erase(job->key);
    done.push_back(id);
  }
  for (uint64_t id : done) {
    jobs_.erase(id);  // Frees the dump; the cache keeps the answer.
  }
}

StatsMsg DiagnosisService::BuildStats() const {
  StatsMsg msg;
  msg.jobs_submitted = stats_.jobs_submitted;
  msg.jobs_completed = stats_.jobs_completed;
  msg.cache_hits = stats_.cache_hits;
  msg.coalesced = stats_.coalesced;
  msg.rejected_queue_full = stats_.rejected_queue_full;
  msg.rejected_invalid = stats_.rejected_invalid;
  msg.corrupt_frames = stats_.corrupt_frames;
  msg.engine_runs = stats_.engine_runs;
  msg.queued_jobs = queue_.size();
  msg.running_jobs = static_cast<uint64_t>(std::max(running_, 0));
  msg.metrics_yaml = MetricRegistry::Global().Snapshot().ToYaml();
  return msg;
}

void DiagnosisService::FlushConnections() {
  for (auto& [id, conn] : connections_) {
    if (conn->outbox_sent >= conn->outbox.size()) {
      continue;
    }
    const std::string_view rest =
        std::string_view(conn->outbox).substr(conn->outbox_sent);
    conn->outbox_sent += conn->transport->Write(rest);
    if (conn->outbox_sent >= conn->outbox.size()) {
      conn->outbox.clear();
      conn->outbox_sent = 0;
    } else if (conn->outbox_sent > 64 * 1024 &&
               conn->outbox_sent * 2 >= conn->outbox.size()) {
      conn->outbox.erase(0, conn->outbox_sent);
      conn->outbox_sent = 0;
    }
  }
}

void DiagnosisService::SendFrame(uint64_t conn_id, ServeFrame kind,
                                 const std::string& payload) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end() || it->second->dead) {
    return;
  }
  AppendServeFrame(&it->second->outbox, kind, payload);
}

void DiagnosisService::SendError(Connection& conn, ServeError code,
                                 const std::string& message) {
  ErrorMsg msg;
  msg.code = code;
  msg.message = message;
  SendFrame(conn.id, ServeFrame::kError, EncodeError(msg));
}

void DiagnosisService::BroadcastProgress(const Job& job, const ProgressMsg& msg) {
  const std::string payload = EncodeProgress(msg);
  for (const auto& [conn_id, coalesced] : job.subscribers) {
    SendFrame(conn_id, ServeFrame::kProgress, payload);
  }
}

void DiagnosisService::BroadcastResult(Job& job, const CachedResult& cached) {
  ResultMsg msg;
  msg.job_id = job.id;
  msg.reproduced = cached.reproduced;
  msg.cached = false;
  msg.rate_permille = cached.rate_permille;
  msg.level = cached.level;
  msg.schedules = cached.schedules;
  msg.runs = cached.runs;
  msg.schedule_yaml = cached.schedule_yaml;
  msg.fault_summary = cached.fault_summary;
  for (const auto& [conn_id, coalesced] : job.subscribers) {
    msg.coalesced = coalesced;
    SendFrame(conn_id, ServeFrame::kResult, EncodeResult(msg));
  }
}

}  // namespace rose
