#include "src/serve/service.h"

#include <algorithm>
#include <cmath>

#include "src/analyze/trace_validator.h"
#include "src/causal/causal_graph.h"
#include "src/common/strings.h"
#include "src/harness/bug_registry.h"
#include "src/harness/rose.h"

namespace rose {

namespace {

constexpr size_t kReadChunk = 16 * 1024;

uint64_t FnvMix(uint64_t hash, std::string_view bytes) {
  for (char ch : bytes) {
    hash ^= static_cast<uint8_t>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; i++) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint32_t RatePermille(double rate_percent) {
  return static_cast<uint32_t>(std::lround(rate_percent * 10.0));
}

}  // namespace

uint64_t DiagnosisService::JobKey(uint64_t trace_hash, std::string_view bug_id,
                                  uint64_t seed) {
  uint64_t key = FnvMix(0xcbf29ce484222325ULL, trace_hash);
  key = FnvMix(key, bug_id);
  return FnvMix(key, seed);
}

DiagnosisService::DiagnosisService(ServeConfig config)
    : config_(config),
      cache_(config.cache_capacity, config.cache_dir),
      queue_(config.queue_capacity),
      ingestor_(StreamIngestorConfig{config.stream_window_bytes, config.stream_spill_dir,
                                     config.stream_spill_bytes}),
      pool_(std::make_unique<WorkerPool>(std::max(config.max_concurrent_jobs, 1))) {
  MetricRegistry& reg = MetricRegistry::Global();
  metrics_.submissions = reg.GetCounter("serve.submissions");
  metrics_.cache_hits = reg.GetCounter("serve.cache_hits");
  metrics_.cache_misses = reg.GetCounter("serve.cache_misses");
  metrics_.coalesced = reg.GetCounter("serve.coalesced");
  metrics_.rejects_queue_full = reg.GetCounter("serve.rejects_queue_full");
  metrics_.rejects_invalid = reg.GetCounter("serve.rejects_invalid");
  metrics_.rejects_causal = reg.GetCounter("serve.rejects_causal");
  metrics_.corrupt_frames = reg.GetCounter("serve.corrupt_frames");
  metrics_.stats_requests = reg.GetCounter("serve.stats_requests");
  metrics_.admit_zero_copy = reg.GetCounter("serve.admit_zero_copy");
  metrics_.queue_depth = reg.GetGauge("serve.queue_depth");
  metrics_.job_ns = reg.GetHistogram("serve.job_ns");
  metrics_.stream_sessions_opened = reg.GetCounter("stream.sessions_opened");
  metrics_.stream_data_frames = reg.GetCounter("stream.data_frames");
  metrics_.stream_bytes_ingested = reg.GetCounter("stream.bytes_ingested");
  metrics_.stream_throttle_events = reg.GetCounter("stream.throttle_events");
  metrics_.stream_oracle_marks = reg.GetCounter("stream.oracle_marks");
  metrics_.stream_oracle_to_candidate_ns = reg.GetHistogram("stream.oracle_to_candidate_ns");
}

DiagnosisService::~DiagnosisService() {
  // WorkerPool's destructor drains queued closures and joins; every worker
  // references only jobs_ entries, which outlive pool_ (member order).
  pool_.reset();
}

void DiagnosisService::Attach(std::shared_ptr<Transport> transport) {
  auto conn = std::make_unique<Connection>();
  conn->id = next_connection_id_++;
  conn->transport = std::move(transport);
  AppendServeHeader(&conn->outbox);
  connections_.emplace(conn->id, std::move(conn));
}

void DiagnosisService::Poll() {
  for (auto& [id, conn] : connections_) {
    if (!conn->dead) {
      ReadConnection(*conn);
    }
  }
  PollStreamSessions();
  StartJobs();
  HarvestJobs();
  FlushConnections();
}

bool DiagnosisService::idle() const {
  if (!queue_.empty() || running_ != 0) {
    return false;
  }
  for (const auto& [id, conn] : connections_) {
    if (!conn->dead && conn->outbox_sent < conn->outbox.size()) {
      return false;
    }
  }
  return true;
}

void DiagnosisService::ReadConnection(Connection& conn) {
  for (;;) {
    const std::string chunk = conn.transport->Read(kReadChunk);
    if (chunk.empty()) {
      break;
    }
    conn.decoder.Feed(chunk);
  }
  DecodedFrame frame;
  for (;;) {
    switch (conn.decoder.Next(&frame)) {
      case FrameDecoder::Status::kNeedMore:
        return;
      case FrameDecoder::Status::kFrame:
        if (frame.kind == ServeFrame::kSubmit) {
          HandleSubmit(conn, std::move(frame.payload));
        } else if (frame.kind == ServeFrame::kStatsRequest) {
          metrics_.stats_requests->Inc();
          SendFrame(conn.id, ServeFrame::kStatsReply, EncodeStats(BuildStats()));
        } else if (frame.kind == ServeFrame::kStreamOpen) {
          HandleStreamOpen(conn, frame.payload);
        } else if (frame.kind == ServeFrame::kStreamData) {
          HandleStreamData(conn, frame.payload);
        } else if (frame.kind == ServeFrame::kStreamClose) {
          HandleStreamClose(conn, frame.payload);
        }
        // Unknown / server-only kinds from a confused peer are skipped;
        // framing already advanced past them.
        break;
      case FrameDecoder::Status::kCorruptFrame:
        stats_.corrupt_frames++;
        metrics_.corrupt_frames->Inc();
        SendError(conn, ServeError::kBadFrame,
                  "frame failed its CRC32 and was skipped; resend the submission");
        break;
      case FrameDecoder::Status::kBadStream:
        SendError(conn, ServeError::kVersionMismatch,
                  "bad stream header or unsupported protocol version");
        conn.dead = true;
        CloseStreamSessionsFor(conn.id);
        FlushConnections();
        conn.transport->Close();
        return;
    }
  }
}

void DiagnosisService::HandleSubmit(Connection& conn, std::string payload) {
  AdmitSubmission(conn, std::move(payload), /*reply_job_id=*/0, std::nullopt);
}

void DiagnosisService::AdmitSubmission(
    Connection& conn, std::string payload, uint64_t reply_job_id,
    std::optional<std::chrono::steady_clock::time_point> oracle_at) {
  SubmitEnvelope env;
  if (!DecodeSubmitEnvelope(std::move(payload), &env)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kMalformedRequest, "submit payload does not decode",
              reply_job_id);
    return;
  }
  const std::string bug_id(env.bug_id());
  const BugSpec* spec = FindBug(bug_id);
  if (spec == nullptr) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kUnknownBug, "unknown bug id: " + bug_id, reply_job_id);
    return;
  }
  // Streaming canonical hash straight over the RTRC blob: the cache/dedup
  // key is known before any owning Trace exists — a repeat submission is
  // answered below without materializing the trace at all. Container damage
  // (TB2xx: truncation, CRC) falls out of the same single pass.
  uint64_t trace_hash = 0;
  size_t event_count = 0;
  std::vector<Diagnostic> container_diags;
  CanonicalBlobHash(env.trace_blob(), &trace_hash, &container_diags, &event_count);
  if (HasErrors(container_diags)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kInvalidTrace,
              "trace container damaged: " + container_diags.front().ToString(),
              reply_job_id);
    return;
  }
  if (event_count == 0) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kInvalidTrace, "trace decoded to zero events",
              reply_job_id);
    return;
  }
  const uint64_t key = JobKey(trace_hash, bug_id, env.seed());

  // O(1) repeat: answered from the cache without touching the engine — and,
  // with the key streamed above, without a single trace copy. Validation is
  // safely skipped here: a cached key means a byte-canonical-identical trace
  // already passed the full admission checks before its diagnosis ran.
  if (std::optional<CachedResult> cached = cache_.Get(key)) {
    stats_.jobs_submitted++;
    metrics_.submissions->Inc();
    stats_.cache_hits++;
    metrics_.cache_hits->Inc();
    metrics_.admit_zero_copy->Inc();
    const uint64_t job_id = reply_job_id != 0 ? reply_job_id : next_job_id_++;
    if (reply_job_id == 0) {
      AcceptedMsg accepted;
      accepted.job_id = job_id;
      accepted.kind = AcceptKind::kCacheHit;
      accepted.token = env.token();
      SendFrame(conn.id, ServeFrame::kAccepted, EncodeAccepted(accepted));
    }
#if ROSE_OBS_ENABLED
    if (oracle_at.has_value()) {
      metrics_.stream_oracle_to_candidate_ns->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - *oracle_at)
              .count()));
    }
#endif
    ResultMsg msg;
    msg.job_id = job_id;
    msg.reproduced = cached->reproduced;
    msg.cached = true;
    msg.rate_permille = cached->rate_permille;
    msg.level = cached->level;
    msg.schedules = cached->schedules;
    msg.runs = cached->runs;
    msg.schedule_yaml = cached->schedule_yaml;
    msg.fault_summary = cached->fault_summary;
    SendFrame(conn.id, ServeFrame::kResult, EncodeResult(msg));
    return;
  }
  metrics_.cache_misses->Inc();

  // Identical job already queued/running: subscribe, don't re-run. Like the
  // cache hit, the in-flight job's trace already passed admission checks.
  if (auto it = inflight_by_key_.find(key); it != inflight_by_key_.end()) {
    Job& job = *jobs_.at(it->second);
    stats_.jobs_submitted++;
    metrics_.submissions->Inc();
    stats_.coalesced++;
    metrics_.coalesced->Inc();
    metrics_.admit_zero_copy->Inc();
    job.subscribers.push_back({conn.id, /*coalesced=*/true, reply_job_id});
    if (reply_job_id == 0) {
      AcceptedMsg accepted;
      accepted.job_id = job.id;
      accepted.kind = AcceptKind::kCoalesced;
      accepted.token = env.token();
      SendFrame(conn.id, ServeFrame::kAccepted, EncodeAccepted(accepted));
    }
    if (oracle_at.has_value()) {
      stream_oracle_pending_.emplace(job.id, *oracle_at);
    }
    return;
  }

  // First sighting of this key: now — and only now — the trace materializes,
  // as a zero-copy decode over the blob moved out of the envelope (pool
  // strings resolve into the adopted bytes; no owning Trace is built).
  MappedTrace mapped = MappedTrace::FromBuffer(env.TakeTraceBlob());
  Profile profile = env.profile();

  // Up-front validation: a structurally-invalid trace would burn thousands
  // of simulated runs on garbage. TV1xx from the validator.
  TraceValidateOptions validate_options;
  validate_options.profile = &profile;
  const std::vector<Diagnostic> validation =
      TraceValidator(validate_options).Validate(mapped.view());
  if (HasErrors(validation)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kInvalidTrace,
              "trace failed validation: " + validation.front().ToString(), reply_job_id);
    return;
  }
  // Causal consistency (TB303, DESIGN.md §12): a trace the happens-before
  // model itself refutes — a pid alive on two nodes, events from a process
  // after its crash — would feed the engine a graph whose prunes are
  // meaningless. Vector clocks are skipped: admission only needs the prescan.
  const CausalGraph causal(mapped.view(), CausalOptions{/*vector_clocks=*/false});
  if (HasErrors(causal.diagnostics())) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    metrics_.rejects_causal->Inc();
    SendError(conn, ServeError::kInvalidTrace,
              "trace causally inconsistent: " + causal.diagnostics().front().ToString(),
              reply_job_id);
    return;
  }

  stats_.jobs_submitted++;
  metrics_.submissions->Inc();
  metrics_.admit_zero_copy->Inc();

  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->key = key;
  job->seed = env.seed();
  job->bug_id = bug_id;
  job->tag = std::string(env.tag());
  job->spec = spec;
  job->profile = std::move(profile);
  job->trace = std::move(mapped);
  job->subscribers.push_back({conn.id, /*coalesced=*/false, reply_job_id});

  if (queue_.Push(conn.id, job->id) == JobQueue::PushResult::kFull) {
    stats_.rejected_queue_full++;
    metrics_.rejects_queue_full->Inc();
    SendError(conn, ServeError::kQueueFull,
              StrFormat("job queue at capacity (%zu); retry with backoff",
                        queue_.capacity()),
              reply_job_id);
    return;  // `job` dies here; nothing was registered.
  }
  job->admitted = std::chrono::steady_clock::now();
  metrics_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
  MetricRegistry::Global()
      .GetGauge("serve.queue_depth.client" + std::to_string(conn.id))
      ->Set(static_cast<int64_t>(queue_.DepthOf(conn.id)));

  if (reply_job_id == 0) {
    AcceptedMsg accepted;
    accepted.job_id = job->id;
    accepted.kind = AcceptKind::kQueued;
    accepted.queue_depth = queue_.size() - 1;
    accepted.token = env.token();
    SendFrame(conn.id, ServeFrame::kAccepted, EncodeAccepted(accepted));
  }
  if (oracle_at.has_value()) {
    stream_oracle_pending_.emplace(job->id, *oracle_at);
  }
  inflight_by_key_.emplace(key, job->id);
  jobs_.emplace(job->id, std::move(job));
}

void DiagnosisService::HandleStreamOpen(Connection& conn, std::string_view payload) {
  StreamOpenMsg msg;
  if (!DecodeStreamOpen(payload, &msg)) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kMalformedRequest, "stream-open payload does not decode");
    return;
  }
  // Bug identity is checked at open so a misconfigured sender fails before
  // shipping a window; the trace itself is validated at oracle admission.
  if (FindBug(msg.bug_id) == nullptr) {
    stats_.rejected_invalid++;
    metrics_.rejects_invalid->Inc();
    SendError(conn, ServeError::kUnknownBug, "unknown bug id: " + msg.bug_id);
    return;
  }
  StreamSession session;
  session.id = next_job_id_++;
  session.conn_id = conn.id;
  session.bug_id = std::move(msg.bug_id);
  session.seed = msg.seed;
  session.tag = std::move(msg.tag);
  session.profile_text = std::move(msg.profile_text);
  session.token = msg.token;
  ingestor_.Open(session.id);
  metrics_.stream_sessions_opened->Inc();
  AcceptedMsg accepted;
  accepted.job_id = session.id;
  accepted.kind = AcceptKind::kStream;
  accepted.token = msg.token;
  SendFrame(conn.id, ServeFrame::kAccepted, EncodeAccepted(accepted));
  stream_sessions_.emplace(session.id, std::move(session));
}

void DiagnosisService::HandleStreamData(Connection& conn, std::string_view payload) {
  uint64_t session_id = 0;
  std::string_view chunk;
  if (!DecodeStreamData(payload, &session_id, &chunk)) {
    SendError(conn, ServeError::kMalformedRequest, "stream-data payload does not decode");
    return;
  }
  auto it = stream_sessions_.find(session_id);
  if (it == stream_sessions_.end() || it->second.conn_id != conn.id) {
    SendError(conn, ServeError::kBadFrame, "stream data for unknown session",
              session_id);
    return;
  }
  metrics_.stream_data_frames->Inc();
  metrics_.stream_bytes_ingested->Inc(chunk.size());
  if (!ingestor_.Feed(session_id, chunk)) {
    SendError(conn, ServeError::kInvalidTrace,
              "stream bytes are not a usable RTRC container", session_id);
    ingestor_.Close(session_id);
    stream_sessions_.erase(it);
    return;
  }
  if (ingestor_.oracle_pending(session_id)) {
    AdmitStreamOracle(conn, session_id);
  }
}

void DiagnosisService::HandleStreamClose(Connection& conn, std::string_view payload) {
  StreamCloseMsg msg;
  if (!DecodeStreamClose(payload, &msg)) {
    SendError(conn, ServeError::kMalformedRequest, "stream-close payload does not decode");
    return;
  }
  auto it = stream_sessions_.find(msg.job_id);
  if (it == stream_sessions_.end() || it->second.conn_id != conn.id) {
    return;  // Already gone (errored out, or a confused peer); nothing to do.
  }
  ingestor_.Close(msg.job_id);
  stream_sessions_.erase(it);
}

void DiagnosisService::AdmitStreamOracle(Connection& conn, uint64_t session_id) {
  StreamSession& session = stream_sessions_.at(session_id);
  ingestor_.TakeOracle(session_id);  // Clears the latch; ts/detail are the
                                     // sender's annotation, not inputs here.
  metrics_.stream_oracle_marks->Inc();
  const auto oracle_at = std::chrono::steady_clock::now();
  // Materialize re-canonicalizes the window exactly as Tracer::Dump would,
  // so the admission below computes the same canonical hash — and hits the
  // same cache entries — as a dump-file submission of this window. The blob
  // re-enters through the submit envelope: one encode buys the entire
  // existing admission chain (hash, cache, coalesce, validate, queue).
  AdmitSubmission(conn,
                  EncodeSubmitBlob(session.bug_id, session.seed, session.tag,
                                   session.profile_text,
                                   ingestor_.Materialize(session_id), /*token=*/0),
                  /*reply_job_id=*/session_id, oracle_at);
}

void DiagnosisService::PollStreamSessions() {
  for (auto& [id, session] : stream_sessions_) {
    const uint64_t drops = ingestor_.drops(id);
    const bool dropping = drops > session.drops_at_check;
    session.drops_at_check = drops;
    if (dropping == session.throttled) {
      continue;  // No edge; kThrottle frames only mark transitions.
    }
    session.throttled = dropping;
    if (dropping) {
      metrics_.stream_throttle_events->Inc();
    }
    ThrottleMsg msg;
    msg.job_id = id;
    msg.on = dropping;
    msg.resident_bytes = ingestor_.resident_bytes();
    SendFrame(session.conn_id, ServeFrame::kThrottle, EncodeThrottle(msg));
  }
}

void DiagnosisService::CloseStreamSessionsFor(uint64_t conn_id) {
  for (auto it = stream_sessions_.begin(); it != stream_sessions_.end();) {
    if (it->second.conn_id == conn_id) {
      ingestor_.Close(it->first);
      it = stream_sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void DiagnosisService::StartJobs() {
  while (running_ < std::max(config_.max_concurrent_jobs, 1)) {
    const std::optional<uint64_t> job_id = queue_.Pop();
    if (!job_id.has_value()) {
      return;
    }
    Job& job = *jobs_.at(*job_id);
    job.state = Job::State::kRunning;
    running_++;
    metrics_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
    if (!job.subscribers.empty()) {
      const uint64_t tenant = job.subscribers.front().conn_id;
      MetricRegistry::Global()
          .GetGauge("serve.queue_depth.client" + std::to_string(tenant))
          ->Set(static_cast<int64_t>(queue_.DepthOf(tenant)));
    }

    ProgressMsg msg;
    msg.job_id = job.id;
    msg.kind = ProgressKind::kRunning;
    msg.detail = job.tag.empty() ? job.bug_id : job.tag;
    BroadcastProgress(job, msg);

    RoseConfig run_config;
    run_config.seed = job.seed;
    run_config.diagnosis = config_.diagnosis;
    Job* shared = &job;
    run_config.diagnosis.on_progress = [shared](const DiagnosisProgress& progress) {
      std::lock_guard<std::mutex> lock(shared->mutex);
      shared->pending_progress.push_back(progress);
    };
    const BugSpec* spec = job.spec;
    pool_->Enqueue([shared, spec, run_config = std::move(run_config)] {
      DiagnosisResult result =
          DiagnoseTrace(*spec, shared->profile, shared->trace.view(), run_config);
      std::lock_guard<std::mutex> lock(shared->mutex);
      shared->result = std::move(result);
      shared->finished = true;
    });
  }
}

void DiagnosisService::HarvestJobs() {
  std::vector<uint64_t> done;
  for (auto& [id, job] : jobs_) {
    if (job->state != Job::State::kRunning) {
      continue;
    }
    std::deque<DiagnosisProgress> progress;
    bool finished = false;
    {
      std::lock_guard<std::mutex> lock(job->mutex);
      progress.swap(job->pending_progress);
      finished = job->finished;
    }
    for (const DiagnosisProgress& step : progress) {
      ProgressMsg msg;
      msg.job_id = job->id;
      switch (step.kind) {
        case DiagnosisProgress::Kind::kLevelStart:
          msg.kind = ProgressKind::kLevelStart;
          break;
        case DiagnosisProgress::Kind::kCandidate:
          msg.kind = ProgressKind::kCandidate;
          break;
        case DiagnosisProgress::Kind::kConfirmRun:
          msg.kind = ProgressKind::kConfirm;
          break;
      }
      msg.level = static_cast<uint32_t>(std::max(step.level, 0));
      msg.schedules = static_cast<uint32_t>(std::max(step.schedules_generated, 0));
      msg.runs = static_cast<uint32_t>(std::max(step.total_runs, 0));
      msg.rate_permille = RatePermille(step.rate);
      msg.detail = step.detail;
      BroadcastProgress(*job, msg);
      if (msg.kind == ProgressKind::kCandidate) {
        // First candidate for a stream-admitted job: the paper's
        // oracle-to-first-candidate latency ends here.
        auto [begin, end] = stream_oracle_pending_.equal_range(job->id);
#if ROSE_OBS_ENABLED
        for (auto it = begin; it != end; ++it) {
          metrics_.stream_oracle_to_candidate_ns->Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - it->second)
                  .count()));
        }
#endif
        stream_oracle_pending_.erase(begin, end);
      }
    }
    if (!finished) {
      continue;
    }
    // Past this point no worker touches the job again: the closure set
    // `finished` as its last locked action.
    job->state = Job::State::kDone;
    running_--;
    stats_.jobs_completed++;
    stats_.engine_runs += static_cast<uint64_t>(std::max(job->result.total_runs, 0));
#if ROSE_OBS_ENABLED
    metrics_.job_ns->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - job->admitted)
            .count()));
#endif

    CachedResult cached;
    cached.reproduced = job->result.reproduced;
    cached.schedule_yaml = job->result.schedule.ToYaml();
    cached.rate_permille = RatePermille(job->result.replay_rate);
    cached.level = static_cast<uint32_t>(std::max(job->result.level, 0));
    cached.schedules = static_cast<uint32_t>(std::max(job->result.schedules_generated, 0));
    cached.runs = static_cast<uint32_t>(std::max(job->result.total_runs, 0));
    cached.fault_summary = job->result.fault_summary;
    cache_.Put(job->key, cached);

    BroadcastResult(*job, cached);
    // Fallback for stream admissions that never surfaced a candidate (e.g.
    // nothing to diagnose): the latency ends at the result instead.
    {
      auto [begin, end] = stream_oracle_pending_.equal_range(job->id);
#if ROSE_OBS_ENABLED
      for (auto it = begin; it != end; ++it) {
        metrics_.stream_oracle_to_candidate_ns->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - it->second)
                .count()));
      }
#endif
      stream_oracle_pending_.erase(begin, end);
    }
    inflight_by_key_.erase(job->key);
    done.push_back(id);
  }
  for (uint64_t id : done) {
    jobs_.erase(id);  // Frees the dump; the cache keeps the answer.
  }
}

StatsMsg DiagnosisService::BuildStats() const {
  StatsMsg msg;
  msg.jobs_submitted = stats_.jobs_submitted;
  msg.jobs_completed = stats_.jobs_completed;
  msg.cache_hits = stats_.cache_hits;
  msg.coalesced = stats_.coalesced;
  msg.rejected_queue_full = stats_.rejected_queue_full;
  msg.rejected_invalid = stats_.rejected_invalid;
  msg.corrupt_frames = stats_.corrupt_frames;
  msg.engine_runs = stats_.engine_runs;
  msg.queued_jobs = queue_.size();
  msg.running_jobs = static_cast<uint64_t>(std::max(running_, 0));
  msg.metrics_yaml = MetricRegistry::Global().Snapshot().ToYaml();
  return msg;
}

void DiagnosisService::FlushConnections() {
  for (auto& [id, conn] : connections_) {
    if (conn->outbox_sent >= conn->outbox.size()) {
      continue;
    }
    const std::string_view rest =
        std::string_view(conn->outbox).substr(conn->outbox_sent);
    conn->outbox_sent += conn->transport->Write(rest);
    if (conn->outbox_sent >= conn->outbox.size()) {
      conn->outbox.clear();
      conn->outbox_sent = 0;
    } else if (conn->outbox_sent > 64 * 1024 &&
               conn->outbox_sent * 2 >= conn->outbox.size()) {
      conn->outbox.erase(0, conn->outbox_sent);
      conn->outbox_sent = 0;
    }
  }
}

void DiagnosisService::SendFrame(uint64_t conn_id, ServeFrame kind,
                                 const std::string& payload) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end() || it->second->dead) {
    return;
  }
  AppendServeFrame(&it->second->outbox, kind, payload);
}

void DiagnosisService::SendError(Connection& conn, ServeError code,
                                 const std::string& message, uint64_t job_id) {
  ErrorMsg msg;
  msg.job_id = job_id;
  msg.code = code;
  msg.message = message;
  SendFrame(conn.id, ServeFrame::kError, EncodeError(msg));
}

void DiagnosisService::BroadcastProgress(const Job& job, const ProgressMsg& msg) {
  ProgressMsg stamped = msg;
  for (const Job::Subscriber& sub : job.subscribers) {
    stamped.job_id = sub.reply_job_id != 0 ? sub.reply_job_id : job.id;
    SendFrame(sub.conn_id, ServeFrame::kProgress, EncodeProgress(stamped));
  }
}

void DiagnosisService::BroadcastResult(Job& job, const CachedResult& cached) {
  ResultMsg msg;
  msg.reproduced = cached.reproduced;
  msg.cached = false;
  msg.rate_permille = cached.rate_permille;
  msg.level = cached.level;
  msg.schedules = cached.schedules;
  msg.runs = cached.runs;
  msg.schedule_yaml = cached.schedule_yaml;
  msg.fault_summary = cached.fault_summary;
  for (const Job::Subscriber& sub : job.subscribers) {
    msg.job_id = sub.reply_job_id != 0 ? sub.reply_job_id : job.id;
    msg.coalesced = sub.coalesced;
    SendFrame(sub.conn_id, ServeFrame::kResult, EncodeResult(msg));
  }
}

}  // namespace rose
