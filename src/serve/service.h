// rose::serve — the diagnosis service (DESIGN.md §10).
//
// The paper's workflow ends with a human carrying the dumped window to an
// offline diagnosis machine. DiagnosisService is that machine as a daemon:
// clients stream `kSubmit` frames (bug id, seed, profiling baseline, RTRC
// dump) over a Transport; the service validates the dump up front
// (TraceValidator + container diagnostics), admits it to a bounded
// multi-tenant JobQueue, runs diagnoses on a WorkerPool, streams progress
// frames (level transitions, candidates tried, confirm runs), and finishes
// each job with the confirmed FaultSchedule in byte-exact YAML.
//
// Dedup: jobs are keyed by FNV-mix(canonical trace hash, bug id, seed).
// A key seen before is answered from the ResultCache without a single
// engine run; a key currently queued/running coalesces — the new client is
// subscribed to the in-flight job and both receive the one result.
//
// Threading: Poll() — the only entry point after Attach() — runs on one
// thread and owns every connection, the queue, the cache, and job
// bookkeeping. Worker threads touch exactly one job's `pending_progress` /
// `finished` / `result` fields, under that job's mutex. Determinism: the
// diagnosis itself is deterministic per job (the engine's guarantee), so
// concurrent jobs never affect each other's answers — only the interleaving
// of progress frames across *different* jobs depends on scheduling.
#ifndef SRC_SERVE_SERVICE_H_
#define SRC_SERVE_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/parallel.h"
#include "src/diagnose/engine.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/serve/job_queue.h"
#include "src/serve/protocol.h"
#include "src/serve/result_cache.h"
#include "src/serve/stream_ingestor.h"
#include "src/trace/mapped_trace.h"

namespace rose {

struct BugSpec;

struct ServeConfig {
  // Diagnosis jobs running at once (each on one pool thread; a job may use
  // further internal parallelism via `diagnosis.parallelism`).
  int max_concurrent_jobs = 2;
  // Jobs waiting beyond the running ones; submissions past this bound are
  // rejected with kQueueFull (clients retry with backoff).
  size_t queue_capacity = 8;
  size_t cache_capacity = 64;
  // Directory for persisted confirmed schedules; empty = memory-only cache.
  std::string cache_dir;
  // Per-job diagnosis template. seed/base_seed come from the submission;
  // on_progress is owned by the service.
  DiagnosisConfig diagnosis;

  // --- Streaming ingestion (DESIGN.md §16) -----------------------------------
  // Per-session resident window bound for stream sessions (decoded events +
  // pool payload). Older events spill to disk or drop; drops trigger
  // kThrottle backpressure toward the sender.
  size_t stream_window_bytes = 4u << 20;
  // Per-session spill-ring directory; empty disables spilling.
  std::string stream_spill_dir;
  // Per-session spill-ring capacity in bytes.
  size_t stream_spill_bytes = 32u << 20;
};

struct ServeStats {
  uint64_t jobs_submitted = 0;    // Valid submissions (incl. hits/coalesces).
  uint64_t jobs_completed = 0;    // Diagnoses actually executed to completion.
  uint64_t cache_hits = 0;
  uint64_t coalesced = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_invalid = 0;  // Malformed / unknown bug / invalid trace.
  uint64_t corrupt_frames = 0;    // Frames skipped by CRC resynchronization.
  uint64_t engine_runs = 0;       // Total simulated runs spent, all jobs.
};

class DiagnosisService {
 public:
  explicit DiagnosisService(ServeConfig config);
  // Drains in-flight jobs (never abandons a worker mid-run), then shuts down.
  ~DiagnosisService();

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  // Adopts the server end of a connection. The service greets it with the
  // protocol header on the next Poll().
  void Attach(std::shared_ptr<Transport> transport);

  // One pump cycle: read + decode client bytes, admit submissions, start
  // queued jobs while worker slots are free, harvest progress/results from
  // running jobs, flush outgoing bytes. Call until idle() (or forever).
  void Poll();

  // No queued or running work and every outgoing byte accepted by its
  // transport. New submissions can of course arrive later.
  bool idle() const;

  const ServeStats& stats() const { return stats_; }
  size_t queued_jobs() const { return queue_.size(); }
  int running_jobs() const { return running_; }
  // Stream-ingestion footprint: open sessions, current and high-water
  // resident bytes across all of them (the multi-client ingest bench asserts
  // the peak stays under sessions x stream_window_bytes).
  size_t stream_sessions() const { return ingestor_.session_count(); }
  size_t stream_resident_bytes() const { return ingestor_.resident_bytes(); }
  size_t stream_peak_resident_bytes() const { return ingestor_.peak_resident_bytes(); }

  // The kStatsReply body: lifetime ServeStats + instantaneous queue/worker
  // state + the process-wide rose::obs registry snapshot. Also what the
  // daemon's periodic one-line summary and --stats-out print.
  StatsMsg BuildStats() const;

  // The cache/dedup key for one submission.
  static uint64_t JobKey(uint64_t trace_hash, std::string_view bug_id, uint64_t seed);

 private:
  struct Connection {
    uint64_t id = 0;
    std::shared_ptr<Transport> transport;
    FrameDecoder decoder;
    std::string outbox;
    size_t outbox_sent = 0;
    bool dead = false;
  };

  struct Job {
    uint64_t id = 0;
    uint64_t key = 0;
    uint64_t seed = 0;
    std::string bug_id;
    std::string tag;
    const BugSpec* spec = nullptr;
    Profile profile;
    // Zero-copy handle over the submission's RTRC blob (the bytes moved out
    // of the submit envelope — never re-parsed into an owning Trace). The
    // worker diagnoses through trace.view().
    MappedTrace trace;
    // Connections awaiting this job's result.
    struct Subscriber {
      uint64_t conn_id = 0;
      bool coalesced = false;  // Joined an in-flight identical job.
      // Job id stamped on frames to this subscriber: a stream-admitted
      // diagnosis answers under the session's id (the only id its client
      // knows); 0 = use job.id.
      uint64_t reply_job_id = 0;
    };
    std::vector<Subscriber> subscribers;
    enum class State : uint8_t { kQueued, kRunning, kDone } state = State::kQueued;
    // Admission timestamp (host steady clock) — feeds the serve.job_ns
    // latency histogram at completion; never read by job logic.
    std::chrono::steady_clock::time_point admitted;

    // Worker-shared fields, guarded by `mutex`.
    std::mutex mutex;
    std::deque<DiagnosisProgress> pending_progress;
    bool finished = false;
    DiagnosisResult result;
  };

  void ReadConnection(Connection& conn);
  // Takes the frame payload by value: the envelope adopts it, so the trace
  // blob is never copied on its way to the hash or the job.
  void HandleSubmit(Connection& conn, std::string payload);
  // The admission chain shared by kSubmit and stream-oracle admissions:
  // decode → bug lookup → streaming canonical hash → cache / coalesce /
  // validate / queue. `reply_job_id` != 0 means the caller already owns a
  // client-visible id (a stream session): no kAccepted is sent, and every
  // reply — errors, cache-hit result, progress, final result — is stamped
  // with that id. `oracle_at` carries the oracle arrival time so the
  // stream.oracle_to_candidate_ns histogram can be recorded at the first
  // candidate (or immediately, on a cache hit).
  void AdmitSubmission(Connection& conn, std::string payload, uint64_t reply_job_id,
                       std::optional<std::chrono::steady_clock::time_point> oracle_at);
  void HandleStreamOpen(Connection& conn, std::string_view payload);
  void HandleStreamData(Connection& conn, std::string_view payload);
  void HandleStreamClose(Connection& conn, std::string_view payload);
  // Oracle mark latched on a session: materialize its window and admit the
  // blob as a diagnosis under the session's job id.
  void AdmitStreamOracle(Connection& conn, uint64_t session_id);
  // Transition-edged kThrottle emission: on when a session dropped events
  // since the last poll, off when a poll passes clean. Called from Poll().
  void PollStreamSessions();
  void CloseStreamSessionsFor(uint64_t conn_id);
  void StartJobs();
  void HarvestJobs();
  void FlushConnections();

  void SendFrame(uint64_t conn_id, ServeFrame kind, const std::string& payload);
  // `job_id` 0 = pre-admission rejection (FIFO-correlated at the client);
  // nonzero names the job/session the error belongs to.
  void SendError(Connection& conn, ServeError code, const std::string& message,
                 uint64_t job_id = 0);
  // kProgress to every subscriber of `job`.
  void BroadcastProgress(const Job& job, const ProgressMsg& msg);
  void BroadcastResult(Job& job, const CachedResult& cached);

  ServeConfig config_;
  ServeStats stats_;

  // rose::obs self-metrics (docs/metrics.md "serve.*"), mirroring stats_
  // into the process-wide registry plus latency/queue-depth detail the
  // plain counters cannot express. Write-only for the service logic.
  struct ServeMetrics {
    Counter* submissions;
    Counter* cache_hits;
    Counter* cache_misses;
    Counter* coalesced;
    Counter* rejects_queue_full;
    Counter* rejects_invalid;
    Counter* rejects_causal;  // Subset of rejects_invalid: TB303 traces.
    Counter* corrupt_frames;
    Counter* stats_requests;
    // Admissions (hit, coalesce, or queue) that completed without ever
    // constructing an owning Trace from the submitted blob.
    Counter* admit_zero_copy;
    Gauge* queue_depth;
    Histogram* job_ns;
    // rose::stream ("stream.*"): session-level detail; window/spill/drop
    // counters live in StreamIngestor.
    Counter* stream_sessions_opened;
    Counter* stream_data_frames;
    Counter* stream_bytes_ingested;
    Counter* stream_throttle_events;
    Counter* stream_oracle_marks;
    Histogram* stream_oracle_to_candidate_ns;
  };
  ServeMetrics metrics_;

  // One open stream session: identity from the kStreamOpen plus throttle
  // edge state. Window/spill bytes live in the ingestor under the same id.
  struct StreamSession {
    uint64_t id = 0;       // Server job id (client-visible).
    uint64_t conn_id = 0;
    std::string bug_id;
    uint64_t seed = 0;
    std::string tag;
    std::string profile_text;
    uint64_t token = 0;
    uint64_t drops_at_check = 0;  // Ingestor drop count at the last poll.
    bool throttled = false;
  };

  ResultCache cache_;
  JobQueue queue_;
  StreamIngestor ingestor_;
  std::map<uint64_t, StreamSession> stream_sessions_;
  // Stream admissions awaiting their first candidate: job id -> oracle
  // arrival timestamp (multimap: coalescing can attach several sessions to
  // one job). Resolved — and recorded into stream.oracle_to_candidate_ns — at
  // the first kCandidate progress, or at completion as a fallback.
  std::multimap<uint64_t, std::chrono::steady_clock::time_point> stream_oracle_pending_;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  // In-flight dedup: key -> job id for every job not yet completed.
  std::map<uint64_t, uint64_t> inflight_by_key_;
  uint64_t next_connection_id_ = 1;
  uint64_t next_job_id_ = 1;
  int running_ = 0;
  // Destroyed first (reverse member order): joins workers while jobs_ and
  // the rest of the service are still alive.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace rose

#endif  // SRC_SERVE_SERVICE_H_
