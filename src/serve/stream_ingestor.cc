#include "src/serve/stream_ingestor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <type_traits>
#include <vector>

namespace rose {

// Spilled records are raw TraceEvent structs (fixed-size; StrIds resolve
// against the session's resident pool, which never shrinks). Same process,
// same layout — a ring slot read back is the event that was written.
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "spill ring stores TraceEvent structs byte-for-byte");

StreamIngestor::StreamIngestor(StreamIngestorConfig config) : config_(config) {
  if (config_.window_bytes == 0) {
    config_.window_bytes = 1;
  }
  spill_capacity_records_ = config_.spill_bytes / sizeof(TraceEvent);
  MetricRegistry& reg = MetricRegistry::Global();
  m_resident_ = reg.GetGauge("stream.resident_bytes");
  m_evictions_ = reg.GetCounter("stream.window_evictions");
  m_spilled_bytes_ = reg.GetCounter("stream.spilled_bytes");
  m_dropped_events_ = reg.GetCounter("stream.dropped_events");
  m_materialize_ns_ = reg.GetHistogram("stream.materialize_ns");
}

StreamIngestor::~StreamIngestor() {
  for (auto& [id, session] : sessions_) {
    if (session->spill != nullptr) {
      std::fclose(session->spill);
      std::remove(session->spill_path.c_str());
    }
  }
}

void StreamIngestor::Open(uint64_t id) {
  auto session = std::make_unique<Session>();
  if (!config_.spill_dir.empty() && spill_capacity_records_ > 0) {
    session->spill_path =
        config_.spill_dir + "/stream-" + std::to_string(id) + ".spill";
    session->spill = std::fopen(session->spill_path.c_str(), "wb+");
    // A spill dir that cannot be written degrades to drop-on-evict; the
    // drops counter (and the client's throttle frames) make that visible.
  }
  sessions_[id] = std::move(session);
  session_cost_[id] = 0;
}

bool StreamIngestor::Feed(uint64_t id, std::string_view bytes) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return false;
  }
  Session& session = *it->second;
  session.decoder.Feed(bytes);
  for (;;) {
    switch (session.decoder.Next()) {
      case StreamDecoder::Item::kNeedMore:
        EnforceWindow(id, session);
        return true;
      case StreamDecoder::Item::kEvents:
        session.resident.insert(session.resident.end(),
                                session.decoder.events().begin(),
                                session.decoder.events().end());
        break;
      case StreamDecoder::Item::kEpoch:
        // A bumped epoch means the sender restarted; the window keeps what
        // it holds (the pre-restart past is still the recent past).
        break;
      case StreamDecoder::Item::kOracleMark:
        session.oracle = session.decoder.oracle();
        session.oracle_pending = true;
        break;
      case StreamDecoder::Item::kEnd:
      case StreamDecoder::Item::kCorrupt:
        break;  // Corrupt frames were counted and skipped by the decoder.
      case StreamDecoder::Item::kBadStream:
        return false;
    }
  }
}

bool StreamIngestor::oracle_pending(uint64_t id) const {
  auto it = sessions_.find(id);
  return it != sessions_.end() && it->second->oracle_pending;
}

OracleMark StreamIngestor::TakeOracle(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return {};
  }
  it->second->oracle_pending = false;
  return it->second->oracle;
}

std::string StreamIngestor::Materialize(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return {};
  }
  Session& session = *it->second;
  const auto start = std::chrono::steady_clock::now();

  // Window reassembly in arrival order: the spilled prefix, oldest live
  // record first, then the resident tail.
  std::vector<TraceEvent> events;
  events.reserve(static_cast<size_t>(session.spill_end - session.spill_begin) +
                 session.resident.size());
  if (session.spill != nullptr && session.spill_end > session.spill_begin) {
    TraceEvent record;
    for (uint64_t index = session.spill_begin; index < session.spill_end; index++) {
      const uint64_t slot = index % spill_capacity_records_;
      if (std::fseek(session.spill,
                     static_cast<long>(slot * sizeof(TraceEvent)), SEEK_SET) != 0 ||
          std::fread(&record, sizeof(TraceEvent), 1, session.spill) != 1) {
        break;  // Unreadable ring tail: materialize what survived.
      }
      events.push_back(record);
    }
  }
  events.insert(events.end(), session.resident.begin(), session.resident.end());

  // Tracer::Dump's exact canonicalization (events arrive fd-resolved and
  // with open-ended flushes appended by the sink): stable sort by timestamp
  // — ties keep arrival order, which is the tracer's insertion order — then
  // compact into a fresh pool in first-appearance order.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
  Trace trace;
  trace.events().reserve(events.size());
  std::vector<StrId> remap;
  for (const TraceEvent& event : events) {
    trace.AppendRemapped(event, session.decoder.pool(), &remap);
  }
  std::string blob = trace.SerializeBinary();
#if ROSE_OBS_ENABLED
  m_materialize_ns_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
#else
  (void)start;
#endif
  return blob;
}

void StreamIngestor::Close(uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  if (it->second->spill != nullptr) {
    std::fclose(it->second->spill);
    std::remove(it->second->spill_path.c_str());
  }
  resident_total_ -= session_cost_[id];
  session_cost_.erase(id);
  sessions_.erase(it);
  m_resident_->Set(static_cast<int64_t>(resident_total_));
}

uint64_t StreamIngestor::drops(uint64_t id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second->drops;
}

uint64_t StreamIngestor::corrupt_frames(uint64_t id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second->decoder.corrupt_frames();
}

size_t StreamIngestor::ResidentCost(const Session& session) const {
  return session.resident.size() * sizeof(TraceEvent) +
         session.decoder.pool().payload_bytes();
}

void StreamIngestor::EnforceWindow(uint64_t id, Session& session) {
  // The pool is part of the resident cost but cannot be evicted (spilled
  // records resolve against it), so a pathological pool alone can exceed the
  // bound; the loop then drains every event and stops.
  while (ResidentCost(session) > config_.window_bytes && !session.resident.empty()) {
    const TraceEvent& oldest = session.resident.front();
    evictions_total_++;
    m_evictions_->Inc();
    if (session.spill != nullptr) {
      const uint64_t slot = session.spill_end % spill_capacity_records_;
      if (std::fseek(session.spill,
                     static_cast<long>(slot * sizeof(TraceEvent)), SEEK_SET) == 0 &&
          std::fwrite(&oldest, sizeof(TraceEvent), 1, session.spill) == 1) {
        session.spill_end++;
        m_spilled_bytes_->Inc(sizeof(TraceEvent));
        if (session.spill_end - session.spill_begin > spill_capacity_records_) {
          // Ring full: this write overwrote the oldest spilled record.
          session.spill_begin = session.spill_end - spill_capacity_records_;
          session.drops++;
          drops_total_++;
          m_dropped_events_->Inc();
        }
      } else {
        session.drops++;  // Spill write failed; the event is gone.
        drops_total_++;
        m_dropped_events_->Inc();
      }
    } else {
      session.drops++;
      drops_total_++;
      m_dropped_events_->Inc();
    }
    session.resident.pop_front();
  }
  UpdateResidentGauge(id, session);
}

void StreamIngestor::UpdateResidentGauge(uint64_t id, Session& session) {
  const size_t cost = ResidentCost(session);
  size_t& cached = session_cost_[id];
  resident_total_ = resident_total_ - cached + cost;
  cached = cost;
  if (resident_total_ > resident_peak_) {
    resident_peak_ = resident_total_;
  }
  m_resident_->Set(static_cast<int64_t>(resident_total_));
}

}  // namespace rose
