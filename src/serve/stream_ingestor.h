// rose::stream server half — per-session sliding windows over streamed
// RTRC bytes (DESIGN.md §16, docs/wire_protocol.md).
//
// A dump submission hands the daemon a finished artifact; a stream session
// hands it an unbounded byte feed. The ingestor turns that feed back into
// the tracer's bounded-window discipline on the server side: events decode
// incrementally (StreamDecoder), the newest stay resident under a per-session
// byte bound, older ones spill to a fixed-size on-disk ring, and the oldest
// spilled records are overwritten — the same "keep the recent past" policy
// the in-kernel ring applies, so per-client memory is bounded no matter how
// long a session runs or how many clients connect.
//
// When an oracle-mark frame arrives, Materialize() rebuilds the window
// exactly the way Tracer::Dump canonicalizes one — spilled + resident events
// in arrival order, stable-sorted by timestamp, pool-compacted in
// first-appearance order, serialized — so a streamed window that lost
// nothing produces a byte-identical RTRC blob, the same canonical hash, and
// therefore the same cached/deduped diagnosis as the equivalent dump file.
#ifndef SRC_SERVE_STREAM_INGESTOR_H_
#define SRC_SERVE_STREAM_INGESTOR_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/obs/metrics.h"
#include "src/trace/trace_io.h"

namespace rose {

struct StreamIngestorConfig {
  // Per-session resident bound: decoded events (fixed-size) plus the
  // session's string-pool payload must fit here; older events are evicted
  // to the spill ring (or dropped when spilling is disabled).
  size_t window_bytes = 4u << 20;
  // Directory for per-session spill rings; empty disables spilling, so
  // eviction drops events immediately (counted, and surfaced to the client
  // as throttle pressure by the service).
  std::string spill_dir;
  // Per-session spill-ring capacity in bytes. The ring holds fixed-size
  // event records; once full, each new spill overwrites the oldest record
  // (one drop).
  size_t spill_bytes = 32u << 20;
};

class StreamIngestor {
 public:
  explicit StreamIngestor(StreamIngestorConfig config);
  ~StreamIngestor();

  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

  // Creates session state for `id` (the server job id of the stream).
  void Open(uint64_t id);
  // Feeds raw stream bytes; decodes every complete frame. Returns false
  // when the session's byte stream is unusable (bad magic/version/length) —
  // the caller should error the session out. Oracle marks are latched:
  // check oracle_pending() after every Feed.
  bool Feed(uint64_t id, std::string_view bytes);
  bool oracle_pending(uint64_t id) const;
  // Clears the latch and returns the mark (ts + detail).
  OracleMark TakeOracle(uint64_t id);
  // Serializes the session's current window — spilled then resident events,
  // stable-sorted by timestamp, compacted into a fresh pool — into a
  // canonical RTRC blob (Tracer::Dump's exact canonicalization).
  std::string Materialize(uint64_t id);
  // Drops all session state and deletes its spill file.
  void Close(uint64_t id);

  size_t session_count() const { return sessions_.size(); }
  // Resident cost across all sessions / the high-water mark over the
  // ingestor's lifetime (the multi-client bench asserts its bound on this).
  size_t resident_bytes() const { return resident_total_; }
  size_t peak_resident_bytes() const { return resident_peak_; }
  // Events lost by `id` so far (spill-ring overwrites, or evictions with
  // spilling disabled). Monotone; the service's throttle logic watches it.
  uint64_t drops(uint64_t id) const;
  uint64_t total_drops() const { return drops_total_; }
  uint64_t window_evictions() const { return evictions_total_; }
  // Corrupt frames skipped on `id`'s stream (CRC resynchronization).
  uint64_t corrupt_frames(uint64_t id) const;

 private:
  struct Session {
    StreamDecoder decoder;
    // Decoded events not yet evicted, in arrival order. Their StrIds
    // resolve against decoder.pool(), which only grows — spilled records
    // stay resolvable without re-interning.
    std::deque<TraceEvent> resident;
    std::string spill_path;
    std::FILE* spill = nullptr;
    // Monotone record indices into the ring: [begin, end) are live, the
    // slot of record i is (i % capacity_records).
    uint64_t spill_begin = 0;
    uint64_t spill_end = 0;
    uint64_t drops = 0;
    bool oracle_pending = false;
    OracleMark oracle;
  };

  // Evicts from the resident front until the session fits its bound.
  void EnforceWindow(uint64_t id, Session& session);
  size_t ResidentCost(const Session& session) const;
  void UpdateResidentGauge(uint64_t id, Session& session);

  StreamIngestorConfig config_;
  size_t spill_capacity_records_ = 0;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  // Cached per-session cost so the total updates incrementally.
  std::map<uint64_t, size_t> session_cost_;
  size_t resident_total_ = 0;
  size_t resident_peak_ = 0;
  uint64_t drops_total_ = 0;
  uint64_t evictions_total_ = 0;

  // docs/metrics.md "stream.*".
  Gauge* m_resident_ = nullptr;
  Counter* m_evictions_ = nullptr;
  Counter* m_spilled_bytes_ = nullptr;
  Counter* m_dropped_events_ = nullptr;
  Histogram* m_materialize_ns_ = nullptr;
};

}  // namespace rose

#endif  // SRC_SERVE_STREAM_INGESTOR_H_
