#include "src/serve/stream_sink.h"

namespace rose {

StreamSink::StreamSink(Tracer* tracer, ServeClient* client)
    : tracer_(tracer), client_(client) {}

void StreamSink::Open(std::string_view bug_id, uint64_t seed, std::string_view tag,
                      std::string_view profile_text, uint64_t epoch,
                      std::string_view source) {
  if (writer_ != nullptr) {
    return;
  }
  handle_ = client_->OpenStream(bug_id, seed, tag, profile_text);
  // The writer emits the RTRC header on construction; epoch goes out first
  // so the ingestor can tell this sender's generation.
  writer_ = std::make_unique<TraceWriter>(&wire_, &tracer_->stream_pool());
  StreamEpoch header;
  header.epoch = epoch;
  header.start_ts = 0;
  header.source = std::string(source);
  AppendRtrcFrame(&wire_, kFrameStreamEpoch, EncodeStreamEpoch(header));
  Ship();
}

void StreamSink::Pump() {
  if (writer_ == nullptr || closed_ || throttled()) {
    return;
  }
  batch_.clear();
  events_lost_ += tracer_->TakeStreamDelta(&batch_);
  if (batch_.empty()) {
    return;
  }
  for (const TraceEvent& event : batch_) {
    writer_->Add(event);
  }
  writer_->Flush();
  events_shipped_ += batch_.size();
  Ship();
}

void StreamSink::NotifyOracle(SimTime ts, std::string_view detail) {
  if (writer_ == nullptr || closed_) {
    return;
  }
  // Force-flush: the oracle shipment ignores throttle — the daemon must see
  // the window it is about to diagnose.
  batch_.clear();
  events_lost_ += tracer_->TakeStreamDelta(&batch_);
  tracer_->AppendOpenEndedEvents(&batch_);
  for (const TraceEvent& event : batch_) {
    writer_->Add(event);
  }
  writer_->Flush();
  events_shipped_ += batch_.size();
  OracleMark mark;
  mark.ts = ts;
  mark.detail = std::string(detail);
  AppendRtrcFrame(&wire_, kFrameOracleMark, EncodeOracleMark(mark));
  Ship();
}

void StreamSink::Close() {
  if (writer_ == nullptr || closed_) {
    return;
  }
  closed_ = true;
  writer_->Finish();
  Ship();
  client_->CloseStream(handle_);
}

void StreamSink::Ship() {
  if (wire_.empty()) {
    return;
  }
  bytes_shipped_ += wire_.size();
  client_->StreamData(handle_, wire_);
  wire_.clear();
}

}  // namespace rose
