// rose::stream client half — pushes the tracer's window over a serve
// connection as it records (DESIGN.md §16, docs/wire_protocol.md).
//
// The paper's workflow dumps the window once, after the failure; the sink
// removes the dump-and-carry step by shipping incremental RTRC frames
// (pool deltas + event batches) through an open stream session, so the
// daemon already holds the window when the oracle fires. The sink reads the
// tracer's ring outside the simulated run (TakeStreamDelta never charges
// virtual time), honors the server's kThrottle backpressure by leaving
// events in the ring, and force-flushes everything — including the
// open-ended-event synthesis a dump would perform — when the oracle fires.
#ifndef SRC_SERVE_STREAM_SINK_H_
#define SRC_SERVE_STREAM_SINK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/serve/client.h"
#include "src/trace/trace_io.h"
#include "src/trace/tracer.h"

namespace rose {

class StreamSink {
 public:
  // Neither pointer is owned; both must outlive the sink.
  StreamSink(Tracer* tracer, ServeClient* client);

  // Opens the stream session (kStreamOpen) and queues the RTRC stream
  // header plus an epoch frame. `epoch` bumps on sender restart.
  void Open(std::string_view bug_id, uint64_t seed, std::string_view tag,
            std::string_view profile_text, uint64_t epoch = 1,
            std::string_view source = "tracer");

  // Ships the events recorded since the last pump. A no-op while the server
  // throttles this session — the events stay in the tracer's ring (whose own
  // overwrite policy still applies, so a long throttle loses the oldest,
  // exactly like an unattended tracer would). Call between client Poll()s.
  void Pump();

  // The failure fired: ships the remaining delta plus the open-ended events
  // a dump would synthesize (ongoing pauses, unreported crashes, silent
  // connections), then an oracle-mark frame — throttled or not. The daemon
  // starts diagnosis on what it holds.
  void NotifyOracle(SimTime ts, std::string_view detail);

  // Ends the container (kFrameEnd), ships the tail, closes the session.
  void Close();

  uint64_t handle() const { return handle_; }
  bool opened() const { return writer_ != nullptr; }
  bool throttled() const { return client_->stream_throttled(handle_); }
  uint64_t events_shipped() const { return events_shipped_; }
  uint64_t bytes_shipped() const { return bytes_shipped_; }
  // Events the tracer's ring overwrote before they could ship (reported by
  // TakeStreamDelta; grows under throttle on a hot window).
  uint64_t events_lost() const { return events_lost_; }

 private:
  // Hands the staged wire bytes to the client and clears the stage.
  void Ship();

  Tracer* tracer_;
  ServeClient* client_;
  uint64_t handle_ = 0;
  std::string wire_;
  // Writes pool/event frames into wire_ against the tracer's own pool (ids
  // on the wire are tracer-pool ids; the ingestor's decoder re-interns them
  // in order, so both sides agree).
  std::unique_ptr<TraceWriter> writer_;
  std::vector<TraceEvent> batch_;
  uint64_t events_shipped_ = 0;
  uint64_t bytes_shipped_ = 0;
  uint64_t events_lost_ = 0;
  bool closed_ = false;
};

}  // namespace rose

#endif  // SRC_SERVE_STREAM_SINK_H_
