#include "src/sim/event_loop.h"

#include <memory>
#include <utility>

namespace rose {

TimerId EventLoop::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  const TimerId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id,
                    std::make_shared<std::function<void()>>(std::move(fn))});
  return id;
}

void EventLoop::Cancel(TimerId id) {
  if (id != kInvalidTimer) {
    cancelled_.insert(id);
  }
}

bool EventLoop::Step() {
  while (!halted_ && !queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    if (entry.when > now_) {
      now_ = entry.when;
    }
    (*entry.fn)();
    return true;
  }
  return false;
}

uint64_t EventLoop::RunUntil(SimTime until) {
  uint64_t executed = 0;
  while (!halted_ && !queue_.empty()) {
    // Purge cancelled entries first so the horizon check below inspects a
    // live event — otherwise Step() would skip the tombstone and run an
    // event beyond `until`.
    while (!queue_.empty()) {
      auto it = cancelled_.find(queue_.top().id);
      if (it == cancelled_.end()) {
        break;
      }
      cancelled_.erase(it);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > until) {
      break;
    }
    if (!Step()) {
      break;
    }
    executed++;
  }
  if (!halted_ && now_ < until && until != kSimTimeMax) {
    now_ = until;
  }
  return executed;
}

}  // namespace rose
