// Discrete-event simulation driver.
//
// The EventLoop is a priority queue of (time, sequence, callback) entries.
// Equal-time events fire in scheduling order, which keeps runs deterministic.
// Timers can be cancelled; cancellation is O(1) (tombstone set).
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace rose {

using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `when` (clamped to now).
  TimerId ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` after the current virtual time.
  TimerId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending timer. Cancelling an already-fired or invalid timer is a no-op.
  void Cancel(TimerId id);

  // Runs a single event. Returns false if the queue is empty or the loop halted.
  bool Step();

  // Runs until the queue drains, `until` is passed, or Halt() is called.
  // Returns the number of events executed.
  uint64_t RunUntil(SimTime until);

  // Runs until the queue drains or Halt() is called.
  uint64_t RunToCompletion() { return RunUntil(kSimTimeMax); }

  // Advances the clock from within a running handler (used by the kernel to
  // charge virtual syscall cost). Events already queued at earlier times run
  // "late" but never move the clock backwards.
  void AdvanceBy(SimTime delta) { now_ += delta; }

  // Stops the loop at the next event boundary.
  void Halt() { halted_ = true; }
  bool halted() const { return halted_; }

  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    TimerId id;
    // Heap entries are copied during queue maintenance; share the callback.
    std::shared_ptr<std::function<void()>> fn;

    bool operator>(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  TimerId next_id_ = 1;
  bool halted_ = false;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace rose

#endif  // SRC_SIM_EVENT_LOOP_H_
