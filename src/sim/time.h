// Virtual time for the deterministic simulator.
//
// All timestamps in the simulated kernel, network, tracer, and guest systems
// are virtual microseconds since simulation start. Wall-clock time is never
// consulted during a run, which is what makes schedule replay deterministic.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace rose {

// Virtual time in nanoseconds.
using SimTime = int64_t;

constexpr SimTime Nanos(int64_t n) { return n; }
constexpr SimTime Micros(int64_t n) { return n * 1000; }
constexpr SimTime Millis(int64_t n) { return n * 1000 * 1000; }
constexpr SimTime Seconds(int64_t n) { return n * 1000 * 1000 * 1000; }

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e6; }

inline constexpr SimTime kSimTimeMax = INT64_MAX;

}  // namespace rose

#endif  // SRC_SIM_TIME_H_
