#include "src/trace/event.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "src/common/strings.h"

namespace rose {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kSCF:
      return "SCF";
    case EventType::kAF:
      return "AF";
    case EventType::kND:
      return "ND";
    case EventType::kPS:
      return "PS";
  }
  return "??";
}

std::string TraceEvent::ToLine(const StringPool& pool) const {
  std::string out;
  AppendLine(&out, pool);
  return out;
}

namespace {

// printf-append into an existing buffer; the one allocation-free formatter
// the streaming canonical hash leans on. Falls back to a heap buffer for the
// rare line (a long interned pathname) that outgrows the stack one.
void AppendFormat(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormat(std::string* out, const char* fmt, ...) {
  char stack_buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap);
  va_end(ap);
  if (needed < 0) {
    return;
  }
  if (static_cast<size_t>(needed) < sizeof(stack_buf)) {
    out->append(stack_buf, static_cast<size_t>(needed));
    return;
  }
  std::vector<char> heap_buf(static_cast<size_t>(needed) + 1);
  va_start(ap, fmt);
  std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, ap);
  va_end(ap);
  out->append(heap_buf.data(), static_cast<size_t>(needed));
}

}  // namespace

void TraceEvent::AppendLine(std::string* out, const StringPool& pool) const {
  switch (type) {
    case EventType::kSCF: {
      const auto& scf_info = scf();
      const std::string filename(pool.View(scf_info.filename));
      AppendFormat(out, "%lld SCF node=%d pid=%d sys=%s fd=%d file=%s errno=%s",
                   static_cast<long long>(ts), node, scf_info.pid,
                   std::string(SysName(scf_info.sys)).c_str(), scf_info.fd,
                   filename.empty() ? "-" : filename.c_str(),
                   std::string(ErrName(scf_info.err)).c_str());
      // Unindexed events keep the legacy line verbatim — the canonical trace
      // hash (and every pre-index dump) depends on that.
      if (scf_info.ctx_digest != 0) {
        AppendFormat(out, " ctx=%llx cseq=%u",
                     static_cast<unsigned long long>(scf_info.ctx_digest), scf_info.ctx_seq);
      }
      return;
    }
    case EventType::kAF: {
      const auto& af_info = af();
      AppendFormat(out, "%lld AF node=%d pid=%d fid=%d", static_cast<long long>(ts),
                   node, af_info.pid, af_info.function_id);
      return;
    }
    case EventType::kND: {
      const auto& nd_info = nd();
      AppendFormat(out, "%lld ND node=%d src=%s dst=%s dur=%lld pkts=%llu",
                   static_cast<long long>(ts), node,
                   std::string(pool.View(nd_info.src_ip)).c_str(),
                   std::string(pool.View(nd_info.dst_ip)).c_str(),
                   static_cast<long long>(nd_info.duration),
                   static_cast<unsigned long long>(nd_info.packet_count));
      return;
    }
    case EventType::kPS: {
      const auto& ps_info = ps();
      AppendFormat(out, "%lld PS node=%d pid=%d state=%s dur=%lld",
                   static_cast<long long>(ts), node, ps_info.pid,
                   std::string(ProcStateName(ps_info.state)).c_str(),
                   static_cast<long long>(ps_info.duration));
      return;
    }
  }
}

namespace {

// Extracts the value of "key=" from a token like "key=value".
bool TokenValue(const std::string& token, std::string_view key, std::string* out) {
  if (!StartsWith(token, key) || token.size() <= key.size() || token[key.size()] != '=') {
    return false;
  }
  *out = token.substr(key.size() + 1);
  return true;
}

bool TokenInt(const std::string& token, std::string_view key, int64_t* out) {
  std::string value;
  return TokenValue(token, key, &value) && ParseInt64(value, out);
}

// Hex variant for the context digest (emitted as %llx).
bool TokenHex(const std::string& token, std::string_view key, uint64_t* out) {
  std::string value;
  if (!TokenValue(token, key, &value) || value.empty()) {
    return false;
  }
  uint64_t parsed = 0;
  for (char c : value) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    parsed = (parsed << 4) | static_cast<uint64_t>(digit);
  }
  *out = parsed;
  return true;
}

}  // namespace

bool TraceEvent::FromLine(const std::string& line, StringPool* pool, TraceEvent* out) {
  const std::vector<std::string> tokens = Split(line, ' ');
  if (tokens.size() < 3) {
    return false;
  }
  int64_t ts = 0;
  if (!ParseInt64(tokens[0], &ts)) {
    return false;
  }
  out->ts = ts;
  int64_t node = kNoNode;
  TokenInt(tokens[2], "node", &node);
  out->node = static_cast<NodeId>(node);
  const std::string& type = tokens[1];
  if (type == "SCF") {
    ScfInfo info;
    int64_t value = 0;
    uint64_t hex = 0;
    for (const auto& token : tokens) {
      std::string text;
      if (TokenInt(token, "pid", &value)) {
        info.pid = static_cast<Pid>(value);
      } else if (TokenInt(token, "fd", &value)) {
        info.fd = static_cast<int32_t>(value);
      } else if (TokenValue(token, "sys", &text)) {
        SysFromName(text, &info.sys);
      } else if (TokenValue(token, "file", &text)) {
        info.filename = pool->Intern(text == "-" ? "" : text);
      } else if (TokenValue(token, "errno", &text)) {
        info.err = ErrFromName(text);
      } else if (TokenHex(token, "ctx", &hex)) {
        info.ctx_digest = hex;
      } else if (TokenInt(token, "cseq", &value)) {
        info.ctx_seq = static_cast<uint32_t>(value);
      }
    }
    out->type = EventType::kSCF;
    out->info = info;
    return true;
  }
  if (type == "AF") {
    AfInfo info;
    int64_t value = 0;
    for (const auto& token : tokens) {
      if (TokenInt(token, "pid", &value)) {
        info.pid = static_cast<Pid>(value);
      } else if (TokenInt(token, "fid", &value)) {
        info.function_id = static_cast<int32_t>(value);
      }
    }
    out->type = EventType::kAF;
    out->info = info;
    return true;
  }
  if (type == "ND") {
    NdInfo info;
    int64_t value = 0;
    for (const auto& token : tokens) {
      std::string text;
      if (TokenValue(token, "src", &text)) {
        info.src_ip = pool->Intern(text);
      } else if (TokenValue(token, "dst", &text)) {
        info.dst_ip = pool->Intern(text);
      } else if (TokenInt(token, "dur", &value)) {
        info.duration = value;
      } else if (TokenInt(token, "pkts", &value)) {
        info.packet_count = static_cast<uint64_t>(value);
      }
    }
    out->type = EventType::kND;
    out->info = info;
    return true;
  }
  if (type == "PS") {
    PsInfo info;
    int64_t value = 0;
    for (const auto& token : tokens) {
      std::string text;
      if (TokenInt(token, "pid", &value)) {
        info.pid = static_cast<Pid>(value);
      } else if (TokenInt(token, "dur", &value)) {
        info.duration = value;
      } else if (TokenValue(token, "state", &text)) {
        if (text == "paused") {
          info.state = ProcState::kPaused;
        } else if (text == "crashed") {
          info.state = ProcState::kCrashed;
        } else if (text == "exited") {
          info.state = ProcState::kExited;
        } else {
          info.state = ProcState::kRunning;
        }
      }
    }
    out->type = EventType::kPS;
    out->info = info;
    return true;
  }
  return false;
}

namespace {

// Re-interns one id from `source` into `dest`, memoizing via `cache` (a
// source-id -> dest-id table) when provided.
StrId RemapId(StrId id, const StringPool& source, StringPool* dest,
              std::vector<StrId>* cache) {
  if (id == kEmptyStrId) {
    return kEmptyStrId;
  }
  constexpr StrId kUnmapped = static_cast<StrId>(-1);
  if (cache != nullptr) {
    if (cache->size() < source.size()) {
      cache->resize(source.size(), kUnmapped);
    }
    if (id < cache->size() && (*cache)[id] != kUnmapped) {
      return (*cache)[id];
    }
  }
  const StrId mapped = dest->Intern(source.View(id));
  if (cache != nullptr && id < cache->size()) {
    (*cache)[id] = mapped;
  }
  return mapped;
}

}  // namespace

void Trace::AppendRemapped(const TraceEvent& event, const StringPool& source,
                           std::vector<StrId>* cache) {
  TraceEvent copy = event;
  switch (copy.type) {
    case EventType::kSCF: {
      auto& info = std::get<ScfInfo>(copy.info);
      info.filename = RemapId(info.filename, source, &pool_, cache);
      break;
    }
    case EventType::kND: {
      auto& info = std::get<NdInfo>(copy.info);
      info.src_ip = RemapId(info.src_ip, source, &pool_, cache);
      info.dst_ip = RemapId(info.dst_ip, source, &pool_, cache);
      break;
    }
    case EventType::kAF:
    case EventType::kPS:
      break;
  }
  events_.push_back(std::move(copy));
}

std::vector<TraceEvent> Trace::OfType(EventType type) const {
  std::vector<TraceEvent> out;
  for (const auto& event : events_) {
    if (event.type == type) {
      out.push_back(event);
    }
  }
  return out;
}

std::vector<AfInfo> Trace::FunctionsBefore(NodeId node, SimTime before) const {
  return TraceView(*this).FunctionsBefore(node, before);
}

std::vector<AfInfo> TraceView::FunctionsBefore(NodeId node, SimTime before) const {
  std::vector<AfInfo> out;
  for (const auto& event : *this) {
    if (event.ts > before) {
      break;  // Inclusive: an AF at the fault's own timestamp (the function
              // the process was executing when it died) still precedes it.
    }
    if (event.type == EventType::kAF && event.node == node) {
      out.push_back(event.af());
    }
  }
  std::reverse(out.begin(), out.end());  // Most recent first.
  return out;
}

bool TraceEquals(TraceView a, TraceView b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); i++) {
    const TraceEvent& ea = a[i];
    const TraceEvent& eb = b[i];
    if (ea.ts != eb.ts || ea.node != eb.node || ea.type != eb.type) {
      return false;
    }
    switch (ea.type) {
      case EventType::kSCF: {
        const ScfInfo& sa = ea.scf();
        const ScfInfo& sb = eb.scf();
        if (sa.pid != sb.pid || sa.sys != sb.sys || sa.fd != sb.fd || sa.err != sb.err ||
            sa.ctx_digest != sb.ctx_digest || sa.ctx_seq != sb.ctx_seq ||
            a.str(sa.filename) != b.str(sb.filename)) {
          return false;
        }
        break;
      }
      case EventType::kAF: {
        const AfInfo& fa = ea.af();
        const AfInfo& fb = eb.af();
        if (fa.pid != fb.pid || fa.function_id != fb.function_id) {
          return false;
        }
        break;
      }
      case EventType::kND: {
        const NdInfo& na = ea.nd();
        const NdInfo& nb = eb.nd();
        if (na.duration != nb.duration || na.packet_count != nb.packet_count ||
            a.str(na.src_ip) != b.str(nb.src_ip) || a.str(na.dst_ip) != b.str(nb.dst_ip)) {
          return false;
        }
        break;
      }
      case EventType::kPS: {
        const PsInfo& pa = ea.ps();
        const PsInfo& pb = eb.ps();
        if (pa.pid != pb.pid || pa.state != pb.state || pa.duration != pb.duration) {
          return false;
        }
        break;
      }
    }
  }
  return true;
}

std::string Trace::Serialize() const {
  std::string out;
  for (const auto& event : events_) {
    out += event.ToLine(pool_);
    out += '\n';
  }
  return out;
}

Trace Trace::Parse(const std::string& text) {
  Trace trace;
  for (const auto& line : Split(text, '\n')) {
    if (StripWhitespace(line).empty()) {
      continue;
    }
    TraceEvent event;
    if (TraceEvent::FromLine(line, &trace.pool(), &event)) {
      trace.Append(std::move(event));
    }
  }
  return trace;
}

Trace Trace::Merge(const std::vector<Trace>& traces) {
  // Per-node dumps are already timestamp-ordered, so a k-way merge beats
  // concat + stable_sort. Stability contract: ties keep input-trace order
  // (trace 0's events before trace 1's), and order within a trace — exactly
  // what stable_sort over the concatenation produced. Strings are
  // re-interned into the merged trace's own pool; the per-input caches make
  // that one hash lookup per distinct string, not per event.
  size_t total = 0;
  bool all_sorted = true;
  for (const auto& trace : traces) {
    total += trace.size();
    for (size_t i = 1; i < trace.size(); i++) {
      if (trace.events()[i].ts < trace.events()[i - 1].ts) {
        all_sorted = false;
        break;
      }
    }
  }
  Trace out;
  out.events().reserve(total);
  std::vector<std::vector<StrId>> remap(traces.size());
  if (!all_sorted) {
    // An unsorted input would break the merge invariant; fall back to the
    // sort so behavior matches the historical contract bit-for-bit.
    std::vector<std::pair<size_t, const TraceEvent*>> all;
    all.reserve(total);
    for (size_t t = 0; t < traces.size(); t++) {
      for (const TraceEvent& event : traces[t].events()) {
        all.emplace_back(t, &event);
      }
    }
    std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      return a.second->ts < b.second->ts;
    });
    for (const auto& [t, event] : all) {
      out.AppendRemapped(*event, traces[t].pool(), &remap[t]);
    }
    return out;
  }

  struct Cursor {
    size_t trace;
    size_t pos;
  };
  // Min-heap on (ts, trace index); std::make_heap is a max-heap, so invert.
  auto later = [&traces](const Cursor& a, const Cursor& b) {
    const SimTime ta = traces[a.trace].events()[a.pos].ts;
    const SimTime tb = traces[b.trace].events()[b.pos].ts;
    if (ta != tb) {
      return ta > tb;
    }
    return a.trace > b.trace;
  };
  std::vector<Cursor> heap;
  heap.reserve(traces.size());
  for (size_t i = 0; i < traces.size(); i++) {
    if (!traces[i].empty()) {
      heap.push_back(Cursor{i, 0});
    }
  }
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Cursor cursor = heap.back();
    heap.pop_back();
    out.AppendRemapped(traces[cursor.trace].events()[cursor.pos], traces[cursor.trace].pool(),
                       &remap[cursor.trace]);
    if (++cursor.pos < traces[cursor.trace].size()) {
      heap.push_back(cursor);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return out;
}

TraceIndex::TraceIndex(TraceView trace) {
  for (const TraceEvent& event : trace) {
    if (event.type != EventType::kAF) {
      continue;
    }
    NodeAfs& bucket = per_node_[event.node];
    bucket.ts.push_back(event.ts);
    bucket.afs.push_back(event.af());
  }
}

std::vector<AfInfo> TraceIndex::FunctionsBefore(NodeId node, SimTime before) const {
  std::vector<AfInfo> out;
  const auto it = per_node_.find(node);
  if (it == per_node_.end()) {
    return out;
  }
  const NodeAfs& bucket = it->second;
  // Inclusive cutoff, mirroring the linear scan: an AF at the fault's own
  // timestamp still precedes it.
  const auto end = std::upper_bound(bucket.ts.begin(), bucket.ts.end(), before);
  const size_t count = static_cast<size_t>(end - bucket.ts.begin());
  out.reserve(count);
  for (size_t i = count; i > 0; i--) {  // Most recent first.
    out.push_back(bucket.afs[i - 1]);
  }
  return out;
}

}  // namespace rose
