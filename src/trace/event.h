// Trace event model.
//
// A trace is the sequence (E_i = {ts, type, I}) from the paper, with four
// event types:
//   SCF — system-call failure {pid, syscall, fd, filename, errno}
//   AF  — application function invocation {pid, function_id}
//   ND  — network delay {dst_ip, src_ip, duration, packet_count}
//   PS  — process state {pid, state, duration}
// Events carry the node id of the originating process so multi-node merged
// traces stay attributable.
#ifndef SRC_TRACE_EVENT_H_
#define SRC_TRACE_EVENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "src/os/process.h"
#include "src/os/syscall.h"
#include "src/sim/time.h"

namespace rose {

enum class EventType : int8_t { kSCF = 0, kAF, kND, kPS };

std::string_view EventTypeName(EventType type);

struct ScfInfo {
  Pid pid = kNoPid;
  Sys sys = Sys::kOpen;
  int32_t fd = -1;
  std::string filename;  // Resolved from the fd map during dump post-processing.
  Err err = Err::kOk;
};

struct AfInfo {
  Pid pid = kNoPid;
  int32_t function_id = -1;
};

struct NdInfo {
  std::string src_ip;
  std::string dst_ip;
  SimTime duration = 0;
  uint64_t packet_count = 0;
};

struct PsInfo {
  Pid pid = kNoPid;
  ProcState state = ProcState::kRunning;
  SimTime duration = 0;  // Pause length; 0 for crashes.
};

struct TraceEvent {
  SimTime ts = 0;
  NodeId node = kNoNode;
  EventType type = EventType::kSCF;
  std::variant<ScfInfo, AfInfo, NdInfo, PsInfo> info;

  const ScfInfo& scf() const { return std::get<ScfInfo>(info); }
  const AfInfo& af() const { return std::get<AfInfo>(info); }
  const NdInfo& nd() const { return std::get<NdInfo>(info); }
  const PsInfo& ps() const { return std::get<PsInfo>(info); }

  // One-line textual form (the on-disk dump format).
  std::string ToLine() const;
  // Parses a line produced by ToLine(); returns false on malformed input.
  static bool FromLine(const std::string& line, TraceEvent* out);
};

// A dumped trace window, ordered by timestamp.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceEvent> events) : events_(std::move(events)) {}

  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent>& events() { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const TraceEvent& operator[](size_t i) const { return events_[i]; }

  void Append(TraceEvent event) { events_.push_back(std::move(event)); }

  // Events of one type, in order.
  std::vector<TraceEvent> OfType(EventType type) const;
  // AF events on `node` with ts < `before`, most recent first — the
  // "functions which precede F" input to Algorithm 1.
  std::vector<AfInfo> FunctionsBefore(NodeId node, SimTime before) const;

  // Serialization (one event per line).
  std::string Serialize() const;
  static Trace Parse(const std::string& text);

  // Merges per-node traces into one timestamp-ordered trace (stable for ties).
  static Trace Merge(const std::vector<Trace>& traces);

 private:
  std::vector<TraceEvent> events_;
};

// Memoized FunctionsBefore over an immutable, timestamp-ordered trace.
//
// Algorithm 1 queries FunctionsBefore once per chain-extension step, and the
// parallel diagnosis engine hammers it from every candidate; the linear scan
// over the full event vector turns that into O(events) per query. The index
// buckets AF events per node once (O(events) build) and answers each query
// with one binary search plus the size of the answer.
//
// Precondition: the trace's events are ordered by ts (true for merged /
// parsed production dumps) and the trace outlives the index unmodified.
// Results are bit-identical to Trace::FunctionsBefore on such traces.
class TraceIndex {
 public:
  TraceIndex() = default;
  explicit TraceIndex(const Trace& trace);

  // AF events on `node` with ts <= `before`, most recent first.
  std::vector<AfInfo> FunctionsBefore(NodeId node, SimTime before) const;

 private:
  struct NodeAfs {
    std::vector<SimTime> ts;   // Non-decreasing (trace order).
    std::vector<AfInfo> afs;   // Parallel to `ts`.
  };
  std::map<NodeId, NodeAfs> per_node_;
};

}  // namespace rose

#endif  // SRC_TRACE_EVENT_H_
