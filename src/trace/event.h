// Trace event model.
//
// A trace is the sequence (E_i = {ts, type, I}) from the paper, with four
// event types:
//   SCF — system-call failure {pid, syscall, fd, filename, errno}
//   AF  — application function invocation {pid, function_id}
//   ND  — network delay {dst_ip, src_ip, duration, packet_count}
//   PS  — process state {pid, state, duration}
// Events carry the node id of the originating process so multi-node merged
// traces stay attributable.
//
// Strings (SCF filenames, ND ip addresses) are interned: events store 32-bit
// StrIds resolved against the StringPool owned by the containing Trace.
// That keeps TraceEvent fixed-size and trivially copyable-cheap, which is
// what lets a million-event window be snapshotted, merged, and serialized
// without a million heap strings. Ids are pool-relative — moving an event
// into another trace goes through Trace::AppendRemapped.
#ifndef SRC_TRACE_EVENT_H_
#define SRC_TRACE_EVENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "src/os/process.h"
#include "src/os/syscall.h"
#include "src/sim/time.h"
#include "src/trace/string_pool.h"

namespace rose {

struct Diagnostic;  // src/analyze/diagnostic.h — binary load reports through it.

enum class EventType : int8_t { kSCF = 0, kAF, kND, kPS };

std::string_view EventTypeName(EventType type);

struct ScfInfo {
  Pid pid = kNoPid;
  Sys sys = Sys::kOpen;
  int32_t fd = -1;
  // Interned pathname (resolved from the fd map during dump post-processing);
  // kEmptyStrId when unknown.
  StrId filename = kEmptyStrId;
  Err err = Err::kOk;
  // Execution index (src/trace/execution_index.h): the calling-context
  // digest active at the invocation and the 1-based in-context sequence
  // number. 0/0 means "not indexed" (pre-index dumps); the textual and
  // binary codecs omit the fields in that case, so legacy traces round-trip
  // byte-identically.
  uint64_t ctx_digest = 0;
  uint32_t ctx_seq = 0;
};

struct AfInfo {
  Pid pid = kNoPid;
  int32_t function_id = -1;
};

struct NdInfo {
  StrId src_ip = kEmptyStrId;
  StrId dst_ip = kEmptyStrId;
  SimTime duration = 0;
  uint64_t packet_count = 0;
};

struct PsInfo {
  Pid pid = kNoPid;
  ProcState state = ProcState::kRunning;
  SimTime duration = 0;  // Pause length; 0 for crashes.
};

struct TraceEvent {
  SimTime ts = 0;
  NodeId node = kNoNode;
  EventType type = EventType::kSCF;
  std::variant<ScfInfo, AfInfo, NdInfo, PsInfo> info;

  const ScfInfo& scf() const { return std::get<ScfInfo>(info); }
  const AfInfo& af() const { return std::get<AfInfo>(info); }
  const NdInfo& nd() const { return std::get<NdInfo>(info); }
  const PsInfo& ps() const { return std::get<PsInfo>(info); }

  // One-line textual form (the human-readable dump format); `pool` resolves
  // the event's interned strings.
  std::string ToLine(const StringPool& pool) const;
  // Appends exactly ToLine's bytes to `*out` without allocating a fresh
  // string — the streaming canonical hash formats a million events through
  // one reused buffer.
  void AppendLine(std::string* out, const StringPool& pool) const;
  // Parses a line produced by ToLine(), interning strings into `pool`;
  // returns false on malformed input.
  static bool FromLine(const std::string& line, StringPool* pool, TraceEvent* out);
};

// A dumped trace window, ordered by timestamp. Owns the string pool its
// events' StrIds resolve against.
class Trace {
 public:
  Trace() = default;
  // Adopts `events` whose ids already resolve against `pool` (the tracer's
  // dump and the binary reader build traces this way).
  Trace(std::vector<TraceEvent> events, StringPool pool)
      : events_(std::move(events)), pool_(std::move(pool)) {}

  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent>& events() { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const TraceEvent& operator[](size_t i) const { return events_[i]; }

  const StringPool& pool() const { return pool_; }
  StringPool& pool() { return pool_; }
  // Interns into this trace's pool (use when constructing events in place).
  StrId Intern(std::string_view s) { return pool_.Intern(s); }
  // Resolves an id from this trace's pool.
  std::string_view str(StrId id) const { return pool_.View(id); }

  // Appends an event whose ids already resolve against this trace's pool.
  void Append(TraceEvent event) { events_.push_back(std::move(event)); }

  // Appends an event from another trace, re-interning its strings from
  // `source` into this trace's pool. `cache` (optional) memoizes the
  // source-id -> local-id mapping across calls with the same source pool.
  void AppendRemapped(const TraceEvent& event, const StringPool& source,
                      std::vector<StrId>* cache = nullptr);

  // Events of one type, in order. The returned events' ids still resolve
  // against this trace's pool.
  std::vector<TraceEvent> OfType(EventType type) const;
  // AF events on `node` with ts < `before`, most recent first — the
  // "functions which precede F" input to Algorithm 1.
  std::vector<AfInfo> FunctionsBefore(NodeId node, SimTime before) const;

  // Text serialization (one event per line).
  std::string Serialize() const;
  static Trace Parse(const std::string& text);

  // Binary serialization (magic + framed chunks; see src/trace/trace_io.h
  // and DESIGN.md §9). ParseBinary never throws: corrupt or truncated input
  // yields the events of every intact frame plus Diagnostics (appended to
  // `diags` when non-null) describing what was dropped.
  std::string SerializeBinary() const;
  static Trace ParseBinary(std::string_view data, std::vector<Diagnostic>* diags = nullptr);
  // Auto-detects binary (magic header) vs text and parses accordingly.
  static Trace Load(std::string_view data, std::vector<Diagnostic>* diags = nullptr);

  // Merges per-node traces into one timestamp-ordered trace (stable for
  // ties), re-interning every input's strings into the merged trace's pool.
  static Trace Merge(const std::vector<Trace>& traces);

 private:
  std::vector<TraceEvent> events_;
  StringPool pool_;
};

// A non-owning, read-only view of a trace: a span of events plus the pool
// their ids resolve against. Views are two pointers and a length — pass them
// by value. The viewed trace must outlive the view unmodified (growing the
// trace may relocate both the events and the pool arena); every read-only
// consumer (extraction, validation, profiling absorption, indexing) takes a
// TraceView so callers never copy a window just to inspect it.
class TraceView {
 public:
  TraceView() = default;
  TraceView(const TraceEvent* events, size_t count, const StringPool* pool)
      : events_(events), count_(count), pool_(pool) {}
  // Implicit: any API taking a TraceView accepts a Trace directly.
  TraceView(const Trace& trace)  // NOLINT(google-explicit-constructor)
      : events_(trace.events().data()), count_(trace.size()), pool_(&trace.pool()) {}

  const TraceEvent* begin() const { return events_; }
  const TraceEvent* end() const { return events_ + count_; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const TraceEvent& operator[](size_t i) const { return events_[i]; }

  const StringPool& pool() const {
    static const StringPool kEmptyPool;
    return pool_ == nullptr ? kEmptyPool : *pool_;
  }
  std::string_view str(StrId id) const { return pool().View(id); }

  // Same contract as Trace::FunctionsBefore.
  std::vector<AfInfo> FunctionsBefore(NodeId node, SimTime before) const;

 private:
  const TraceEvent* events_ = nullptr;
  size_t count_ = 0;
  const StringPool* pool_ = nullptr;
};

// Semantic equality: same event sequence with identical resolved strings
// (the underlying StrIds may differ between pools).
bool TraceEquals(TraceView a, TraceView b);

// Memoized FunctionsBefore over an immutable, timestamp-ordered trace.
//
// Algorithm 1 queries FunctionsBefore once per chain-extension step, and the
// parallel diagnosis engine hammers it from every candidate; the linear scan
// over the full event vector turns that into O(events) per query. The index
// buckets AF events per node once (O(events) build) and answers each query
// with one binary search plus the size of the answer.
//
// Precondition: the viewed events are ordered by ts (true for merged /
// parsed production dumps) and the trace outlives the index unmodified.
// Results are bit-identical to Trace::FunctionsBefore on such traces.
class TraceIndex {
 public:
  TraceIndex() = default;
  explicit TraceIndex(TraceView trace);

  // AF events on `node` with ts <= `before`, most recent first.
  std::vector<AfInfo> FunctionsBefore(NodeId node, SimTime before) const;

 private:
  struct NodeAfs {
    std::vector<SimTime> ts;   // Non-decreasing (trace order).
    std::vector<AfInfo> afs;   // Parallel to `ts`.
  };
  std::map<NodeId, NodeAfs> per_node_;
};

}  // namespace rose

#endif  // SRC_TRACE_EVENT_H_
