#include "src/trace/execution_index.h"

namespace rose {

namespace {

// SplitMix64 finalizer — a strong 64-bit avalanche used to mix chain links
// and to combine the sequence-key fields. Order-sensitivity comes from
// re-mixing the running value before each new link is folded in.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Fold(uint64_t h, uint64_t v) { return Mix(h + 0x9e3779b97f4a7c15ULL + v); }

uint64_t HashBytes(std::string_view s) {
  // FNV-1a, the same scheme the canonical trace hash uses.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string IndexInputOf(const SyscallInvocation& inv) {
  if (SysTakesPath(inv.sys)) return inv.path;
  if (!inv.remote_ip.empty()) return "sock:" + inv.remote_ip;
  return std::string();
}

void ExecutionIndexTracker::OnFunctionEnter(Pid pid, int32_t function_id) {
  Chain& chain = chains_[pid];
  chain.ids[chain.head] = function_id;
  chain.head = static_cast<uint8_t>((chain.head + 1) % kExecutionContextDepth);
  if (chain.size < kExecutionContextDepth) chain.size++;
  chain.digest = DigestChain(chain);
}

uint64_t ExecutionIndexTracker::DigestOf(Pid pid) const {
  auto it = chains_.find(pid);
  return it == chains_.end() ? 0 : it->second.digest;
}

uint64_t ExecutionIndexTracker::DigestChain(const Chain& chain) {
  // Oldest-to-newest over the ring so the digest is order-sensitive. The
  // chain is at most kExecutionContextDepth entries, so a full rehash per
  // enter is a handful of mixes — cheaper than maintaining a removable
  // rolling hash and trivially correct.
  uint64_t h = 0;
  const int start = (chain.head - chain.size + kExecutionContextDepth) % kExecutionContextDepth;
  for (int i = 0; i < chain.size; i++) {
    const int slot = (start + i) % kExecutionContextDepth;
    h = Fold(h, static_cast<uint64_t>(static_cast<uint32_t>(chain.ids[slot])));
  }
  // 0 is reserved for "no context"; remap the (vanishingly rare) collision.
  return h == 0 ? 0x9e3779b97f4a7c15ULL : h;
}

uint64_t ExecutionIndexTracker::SeqKey(NodeId node, uint64_t digest, Sys sys,
                                       std::string_view input) {
  uint64_t h = digest;
  h = Fold(h, static_cast<uint64_t>(static_cast<uint32_t>(node)));
  h = Fold(h, static_cast<uint64_t>(static_cast<int32_t>(sys)));
  h = Fold(h, HashBytes(input));
  return h;
}

uint32_t ExecutionIndexTracker::NextSeq(NodeId node, uint64_t digest, Sys sys,
                                        std::string_view input) {
  return ++seq_[SeqKey(node, digest, sys, input)];
}

void ExecutionIndexTracker::Reset() {
  chains_.clear();
  seq_.clear();
}

}  // namespace rose
