// Execution indexing: calling-context-qualified syscall addresses.
//
// A flat "nth matching invocation" counter drifts whenever concurrency noise
// adds or removes an unrelated invocation before the target. Following the
// distributed execution indexing idea (Meiklejohn et al.), Rose instead
// addresses a syscall by
//
//   (context digest, sequence number)
//
// where the context digest is a rolling 64-bit hash of the invoking
// process's most recent function-enter chain (a bounded shadow stack: the
// last kContextDepth uprobe hits, oldest to newest), and the sequence number
// counts matching invocations *within* that context on that node, keyed by
// (node, digest, syscall, input). Invocations from other calling contexts no
// longer perturb the counter, so a recorded (digest, seq) pair re-resolves
// to the same injection point across interleavings.
//
// The tracer runs one tracker over the production execution and stamps every
// SCF event with the pair; the executor runs an identical tracker online
// during replay and matches scheduled faults against it in O(1). Both sides
// must observe the same kernel hook stream — the tracker is fed from
// OnFunctionEnter (every uprobe hit, before any monitored-set filtering) and
// advanced once per syscall invocation.
//
// A digest of 0 means "no context recorded" (e.g. a trace from a pre-index
// tracer); all consumers treat it as absent and fall back to flat counting.
#ifndef SRC_TRACE_EXECUTION_INDEX_H_
#define SRC_TRACE_EXECUTION_INDEX_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "src/os/process.h"
#include "src/os/syscall.h"

namespace rose {

// Depth of the bounded shadow stack. The simulated guests' call chains are
// shallow (Algorithm 1 caps context chains at 6); eight enters of history
// distinguishes every calling context the diagnosis engine can express while
// keeping the per-enter update a handful of integer mixes.
inline constexpr int kExecutionContextDepth = 8;

// The sequence-counter key input for a syscall invocation: the pathname for
// path-based syscalls, "sock:<ip>" for network ones, empty otherwise. Both
// the tracer (at syscall exit) and the executor (at interpose time) see the
// same SyscallInvocation, so keying on its immediate arguments — never on
// post-hoc fd resolution — guarantees the two sides count identically.
std::string IndexInputOf(const SyscallInvocation& inv);

class ExecutionIndexTracker {
 public:
  // Feeds one uprobe hit into pid's shadow chain. Must be called for every
  // function enter the kernel reports, regardless of any monitored-set
  // configuration, or digests diverge between capture and replay.
  void OnFunctionEnter(Pid pid, int32_t function_id);

  // Current context digest of `pid`; 0 when no function has entered yet.
  uint64_t DigestOf(Pid pid) const;

  // Advances and returns the 1-based sequence number of the next invocation
  // matching (node, digest, sys, input). Call exactly once per syscall
  // invocation on each side of the capture/replay pair.
  uint32_t NextSeq(NodeId node, uint64_t digest, Sys sys, std::string_view input);

  // Forgets all per-pid chains and sequence counters.
  void Reset();

  // The stable 64-bit key NextSeq counts under — exposed so tests can assert
  // the keying scheme directly.
  static uint64_t SeqKey(NodeId node, uint64_t digest, Sys sys, std::string_view input);

 private:
  struct Chain {
    int32_t ids[kExecutionContextDepth] = {};
    uint8_t size = 0;  // Valid entries, <= kExecutionContextDepth.
    uint8_t head = 0;  // Ring slot the next enter writes.
    uint64_t digest = 0;
  };

  static uint64_t DigestChain(const Chain& chain);

  std::unordered_map<Pid, Chain> chains_;
  std::unordered_map<uint64_t, uint32_t> seq_;
};

}  // namespace rose

#endif  // SRC_TRACE_EXECUTION_INDEX_H_
