#include "src/trace/mapped_trace.h"

#include <cstring>
#include <utility>

#include "src/common/strings.h"
#include "src/obs/metrics.h"
#include "src/trace/trace_io.h"

namespace rose {

namespace {

// rose::obs self-metrics for the zero-copy load path (docs/metrics.md
// "trace_io.*").
struct MappedMetrics {
  Counter* zero_copy_decodes;
  Counter* promotions;
};

MappedMetrics& Metrics() {
  static MappedMetrics* m = [] {
    MetricRegistry& reg = MetricRegistry::Global();
    auto* metrics = new MappedMetrics();
    metrics->zero_copy_decodes = reg.GetCounter("trace_io.zero_copy_decodes");
    metrics->promotions = reg.GetCounter("trace_io.promotions");
    return metrics;
  }();
  return *m;
}

}  // namespace

struct MappedTrace::Impl {
  // Exactly one of `file` / `buffer` backs `bytes`.
  MmapTraceFile file;
  std::string buffer;
  bool file_backed = false;

  std::vector<TraceEvent> events;
  StringPool pool;  // External-arena over `bytes` when `zero_copy`.
  Trace owned;      // Text fallback: a normal owning parse.
  bool zero_copy = false;
  std::vector<Diagnostic> diags;

  std::string_view bytes() const { return file_backed ? file.bytes() : buffer; }
};

MappedTrace MappedTrace::Decode(std::shared_ptr<Impl> impl) {
  const std::string_view bytes = impl->bytes();
  if (LooksLikeBinaryTrace(bytes)) {
    // Zero-copy walk: same frames, CRCs, and failure diagnostics as
    // Trace::ParseBinary, but pool strings stay in the backing bytes.
    TraceReader reader(bytes, bytes.data());
    TraceEvent event;
    while (reader.Next(&event)) {
      impl->events.push_back(event);
    }
    impl->diags = reader.diagnostics();
    impl->pool = reader.ReleasePool();
    impl->zero_copy = true;
    Metrics().zero_copy_decodes->Inc();
  } else {
    // Text dumps have no frame structure to alias; parse them the owning
    // way. Matches LoadTraceFile's auto-detection.
    impl->owned = Trace::Parse(std::string(bytes));
  }
  MappedTrace out;
  out.impl_ = std::move(impl);
  return out;
}

MappedTrace MappedTrace::OpenFile(const std::string& path) {
  auto impl = std::make_shared<Impl>();
  int open_errno = 0;
  impl->file = MmapTraceFile::Open(path, &open_errno);
  if (!impl->file.valid()) {
    MappedTrace out;  // invalid(): unreadable file, nothing to decode.
    out.invalid_diags_ = std::make_shared<std::vector<Diagnostic>>();
    Diagnostic diag;
    diag.code = DiagCode::kTraceFileUnreadable;
    diag.severity = Severity::kError;
    diag.message = StrFormat("cannot open trace file %s: %s", path.c_str(),
                             open_errno != 0 ? std::strerror(open_errno) : "unknown error");
    diag.hint = "check the path and permissions";
    out.invalid_diags_->push_back(std::move(diag));
    return out;
  }
  impl->file_backed = true;
  return Decode(std::move(impl));
}

MappedTrace MappedTrace::FromBuffer(std::string storage) {
  auto impl = std::make_shared<Impl>();
  impl->buffer = std::move(storage);
  impl->file_backed = false;
  return Decode(std::move(impl));
}

TraceView MappedTrace::view() const {
  if (impl_ == nullptr) {
    return TraceView();
  }
  if (!impl_->zero_copy) {
    return TraceView(impl_->owned);
  }
  return TraceView(impl_->events.data(), impl_->events.size(), &impl_->pool);
}

std::string_view MappedTrace::bytes() const {
  return impl_ != nullptr ? impl_->bytes() : std::string_view();
}

size_t MappedTrace::event_count() const {
  if (impl_ == nullptr) {
    return 0;
  }
  return impl_->zero_copy ? impl_->events.size() : impl_->owned.size();
}

const std::vector<Diagnostic>& MappedTrace::diagnostics() const {
  static const std::vector<Diagnostic> kEmpty;
  if (impl_ != nullptr) {
    return impl_->diags;
  }
  return invalid_diags_ != nullptr ? *invalid_diags_ : kEmpty;
}

bool MappedTrace::mapped() const { return impl_ != nullptr && impl_->file.mapped(); }

size_t MappedTrace::mapped_bytes() const { return mapped() ? impl_->file.size() : 0; }

const char* MappedTrace::load_mode() const { return mapped() ? "mmap" : "heap"; }

bool MappedTrace::zero_copy() const { return impl_ != nullptr && impl_->zero_copy; }

Trace MappedTrace::Promote() const {
  if (impl_ == nullptr) {
    return Trace();
  }
  Metrics().promotions->Inc();
  if (!impl_->zero_copy) {
    return impl_->owned;  // Already owning; copy out.
  }
  // Re-intern in id order so the promoted pool assigns identical ids and the
  // copied events need no remapping.
  StringPool pool;
  for (StrId id = 1; id < impl_->pool.size(); id++) {
    pool.Intern(impl_->pool.View(id));
  }
  return Trace(impl_->events, std::move(pool));
}

}  // namespace rose
