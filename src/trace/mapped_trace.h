// Zero-copy trace loading (DESIGN.md §13).
//
// Trace::ParseBinary copies every pool string into a private arena and the
// whole file through a heap buffer before the first event is usable. For
// read-only consumers — diagnosis, validation, stats — those copies buy
// nothing: the events decode into one contiguous vector either way, and the
// pool strings already sit in the file bytes. MappedTrace keeps the file
// bytes alive (mmap via MmapTraceFile, or an adopted in-memory buffer from a
// serve submission) and decodes the RTRC frames with an external-arena
// StringPool whose entries are offsets into those bytes. CRC validation is
// unchanged — every frame is checked as the decode walk reaches it, which on
// a mapped file means pages fault in lazily instead of being read up front.
//
// A MappedTrace is a cheap shared handle: copies share one backing mapping
// and decoded state, and the mapping is unmapped when the last copy drops.
// TraceViews taken from it are valid only while some copy is alive — the
// guard() handle makes that testable (tests/trace_io_test.cc).
//
// Text dumps (and anything without the RTRC magic) fall back to an owning
// Trace inside the same handle, so callers see one type either way;
// load_mode() reports which path served the bytes.
#ifndef SRC_TRACE_MAPPED_TRACE_H_
#define SRC_TRACE_MAPPED_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analyze/diagnostic.h"
#include "src/trace/event.h"
#include "src/trace/mmap_file.h"

namespace rose {

class MappedTrace {
 public:
  // An empty handle: valid() is false, view() is empty.
  MappedTrace() = default;

  // Maps `path` (heap read fallback off-POSIX) and decodes it. An unreadable
  // file yields an invalid handle plus a TB206 diagnostic with the errno
  // text; container damage decodes the intact prefix and appends TB2xx
  // diagnostics, exactly as LoadTraceFile does.
  static MappedTrace OpenFile(const std::string& path);

  // Adopts `storage` (e.g. a serve submission's trace blob, moved in without
  // copying) and decodes it in place. The decoded pool aliases `storage`'s
  // bytes, which the handle owns.
  static MappedTrace FromBuffer(std::string storage);

  // False only for default-constructed handles and unreadable files; damaged
  // containers are valid-with-diagnostics, matching LoadTraceFile.
  bool valid() const { return impl_ != nullptr; }

  // The decoded events + pool. Valid while any copy of this handle is alive.
  TraceView view() const;
  // The raw backing bytes (the RTRC container for binary dumps) — what a
  // zero-copy submission ships over the serve wire. Same lifetime as view().
  std::string_view bytes() const;
  size_t event_count() const;
  const std::vector<Diagnostic>& diagnostics() const;

  // True when the backing bytes live in an mmap region.
  bool mapped() const;
  size_t mapped_bytes() const;
  // "mmap" or "heap" — what actually backs the bytes (heap covers the
  // read-fallback, adopted buffers, and text dumps).
  const char* load_mode() const;
  // True when the decode was zero-copy (binary container, external-arena
  // pool). False for text dumps, which parse into an owning Trace.
  bool zero_copy() const;

  // Copy-on-write promotion: materializes an owning Trace (private pool,
  // same ids — strings re-interned in id order) for call sites that must
  // mutate (Merge, AppendRemapped, --save after edits). Counted in
  // trace_io.promotions.
  Trace Promote() const;

  // Expires exactly when the last copy of this handle drops — a test can
  // hold this, release the handle, and assert the mapping is gone before
  // (not) touching the view.
  std::weak_ptr<const void> guard() const { return impl_; }

 private:
  struct Impl;
  static MappedTrace Decode(std::shared_ptr<Impl> impl);

  std::shared_ptr<Impl> impl_;
  // Set only on unreadable-file handles (no backing bytes, no Impl): the
  // TB206 diagnostic the caller reports. shared_ptr keeps copies cheap.
  std::shared_ptr<std::vector<Diagnostic>> invalid_diags_;
};

}  // namespace rose

#endif  // SRC_TRACE_MAPPED_TRACE_H_
