#include "src/trace/mmap_file.h"

#include <cerrno>
#include <cstdio>
#include <utility>

#include "src/obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define ROSE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ROSE_HAVE_MMAP 0
#endif

namespace rose {

namespace {

// rose::obs self-metrics for the mapped load path (docs/metrics.md
// "trace_io.mmap_*").
struct MmapMetrics {
  Counter* opens;
  Counter* bytes;
  Counter* fallbacks;
};

MmapMetrics& Metrics() {
  static MmapMetrics* m = [] {
    MetricRegistry& reg = MetricRegistry::Global();
    auto* metrics = new MmapMetrics();
    metrics->opens = reg.GetCounter("trace_io.mmap_opens");
    metrics->bytes = reg.GetCounter("trace_io.mmap_bytes");
    metrics->fallbacks = reg.GetCounter("trace_io.mmap_fallbacks");
    return metrics;
  }();
  return *m;
}

}  // namespace

bool ReadFileBytes(const std::string& path, std::string* out, int* errno_out) {
  if (errno_out != nullptr) {
    *errno_out = 0;
  }
#if ROSE_HAVE_MMAP
  // fstat + read into an exact-sized buffer: one copy, no stringstream.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno_out != nullptr) {
      *errno_out = errno;
    }
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    if (errno_out != nullptr) {
      *errno_out = errno != 0 ? errno : EINVAL;
    }
    ::close(fd);
    return false;
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < out->size()) {
    const ssize_t n = ::read(fd, out->data() + done, out->size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno_out != nullptr) {
        *errno_out = errno;
      }
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;  // File shrank under us; keep what was read.
    }
    done += static_cast<size_t>(n);
  }
  out->resize(done);
  ::close(fd);
  return true;
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno_out != nullptr) {
      *errno_out = errno;
    }
    return false;
  }
  out->clear();
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
#endif
}

MmapTraceFile& MmapTraceFile::operator=(MmapTraceFile&& other) noexcept {
  if (this != &other) {
    Reset();
    fallback_ = std::move(other.fallback_);
    mapped_ = other.mapped_;
    valid_ = other.valid_;
    size_ = other.size_;
    // Fallback bytes live in fallback_, whose heap buffer just moved here;
    // recompute rather than trusting the moved-from pointer.
    data_ = mapped_ ? other.data_ : fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.valid_ = false;
    other.mapped_ = false;
  }
  return *this;
}

void MmapTraceFile::Reset() {
#if ROSE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  valid_ = false;
  mapped_ = false;
  fallback_.clear();
}

MmapTraceFile MmapTraceFile::Open(const std::string& path, int* errno_out) {
  MmapTraceFile file;
  if (errno_out != nullptr) {
    *errno_out = 0;
  }
#if ROSE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto size = static_cast<size_t>(st.st_size);
      if (size == 0) {
        // mmap(0) is EINVAL; an empty file is a valid (empty) byte range.
        ::close(fd);
        file.valid_ = true;
        Metrics().opens->Inc();
        return file;
      }
      void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (addr != MAP_FAILED) {
        file.data_ = static_cast<const char*>(addr);
        file.size_ = size;
        file.valid_ = true;
        file.mapped_ = true;
        Metrics().opens->Inc();
        Metrics().bytes->Inc(size);
        return file;
      }
    } else {
      ::close(fd);
    }
  }
#endif
  // mmap unavailable or refused: one exact-sized read into an owned buffer.
  int read_errno = 0;
  if (!ReadFileBytes(path, &file.fallback_, &read_errno)) {
    if (errno_out != nullptr) {
      *errno_out = read_errno;
    }
    return file;
  }
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  file.valid_ = true;
  Metrics().fallbacks->Inc();
  return file;
}

}  // namespace rose
