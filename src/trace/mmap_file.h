// Read-only memory-mapped trace files (DESIGN.md §13).
//
// The diagnosis phase re-reads a dumped window many times; reading it
// through a stream copies every byte into a heap buffer before the first
// event decodes. MmapTraceFile maps the file instead (PROT_READ/MAP_PRIVATE
// on POSIX) so the container bytes are paged in on demand and the mapped
// region can back zero-copy string-pool entries (MappedTrace). Platforms
// without mmap — and files mmap refuses (zero-length, exotic filesystems) —
// fall back transparently to one fstat-sized read() into an owned buffer;
// `mapped()` reports which path was taken.
#ifndef SRC_TRACE_MMAP_FILE_H_
#define SRC_TRACE_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace rose {

// Reads all of `path` with one fstat + read loop into `*out` (preallocated
// to the file size — no stream-buffer double copy). False on failure, with
// the failing errno in `*errno_out` when non-null. The shared non-mmap load
// path for LoadTraceFile and the MmapTraceFile fallback.
bool ReadFileBytes(const std::string& path, std::string* out, int* errno_out = nullptr);

// Move-only RAII mapping of one file. Invalid instances hold no bytes.
class MmapTraceFile {
 public:
  MmapTraceFile() = default;
  ~MmapTraceFile() { Reset(); }

  MmapTraceFile(MmapTraceFile&& other) noexcept { *this = std::move(other); }
  MmapTraceFile& operator=(MmapTraceFile&& other) noexcept;
  MmapTraceFile(const MmapTraceFile&) = delete;
  MmapTraceFile& operator=(const MmapTraceFile&) = delete;

  // Maps `path` read-only; on any mmap failure (or off-POSIX builds) falls
  // back to ReadFileBytes. An unreadable file yields an invalid instance
  // with the errno in `*errno_out`.
  static MmapTraceFile Open(const std::string& path, int* errno_out = nullptr);

  // The file's bytes — stable for the lifetime of this object (and only
  // that lifetime: views into a mapping dangle after destruction).
  std::string_view bytes() const { return {data_, size_}; }
  bool valid() const { return valid_; }
  // True when bytes() lives in an actual mmap region (vs the heap fallback).
  bool mapped() const { return mapped_; }
  size_t size() const { return size_; }

 private:
  void Reset();

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool valid_ = false;
  bool mapped_ = false;
  std::string fallback_;  // Owns the bytes when !mapped_.
};

}  // namespace rose

#endif  // SRC_TRACE_MMAP_FILE_H_
