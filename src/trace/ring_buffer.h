// Fixed-capacity overwriting ring buffer — the BPF_MAP_ARRAY analogue.
//
// Keeps the most recent `capacity` entries; older entries are overwritten.
// Memory footprint is bounded at construction, matching the paper's
// "bounded memory, no continuous disk I/O" design.
#ifndef SRC_TRACE_RING_BUFFER_H_
#define SRC_TRACE_RING_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rose {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : capacity_(capacity) {
    entries_.reserve(capacity == 0 ? 1 : capacity);
  }

  void Push(T value) {
    if (capacity_ == 0) {
      overwritten_++;
      return;
    }
    if (entries_.size() < capacity_) {
      entries_.push_back(std::move(value));
      return;
    }
    entries_[head_] = std::move(value);
    // Branchy wrap instead of `%`: Push sits on the tracer's per-event hot
    // path and the modulo's divide dominates it.
    head_++;
    if (head_ == capacity_) {
      head_ = 0;
    }
    overwritten_++;
  }

  // Entries in insertion order, oldest first.
  std::vector<T> Snapshot() const {
    std::vector<T> out;
    const size_t count = entries_.size();
    out.reserve(count);
    size_t index = head_;  // 0 until the buffer first fills.
    for (size_t i = 0; i < count; i++) {
      out.push_back(entries_[index]);
      index++;
      if (index == count) {
        index = 0;
      }
    }
    return out;
  }

  // The newest min(n, size()) entries in insertion order — what a streaming
  // sender ships without copying the whole window.
  std::vector<T> SnapshotTail(size_t n) const {
    const size_t count = entries_.size();
    const size_t take = n < count ? n : count;
    std::vector<T> out;
    out.reserve(take);
    size_t index = head_ + (count - take);
    if (index >= count) {
      index -= count;
    }
    for (size_t i = 0; i < take; i++) {
      out.push_back(entries_[index]);
      index++;
      if (index == count) {
        index = 0;
      }
    }
    return out;
  }

  void Clear() {
    entries_.clear();
    head_ = 0;
    overwritten_ = 0;
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  // Number of entries displaced since the buffer filled.
  uint64_t overwritten() const { return overwritten_; }

 private:
  size_t capacity_;
  size_t head_ = 0;
  uint64_t overwritten_ = 0;
  std::vector<T> entries_;
};

}  // namespace rose

#endif  // SRC_TRACE_RING_BUFFER_H_
