#include "src/trace/string_pool.h"

namespace rose {

StrId StringPool::Intern(std::string_view s) {
  assert(external_base_ == nullptr && "external-arena pools are immutable");
  if (s.empty()) {
    return kEmptyStrId;
  }
  const auto it = index_.find(s);
  if (it != index_.end()) {
    return it->second;
  }
  const auto id = static_cast<StrId>(entries_.size());
  entries_.push_back(Entry{static_cast<uint32_t>(arena_.size()),
                           static_cast<uint32_t>(s.size())});
  arena_.append(s);
  payload_bytes_ = arena_.size();
  index_.emplace(std::string(s), id);
  return id;
}

}  // namespace rose
