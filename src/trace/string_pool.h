// Interned trace strings (filenames, socket labels, ip addresses).
//
// A production window holds up to a million events but only dozens of
// distinct strings — every open() of the same journal file, every packet on
// the same connection repeats the same pathname or ip. Interning turns the
// per-event std::string members of ScfInfo/NdInfo into 32-bit ids resolved
// against a pool owned by the trace, which shrinks events to a fixed size,
// makes copying/merging traces cheap, and gives the binary dump format a
// natural string table.
#ifndef SRC_TRACE_STRING_POOL_H_
#define SRC_TRACE_STRING_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rose {

// Index of an interned string within its owning StringPool. Ids are only
// meaningful relative to one pool; moving events between traces goes through
// Trace::AppendRemapped, which re-interns into the destination pool.
using StrId = uint32_t;

// Every pool interns "" as id 0, so value-initialized events resolve to the
// empty string in any pool.
inline constexpr StrId kEmptyStrId = 0;

class StringPool {
 public:
  StringPool() { entries_.push_back(Entry{0, 0}); }

  // Returns the id of `s`, interning it on first sight. Ids are assigned
  // densely in first-intern order, which the binary format relies on.
  StrId Intern(std::string_view s);

  // The string for `id`; the empty string for out-of-range ids. The view
  // points into the pool's arena: it is invalidated by a later Intern() (the
  // arena may relocate), so resolve ids only while the pool is not growing —
  // true for every dumped, parsed, or merged trace.
  std::string_view View(StrId id) const {
    if (id >= entries_.size()) {
      return {};
    }
    const Entry& entry = entries_[id];
    return std::string_view(arena_).substr(entry.offset, entry.length);
  }

  // Number of distinct strings, counting the implicit empty string.
  size_t size() const { return entries_.size(); }
  // Total bytes of distinct string payload (the arena size).
  size_t payload_bytes() const { return arena_.size(); }

 private:
  // Entries store offsets into the arena, not pointers, so the defaulted
  // copy/move of a pool (and of any Trace owning one) stays correct.
  struct Entry {
    uint32_t offset = 0;
    uint32_t length = 0;
  };

  // Transparent hashing: lookups take string_view without materializing a
  // std::string — Intern is on the tracer's record path.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::string arena_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, StrId, Hash, std::equal_to<>> index_;
};

}  // namespace rose

#endif  // SRC_TRACE_STRING_POOL_H_
