// Interned trace strings (filenames, socket labels, ip addresses).
//
// A production window holds up to a million events but only dozens of
// distinct strings — every open() of the same journal file, every packet on
// the same connection repeats the same pathname or ip. Interning turns the
// per-event std::string members of ScfInfo/NdInfo into 32-bit ids resolved
// against a pool owned by the trace, which shrinks events to a fixed size,
// makes copying/merging traces cheap, and gives the binary dump format a
// natural string table.
#ifndef SRC_TRACE_STRING_POOL_H_
#define SRC_TRACE_STRING_POOL_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rose {

// Index of an interned string within its owning StringPool. Ids are only
// meaningful relative to one pool; moving events between traces goes through
// Trace::AppendRemapped, which re-interns into the destination pool.
using StrId = uint32_t;

// Every pool interns "" as id 0, so value-initialized events resolve to the
// empty string in any pool.
inline constexpr StrId kEmptyStrId = 0;

class StringPool {
 public:
  StringPool() { entries_.push_back(Entry{0, 0}); }

  // Returns the id of `s`, interning it on first sight. Ids are assigned
  // densely in first-intern order, which the binary format relies on.
  // Must not be called on an external-arena pool (no index is built there;
  // mutate via Trace::Promote-style re-interning into a fresh pool instead).
  StrId Intern(std::string_view s);

  // The string for `id`; the empty string for out-of-range ids. The view
  // points into the pool's arena: it is invalidated by a later Intern() (the
  // arena may relocate), so resolve ids only while the pool is not growing —
  // true for every dumped, parsed, or merged trace. External-arena pools
  // (zero-copy mapped traces) resolve against the bound arena instead, which
  // must outlive the pool and every view taken from it.
  std::string_view View(StrId id) const {
    if (id >= entries_.size()) {
      return {};
    }
    const Entry& entry = entries_[id];
    if (external_base_ != nullptr) {
      return std::string_view(external_base_ + entry.offset, entry.length);
    }
    return std::string_view(arena_).substr(entry.offset, entry.length);
  }

  // Number of distinct strings, counting the implicit empty string.
  size_t size() const { return entries_.size(); }
  // Total bytes of distinct string payload (the arena size).
  size_t payload_bytes() const { return payload_bytes_; }

  // --- External (zero-copy) arena mode ---------------------------------------
  //
  // A mapped RTRC file already holds every pool string; instead of copying
  // them into a private arena, the pool can resolve ids as offsets into that
  // mapped region. Bind the base once, then append offset/length entries in
  // stream order. No dedup index is built: Intern() is a programming error on
  // an external pool. Copies of the pool share the base pointer — the mapping
  // must outlive them all.
  void BindExternalArena(const char* base) {
    assert(entries_.size() == 1 && "bind before appending entries");
    external_base_ = base;
  }
  void AppendExternal(size_t offset, size_t length) {
    assert(external_base_ != nullptr);
    entries_.push_back(
        Entry{static_cast<uint32_t>(offset), static_cast<uint32_t>(length)});
    payload_bytes_ += length;
  }
  void ReserveEntries(size_t n) { entries_.reserve(n); }
  bool external() const { return external_base_ != nullptr; }

 private:
  // Entries store offsets into the arena, not pointers, so the defaulted
  // copy/move of a pool (and of any Trace owning one) stays correct.
  struct Entry {
    uint32_t offset = 0;
    uint32_t length = 0;
  };

  // Transparent hashing: lookups take string_view without materializing a
  // std::string — Intern is on the tracer's record path.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::string arena_;
  // Set when entries resolve against a caller-owned region (a mapped trace
  // file) instead of `arena_`; never owned by the pool.
  const char* external_base_ = nullptr;
  size_t payload_bytes_ = 0;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, StrId, Hash, std::equal_to<>> index_;
};

}  // namespace rose

#endif  // SRC_TRACE_STRING_POOL_H_
